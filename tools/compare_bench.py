#!/usr/bin/env python3
"""Compare bench JSON runs against a committed baseline.

Python-stdlib only (CI runners need nothing installed). Two bench JSON
dialects are understood:

  serve    serve_throughput's own JSON: results[] rows keyed by
           (policy, clients), metric "qps", higher is better.
  micro    google-benchmark JSON: benchmarks[] keyed by "name", metric
           "real_time" (normalized to ns), lower is better.
  persist  persist_roundtrip's JSON: results[] rows keyed by
           "algorithm", metric "load_speedup" (snapshot load vs full
           rebuild -- a ratio, so it transfers across runner hardware
           better than absolute seconds), higher is better.
  append   append_ingest's JSON: results[] rows keyed by "algorithm",
           metric "delta_speedup" (full-save vs delta-save seconds --
           also a hardware-portable ratio), higher is better.
  frontend serve_frontend's JSON: results[] rows keyed by "regime"
           (no_overload / overload), metric "qps" measured end-to-end
           through the TCP front end, higher is better.
  scaling  shard_scaling's JSON: results[] rows keyed by shard count,
           metric "build_speedup" (N-shard build vs single engine --
           a hardware-portable ratio; the 1-shard reference row is
           skipped), higher is better.

Usage:
  compare_bench.py --kind serve --baseline bench/baselines/serve_throughput.json \
      --tolerance 0.15 run1.json run2.json run3.json

Each metric's median across the runs (CI noise absorption) is compared
against the baseline; any regression beyond the tolerance fails the
process with exit code 1 and a table of every metric on stderr/stdout.
Metrics present in the runs but not in the baseline (new benchmarks) are
reported but never fail.
"""

import argparse
import json
import statistics
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_serve(path):
    """(policy, clients) -> qps. Higher is better."""
    with open(path) as f:
        doc = json.load(f)
    return {
        (row["policy"], row["clients"]): float(row["qps"])
        for row in doc["results"]
    }


def load_micro(path):
    """benchmark name -> real_time in ns. Lower is better."""
    with open(path) as f:
        doc = json.load(f)
    metrics = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        scale = TIME_UNIT_NS.get(row.get("time_unit", "ns"), 1.0)
        metrics[row["name"]] = float(row["real_time"]) * scale
    return metrics


def load_persist(path):
    """algorithm -> load_speedup (load vs rebuild). Higher is better."""
    with open(path) as f:
        doc = json.load(f)
    return {
        row["algorithm"]: float(row["load_speedup"])
        for row in doc["results"]
    }


def load_append(path):
    """algorithm -> delta_speedup (full save vs delta save). Higher is
    better."""
    with open(path) as f:
        doc = json.load(f)
    return {
        row["algorithm"]: float(row["delta_speedup"])
        for row in doc["results"]
    }


def load_frontend(path):
    """regime -> end-to-end qps through the TCP front end. Higher is
    better."""
    with open(path) as f:
        doc = json.load(f)
    return {row["regime"]: float(row["qps"]) for row in doc["results"]}


def load_scaling(path):
    """shard count -> build_speedup vs the single engine (a ratio, so it
    transfers across runner hardware). Higher is better. The 1-shard row
    is the 1.0 reference and is skipped."""
    with open(path) as f:
        doc = json.load(f)
    return {
        "shards%d" % row["shards"]: float(row["build_speedup"])
        for row in doc["results"]
        if row["shards"] != 1
    }


LOADERS = {
    "serve": (load_serve, "qps", "higher"),
    "frontend": (load_frontend, "qps", "higher"),
    "micro": (load_micro, "real_time_ns", "lower"),
    "persist": (load_persist, "load_speedup", "higher"),
    "append": (load_append, "delta_speedup", "higher"),
    "scaling": (load_scaling, "build_speedup", "higher"),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kind", choices=sorted(LOADERS), required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional regression vs baseline (default 0.15)",
    )
    parser.add_argument("runs", nargs="+", help="JSON files from repeat runs")
    args = parser.parse_args()

    loader, metric_name, better = LOADERS[args.kind]
    baseline = loader(args.baseline)
    runs = [loader(path) for path in args.runs]

    failures = []
    rows = []
    for key in sorted(baseline, key=str):
        samples = [run[key] for run in runs if key in run]
        if not samples:
            failures.append((key, "missing from all runs"))
            rows.append((key, baseline[key], None, None, "MISSING"))
            continue
        median = statistics.median(samples)
        base = baseline[key]
        if better == "higher":
            ratio = median / base if base else float("inf")
            regressed = median < base * (1.0 - args.tolerance)
        else:
            ratio = base / median if median else float("inf")
            regressed = median > base * (1.0 + args.tolerance)
        verdict = "REGRESSED" if regressed else "ok"
        if regressed:
            failures.append(
                (key, f"median {median:.4g} vs baseline {base:.4g}")
            )
        rows.append((key, base, median, ratio, verdict))

    extra = sorted(
        {k for run in runs for k in run if k not in baseline}, key=str
    )

    print(
        f"bench-regression [{args.kind}] {metric_name} "
        f"({better} is better), median of {len(runs)} run(s), "
        f"tolerance {args.tolerance:.0%}"
    )
    width = max((len(str(r[0])) for r in rows), default=10)
    print(f"  {'metric':<{width}}  {'baseline':>12}  {'median':>12}  "
          f"{'vs base':>8}  verdict")
    for key, base, median, ratio, verdict in rows:
        med = f"{median:.4g}" if median is not None else "-"
        rat = f"{ratio:.2f}x" if ratio is not None else "-"
        print(f"  {str(key):<{width}}  {base:>12.4g}  {med:>12}  "
              f"{rat:>8}  {verdict}")
    for key in extra:
        print(f"  {str(key):<{width}}  (not in baseline; informational)")

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for key, why in failures:
            print(f"  {key}: {why}", file=sys.stderr)
        return 1
    print("\nPASS: no metric regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
