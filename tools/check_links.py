#!/usr/bin/env python3
"""Verify that every relative markdown link in the repo's docs resolves.

Python-stdlib only (the CI lint job needs nothing installed). Scans the
given markdown files (default: README.md, ROADMAP.md, CHANGES.md and
docs/*.md relative to the repo root) for `[text](target)` links and
fails with a listing when a relative target does not exist on disk.

Skipped targets:
  - absolute URLs (anything with a scheme, e.g. https://, mailto:)
  - pure intra-page anchors (#section)
  - targets that escape the repository root (e.g. the README CI badge's
    ../../actions/... GitHub-relative path, which only resolves on
    github.com)

Usage: check_links.py [--root REPO_ROOT] [file.md ...]
"""

import argparse
import glob
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def default_files(root):
    files = []
    for name in ("README.md", "ROADMAP.md", "CHANGES.md"):
        path = os.path.join(root, name)
        if os.path.exists(path):
            files.append(path)
    files.extend(sorted(glob.glob(os.path.join(root, "docs", "*.md"))))
    return files


def check_file(path, root):
    """Returns a list of (line_number, target, reason) failures."""
    failures = []
    base_dir = os.path.dirname(os.path.abspath(path))
    root = os.path.abspath(root)
    with open(path, encoding="utf-8") as f:
        for line_number, line in enumerate(f, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if SCHEME_RE.match(target) or target.startswith("#"):
                    continue
                resolved = os.path.normpath(
                    os.path.join(base_dir, target.split("#", 1)[0])
                )
                if os.path.commonpath([resolved, root]) != root:
                    continue  # escapes the repo (e.g. GitHub badge paths)
                if not os.path.exists(resolved):
                    failures.append((line_number, target, resolved))
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("files", nargs="*", help="markdown files to check")
    args = parser.parse_args()

    files = args.files or default_files(args.root)
    if not files:
        print("FAIL: no markdown files found to check", file=sys.stderr)
        return 1

    total_links_failed = 0
    for path in files:
        failures = check_file(path, args.root)
        for line_number, target, resolved in failures:
            print(
                f"FAIL: {path}:{line_number}: link target '{target}' "
                f"does not resolve ({resolved})",
                file=sys.stderr,
            )
        total_links_failed += len(failures)

    if total_links_failed:
        print(
            f"\nFAIL: {total_links_failed} broken relative link(s) in "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"PASS: all relative links resolve across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
