#!/usr/bin/env python3
"""Verify that every relative markdown link in the repo's docs resolves.

Python-stdlib only (the CI lint job needs nothing installed). Scans the
given markdown files (default: README.md, ROADMAP.md, CHANGES.md and
docs/*.md relative to the repo root) for `[text](target)` links and
fails with a listing when a relative target does not exist on disk —
including `#fragment` anchors, which are checked against the GitHub
anchor slugs of the target file's headings (same-file for bare
`#anchor` links).

Skipped targets:
  - absolute URLs (anything with a scheme, e.g. https://, mailto:)
  - targets that escape the repository root (e.g. the README CI badge's
    ../../actions/... GitHub-relative path, which only resolves on
    github.com)
  - fragments pointing into non-markdown files (e.g. source line links)

Usage: check_links.py [--root REPO_ROOT] [file.md ...]
"""

import argparse
import glob
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
INLINE_LINK_RE = re.compile(r"\[([^\]]*)\]\([^)]*\)")


def github_slug(heading):
    """The anchor GitHub generates for a heading (before -N dedup)."""
    text = INLINE_LINK_RE.sub(r"\1", heading)  # [text](url) -> text
    text = text.replace("`", "").replace("*", "")
    text = text.strip().lower()
    out = []
    for ch in text:
        if ch.isalnum() or ch in "-_ ":
            out.append(ch)
    return "".join(out).replace(" ", "-")


def heading_anchors(path, cache={}):
    """The set of valid anchor fragments of a markdown file, with
    GitHub's -1/-2 suffixes for duplicate headings."""
    if path in cache:
        return cache[path]
    anchors = set()
    counts = {}
    in_code_fence = False
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                if line.lstrip().startswith("```"):
                    in_code_fence = not in_code_fence
                    continue
                if in_code_fence:
                    continue
                match = HEADING_RE.match(line)
                if not match:
                    continue
                slug = github_slug(match.group(2))
                seen = counts.get(slug, 0)
                counts[slug] = seen + 1
                anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    except OSError:
        pass
    cache[path] = anchors
    return anchors


def check_file(path, root):
    """Returns a list of (line_number, target, reason) failures."""
    failures = []
    base_dir = os.path.dirname(os.path.abspath(path))
    root = os.path.abspath(root)
    with open(path, encoding="utf-8") as f:
        for line_number, line in enumerate(f, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if SCHEME_RE.match(target):
                    continue
                if target.startswith("#"):
                    anchor = target[1:]
                    if anchor not in heading_anchors(os.path.abspath(path)):
                        failures.append(
                            (line_number, target,
                             f"no heading with anchor '#{anchor}' in "
                             f"{os.path.basename(path)}")
                        )
                    continue
                file_part, _, fragment = target.partition("#")
                resolved = os.path.normpath(
                    os.path.join(base_dir, file_part)
                )
                if os.path.commonpath([resolved, root]) != root:
                    continue  # escapes the repo (e.g. GitHub badge paths)
                if not os.path.exists(resolved):
                    failures.append(
                        (line_number, target,
                         f"file does not exist ({resolved})")
                    )
                    continue
                if fragment and resolved.endswith(".md"):
                    if fragment not in heading_anchors(resolved):
                        failures.append(
                            (line_number, target,
                             f"no heading with anchor '#{fragment}' in "
                             f"{os.path.relpath(resolved, root)}")
                        )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("files", nargs="*", help="markdown files to check")
    args = parser.parse_args()

    files = args.files or default_files(args.root)
    if not files:
        print("FAIL: no markdown files found to check", file=sys.stderr)
        return 1

    total_links_failed = 0
    for path in files:
        failures = check_file(path, args.root)
        for line_number, target, reason in failures:
            print(
                f"FAIL: {path}:{line_number}: link target '{target}': "
                f"{reason}",
                file=sys.stderr,
            )
        total_links_failed += len(failures)

    if total_links_failed:
        print(
            f"\nFAIL: {total_links_failed} broken relative link(s) in "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"PASS: all relative links and anchors resolve across "
        f"{len(files)} file(s)"
    )
    return 0


def default_files(root):
    files = []
    for name in ("README.md", "ROADMAP.md", "CHANGES.md"):
        path = os.path.join(root, name)
        if os.path.exists(path):
            files.append(path)
    files.extend(sorted(glob.glob(os.path.join(root, "docs", "*.md"))))
    return files


if __name__ == "__main__":
    sys.exit(main())
