#!/usr/bin/env python3
"""Generate (or verify) docs/metrics.md from the registered metric set.

Python-stdlib only. The markdown is produced by the compiled helper
tools/dump_metrics.cpp, which registers the standard ServerMetrics set
(src/serve/metrics.h) against a MetricsRegistry and walks
MetricsRegistry::List() — the same families a running parisax_server
exports — so the committed reference cannot drift from the code without
CI noticing.

Usage:
  # Regenerate the doc after changing the metric set:
  cmake --build build --target dump_metrics
  python3 tools/gen_metrics_docs.py \
      --binary build/dump_metrics --out docs/metrics.md

  # CI drift gate (fails when the committed doc and the code disagree):
  python3 tools/gen_metrics_docs.py \
      --binary build/dump_metrics --out docs/metrics.md --check
"""

import argparse
import subprocess
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--binary", required=True, help="path to the dump_metrics binary"
    )
    parser.add_argument(
        "--out", required=True, help="the markdown file to write or verify"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="do not write; fail (exit 1) if --out differs from the "
        "generator's output",
    )
    args = parser.parse_args()

    proc = subprocess.run(
        [args.binary], capture_output=True, text=True, check=False
    )
    if proc.returncode != 0:
        print(
            f"FAIL: {args.binary} exited {proc.returncode}:\n{proc.stderr}",
            file=sys.stderr,
        )
        return 1
    generated = proc.stdout

    if args.check:
        try:
            with open(args.out, encoding="utf-8") as f:
                committed = f.read()
        except FileNotFoundError:
            print(f"FAIL: {args.out} does not exist; generate it with "
                  f"--out (no --check)", file=sys.stderr)
            return 1
        if committed != generated:
            print(
                f"FAIL: {args.out} is out of date with the metric set "
                "in the code.\nRegenerate it:\n"
                "  cmake --build build --target dump_metrics\n"
                f"  python3 tools/gen_metrics_docs.py --binary "
                f"{args.binary} --out {args.out}",
                file=sys.stderr,
            )
            import difflib

            diff = difflib.unified_diff(
                committed.splitlines(keepends=True),
                generated.splitlines(keepends=True),
                fromfile=f"{args.out} (committed)",
                tofile=f"{args.out} (generated)",
            )
            sys.stderr.writelines(diff)
            return 1
        print(f"PASS: {args.out} matches the registered metric set")
        return 0

    with open(args.out, "w", encoding="utf-8") as f:
        f.write(generated)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
