// Emits docs/metrics.md to stdout: every metric family parisax_server
// registers (name, type, labels, help), straight from the registry the
// server actually serves — ServerMetrics registers against a
// MetricsRegistry and this binary walks MetricsRegistry::List().
// Because the doc is generated from the code (tools/gen_metrics_docs.py
// runs this binary; CI diffs the committed file against its output),
// the reference cannot drift from what a STATS frame reports.
#include <cstdio>
#include <string>
#include <vector>

#include "serve/metrics.h"

int main() {
  parisax::MetricsRegistry registry;
  parisax::ServerMetrics metrics(&registry);
  (void)metrics;

  std::printf(
      "# Serving metrics\n"
      "\n"
      "<!-- GENERATED FILE — DO NOT EDIT.\n"
      "     Produced by tools/gen_metrics_docs.py running\n"
      "     tools/dump_metrics.cpp, which registers the standard\n"
      "     ServerMetrics set (src/serve/metrics.h) and walks\n"
      "     MetricsRegistry::List(). Regenerate with:\n"
      "       cmake --build build --target dump_metrics\n"
      "       python3 tools/gen_metrics_docs.py \\\n"
      "           --binary build/dump_metrics --out docs/metrics.md\n"
      "     CI fails when this file and the generator disagree. -->\n"
      "\n"
      "Every metric `parisax_server` exports, in registration order.\n"
      "A `STATS` frame (see [serving.md](serving.md)) answers with these\n"
      "in the Prometheus text exposition format; request-path counters\n"
      "are updated inline by the server, while engine and query-service\n"
      "state is mirrored into the registry right before each scrape, so\n"
      "samples within one scrape are mutually consistent.\n"
      "\n"
      "| metric | type | labels | description |\n"
      "|--------|------|--------|-------------|\n");

  for (const auto& info : registry.List()) {
    std::string labels;
    for (const auto& name : info.label_names) {
      if (!labels.empty()) labels += ", ";
      labels += "`" + name + "`";
    }
    if (labels.empty()) labels = "—";
    std::printf("| `%s` | %s | %s | %s |\n", info.name.c_str(),
                parisax::MetricTypeName(info.type), labels.c_str(),
                info.help.c_str());
  }

  std::printf(
      "\n"
      "Notes:\n"
      "\n"
      "- Histograms render as cumulative `_bucket{le=...}` series plus\n"
      "  `_sum` and `_count`; `parisax_request_seconds` buckets span\n"
      "  100µs to ~100s in roughly x3 steps.\n"
      "- `parisax_queries_*` mirror one coherent `ServeStats` snapshot\n"
      "  (see `src/serve/query_service.h`), so\n"
      "  `submitted = completed + inflight` holds within a scrape.\n"
      "- Counters are monotonic across a server's lifetime; gauges\n"
      "  (`*_inflight`, `*_depth`, `*_open`, engine shape) are sampled\n"
      "  state.\n");
  return 0;
}
