#!/usr/bin/env python3
"""Run clang-tidy over compile_commands.json and gate on a baseline.

Stdlib-only. The committed .clang-tidy selects the checks; this script
runs them over every first-party translation unit, normalizes the
findings to stable keys, and compares them against the committed
baseline (tools/clang_tidy_baseline.txt):

  * a finding NOT covered by the baseline fails the run (new debt);
  * a baseline line matching nothing is reported so the baseline can be
    tightened (stale entries never fail the run).

Finding keys deliberately omit line/column numbers — `path [check] message`
— so unrelated edits shifting code downward do not churn the baseline.
Baseline lines are glob patterns matched against the key (`*` and `?`
only; brackets are literal, since every key contains a [check] name), so
one line can cover a family of accepted findings.

Usage:
  tools/run_clang_tidy.py --build-dir build            # gate
  tools/run_clang_tidy.py --build-dir build --update-baseline
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

BASELINE_HEADER = """\
# clang-tidy baseline: accepted pre-existing findings.
#
# One shell-style glob pattern per line, matched against the normalized
# finding key `path [check] message` (no line numbers; paths relative to
# the repo root). Regenerate with:
#   tools/run_clang_tidy.py --build-dir build --update-baseline
# Tighten by deleting lines; the gate fails only on findings no pattern
# covers.
"""

FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):\d+:\d+:\s+(?:warning|error):\s+"
    r"(?P<message>.*?)\s+\[(?P<check>[^\]\s]+)\]\s*$")


def find_clang_tidy(explicit):
    if explicit:
        return explicit
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        if shutil.which(name):
            return name
    return None


def first_party_sources(build_dir, root):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(path):
        sys.exit(f"error: {path} not found; configure with "
                 "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first")
    with open(path) as f:
        entries = json.load(f)
    sources = []
    for entry in entries:
        src = os.path.realpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        rel = os.path.relpath(src, root)
        # First-party TUs only: vendored/fetched dependencies under the
        # build tree (e.g. _deps/googletest) are not ours to lint.
        if rel.startswith(".."):
            continue
        top = rel.split(os.sep, 1)[0]
        if top in ("src", "tests", "bench", "examples", "tools"):
            sources.append(src)
    return sorted(set(sources))


def run_one(clang_tidy, build_dir, src):
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", src],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    return proc.stdout


def normalize(output, root):
    keys = set()
    for line in output.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        path = os.path.realpath(m.group("path"))
        rel = os.path.relpath(path, root)
        if rel.startswith(".."):
            continue  # finding in a system or vendored header
        keys.add(f"{rel} [{m.group('check')}] {m.group('message')}")
    return keys


def pattern_to_regex(pattern):
    """Glob -> regex with only `*` and `?` special: finding keys contain
    literal brackets ([check-name]), so fnmatch's character classes
    would silently never match."""
    parts = []
    for ch in pattern:
        if ch == "*":
            parts.append(".*")
        elif ch == "?":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$")


def load_baseline(path):
    patterns = []
    if not os.path.exists(path):
        return patterns
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                patterns.append(line)
    return patterns


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build tree holding compile_commands.json")
    parser.add_argument("--baseline",
                        default="tools/clang_tidy_baseline.txt")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: autodetect)")
    parser.add_argument("--jobs", type=int,
                        default=os.cpu_count() or 4)
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's "
                             "findings instead of gating")
    args = parser.parse_args()

    root = os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    clang_tidy = find_clang_tidy(args.clang_tidy)
    if clang_tidy is None:
        sys.exit("error: no clang-tidy binary found on PATH "
                 "(install clang-tidy or pass --clang-tidy)")

    sources = first_party_sources(args.build_dir, root)
    if not sources:
        sys.exit("error: no first-party sources in compile_commands.json")
    print(f"clang-tidy ({clang_tidy}): {len(sources)} translation units, "
          f"{args.jobs} jobs")

    findings = set()
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [
            pool.submit(run_one, clang_tidy, args.build_dir, src)
            for src in sources
        ]
        for future in concurrent.futures.as_completed(futures):
            findings |= normalize(future.result(), root)

    baseline_path = os.path.join(root, args.baseline)
    if args.update_baseline:
        with open(baseline_path, "w") as f:
            f.write(BASELINE_HEADER)
            for key in sorted(findings):
                f.write(key + "\n")
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    patterns = load_baseline(baseline_path)
    compiled = [(p, pattern_to_regex(p)) for p in patterns]
    matched_patterns = set()
    new_findings = []
    for key in sorted(findings):
        for pattern, regex in compiled:
            if regex.match(key):
                matched_patterns.add(pattern)
                break
        else:
            new_findings.append(key)

    stale = [p for p in patterns if p not in matched_patterns]
    if stale:
        print(f"note: {len(stale)} baseline pattern(s) matched nothing "
              "(fixed findings? tighten the baseline):")
        for pattern in stale:
            print(f"  {pattern}")

    if new_findings:
        print(f"FAIL: {len(new_findings)} finding(s) not covered by "
              f"{args.baseline}:")
        for key in new_findings:
            print(f"  {key}")
        print("fix them, or (for accepted debt) refresh the baseline "
              "with --update-baseline and justify the diff in review")
        return 1

    print(f"OK: {len(findings)} finding(s), all covered by the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
