// Emits docs/capabilities.md to stdout: the full Algorithm x residency
// capability matrix, straight from NarrowCapabilities — the same
// function Engine::capabilities() applies to a live engine. Because the
// doc is generated from the code (tools/gen_capability_docs.py runs
// this binary; CI diffs the committed file against its output), the
// table cannot drift from what the engines actually do.
#include <cstdio>
#include <string>
#include <utility>

#include "core/engine.h"
#include "io/generator.h"
#include "shard/sharded_engine.h"

namespace {

using parisax::Algorithm;
using parisax::AlgorithmName;
using parisax::EngineCapabilities;
using parisax::NarrowCapabilities;
using parisax::SourceResidency;
using parisax::SourceResidencyName;

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kBruteForce, Algorithm::kUcrSerial, Algorithm::kUcrParallel,
    Algorithm::kAdsPlus,    Algorithm::kParis,     Algorithm::kParisPlus,
    Algorithm::kMessi};

constexpr SourceResidency kResidencies[] = {
    SourceResidency::kOwnedMemory, SourceResidency::kBorrowedMemory,
    SourceResidency::kMmap, SourceResidency::kStreamedFile};

const char* YesNo(bool v) { return v ? "yes" : "no"; }

std::string MaxK(size_t max_k) {
  return max_k == SIZE_MAX ? "∞" : std::to_string(max_k);
}

}  // namespace

int main() {
  std::printf(
      "# Engine capabilities\n"
      "\n"
      "<!-- GENERATED FILE — DO NOT EDIT.\n"
      "     Produced by tools/gen_capability_docs.py running\n"
      "     tools/dump_capabilities.cpp, which prints\n"
      "     NarrowCapabilities(algorithm, residency) — the function\n"
      "     behind Engine::capabilities(). Regenerate with:\n"
      "       cmake --build build --target dump_capabilities\n"
      "       python3 tools/gen_capability_docs.py \\\n"
      "           --binary build/dump_capabilities --out "
      "docs/capabilities.md\n"
      "     CI fails when this file and the generator disagree. -->\n"
      "\n"
      "What an engine supports is a queryable value, not a doc comment:\n"
      "`Engine::capabilities()` returns the algorithm's row of one static\n"
      "table (`AlgorithmCapabilities`), narrowed by the residency of the\n"
      "source the engine was built over (`NarrowCapabilities`). Every\n"
      "`kNotSupported` the engine returns — query features, `Save`,\n"
      "`Append`, build-residency mismatches — derives from this value,\n"
      "and `tests/engine_test.cpp` sweeps the matrix against observed\n"
      "behavior.\n"
      "\n"
      "Residencies: `in-memory` = `SourceSpec::InMemory` (adopted),\n"
      "`borrowed` = `SourceSpec::Borrowed` (caller-owned, cannot grow),\n"
      "`mmap` = `SourceSpec::Mmap` and restored snapshots\n"
      "(`Engine::Open`), `streamed` = `SourceSpec::File` behind a\n"
      "simulated device. A `buildable: no` row means `Engine::Build`\n"
      "itself rejects the combination (the algorithm cannot build from a\n"
      "non-addressable source); its capability cells are moot and shown\n"
      "as `—`.\n"
      "\n"
      "| algorithm | residency | buildable | max k | dtw | dtw k-NN | "
      "approximate | snapshot | streamed build | append | background "
      "compaction |\n"
      "|-----------|-----------|-----------|-------|-----|----------|"
      "-------------|----------|----------------|--------|"
      "-----------------------|\n");

  for (const Algorithm a : kAlgorithms) {
    for (const SourceResidency r : kResidencies) {
      // The same rule Engine::Build rejects with, so this column
      // cannot drift either.
      if (!CanBuildOver(a, r)) {
        std::printf(
            "| `%s` | %s | no | — | — | — | — | — | — | — | — |\n",
            AlgorithmName(a), SourceResidencyName(r));
        continue;
      }
      const EngineCapabilities caps = NarrowCapabilities(a, r);
      std::printf(
          "| `%s` | %s | yes | %s | %s | %s | %s | %s | %s | %s | %s |\n",
          AlgorithmName(a), SourceResidencyName(r),
          MaxK(caps.max_k).c_str(), YesNo(caps.dtw), YesNo(caps.dtw_knn),
          YesNo(caps.approximate), YesNo(caps.snapshot),
          YesNo(caps.streaming_build), YesNo(caps.append),
          YesNo(caps.background_compaction));
    }
  }

  std::printf(
      "\n"
      "Notes:\n"
      "\n"
      "- `max k`: largest exact-kNN `k` (∞ = unbounded); k > 1 under DTW\n"
      "  is unimplemented everywhere (`dtw k-NN` is `no` in every row).\n"
      "- `dtw` drops to `no` over streamed sources — there is no on-disk\n"
      "  DTW scan.\n"
      "- `append` is `Engine::Append` incremental ingest; it drops to\n"
      "  `no` over borrowed collections, which the engine cannot grow.\n"
      "  ADS+ reports `kNotSupported`: its serial bulk-load is not\n"
      "  re-runnable over a tail.\n"
      "- `snapshot` covers `Engine::Save`/`Open`/`Compact`, including\n"
      "  append-only delta chains (see\n"
      "  [snapshot-format.md](snapshot-format.md)).\n"
      "- `background compaction`: the engine may run the segment\n"
      "  compactor thread that folds appended delta segments into the\n"
      "  base index off the serving path (see\n"
      "  [architecture.md](architecture.md)). Requires `append` and an\n"
      "  addressable source; `EngineOptions::background_compaction`\n"
      "  can still turn it off per engine, and ParIS+ engines with\n"
      "  on-disk leaf storage fall back to synchronous folding.\n"
      "- `SourceSpec::Custom` engines are narrowed at runtime from the\n"
      "  live source (`addressable()`, `appendable()`), not from this\n"
      "  table.\n"
      "\n"
      "## ShardedEngine\n"
      "\n"
      "A `ShardedEngine` (`src/shard/sharded_engine.h`) reports the\n"
      "*intersection* of its shards' capabilities — min over `max k`,\n"
      "AND over every flag — because the router can only promise what\n"
      "every shard delivers. The rows below are read from live 2-shard\n"
      "engines built over adopted in-memory partitions (the\n"
      "`--shards=N` serving configuration), so they equal the\n"
      "`in-memory` rows above; a heterogeneous mix would narrow to\n"
      "whatever every member supports. A sharded checkpoint restores\n"
      "every shard from its own snapshot and data file (see\n"
      "`persist/shard_manifest.h`), so `snapshot` narrows exactly like\n"
      "a single engine's.\n"
      "\n"
      "| algorithm | max k | dtw | dtw k-NN | approximate | snapshot | "
      "append | background compaction |\n"
      "|-----------|-------|-----|----------|-------------|----------|"
      "--------|-----------------------|\n");

  for (const Algorithm a : kAlgorithms) {
    parisax::GeneratorOptions gen;
    gen.count = 64;
    gen.length = 32;
    parisax::EngineOptions options;
    options.algorithm = a;
    options.num_threads = 1;
    options.tree.segments = 8;
    options.tree.leaf_capacity = 16;
    options.background_compaction = false;
    auto sharded = parisax::ShardedEngine::Build(
        parisax::GenerateDataset(gen), 2, options);
    if (!sharded.ok()) {
      std::fprintf(stderr, "sharded %s build failed: %s\n", AlgorithmName(a),
                   sharded.status().message().c_str());
      return 1;
    }
    const EngineCapabilities caps = (*sharded)->capabilities();
    std::printf("| `%s` | %s | %s | %s | %s | %s | %s | %s |\n",
                AlgorithmName(a), MaxK(caps.max_k).c_str(), YesNo(caps.dtw),
                YesNo(caps.dtw_knn), YesNo(caps.approximate),
                YesNo(caps.snapshot), YesNo(caps.append),
                YesNo(caps.background_compaction));
  }

  std::printf(
      "\n"
      "(`streamed build` is omitted: sharding partitions an in-memory\n"
      "collection, so a sharded build is never streamed.)\n");
  return 0;
}
