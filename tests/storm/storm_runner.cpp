#include "storm/storm_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "core/engine.h"
#include "io/format.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/query_service.h"
#include "shard/sharded_engine.h"
#include "storm/wire_client.h"
#include "storm/workload_model.h"
#include "support/failing_source.h"
#include "support/temp_dir.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace parisax {
namespace storm {
namespace {

constexpr size_t kMaxRecordedFailures = 16;
/// Seed-stream tags: queries must never collide with the data stream.
constexpr uint64_t kQuerySeedTag = 0x9C13;

/// A fixed pool of actor threads draining one task queue. The driver
/// dispatches query checks here and uses Drain() as the quiesce barrier
/// before backend teardown. The queue lock is kLeaf and is never held
/// while a task runs, so actor tasks may take engine locks freely.
class ActorPool {
 public:
  explicit ActorPool(size_t actors) {
    threads_.reserve(actors);
    for (size_t i = 0; i < actors; ++i) {
      threads_.emplace_back([this] { Loop(); });
    }
  }

  ~ActorPool() {
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (auto& t : threads_) t.join();
  }

  void Dispatch(std::function<void()> task) {
    {
      MutexLock lock(&mu_);
      ++pending_;
      queue_.push_back(std::move(task));
    }
    cv_.NotifyOne();
  }

  /// Blocks until every dispatched task has finished.
  void Drain() {
    MutexLock lock(&mu_);
    while (pending_ != 0) done_cv_.Wait(mu_);
  }

 private:
  void Loop() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(&mu_);
        while (queue_.empty() && !stop_) cv_.Wait(mu_);
        if (queue_.empty()) return;  // stop_ and nothing left to run
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        MutexLock lock(&mu_);
        --pending_;
      }
      done_cv_.NotifyAll();
    }
  }

  Mutex mu_{"storm::ActorPool::mu_", LockRank::kLeaf};
  CondVar cv_;
  CondVar done_cv_;
  std::deque<std::function<void()>> queue_ PARISAX_GUARDED_BY(mu_);
  size_t pending_ PARISAX_GUARDED_BY(mu_) = 0;
  bool stop_ PARISAX_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

std::string DescribeNeighbors(const std::vector<Neighbor>& neighbors) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < neighbors.size() && i < 6; ++i) {
    if (i != 0) out << ", ";
    out << "(" << neighbors[i].id << ", " << neighbors[i].distance_sq
        << ")";
  }
  if (neighbors.size() > 6) out << ", ...x" << neighbors.size();
  out << "]";
  return out.str();
}

class StormRunner {
 public:
  explicit StormRunner(const StormPlan& plan)
      : plan_(plan),
        config_(plan.config),
        tmp_("parisax_storm"),
        model_(config_.kind, config_.data_seed, config_.initial_series,
               config_.series_length) {}

  Result<StormReport> Run() {
    PARISAX_RETURN_IF_ERROR(SetupBackend());
    if (config_.wire) PARISAX_RETURN_IF_ERROR(StartServer());
    pool_ = std::make_unique<ActorPool>(config_.actors);
    for (size_t i = 0; i < plan_.ops.size(); ++i) {
      if (backend_ == nullptr) break;  // lost beyond recovery
      ExecuteOp(i, plan_.ops[i]);
    }
    pool_->Drain();
    pool_.reset();
    server_.reset();

    StormReport report;
    {
      MutexLock lock(&failures_mu_);
      report.failures = failures_;
      report.failure_count = failure_count_;
    }
    report.stats.queries_checked = stats_.queries_checked.load();
    report.stats.rejections_predicted = stats_.rejections_predicted.load();
    report.stats.deadlines_expired = stats_.deadlines_expired.load();
    report.stats.overloaded = stats_.overloaded.load();
    report.stats.relaxed_checks = stats_.relaxed_checks.load();
    report.stats.appends = stats_.appends.load();
    report.stats.saves = stats_.saves.load();
    report.stats.compacts = stats_.compacts.load();
    report.stats.reopens = stats_.reopens.load();
    report.stats.rebuilds = stats_.rebuilds.load();
    report.stats.failed_rebuilds = stats_.failed_rebuilds.load();
    report.stats.wire_garbage = stats_.wire_garbage.load();
    report.stats.wire_health = stats_.wire_health.load();
    report.final_count = model_.count();
    report.passed = report.failure_count == 0;
    return report;
  }

 private:
  // --- setup ---------------------------------------------------------------

  Status SetupBackend() {
    eopts_.algorithm = config_.algorithm;
    eopts_.num_threads = 2;
    eopts_.tree.segments = 8;
    eopts_.tree.leaf_capacity = 32;
    eopts_.compaction_trigger_segments = 4;

    Dataset initial = model_.CopyData();
    residency_ = config_.residency;
    if (config_.shards > 1) {
      PARISAX_ASSIGN_OR_RETURN(
          sharded_, ShardedEngine::Build(std::move(initial), config_.shards,
                                         eopts_));
      backend_ = sharded_.get();
      return Status::OK();
    }
    SourceSpec spec = SourceSpec::InMemory(std::move(initial));
    if (config_.residency != SourceResidency::kOwnedMemory) {
      data_file_ = tmp_.Path("data.bin");
      PARISAX_RETURN_IF_ERROR(WriteDataset(model_.CopyData(), data_file_));
      if (config_.residency == SourceResidency::kMmap) {
        spec = SourceSpec::Mmap(data_file_);
      } else {
        eopts_.leaf_storage_path = tmp_.Path("data.leaves");
        spec = SourceSpec::File(data_file_);
      }
    }
    PARISAX_ASSIGN_OR_RETURN(engine_,
                             Engine::Build(std::move(spec), eopts_));
    backend_ = engine_.get();
    return Status::OK();
  }

  Status StartServer() {
    ServerOptions sopts;
    sopts.serve_threads = 3;
    sopts.max_inflight = 64;
    PARISAX_ASSIGN_OR_RETURN(server_, Server::Start(backend_, sopts));
    port_.store(server_->port(), std::memory_order_release);
    return Status::OK();
  }

  // --- failure recording ---------------------------------------------------

  void Fail(size_t index, const StormOp& op, std::string what) {
    MutexLock lock(&failures_mu_);
    ++failure_count_;
    if (failures_.size() < kMaxRecordedFailures) {
      failures_.push_back(
          {index, std::string("[op ") + std::to_string(index) + " " +
                      StormOpKindName(op.kind) + "] " + std::move(what)});
    }
  }

  // --- op dispatch ---------------------------------------------------------

  void ExecuteOp(size_t index, const StormOp& op) {
    switch (op.kind) {
      case StormOpKind::kQueryNn:
      case StormOpKind::kQueryKnn:
      case StormOpKind::kQueryDtw:
      case StormOpKind::kQueryApprox:
      case StormOpKind::kBadQuery:
        pool_->Dispatch([this, index, op] { RunQuery(index, op); });
        break;
      case StormOpKind::kAppend:
        DoAppend(index, op);
        break;
      case StormOpKind::kSave:
        DoSave(index, op);
        break;
      case StormOpKind::kCompact:
        DoCompact(index, op);
        break;
      case StormOpKind::kReopen:
        DoReopen(index, op);
        break;
      case StormOpKind::kRebuild:
        DoRebuild(index, op);
        break;
      case StormOpKind::kRebuildFail:
        DoRebuildFail(index, op);
        break;
      case StormOpKind::kWireGarbage:
        DoWireGarbage(index, op);
        break;
      case StormOpKind::kWireHealth:
        DoWireHealth(index, op);
        break;
    }
  }

  // --- queries -------------------------------------------------------------

  /// The op's query series: deterministic in (seed, op index), drawn
  /// from the collection's distribution but a disjoint seed stream.
  std::vector<Value> MakeQueryValues(size_t index, size_t length) const {
    std::vector<Value> values(length);
    GenerateSeriesInto(config_.kind, MixSeed(config_.seed, kQuerySeedTag),
                       index, MutableSeriesView(values.data(), length));
    return values;
  }

  /// Builds the (possibly deliberately malformed) request + values.
  void ShapeQuery(size_t index, const StormOp& op, SearchRequest* request,
                  std::vector<Value>* values) const {
    size_t length = config_.series_length;
    switch (op.kind) {
      case StormOpKind::kQueryNn:
        break;
      case StormOpKind::kQueryKnn:
        request->k = op.k;
        break;
      case StormOpKind::kQueryDtw:
        request->dtw = true;
        request->dtw_band = op.band;
        break;
      case StormOpKind::kQueryApprox:
        request->approximate = true;
        break;
      case StormOpKind::kBadQuery:
        if (op.variant == 0) {
          request->k = 0;
        } else if (op.variant == 1) {
          length += 3;  // wrong length: kInvalidArgument
        } else {
          request->dtw = true;
          request->k = op.k;  // DTW k>1: kNotSupported everywhere
        }
        break;
      default:
        break;
    }
    *values = MakeQueryValues(index, length);
  }

  /// The oracle's prediction of the typed admission outcome, from the
  /// very same rule Engine::Search applies.
  Status PredictAdmission(SeriesView query,
                          const SearchRequest& request) const {
    return CheckRequestAgainstCapabilities(
        backend_->capabilities(), backend_->series_length(),
        backend_->algorithm_name(), query, request);
  }

  void RunQuery(size_t index, const StormOp& op) {
    SearchRequest request;
    std::vector<Value> values;
    ShapeQuery(index, op, &request, &values);

    if (config_.wire) {
      RunQueryWire(index, op, request, values);
      return;
    }

    const SeriesView query(values.data(), values.size());
    const Status expected = PredictAdmission(query, request);
    const size_t n_lo = model_.published_floor();

    SubmitOptions submit;
    if (op.timeout_us != 0) {
      submit.timeout = std::chrono::microseconds(op.timeout_us);
    }
    auto pending = backend_->TrySubmit(query, request, submit);
    if (!pending.ok()) {
      if (pending.status().code() == StatusCode::kOverloaded) {
        ++stats_.overloaded;
      } else {
        Fail(index, op,
             "TrySubmit failed: " + pending.status().ToString());
      }
      return;
    }
    auto response = pending->get();

    if (!expected.ok()) {
      if (response.ok()) {
        Fail(index, op,
             "expected rejection (" + expected.ToString() +
                 ") but the query was answered");
      } else if (response.status().code() != expected.code()) {
        Fail(index, op,
             "rejection mismatch: predicted " + expected.ToString() +
                 ", got " + response.status().ToString());
      } else {
        ++stats_.rejections_predicted;
      }
      return;
    }
    if (!response.ok()) {
      const StatusCode code = response.status().code();
      if (code == StatusCode::kDeadlineExceeded && op.timeout_us != 0) {
        ++stats_.deadlines_expired;
      } else if (code == StatusCode::kOverloaded) {
        ++stats_.overloaded;
      } else {
        Fail(index, op,
             "query failed: " + response.status().ToString());
      }
      return;
    }
    CheckAnswer(index, op, request, query, n_lo, response->neighbors);
  }

  void RunQueryWire(size_t index, const StormOp& op,
                    const SearchRequest& intent,
                    const std::vector<Value>& values) {
    QueryFrame frame;
    frame.request_id = index;
    frame.k = static_cast<uint32_t>(intent.k);
    frame.dtw_band = static_cast<uint32_t>(intent.dtw_band);
    frame.approximate = intent.approximate;
    frame.timeout_us = op.timeout_us;
    frame.values = values;
    FrameType type = FrameType::kQuery;
    if (intent.dtw) {
      type = FrameType::kDtw;
    } else if (intent.k > 1 || intent.k == 0) {
      type = FrameType::kKnn;
    }

    // The request the *server* will build from this frame — it takes k
    // from kKnn frames only (kQuery/kDtw force k = 1), so the oracle
    // must predict from the server's mapping, not the raw intent.
    SearchRequest request;
    request.k = type == FrameType::kKnn ? frame.k : 1;
    request.approximate = frame.approximate;
    request.dtw = type == FrameType::kDtw;
    request.dtw_band = frame.dtw_band;
    const Status expected = PredictAdmission(
        SeriesView(values.data(), values.size()), request);
    const size_t n_lo = model_.published_floor();

    WireClient client;
    Status io = client.Connect(port_.load(std::memory_order_acquire));
    if (io.ok()) io = client.SendFrame(EncodeQueryFrame(type, frame));
    Result<WireFrame> reply = io.ok() ? client.ReadFrame()
                                      : Result<WireFrame>(io);
    if (!reply.ok()) {
      Fail(index, op, "wire I/O failed: " + reply.status().ToString());
      return;
    }

    if (reply->header.type == FrameType::kError) {
      auto error = DecodeErrorFrame(reply->body);
      if (!error.ok()) {
        Fail(index, op,
             "undecodable error frame: " + error.status().ToString());
        return;
      }
      if (error->request_id != index) {
        Fail(index, op, "error frame echoed wrong request id");
        return;
      }
      if (!expected.ok()) {
        const WireError want = WireErrorFromStatus(expected);
        if (error->code != want) {
          Fail(index, op,
               std::string("wire rejection mismatch: predicted ") +
                   WireErrorName(want) + ", got " +
                   WireErrorName(error->code) + " (" + error->message +
                   ")");
        } else {
          ++stats_.rejections_predicted;
        }
        return;
      }
      if (error->code == WireError::kDeadlineExceeded &&
          op.timeout_us != 0) {
        ++stats_.deadlines_expired;
      } else if (error->code == WireError::kOverloaded) {
        ++stats_.overloaded;
      } else {
        Fail(index, op,
             std::string("unexpected wire error ") +
                 WireErrorName(error->code) + ": " + error->message);
      }
      return;
    }

    if (reply->header.type != FrameType::kResult) {
      Fail(index, op, "unexpected response frame type");
      return;
    }
    if (!expected.ok()) {
      Fail(index, op,
           "expected rejection (" + expected.ToString() +
               ") but got a result frame");
      return;
    }
    auto result = DecodeResultFrame(reply->body);
    if (!result.ok()) {
      Fail(index, op,
           "undecodable result frame: " + result.status().ToString());
      return;
    }
    if (result->request_id != index) {
      Fail(index, op, "result frame echoed wrong request id");
      return;
    }
    CheckAnswer(index, op, request,
                SeriesView(values.data(), values.size()), n_lo,
                result->neighbors);
  }

  /// Exact-oracle check: the answer must byte-match the brute-force
  /// oracle at some batch-boundary prefix in the query's execution
  /// window. ShardedEngine publishes its shards independently, so a
  /// query overlapping an in-flight sharded append may see a non-prefix
  /// subset; only then do we fall back to well-formedness bounds.
  void CheckAnswer(size_t index, const StormOp& op,
                   const SearchRequest& request, SeriesView query,
                   size_t n_lo, const std::vector<Neighbor>& got) {
    const size_t n_hi = model_.count();
    std::vector<size_t> candidates = model_.CandidateCounts(n_lo, n_hi);
    if (candidates.empty()) candidates.push_back(n_lo);

    if (request.approximate) {
      CheckApproximate(index, op, query, n_hi, got);
      return;
    }

    for (const size_t c : candidates) {
      std::vector<Neighbor> want;
      if (request.dtw) {
        want = {model_.ExactDtwNn(query, request.dtw_band, c)};
      } else if (request.k > 1) {
        want = model_.ExactKnn(query, request.k, c);
      } else {
        want = {model_.ExactNn(query, c)};
      }
      if (got == want) {
        ++stats_.queries_checked;
        return;
      }
    }

    if (config_.shards > 1 && candidates.size() > 1) {
      CheckRelaxedSharded(index, op, request, query, candidates, got);
      return;
    }
    std::ostringstream what;
    what << "answer matches no candidate prefix in [" << n_lo << ", "
         << n_hi << "]: got " << DescribeNeighbors(got)
         << ", oracle at " << candidates.back() << " is "
         << DescribeNeighbors([&] {
              if (request.dtw) {
                return std::vector<Neighbor>{model_.ExactDtwNn(
                    query, request.dtw_band, candidates.back())};
              }
              if (request.k > 1) {
                return model_.ExactKnn(query, request.k,
                                       candidates.back());
              }
              return std::vector<Neighbor>{
                  model_.ExactNn(query, candidates.back())};
            }());
    Fail(index, op, what.str());
  }

  /// A sharded query racing an append can see any subset S with
  /// prefix(n_lo) ⊆ S ⊆ prefix(n_hi): per-rank distances are bounded by
  /// the oracles at the window edges, every id must be live, and every
  /// distance must recompute exactly.
  void CheckRelaxedSharded(size_t index, const StormOp& op,
                           const SearchRequest& request, SeriesView query,
                           const std::vector<size_t>& candidates,
                           const std::vector<Neighbor>& got) {
    const size_t n_lo = candidates.front();
    const size_t n_hi = candidates.back();
    const size_t want_lo =
        request.k > 1 ? std::min(request.k, n_lo) : size_t{1};
    const size_t want_hi =
        request.k > 1 ? std::min(request.k, n_hi) : size_t{1};
    if (got.size() < want_lo || got.size() > want_hi) {
      Fail(index, op,
           "relaxed check: answer size " + std::to_string(got.size()) +
               " outside [" + std::to_string(want_lo) + ", " +
               std::to_string(want_hi) + "]");
      return;
    }
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].id >= n_hi) {
        Fail(index, op,
             "relaxed check: id " + std::to_string(got[i].id) +
                 " beyond the window's upper count " +
                 std::to_string(n_hi));
        return;
      }
      if (i > 0 && !(got[i - 1].distance_sq < got[i].distance_sq ||
                     (got[i - 1].distance_sq == got[i].distance_sq &&
                      got[i - 1].id < got[i].id))) {
        Fail(index, op, "relaxed check: answer not sorted by "
                        "(distance, id)");
        return;
      }
      if (!request.dtw &&
          model_.DistanceTo(query, got[i].id) != got[i].distance_sq) {
        Fail(index, op,
             "relaxed check: distance for id " +
                 std::to_string(got[i].id) + " does not recompute");
        return;
      }
    }
    // Rank-wise bounds: more data can only improve each rank.
    std::vector<Neighbor> lo_oracle, hi_oracle;
    if (request.dtw) {
      lo_oracle = {model_.ExactDtwNn(query, request.dtw_band, n_lo)};
      hi_oracle = {model_.ExactDtwNn(query, request.dtw_band, n_hi)};
    } else if (request.k > 1) {
      lo_oracle = model_.ExactKnn(query, request.k, n_lo);
      hi_oracle = model_.ExactKnn(query, request.k, n_hi);
    } else {
      lo_oracle = {model_.ExactNn(query, n_lo)};
      hi_oracle = {model_.ExactNn(query, n_hi)};
    }
    for (size_t i = 0; i < got.size(); ++i) {
      if (i < lo_oracle.size() &&
          got[i].distance_sq > lo_oracle[i].distance_sq) {
        Fail(index, op,
             "relaxed check: rank " + std::to_string(i) +
                 " worse than the window-floor oracle");
        return;
      }
      if (i < hi_oracle.size() &&
          got[i].distance_sq < hi_oracle[i].distance_sq) {
        Fail(index, op,
             "relaxed check: rank " + std::to_string(i) +
                 " better than the full-window oracle");
        return;
      }
    }
    ++stats_.relaxed_checks;
  }

  /// An approximate probe must return one live id whose distance
  /// recomputes exactly — the leaf it probed is load-dependent, so the
  /// id itself is not pinned by the oracle.
  void CheckApproximate(size_t index, const StormOp& op, SeriesView query,
                        size_t n_hi, const std::vector<Neighbor>& got) {
    if (got.size() != 1) {
      Fail(index, op,
           "approximate probe returned " + std::to_string(got.size()) +
               " neighbors, want 1");
      return;
    }
    if (got[0].id >= n_hi) {
      Fail(index, op,
           "approximate probe returned id " + std::to_string(got[0].id) +
               " beyond the collection (" + std::to_string(n_hi) + ")");
      return;
    }
    if (model_.DistanceTo(query, got[0].id) != got[0].distance_sq) {
      Fail(index, op, "approximate distance does not recompute");
      return;
    }
    ++stats_.queries_checked;
  }

  // --- mutations (driver thread) -------------------------------------------

  void DoAppend(size_t index, const StormOp& op) {
    const std::vector<Value> values = model_.AppendBatch(op.append_count);
    if (config_.wire) {
      AppendFrame frame;
      frame.request_id = index;
      frame.count = op.append_count;
      frame.series_len = static_cast<uint32_t>(config_.series_length);
      frame.values = values;
      WireClient client;
      Status io = client.Connect(port_.load(std::memory_order_acquire));
      if (io.ok()) io = client.SendFrame(EncodeAppendFrame(frame));
      Result<WireFrame> reply = io.ok() ? client.ReadFrame()
                                        : Result<WireFrame>(io);
      if (!reply.ok()) {
        Fail(index, op,
             "wire append I/O failed: " + reply.status().ToString());
        return;
      }
      if (reply->header.type != FrameType::kAppendOk) {
        Fail(index, op, "append answered a non-AppendOk frame");
        return;
      }
      auto ok = DecodeAppendOkFrame(reply->body);
      if (!ok.ok() || ok->request_id != index) {
        Fail(index, op, "malformed AppendOk frame");
        return;
      }
      if (ok->total_series != model_.count()) {
        Fail(index, op,
             "append total " + std::to_string(ok->total_series) +
                 " != model count " + std::to_string(model_.count()));
        return;
      }
    } else {
      auto report = backend_->Append(values.data(), op.append_count);
      if (!report.ok()) {
        Fail(index, op,
             "append failed: " + report.status().ToString());
        return;
      }
      if (report->total_series != model_.count()) {
        Fail(index, op,
             "append total " + std::to_string(report->total_series) +
                 " != model count " + std::to_string(model_.count()));
        return;
      }
    }
    model_.MarkPublished(model_.count());
    ++stats_.appends;
  }

  void DoSave(size_t index, const StormOp& op) {
    const Status s = backend_->Save(SnapshotPath(op.variant));
    if (!s.ok()) {
      Fail(index, op, "save failed: " + s.ToString());
      return;
    }
    ++stats_.saves;
  }

  void DoCompact(size_t index, const StormOp& op) {
    const Status s = backend_->Compact(
        tmp_.Path("compact" + std::to_string(op.variant)));
    if (!s.ok()) {
      Fail(index, op, "compact failed: " + s.ToString());
      return;
    }
    ++stats_.compacts;
  }

  std::string SnapshotPath(uint8_t variant) const {
    return tmp_.Path("snap" + std::to_string(variant));
  }

  // --- backend swaps (driver thread, quiesced) -----------------------------

  void DoReopen(size_t index, const StormOp& op) {
    pool_->Drain();
    server_.reset();

    const std::string snap =
        tmp_.Path("reopen" + std::to_string(reopen_counter_++));
    Status s = backend_->Save(snap);
    if (s.ok()) {
      if (config_.shards > 1) {
        sharded_.reset();
        backend_ = nullptr;
        auto reopened = ShardedEngine::Open(snap);
        if (reopened.ok()) {
          sharded_ = std::move(*reopened);
          backend_ = sharded_.get();
        } else {
          s = reopened.status();
        }
      } else {
        std::string data = data_file_;
        if (residency_ == SourceResidency::kOwnedMemory) {
          // No backing file yet: materialize the model collection (the
          // quiesced backend holds exactly the same series).
          data = tmp_.Path("reopen_data" +
                           std::to_string(reopen_counter_) + ".bin");
          s = WriteDataset(model_.CopyData(), data);
        }
        if (s.ok()) {
          engine_.reset();
          backend_ = nullptr;
          auto reopened = Engine::Open(snap, data);
          if (reopened.ok()) {
            engine_ = std::move(*reopened);
            backend_ = engine_.get();
            data_file_ = data;
            residency_ = SourceResidency::kMmap;
          } else {
            s = reopened.status();
          }
        }
      }
    }

    if (!s.ok()) {
      Fail(index, op, "reopen failed: " + s.ToString());
      if (backend_ == nullptr) RecoverByRebuild(index, op);
    } else {
      ++stats_.reopens;
    }
    if (backend_ != nullptr && config_.wire) {
      const Status up = StartServer();
      if (!up.ok()) {
        Fail(index, op, "server restart failed: " + up.ToString());
        backend_ = nullptr;  // wire plans cannot continue serverless
      }
    }
  }

  void DoRebuild(size_t index, const StormOp& op) {
    pool_->Drain();
    server_.reset();
    if (!RecoverByRebuild(index, op)) return;
    ++stats_.rebuilds;
    if (config_.wire) {
      const Status up = StartServer();
      if (!up.ok()) {
        Fail(index, op, "server restart failed: " + up.ToString());
        backend_ = nullptr;
      }
    }
  }

  /// Fresh in-memory Build from the model collection. Returns false
  /// (and clears backend_) when even that fails.
  bool RecoverByRebuild(size_t index, const StormOp& op) {
    Dataset copy = model_.CopyData();
    if (config_.shards > 1) {
      sharded_.reset();
      engine_.reset();
      backend_ = nullptr;
      auto built =
          ShardedEngine::Build(std::move(copy), config_.shards, eopts_);
      if (!built.ok()) {
        Fail(index, op, "rebuild failed: " + built.status().ToString());
        return false;
      }
      sharded_ = std::move(*built);
      backend_ = sharded_.get();
      return true;
    }
    sharded_.reset();
    engine_.reset();
    backend_ = nullptr;
    auto built =
        Engine::Build(SourceSpec::InMemory(std::move(copy)), eopts_);
    if (!built.ok()) {
      Fail(index, op, "rebuild failed: " + built.status().ToString());
      return false;
    }
    engine_ = std::move(*built);
    backend_ = engine_.get();
    residency_ = SourceResidency::kOwnedMemory;
    return true;
  }

  /// A Build over a tripping source must fail typed and leave the live
  /// backend serving — exercised concurrently with in-flight queries.
  void DoRebuildFail(size_t index, const StormOp& op) {
    testsupport::FailingSourceOptions fopts;
    fopts.fail_after_id = 16;
    auto failing = std::make_unique<testsupport::FailingSource>(
        config_.initial_series, config_.series_length, fopts);
    EngineOptions fail_opts = eopts_;
    fail_opts.leaf_storage_path = tmp_.Path("failbuild.leaves");
    auto built = Engine::Build(SourceSpec::Custom(std::move(failing)),
                               fail_opts);
    if (built.ok()) {
      Fail(index, op,
           "build over a tripping source unexpectedly succeeded");
      return;
    }
    const StatusCode code = built.status().code();
    if (code != StatusCode::kIoError && code != StatusCode::kNotSupported) {
      Fail(index, op,
           "injected build failure surfaced untyped: " +
               built.status().ToString());
      return;
    }
    if (backend_->series_count() != model_.count()) {
      Fail(index, op, "live backend disturbed by the failed build");
      return;
    }
    ++stats_.failed_rebuilds;
  }

  // --- wire chaos (driver thread) ------------------------------------------

  void DoWireGarbage(size_t index, const StormOp& op) {
    WireClient client;
    if (!client.Connect(port_.load(std::memory_order_acquire)).ok()) {
      Fail(index, op, "chaos connection refused");
      return;
    }
    switch (op.variant) {
      case 0: {  // bad magic: one kBadFrame error, then close
        const uint8_t junk[kFrameHeaderSize] = {'X', 'X', 'X', 'X'};
        ExpectErrorThenEof(index, op, client,
                           client.SendBytes(junk, sizeof(junk)),
                           WireError::kBadFrame);
        break;
      }
      case 1: {  // future protocol version
        uint8_t hdr[kFrameHeaderSize];
        EncodeFrameHeader(FrameType::kHealth, 8, hdr);
        hdr[4] = kProtocolVersion + 1;
        ExpectErrorThenEof(index, op, client,
                           client.SendBytes(hdr, sizeof(hdr)),
                           WireError::kBadVersion);
        break;
      }
      case 2: {  // oversized body announcement
        uint8_t hdr[kFrameHeaderSize];
        EncodeFrameHeader(FrameType::kQuery, 8, hdr);
        const uint32_t huge = kMaxBodyLen + 1;
        std::memcpy(hdr + 8, &huge, sizeof(huge));
        ExpectErrorThenEof(index, op, client,
                           client.SendBytes(hdr, sizeof(hdr)),
                           WireError::kFrameTooLarge);
        break;
      }
      case 3: {  // body shorter than its type's layout: typed error,
                 // request id echoed, connection survives
        QueryFrame q;
        q.request_id = index;
        q.values.assign(config_.series_length, 0.0f);
        auto frame = EncodeQueryFrame(FrameType::kQuery, q);
        frame.resize(frame.size() - 40);
        const uint32_t short_len =
            static_cast<uint32_t>(frame.size() - kFrameHeaderSize);
        std::memcpy(frame.data() + 8, &short_len, sizeof(short_len));
        if (!ExpectError(index, op, client, client.SendFrame(frame),
                         WireError::kBadFrame, index)) {
          break;
        }
        ExpectHealthOk(index, op, client, index + 1);
        break;
      }
      case 4: {  // unknown request type: typed error, connection survives
        auto frame = EncodePlainRequest(FrameType::kHealth, index);
        frame[5] = 0x55;
        if (!ExpectError(index, op, client, client.SendFrame(frame),
                         WireError::kBadFrame, std::nullopt)) {
          break;
        }
        ExpectHealthOk(index, op, client, index + 1);
        break;
      }
      default: {  // pipelined burst: responses must come back in order
        constexpr size_t kBurst = 4;
        Status io = Status::OK();
        for (size_t i = 0; i < kBurst && io.ok(); ++i) {
          io = client.SendFrame(
              EncodePlainRequest(FrameType::kHealth, index * 100 + i));
        }
        if (!io.ok()) {
          Fail(index, op, "pipelined send failed: " + io.ToString());
          break;
        }
        bool all_ok = true;
        for (size_t i = 0; i < kBurst && all_ok; ++i) {
          all_ok = ExpectHealthOk(index, op, client, index * 100 + i);
        }
        break;
      }
    }
    ++stats_.wire_garbage;
  }

  /// Reads one frame and requires a kError with `want` (optionally with
  /// an exact request-id echo). Returns false after recording a Fail.
  bool ExpectError(size_t index, const StormOp& op, WireClient& client,
                   Status sent, WireError want,
                   std::optional<uint64_t> echo_id) {
    if (!sent.ok()) {
      Fail(index, op, "chaos send failed: " + sent.ToString());
      return false;
    }
    auto reply = client.ReadFrame();
    if (!reply.ok()) {
      Fail(index, op, "chaos read failed: " + reply.status().ToString());
      return false;
    }
    if (reply->header.type != FrameType::kError) {
      Fail(index, op, "garbage answered a non-error frame");
      return false;
    }
    auto error = DecodeErrorFrame(reply->body);
    if (!error.ok()) {
      Fail(index, op, "undecodable chaos error frame");
      return false;
    }
    if (error->code != want) {
      Fail(index, op,
           std::string("garbage error code mismatch: want ") +
               WireErrorName(want) + ", got " +
               WireErrorName(error->code));
      return false;
    }
    if (echo_id.has_value() && error->request_id != *echo_id) {
      Fail(index, op, "garbage error frame echoed wrong request id");
      return false;
    }
    return true;
  }

  void ExpectErrorThenEof(size_t index, const StormOp& op,
                          WireClient& client, Status sent,
                          WireError want) {
    if (!ExpectError(index, op, client, sent, want, std::nullopt)) return;
    if (!client.ReadEof()) {
      Fail(index, op,
           "connection survived header-level garbage (must close)");
    }
  }

  bool ExpectHealthOk(size_t index, const StormOp& op, WireClient& client,
                      uint64_t request_id) {
    Status io = client.SendFrame(
        EncodePlainRequest(FrameType::kHealth, request_id));
    Result<WireFrame> reply = io.ok() ? client.ReadFrame()
                                      : Result<WireFrame>(io);
    if (!reply.ok() || reply->header.type != FrameType::kHealthOk) {
      Fail(index, op, "health probe after recoverable garbage failed");
      return false;
    }
    auto health = DecodeHealthOkFrame(reply->body);
    if (!health.ok() || health->request_id != request_id) {
      Fail(index, op, "malformed HealthOk frame");
      return false;
    }
    return true;
  }

  void DoWireHealth(size_t index, const StormOp& op) {
    const size_t floor_before = model_.published_floor();
    WireClient client;
    Status io = client.Connect(port_.load(std::memory_order_acquire));
    if (io.ok()) {
      io = client.SendFrame(EncodePlainRequest(FrameType::kHealth, index));
    }
    Result<WireFrame> reply = io.ok() ? client.ReadFrame()
                                      : Result<WireFrame>(io);
    if (!reply.ok() || reply->header.type != FrameType::kHealthOk) {
      Fail(index, op, "health request failed");
      return;
    }
    auto health = DecodeHealthOkFrame(reply->body);
    if (!health.ok()) {
      Fail(index, op, "malformed HealthOk frame");
      return;
    }
    const size_t count_after = model_.count();
    if (health->request_id != index ||
        health->series_length != config_.series_length ||
        health->series_count < floor_before ||
        health->series_count > count_after ||
        health->algorithm != AlgorithmName(config_.algorithm)) {
      Fail(index, op,
           "health shape mismatch: count " +
               std::to_string(health->series_count) + " not in [" +
               std::to_string(floor_before) + ", " +
               std::to_string(count_after) + "], algorithm '" +
               health->algorithm + "'");
      return;
    }
    ++stats_.wire_health;
  }

  // --- state ---------------------------------------------------------------

  const StormPlan& plan_;
  const StormConfig& config_;
  testsupport::ScopedTempDir tmp_;
  WorkloadModel model_;

  EngineOptions eopts_;
  SourceResidency residency_ = SourceResidency::kOwnedMemory;
  std::string data_file_;
  size_t reopen_counter_ = 0;

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<ShardedEngine> sharded_;
  SearchBackend* backend_ = nullptr;
  /// Declared after the engines so it is destroyed first (it serves
  /// them) on every exit path.
  std::unique_ptr<Server> server_;
  std::atomic<uint16_t> port_{0};

  std::unique_ptr<ActorPool> pool_;

  Mutex failures_mu_{"storm::StormRunner::failures_mu_", LockRank::kLeaf};
  std::vector<StormFailure> failures_ PARISAX_GUARDED_BY(failures_mu_);
  size_t failure_count_ PARISAX_GUARDED_BY(failures_mu_) = 0;

  /// All counters are atomic: the first five are bumped from actor
  /// threads concurrently, the rest from the driver.
  struct Counters {
    std::atomic<size_t> queries_checked{0};
    std::atomic<size_t> rejections_predicted{0};
    std::atomic<size_t> deadlines_expired{0};
    std::atomic<size_t> overloaded{0};
    std::atomic<size_t> relaxed_checks{0};
    std::atomic<size_t> appends{0};
    std::atomic<size_t> saves{0};
    std::atomic<size_t> compacts{0};
    std::atomic<size_t> reopens{0};
    std::atomic<size_t> rebuilds{0};
    std::atomic<size_t> failed_rebuilds{0};
    std::atomic<size_t> wire_garbage{0};
    std::atomic<size_t> wire_health{0};
  };
  Counters stats_;
};

}  // namespace

Result<StormReport> RunStorm(const StormPlan& plan) {
  StormRunner runner(plan);
  return runner.Run();
}

std::string FormatReport(const StormPlan& plan, const StormReport& report) {
  const StormConfig& c = plan.config;
  std::ostringstream out;
  out << (report.passed ? "PASS" : "FAIL") << " seed=" << c.seed
      << " profile=" << c.profile << " backend="
      << AlgorithmName(c.algorithm) << " residency="
      << SourceResidencyName(c.residency) << " shards=" << c.shards
      << " wire=" << (c.wire ? "on" : "off") << " ops="
      << plan.ops.size() << " final_count=" << report.final_count << "\n";
  const StormStats& s = report.stats;
  out << "  checked=" << s.queries_checked << " rejected-as-predicted="
      << s.rejections_predicted << " deadline=" << s.deadlines_expired
      << " overloaded=" << s.overloaded << " relaxed="
      << s.relaxed_checks << " appends=" << s.appends << " saves="
      << s.saves << " compacts=" << s.compacts << " reopens="
      << s.reopens << " rebuilds=" << s.rebuilds << " failed-rebuilds="
      << s.failed_rebuilds << " garbage=" << s.wire_garbage
      << " health=" << s.wire_health << "\n";
  for (const StormFailure& f : report.failures) {
    out << "  " << f.description << "\n";
  }
  if (report.failure_count > report.failures.size()) {
    out << "  ... and "
        << (report.failure_count - report.failures.size())
        << " more failures\n";
  }
  return out.str();
}

}  // namespace storm
}  // namespace parisax
