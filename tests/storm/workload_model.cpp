#include "storm/workload_model.h"

#include <algorithm>
#include <cassert>

#include "dist/euclidean.h"
#include "index/raw_source.h"
#include "scan/ucr_scan.h"

namespace parisax {
namespace storm {
namespace {

/// An addressable view of the first `n` model series: exactly what the
/// BruteForce* oracles need, with zero data movement. Only valid while
/// the model lock is held (the base pointer moves on growth).
class PrefixSource : public RawSeriesSource {
 public:
  PrefixSource(const Value* base, size_t count, size_t length)
      : base_(base), count_(count), length_(length) {}

  size_t count() const override { return count_; }
  size_t length() const override { return length_; }

  Status GetSeries(SeriesId id, Value* out) const override {
    if (id >= count_) return Status::InvalidArgument("id out of range");
    const Value* src = base_ + static_cast<size_t>(id) * length_;
    std::copy(src, src + length_, out);
    return Status::OK();
  }
  SeriesView TryView(SeriesId id) const override {
    return SeriesView(base_ + static_cast<size_t>(id) * length_, length_);
  }
  const Value* ContiguousData() const override { return base_; }

 private:
  const Value* base_;
  const size_t count_;
  const size_t length_;
};

}  // namespace

WorkloadModel::WorkloadModel(DatasetKind kind, uint64_t data_seed,
                             size_t initial_count, size_t length)
    : kind_(kind),
      data_seed_(data_seed),
      length_(length),
      published_floor_(initial_count) {
  GeneratorOptions gen;
  gen.kind = kind;
  gen.count = initial_count;
  gen.length = length;
  gen.seed = data_seed;
  WriterLock lock(&mu_);
  data_ = GenerateDataset(gen);
  batch_counts_.push_back(initial_count);
}

size_t WorkloadModel::count() const {
  ReaderLock lock(&mu_);
  return data_.count();
}

std::vector<Value> WorkloadModel::AppendBatch(size_t count) {
  std::vector<Value> values(count * length_);
  {
    ReaderLock lock(&mu_);
    // Series `index` of the deterministic collection (kind, seed) is the
    // same whether generated here or by GenerateDataset: the storm-grown
    // collection IS the prefix of one fixed virtual collection.
    for (size_t i = 0; i < count; ++i) {
      GenerateSeriesInto(kind_, data_seed_, data_.count() + i,
                         MutableSeriesView(values.data() + i * length_,
                                           length_));
    }
  }
  WriterLock lock(&mu_);
  data_.Append(values.data(), count);
  batch_counts_.push_back(data_.count());
  return values;
}

void WorkloadModel::MarkPublished(size_t count) {
  assert(count >= published_floor_.load());
  published_floor_.store(count, std::memory_order_release);
}

std::vector<size_t> WorkloadModel::CandidateCounts(size_t lo,
                                                   size_t hi) const {
  ReaderLock lock(&mu_);
  std::vector<size_t> counts;
  for (const size_t c : batch_counts_) {
    if (c >= lo && c <= hi) counts.push_back(c);
  }
  return counts;
}

Dataset WorkloadModel::CopyData() const {
  ReaderLock lock(&mu_);
  Dataset copy(data_.count(), length_);
  std::copy(data_.raw(), data_.raw() + data_.TotalValues(),
            copy.mutable_raw());
  return copy;
}

Neighbor WorkloadModel::ExactNn(SeriesView query, size_t n) const {
  ReaderLock lock(&mu_);
  assert(n <= data_.count());
  return BruteForceNn(PrefixSource(data_.raw(), n, length_), query);
}

std::vector<Neighbor> WorkloadModel::ExactKnn(SeriesView query, size_t k,
                                              size_t n) const {
  ReaderLock lock(&mu_);
  assert(n <= data_.count());
  return BruteForceKnn(PrefixSource(data_.raw(), n, length_), query, k);
}

Neighbor WorkloadModel::ExactDtwNn(SeriesView query, size_t band,
                                   size_t n) const {
  ReaderLock lock(&mu_);
  assert(n <= data_.count());
  return BruteForceDtwNn(PrefixSource(data_.raw(), n, length_), query,
                         band);
}

float WorkloadModel::DistanceTo(SeriesView query, SeriesId id) const {
  ReaderLock lock(&mu_);
  assert(id < data_.count());
  return SquaredEuclidean(query, data_.series(id));
}

}  // namespace storm
}  // namespace parisax
