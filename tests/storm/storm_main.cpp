// storm_test: the randomized workload-storm harness CLI.
//
//   storm_test --seed=7 --profile=chaos          one storm, one seed
//   storm_test --profile=query-heavy --seeds=1..20   a CI seed sweep
//   storm_test --seed=7 --profile=chaos --dump-plan  print, don't run
//   storm_test --seed=7 --profile=chaos --shrink     minimize a failure
//
// Every failure prints a one-line repro command. See docs/testing.md.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "storm/storm_plan.h"
#include "storm/storm_runner.h"

namespace parisax {
namespace storm {
namespace {

struct CliOptions {
  uint64_t seed_lo = 1;
  uint64_t seed_hi = 1;
  std::string profile = "query-heavy";
  StormOverrides overrides;
  bool dump_plan = false;
  bool shrink = false;
  bool list_profiles = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: storm_test [--seed=N | --seeds=LO..HI] --profile=NAME\n"
      "                  [--backend=messi|paris|paris+]\n"
      "                  [--residency=in-memory|mmap|file] [--shards=1|4]\n"
      "                  [--wire=on|off] [--series=N] [--length=N]\n"
      "                  [--ops=N] [--actors=N]\n"
      "                  [--dump-plan] [--shrink] [--list-profiles]\n");
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    uint64_t n = 0;
    if (key == "--seed" && ParseU64(value, &n)) {
      cli->seed_lo = cli->seed_hi = n;
    } else if (key == "--seeds") {
      const auto dots = value.find("..");
      uint64_t lo = 0, hi = 0;
      if (dots == std::string::npos ||
          !ParseU64(value.substr(0, dots), &lo) ||
          !ParseU64(value.substr(dots + 2), &hi) || hi < lo) {
        std::fprintf(stderr, "bad --seeds range: %s\n", value.c_str());
        return false;
      }
      cli->seed_lo = lo;
      cli->seed_hi = hi;
    } else if (key == "--profile") {
      cli->profile = value;
    } else if (key == "--backend") {
      cli->overrides.backend = value;
    } else if (key == "--residency") {
      cli->overrides.residency = value;
    } else if (key == "--shards" && ParseU64(value, &n)) {
      cli->overrides.shards = n;
    } else if (key == "--wire") {
      cli->overrides.wire = value != "off" && value != "0";
    } else if (key == "--series" && ParseU64(value, &n)) {
      cli->overrides.initial_series = n;
    } else if (key == "--length" && ParseU64(value, &n)) {
      cli->overrides.series_length = n;
    } else if (key == "--ops" && ParseU64(value, &n)) {
      cli->overrides.ops = n;
    } else if (key == "--actors" && ParseU64(value, &n)) {
      cli->overrides.actors = n;
    } else if (key == "--dump-plan") {
      cli->dump_plan = true;
    } else if (key == "--shrink") {
      cli->shrink = true;
    } else if (key == "--list-profiles") {
      cli->list_profiles = true;
    } else if (key == "--help" || key == "-h") {
      PrintUsage();
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage();
      return false;
    }
  }
  return true;
}

std::string ReproLine(uint64_t seed, const CliOptions& cli) {
  std::string line = "storm_test --seed=" + std::to_string(seed) +
                     " --profile=" + cli.profile;
  const StormOverrides& o = cli.overrides;
  if (o.backend) line += " --backend=" + *o.backend;
  if (o.residency) line += " --residency=" + *o.residency;
  if (o.shards) line += " --shards=" + std::to_string(*o.shards);
  if (o.wire) line += std::string(" --wire=") + (*o.wire ? "on" : "off");
  if (o.initial_series) {
    line += " --series=" + std::to_string(*o.initial_series);
  }
  if (o.series_length) {
    line += " --length=" + std::to_string(*o.series_length);
  }
  if (o.ops) line += " --ops=" + std::to_string(*o.ops);
  if (o.actors) line += " --actors=" + std::to_string(*o.actors);
  return line;
}

/// Bisects the smallest failing op-prefix of a failing plan. Concurrency
/// failures may not reproduce on every run, so this is best-effort: a
/// prefix that happens to pass sends the search upward.
size_t ShrinkFailingPrefix(const StormPlan& plan) {
  size_t lo = 1;
  size_t hi = plan.ops.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    StormPlan prefix = plan;
    prefix.ops.resize(mid);
    prefix.config.ops = mid;
    auto report = RunStorm(prefix);
    const bool failed = report.ok() && !report->passed;
    std::printf("  shrink: ops=%zu -> %s\n", mid,
                failed ? "fails" : "passes");
    if (failed) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

int Main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return 2;
  if (cli.list_profiles) {
    for (const auto& p : StormProfiles()) std::printf("%s\n", p.c_str());
    return 0;
  }

  int failed_seeds = 0;
  for (uint64_t seed = cli.seed_lo; seed <= cli.seed_hi; ++seed) {
    auto plan = MakeStormPlan(seed, cli.profile, cli.overrides);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan generation failed: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    if (cli.dump_plan) {
      std::fputs(DumpPlan(*plan).c_str(), stdout);
      continue;
    }
    auto report = RunStorm(*plan);
    if (!report.ok()) {
      std::fprintf(stderr, "harness setup failed: %s\n  repro: %s\n",
                   report.status().ToString().c_str(),
                   ReproLine(seed, cli).c_str());
      ++failed_seeds;
      continue;
    }
    std::fputs(FormatReport(*plan, *report).c_str(), stdout);
    if (!report->passed) {
      ++failed_seeds;
      std::printf("repro: %s\n", ReproLine(seed, cli).c_str());
      if (cli.shrink) {
        const size_t min_ops = ShrinkFailingPrefix(*plan);
        std::printf("smallest failing prefix: %zu ops\n  repro: %s "
                    "--ops=%zu\n",
                    min_ops, ReproLine(seed, cli).c_str(), min_ops);
      }
    }
  }
  if (failed_seeds > 0) {
    std::printf("%d failing seed(s)\n", failed_seeds);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace storm
}  // namespace parisax

int main(int argc, char** argv) {
  return parisax::storm::Main(argc, argv);
}
