// Executes a StormPlan against a live backend and checks every outcome
// against the WorkloadModel oracle.
//
// One driver thread walks the plan in order: query ops are dispatched
// to a pool of actor threads (so queries genuinely race the mutations),
// while appends, saves, compactions and wire chaos run inline on the
// driver; reopen/rebuild ops quiesce the actors, swap the backend, and
// resume. Every completed query must match the brute-force oracle at
// some batch-boundary prefix its execution window allows; every typed
// rejection must be exactly the Status CheckRequestAgainstCapabilities
// predicts from the live capabilities() value.
#ifndef PARISAX_TESTS_STORM_STORM_RUNNER_H_
#define PARISAX_TESTS_STORM_STORM_RUNNER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "storm/storm_plan.h"
#include "util/status.h"

namespace parisax {
namespace storm {

struct StormFailure {
  size_t op_index = 0;
  std::string description;
};

struct StormStats {
  size_t queries_checked = 0;      ///< completed queries matched exactly
  size_t rejections_predicted = 0; ///< typed rejections matching the oracle
  size_t deadlines_expired = 0;    ///< legal kDeadlineExceeded outcomes
  size_t overloaded = 0;           ///< legal kOverloaded admission rejections
  size_t relaxed_checks = 0;       ///< sharded mid-append window checks
  size_t appends = 0;
  size_t saves = 0;
  size_t compacts = 0;
  size_t reopens = 0;
  size_t rebuilds = 0;
  size_t failed_rebuilds = 0;      ///< injected build failures, as expected
  size_t wire_garbage = 0;
  size_t wire_health = 0;
};

struct StormReport {
  bool passed = false;
  /// First kMaxRecordedFailures mismatches, in discovery order.
  std::vector<StormFailure> failures;
  /// Total mismatches (may exceed failures.size()).
  size_t failure_count = 0;
  StormStats stats;
  size_t final_count = 0;  ///< model collection size after the run
};

/// Executes the plan. A non-OK Status means the harness itself could
/// not run (initial build or server start failed) — behavioral
/// mismatches never fail the call, they land in report.failures.
Result<StormReport> RunStorm(const StormPlan& plan);

/// Multi-line human summary: stats, then each recorded failure.
std::string FormatReport(const StormPlan& plan, const StormReport& report);

}  // namespace storm
}  // namespace parisax

#endif  // PARISAX_TESTS_STORM_STORM_RUNNER_H_
