// A minimal blocking protocol client for the storm harness.
//
// Same shape as net_test's TestClient, but gtest-free: every failure is
// a typed Status the runner can record (with the op index and seed)
// instead of an ASSERT that would abort the actor thread. One client
// per thread; instances are not thread-safe.
#ifndef PARISAX_TESTS_STORM_WIRE_CLIENT_H_
#define PARISAX_TESTS_STORM_WIRE_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "net/protocol.h"
#include "util/status.h"

namespace parisax {
namespace storm {

/// One decoded-header frame off the wire; the body is left raw for the
/// caller to route through the right Decode*Frame by header.type.
struct WireFrame {
  FrameHeader header;
  std::vector<uint8_t> body;
};

class WireClient {
 public:
  WireClient() = default;
  ~WireClient() { Close(); }
  WireClient(WireClient&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)) {}
  WireClient& operator=(WireClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  Status Connect(uint16_t port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return Status::IOError("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      Close();
      return Status::IOError("connect() to storm server failed");
    }
    return Status::OK();
  }

  bool connected() const { return fd_ >= 0; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  Status SendBytes(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    size_t sent = 0;
    while (sent < n) {
      const ssize_t r = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
      if (r <= 0) return Status::IOError("send() failed (peer closed?)");
      sent += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status SendFrame(const std::vector<uint8_t>& frame) {
    return SendBytes(frame.data(), frame.size());
  }

  /// Blocks for one full frame. EOF (clean or mid-frame) and malformed
  /// headers come back as typed errors; the caller decides whether EOF
  /// was expected (it is, after header-level wire garbage).
  Result<WireFrame> ReadFrame() {
    uint8_t hdr[kFrameHeaderSize];
    if (!ReadFull(hdr, kFrameHeaderSize)) {
      return Status::IOError("eof reading frame header");
    }
    auto decoded = DecodeFrameHeader(hdr);
    if (!decoded.ok()) return decoded.status();
    WireFrame frame;
    frame.header = *decoded;
    frame.body.resize(decoded->body_len);
    if (!frame.body.empty() &&
        !ReadFull(frame.body.data(), frame.body.size())) {
      return Status::IOError("eof reading frame body");
    }
    return frame;
  }

  /// True when the next read is a clean EOF (server closed after
  /// header-level garbage). Consumes at most one byte if the peer is,
  /// unexpectedly, still talking.
  bool ReadEof() {
    uint8_t b;
    return ::recv(fd_, &b, 1, 0) == 0;
  }

 private:
  bool ReadFull(uint8_t* buf, size_t n) {
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd_, buf + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  }

  int fd_ = -1;
};

}  // namespace storm
}  // namespace parisax

#endif  // PARISAX_TESTS_STORM_WIRE_CLIENT_H_
