// The storm harness's deterministic oracle: a brute-force model of the
// collection a SearchBackend is expected to serve.
//
// The model is plain data — a growing Dataset mirror plus the list of
// batch-boundary counts — and answers queries with the repository's
// own BruteForce* scans (src/scan/ucr_scan.h), the same kernels and
// (distance, id) tie-break every engine is exact against. Anything the
// backend returns that the model would not is a bug, byte for byte.
//
// Concurrency contract with the runner (one driver thread mutates, N
// actor threads check):
//   * AppendBatch is called by the driver BEFORE the backend sees the
//     batch, so the model always holds a superset of the backend's
//     data; MarkPublished is called AFTER the backend's Append returns.
//   * A query that ran while counts moved from `lo` (published_floor at
//     submit) to `hi` (model count at completion) must match the oracle
//     at exactly one batch boundary in [lo, hi] — engines publish whole
//     batches atomically, so every serving snapshot is one of those
//     prefixes. CandidateCounts(lo, hi) enumerates them.
#ifndef PARISAX_TESTS_STORM_WORKLOAD_MODEL_H_
#define PARISAX_TESTS_STORM_WORKLOAD_MODEL_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/types.h"
#include "io/dataset.h"
#include "io/generator.h"
#include "util/mutex.h"

namespace parisax {
namespace storm {

class WorkloadModel {
 public:
  /// Seeds the model with the first `initial_count` series of the
  /// deterministic collection (kind, data_seed) — the same series
  /// GenerateDataset would produce, so the backend under test can be
  /// built from an identical dataset independently.
  WorkloadModel(DatasetKind kind, uint64_t data_seed, size_t initial_count,
                size_t length);

  size_t length() const { return length_; }

  /// Model data count (>= the backend's count at all times).
  size_t count() const;

  /// Largest count known to be fully published to the backend.
  size_t published_floor() const {
    return published_floor_.load(std::memory_order_acquire);
  }

  /// Generates the next `count` series of the deterministic collection,
  /// appends them to the model, and returns their values (row-major)
  /// for the driver to feed the backend. Driver thread only.
  std::vector<Value> AppendBatch(size_t count);

  /// Records that the backend finished publishing prefix `count`.
  /// Driver thread only; counts must be monotonic.
  void MarkPublished(size_t count);

  /// The batch-boundary counts in [lo, hi]: every prefix a query
  /// overlapping that window could legally have been answered over.
  std::vector<size_t> CandidateCounts(size_t lo, size_t hi) const;

  /// A copy of the current model collection (for rebuilds and reopen
  /// data files). Driver thread only (quiesced — the copy must not race
  /// an AppendBatch, and only the driver appends).
  Dataset CopyData() const;

  // --- brute-force oracle over the first `n` series -------------------
  // Thread-safe against concurrent AppendBatch: Dataset::Append retires
  // (never frees) superseded buffers, but the raw() base pointer itself
  // moves, so readers take the model lock shared for the scan.

  Neighbor ExactNn(SeriesView query, size_t n) const;
  std::vector<Neighbor> ExactKnn(SeriesView query, size_t k, size_t n) const;
  Neighbor ExactDtwNn(SeriesView query, size_t band, size_t n) const;

  /// Squared ED between `query` and model series `id` (well-formedness
  /// checks for approximate answers).
  float DistanceTo(SeriesView query, SeriesId id) const;

 private:
  const DatasetKind kind_;
  const uint64_t data_seed_;
  const size_t length_;

  /// Guards data_ and batch_counts_. Highest rank (kLeaf): nothing is
  /// ever acquired under it — oracle scans touch no engine code.
  mutable SharedMutex mu_{"WorkloadModel::mu_", LockRank::kLeaf};
  Dataset data_ PARISAX_GUARDED_BY(mu_);
  /// Every count the collection has ever had at a batch boundary,
  /// ascending, starting with the initial count.
  std::vector<size_t> batch_counts_ PARISAX_GUARDED_BY(mu_);

  std::atomic<size_t> published_floor_;
};

}  // namespace storm
}  // namespace parisax

#endif  // PARISAX_TESTS_STORM_WORKLOAD_MODEL_H_
