#include "storm/storm_plan.h"

#include <sstream>

#include "util/rng.h"

namespace parisax {
namespace storm {
namespace {

/// Weighted op table: one row per drawable op kind.
struct OpWeight {
  StormOpKind kind;
  uint32_t weight;
};

/// The profile mixes. Weights are relative; rows with weight 0 are
/// never drawn. Wire-only ops get nonzero weight only when the config
/// runs through the server, and kRebuildFail only on unsharded engines
/// (ShardedEngine builds from a Dataset — there is no source seam to
/// inject a failure into).
std::vector<OpWeight> ProfileWeights(const std::string& profile,
                                     bool wire, bool sharded) {
  std::vector<OpWeight> w;
  if (profile == "query-heavy") {
    w = {{StormOpKind::kQueryNn, 30},    {StormOpKind::kQueryKnn, 20},
         {StormOpKind::kQueryDtw, 10},   {StormOpKind::kQueryApprox, 8},
         {StormOpKind::kBadQuery, 4},    {StormOpKind::kAppend, 14},
         {StormOpKind::kSave, 6},        {StormOpKind::kCompact, 3},
         {StormOpKind::kReopen, 2},      {StormOpKind::kRebuild, 2},
         {StormOpKind::kRebuildFail, 1}, {StormOpKind::kWireHealth, 2}};
  } else if (profile == "ingest-heavy") {
    w = {{StormOpKind::kQueryNn, 12},    {StormOpKind::kQueryKnn, 8},
         {StormOpKind::kQueryDtw, 4},    {StormOpKind::kQueryApprox, 4},
         {StormOpKind::kBadQuery, 2},    {StormOpKind::kAppend, 40},
         {StormOpKind::kSave, 12},       {StormOpKind::kCompact, 8},
         {StormOpKind::kReopen, 5},      {StormOpKind::kRebuild, 3},
         {StormOpKind::kRebuildFail, 2}, {StormOpKind::kWireHealth, 2}};
  } else {  // chaos
    w = {{StormOpKind::kQueryNn, 12},    {StormOpKind::kQueryKnn, 8},
         {StormOpKind::kQueryDtw, 6},    {StormOpKind::kQueryApprox, 6},
         {StormOpKind::kBadQuery, 10},   {StormOpKind::kAppend, 12},
         {StormOpKind::kSave, 8},        {StormOpKind::kCompact, 5},
         {StormOpKind::kReopen, 6},      {StormOpKind::kRebuild, 4},
         {StormOpKind::kRebuildFail, 5}, {StormOpKind::kWireGarbage, 12},
         {StormOpKind::kWireHealth, 6}};
  }
  for (auto& row : w) {
    if (!wire && (row.kind == StormOpKind::kWireGarbage ||
                  row.kind == StormOpKind::kWireHealth)) {
      row.weight = 0;
    }
    if (sharded && row.kind == StormOpKind::kRebuildFail) row.weight = 0;
  }
  return w;
}

StormOpKind DrawKind(Rng& rng, const std::vector<OpWeight>& weights) {
  uint64_t total = 0;
  for (const auto& row : weights) total += row.weight;
  uint64_t pick = rng.NextBelow(total);
  for (const auto& row : weights) {
    if (pick < row.weight) return row.kind;
    pick -= row.weight;
  }
  return StormOpKind::kQueryNn;
}

Result<Algorithm> ParseBackendOverride(const std::string& name) {
  auto algorithm = ParseAlgorithm(name);
  if (!algorithm.ok()) return algorithm.status();
  switch (*algorithm) {
    case Algorithm::kMessi:
    case Algorithm::kParis:
    case Algorithm::kParisPlus:
      return *algorithm;
    default:
      return Status::InvalidArgument(
          "storm backends are messi, paris and paris+ (got " + name + ")");
  }
}

Result<SourceResidency> ParseResidencyOverride(const std::string& name) {
  if (name == "in-memory") return SourceResidency::kOwnedMemory;
  if (name == "mmap") return SourceResidency::kMmap;
  if (name == "file") return SourceResidency::kStreamedFile;
  return Status::InvalidArgument(
      "storm residencies are in-memory, mmap and file (got " + name + ")");
}

}  // namespace

const char* StormOpKindName(StormOpKind kind) {
  switch (kind) {
    case StormOpKind::kQueryNn:
      return "query-nn";
    case StormOpKind::kQueryKnn:
      return "query-knn";
    case StormOpKind::kQueryDtw:
      return "query-dtw";
    case StormOpKind::kQueryApprox:
      return "query-approx";
    case StormOpKind::kBadQuery:
      return "bad-query";
    case StormOpKind::kAppend:
      return "append";
    case StormOpKind::kSave:
      return "save";
    case StormOpKind::kCompact:
      return "compact";
    case StormOpKind::kReopen:
      return "reopen";
    case StormOpKind::kRebuild:
      return "rebuild";
    case StormOpKind::kRebuildFail:
      return "rebuild-fail";
    case StormOpKind::kWireGarbage:
      return "wire-garbage";
    case StormOpKind::kWireHealth:
      return "wire-health";
  }
  return "unknown";
}

const std::vector<std::string>& StormProfiles() {
  static const std::vector<std::string> kProfiles = {
      "query-heavy", "ingest-heavy", "chaos"};
  return kProfiles;
}

Result<StormPlan> MakeStormPlan(uint64_t seed, const std::string& profile,
                                const StormOverrides& overrides) {
  bool known = false;
  for (const auto& p : StormProfiles()) known = known || p == profile;
  if (!known) {
    return Status::InvalidArgument("unknown storm profile: " + profile);
  }

  StormConfig config;
  config.seed = seed;
  config.profile = profile;
  config.data_seed = MixSeed(seed, 0x5707B);

  // One dedicated stream for the configuration draw, so changing op
  // weights never reshuffles which backend a seed lands on.
  Rng cfg_rng(MixSeed(seed, 0xC0F16));

  if (overrides.backend.has_value()) {
    PARISAX_ASSIGN_OR_RETURN(config.algorithm,
                             ParseBackendOverride(*overrides.backend));
  } else {
    const uint64_t pick = cfg_rng.NextBelow(100);
    config.algorithm = pick < 50   ? Algorithm::kMessi
                       : pick < 80 ? Algorithm::kParisPlus
                                   : Algorithm::kParis;
  }

  if (overrides.shards.has_value()) {
    if (*overrides.shards != 1 && *overrides.shards != 4) {
      return Status::InvalidArgument("storm shard counts are 1 and 4");
    }
    config.shards = *overrides.shards;
  } else {
    config.shards = cfg_rng.NextBelow(4) == 0 ? 4 : 1;
  }

  if (overrides.residency.has_value()) {
    PARISAX_ASSIGN_OR_RETURN(config.residency,
                             ParseResidencyOverride(*overrides.residency));
  } else if (config.shards > 1) {
    config.residency = SourceResidency::kOwnedMemory;
  } else {
    const uint64_t pick = cfg_rng.NextBelow(100);
    config.residency = pick < 45   ? SourceResidency::kOwnedMemory
                       : pick < 80 ? SourceResidency::kMmap
                                   : SourceResidency::kStreamedFile;
    if (!CanBuildOver(config.algorithm, config.residency)) {
      config.residency = SourceResidency::kMmap;
    }
  }

  // Contradiction checks mirror Engine/ShardedEngine::Build's own rules
  // so a bad CLI combination fails at plan time with a clear message.
  if (!CanBuildOver(config.algorithm, config.residency)) {
    return Status::InvalidArgument(
        std::string(AlgorithmName(config.algorithm)) +
        " cannot build over a streamed source (no streaming_build)");
  }
  if (config.shards > 1 &&
      config.residency != SourceResidency::kOwnedMemory) {
    return Status::InvalidArgument(
        "sharded storms build from an in-memory dataset; use "
        "--residency=in-memory (or --shards=1)");
  }

  if (overrides.wire.has_value()) {
    config.wire = *overrides.wire;
  } else {
    // Chaos is the wire-fuzzing profile; the others go through the
    // server some of the time so the frame codecs see every backend.
    config.wire = profile == "chaos" || cfg_rng.NextBelow(100) < 30;
  }
  if (profile == "chaos" && !config.wire) {
    return Status::InvalidArgument(
        "the chaos profile fuzzes the wire; --wire=off contradicts it");
  }

  {
    const uint64_t pick = cfg_rng.NextBelow(100);
    config.kind = pick < 60   ? DatasetKind::kRandomWalk
                  : pick < 80 ? DatasetKind::kSaldEeg
                              : DatasetKind::kSeismicBurst;
  }
  config.initial_series = 192 + cfg_rng.NextBelow(128);
  config.series_length = cfg_rng.NextBelow(2) == 0 ? 64 : 96;

  if (overrides.initial_series.has_value()) {
    config.initial_series = *overrides.initial_series;
  }
  if (overrides.series_length.has_value()) {
    config.series_length = *overrides.series_length;
  }
  if (overrides.ops.has_value()) config.ops = *overrides.ops;
  if (overrides.actors.has_value()) config.actors = *overrides.actors;
  if (config.initial_series < config.shards ||
      config.initial_series == 0 || config.series_length == 0 ||
      config.actors == 0) {
    return Status::InvalidArgument(
        "storm needs initial series >= shards (> 0), a positive series "
        "length and at least one actor");
  }

  // The op stream draws from its own generator, seeded independently of
  // the config stream.
  Rng rng(MixSeed(seed, 0x09501));
  const auto weights =
      ProfileWeights(profile, config.wire, config.shards > 1);

  StormPlan plan;
  plan.config = config;
  plan.ops.reserve(config.ops);
  for (size_t i = 0; i < config.ops; ++i) {
    StormOp op;
    op.kind = DrawKind(rng, weights);
    switch (op.kind) {
      case StormOpKind::kQueryNn:
      case StormOpKind::kQueryApprox:
        break;
      case StormOpKind::kQueryKnn:
        // Mostly small k; occasionally far beyond the collection, which
        // is legal for max_k-unbounded backends (answer truncates to
        // the collection size) and a typed rejection for max_k == 1.
        op.k = rng.NextBelow(10) == 0
                   ? 5000
                   : static_cast<uint32_t>(2 + rng.NextBelow(7));
        break;
      case StormOpKind::kQueryDtw:
        op.band = static_cast<uint32_t>(4 + rng.NextBelow(13));
        break;
      case StormOpKind::kBadQuery:
        op.variant = static_cast<uint8_t>(rng.NextBelow(3));
        if (op.variant == 2) op.k = 3;  // dtw k>1: unsupported everywhere
        break;
      case StormOpKind::kAppend:
        op.append_count = static_cast<uint32_t>(1 + rng.NextBelow(24));
        break;
      case StormOpKind::kSave:
      case StormOpKind::kCompact:
        op.variant = static_cast<uint8_t>(rng.NextBelow(3));  // path slot
        break;
      case StormOpKind::kReopen:
      case StormOpKind::kRebuild:
      case StormOpKind::kRebuildFail:
      case StormOpKind::kWireHealth:
        break;
      case StormOpKind::kWireGarbage:
        op.variant = static_cast<uint8_t>(rng.NextBelow(6));
        break;
    }
    // A sprinkle of per-query deadlines: tight enough to sometimes
    // expire mid-search, so kDeadlineExceeded stays a live outcome.
    if ((op.kind == StormOpKind::kQueryNn ||
         op.kind == StormOpKind::kQueryKnn ||
         op.kind == StormOpKind::kQueryDtw) &&
        rng.NextBelow(100) < 8) {
      op.timeout_us = 100 + rng.NextBelow(2900);
    }
    plan.ops.push_back(op);
  }
  return plan;
}

std::string DumpPlan(const StormPlan& plan) {
  const StormConfig& c = plan.config;
  std::ostringstream out;
  out << "storm plan seed=" << c.seed << " profile=" << c.profile
      << " backend=" << AlgorithmName(c.algorithm)
      << " residency=" << SourceResidencyName(c.residency)
      << " shards=" << c.shards << " wire=" << (c.wire ? "on" : "off")
      << " kind=" << DatasetKindName(c.kind)
      << " data_seed=" << c.data_seed << " series=" << c.initial_series
      << "x" << c.series_length << " ops=" << plan.ops.size()
      << " actors=" << c.actors << "\n";
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    const StormOp& op = plan.ops[i];
    out << "  [" << i << "] " << StormOpKindName(op.kind);
    if (op.kind == StormOpKind::kQueryKnn) out << " k=" << op.k;
    if (op.kind == StormOpKind::kQueryDtw) out << " band=" << op.band;
    if (op.kind == StormOpKind::kAppend) {
      out << " count=" << op.append_count;
    }
    if (op.kind == StormOpKind::kBadQuery ||
        op.kind == StormOpKind::kWireGarbage ||
        op.kind == StormOpKind::kSave ||
        op.kind == StormOpKind::kCompact) {
      out << " variant=" << static_cast<int>(op.variant);
    }
    if (op.timeout_us != 0) out << " timeout_us=" << op.timeout_us;
    out << "\n";
  }
  return out.str();
}

}  // namespace storm
}  // namespace parisax
