// The storm operation grammar and the seeded plan generator.
//
// One uint64 seed determines everything: the backend configuration
// (algorithm x residency x shards x wire), the collection, and the full
// operation sequence — so `storm_test --seed=S --profile=P` is a
// complete, bit-reproducible repro line. The generator draws only from
// util/rng.h (deterministic across platforms); query and append
// *values* are not stored in the plan but re-derived at execution time
// from (seed, op index) and the model count, which the in-order driver
// makes deterministic too.
#ifndef PARISAX_TESTS_STORM_STORM_PLAN_H_
#define PARISAX_TESTS_STORM_STORM_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "io/generator.h"
#include "util/status.h"

namespace parisax {
namespace storm {

enum class StormOpKind : uint8_t {
  kQueryNn,      ///< exact ED 1-NN, checked against the model
  kQueryKnn,     ///< exact ED k-NN (k may exceed max_k: typed rejection)
  kQueryDtw,     ///< DTW 1-NN (typed rejection where !caps.dtw)
  kQueryApprox,  ///< approximate probe: well-formedness checked
  kBadQuery,     ///< deliberately malformed (k=0 / wrong length / dtw k>1)
  kAppend,       ///< deterministic batch through the backend (or wire)
  kSave,         ///< snapshot (delta chains exercised via path rotation)
  kCompact,      ///< fold segments + full snapshot
  kReopen,       ///< save -> teardown -> Open from the snapshot
  kRebuild,      ///< teardown -> fresh Build from the model data
  kRebuildFail,  ///< Build over a FailingSource: must fail typed, old
                 ///< backend keeps serving
  kWireGarbage,  ///< malformed/oversized/pipelined frames (wire mode)
  kWireHealth,   ///< health/stats frame, shape cross-checked (wire mode)
};

const char* StormOpKindName(StormOpKind kind);

struct StormOp {
  StormOpKind kind = StormOpKind::kQueryNn;
  uint32_t k = 1;
  uint32_t band = 12;
  /// Series per kAppend batch.
  uint32_t append_count = 0;
  /// Per-query deadline (0: none). Small values race real work, so both
  /// completion and kDeadlineExceeded are legal outcomes.
  uint64_t timeout_us = 0;
  /// Flavor selector: kBadQuery 0..2 (k=0, wrong length, dtw k>1),
  /// kWireGarbage 0..5 (bad magic, bad version, oversized, short body,
  /// unknown type, pipelined burst), kSave/kCompact path rotation.
  uint8_t variant = 0;
};

struct StormConfig {
  uint64_t seed = 1;
  std::string profile = "query-heavy";
  Algorithm algorithm = Algorithm::kMessi;
  SourceResidency residency = SourceResidency::kOwnedMemory;
  size_t shards = 1;   // 1: plain Engine; >1: ShardedEngine
  bool wire = false;   // drive through a live TCP Server
  DatasetKind kind = DatasetKind::kRandomWalk;
  uint64_t data_seed = 0;  // derived from seed
  size_t initial_series = 240;
  size_t series_length = 64;
  size_t ops = 40;
  size_t actors = 3;
};

struct StormPlan {
  StormConfig config;
  std::vector<StormOp> ops;
};

/// Caller knobs; anything unset is drawn from the seed.
struct StormOverrides {
  std::optional<std::string> backend;    // "messi" | "paris" | "paris+"
  std::optional<std::string> residency;  // "in-memory" | "mmap" | "file"
  std::optional<size_t> shards;          // 1 | 4
  std::optional<bool> wire;
  std::optional<size_t> initial_series;
  std::optional<size_t> series_length;
  std::optional<size_t> ops;
  std::optional<size_t> actors;
};

const std::vector<std::string>& StormProfiles();

/// Generates the full plan for (seed, profile). Pure function of its
/// arguments: same inputs, same plan, bit for bit. Fails on an unknown
/// profile or contradictory overrides (e.g. residency=file with a
/// non-streaming backend).
Result<StormPlan> MakeStormPlan(uint64_t seed, const std::string& profile,
                                const StormOverrides& overrides = {});

/// Human-readable plan listing (--dump-plan, and the determinism test's
/// comparison key).
std::string DumpPlan(const StormPlan& plan);

}  // namespace storm
}  // namespace parisax

#endif  // PARISAX_TESTS_STORM_STORM_PLAN_H_
