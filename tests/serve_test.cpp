// QueryService: concurrent multi-query execution must return exactly
// the answers the serial brute-force oracle returns, for every
// scheduling policy, under storms of simultaneous Submits with mixed
// request types (ED 1-NN, kNN, DTW) and mixed engines sharing one
// process. These tests are the ASan/UBSan matrix leg's main target.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "io/generator.h"
#include "scan/ucr_scan.h"
#include "serve/query_service.h"
#include "util/threading.h"

namespace parisax {
namespace {

constexpr size_t kLength = 64;
constexpr size_t kDtwBand = 6;

Dataset MakeData(size_t count, uint64_t seed) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = kLength;
  gen.seed = seed;
  return GenerateDataset(gen);
}

Dataset MakeQueries(size_t count, uint64_t data_seed) {
  return GenerateQueries(DatasetKind::kRandomWalk, count, kLength,
                         data_seed);
}

/// Null (with a recorded failure) when the build fails; call sites
/// ASSERT on the result so a broken build fails one test cleanly.
std::unique_ptr<Engine> BuildEngine(const Dataset& data,
                                    Algorithm algorithm) {
  EngineOptions options;
  options.algorithm = algorithm;
  options.num_threads = 4;
  options.tree.segments = 8;
  options.tree.leaf_capacity = 32;
  auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
  if (!engine.ok()) {
    ADD_FAILURE() << engine.status().ToString();
    return nullptr;
  }
  return std::move(*engine);
}

TEST(QueryServiceTest, PolicyNamesRoundTrip) {
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kThroughput, SchedulingPolicy::kLatency,
        SchedulingPolicy::kAuto}) {
    const auto parsed = ParseSchedulingPolicy(SchedulingPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseSchedulingPolicy("bogus").ok());
}

TEST(QueryServiceTest, CreateRejectsBadOptions) {
  const Dataset data = MakeData(200, 1);
  auto engine = BuildEngine(data, Algorithm::kMessi);
  ASSERT_NE(engine, nullptr);
  QueryServiceOptions sopts;
  sopts.num_threads = 0;
  EXPECT_FALSE(QueryService::Create(engine.get(), sopts).ok());
  sopts.num_threads = 2;
  sopts.parallel_cost_threshold = 0.0;
  EXPECT_FALSE(QueryService::Create(engine.get(), sopts).ok());
  EXPECT_FALSE(QueryService::Create(nullptr, QueryServiceOptions{}).ok());
}

// Every policy must produce oracle-exact answers for a batch.
TEST(QueryServiceTest, BatchMatchesOracleUnderEveryPolicy) {
  const Dataset data = MakeData(2000, 7);
  const Dataset queries = MakeQueries(32, 7);
  auto engine = BuildEngine(data, Algorithm::kMessi);
  ASSERT_NE(engine, nullptr);

  std::vector<SeriesView> views;
  for (size_t q = 0; q < queries.count(); ++q) {
    views.push_back(queries.series(q));
  }

  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kThroughput, SchedulingPolicy::kLatency,
        SchedulingPolicy::kAuto}) {
    QueryServiceOptions sopts;
    sopts.num_threads = 4;
    sopts.policy = policy;
    auto service = QueryService::Create(engine.get(), sopts);
    ASSERT_TRUE(service.ok());

    auto responses = (*service)->SearchBatch(views);
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    ASSERT_EQ(responses->size(), queries.count());
    for (size_t q = 0; q < queries.count(); ++q) {
      const Neighbor oracle =
          BruteForceNn(InMemorySource(&data), queries.series(q));
      EXPECT_EQ((*responses)[q].neighbors[0].id, oracle.id)
          << SchedulingPolicyName(policy) << " query " << q;
      EXPECT_FLOAT_EQ((*responses)[q].neighbors[0].distance_sq,
                      oracle.distance_sq);
    }
    const ServeStats stats = (*service)->stats();
    EXPECT_EQ(stats.submitted, queries.count());
    EXPECT_EQ(stats.completed, queries.count());
    if (policy == SchedulingPolicy::kThroughput) {
      EXPECT_EQ(stats.ran_parallel, 0u);
    }
    if (policy == SchedulingPolicy::kLatency) {
      EXPECT_EQ(stats.ran_inline, 0u);
    }
  }
}

// A storm of simultaneous Submits with mixed request types: ED 1-NN,
// kNN and DTW interleaved from many client threads.
TEST(QueryServiceTest, MixedRequestStormMatchesOracle) {
  const Dataset data = MakeData(1500, 11);
  const Dataset queries = MakeQueries(24, 11);
  auto engine = BuildEngine(data, Algorithm::kMessi);
  ASSERT_NE(engine, nullptr);

  QueryServiceOptions sopts;
  sopts.num_threads = 4;
  auto service = QueryService::Create(engine.get(), sopts);
  ASSERT_TRUE(service.ok());

  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t q = c; q < queries.count(); q += kClients) {
        const SeriesView query = queries.series(q);
        SearchRequest request;
        Neighbor oracle;
        std::vector<Neighbor> oracle_knn;
        switch (q % 3) {
          case 0:  // ED 1-NN
            oracle = BruteForceNn(InMemorySource(&data), query);
            break;
          case 1:  // ED kNN
            request.k = 5;
            oracle_knn = BruteForceKnn(InMemorySource(&data), query, request.k);
            break;
          case 2:  // DTW 1-NN
            request.dtw = true;
            request.dtw_band = kDtwBand;
            oracle = BruteForceDtwNn(InMemorySource(&data), query, kDtwBand);
            break;
        }
        auto response = (*service)->Submit(query, request).get();
        if (!response.ok()) {
          ++failures;
          continue;
        }
        if (q % 3 == 1) {
          if (response->neighbors.size() != oracle_knn.size()) {
            ++failures;
            continue;
          }
          for (size_t i = 0; i < oracle_knn.size(); ++i) {
            if (response->neighbors[i].id != oracle_knn[i].id) ++failures;
          }
        } else {
          if (response->neighbors[0].id != oracle.id ||
              response->neighbors[0].distance_sq != oracle.distance_sq) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const ServeStats stats = (*service)->stats();
  EXPECT_EQ(stats.completed, queries.count());
}

// Mixed engines: MESSI, ParIS+ and UCR-p services all answering storms
// in the same process, sharing nothing but the CPU.
TEST(QueryServiceTest, MixedEnginesServeConcurrently) {
  const Dataset data = MakeData(1200, 23);
  const Dataset queries = MakeQueries(18, 23);

  std::vector<std::unique_ptr<Engine>> engines;
  engines.push_back(BuildEngine(data, Algorithm::kMessi));
  engines.push_back(BuildEngine(data, Algorithm::kParisPlus));
  engines.push_back(BuildEngine(data, Algorithm::kUcrParallel));
  for (const auto& engine : engines) ASSERT_NE(engine, nullptr);

  std::vector<Neighbor> oracles;
  for (size_t q = 0; q < queries.count(); ++q) {
    oracles.push_back(BruteForceNn(InMemorySource(&data), queries.series(q)));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (auto& engine : engines) {
    clients.emplace_back([&, e = engine.get()] {
      std::vector<std::future<Result<SearchResponse>>> futures;
      for (size_t q = 0; q < queries.count(); ++q) {
        futures.push_back(e->Submit(queries.series(q)));
      }
      for (size_t q = 0; q < futures.size(); ++q) {
        auto response = futures[q].get();
        if (!response.ok() ||
            response->neighbors[0].id != oracles[q].id ||
            response->neighbors[0].distance_sq != oracles[q].distance_sq) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// Direct Engine::Search from many threads must serialize on the pool
// instead of crashing (the pre-serve behaviour was an abort).
TEST(QueryServiceTest, DirectConcurrentEngineSearchIsSafe) {
  const Dataset data = MakeData(800, 31);
  const Dataset queries = MakeQueries(12, 31);
  auto engine = BuildEngine(data, Algorithm::kMessi);
  ASSERT_NE(engine, nullptr);

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (size_t q = c; q < queries.count(); q += 4) {
        auto response = engine->Search(queries.series(q));
        const Neighbor oracle =
          BruteForceNn(InMemorySource(&data), queries.series(q));
        if (!response.ok() || response->neighbors[0].id != oracle.id) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// Engine facade: SearchBatch and Submit lazily create one service.
TEST(QueryServiceTest, EngineFacadeBatchAndSubmit) {
  const Dataset data = MakeData(900, 41);
  const Dataset queries = MakeQueries(16, 41);
  auto engine = BuildEngine(data, Algorithm::kMessi);
  ASSERT_NE(engine, nullptr);

  std::vector<SeriesView> views;
  for (size_t q = 0; q < queries.count(); ++q) {
    views.push_back(queries.series(q));
  }
  auto responses = engine->SearchBatch(views);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), queries.count());
  for (size_t q = 0; q < queries.count(); ++q) {
    EXPECT_EQ((*responses)[q].neighbors[0].id,
              BruteForceNn(InMemorySource(&data), queries.series(q)).id);
  }

  auto future = engine->Submit(views[0]);
  auto response = future.get();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->neighbors[0].id,
            BruteForceNn(InMemorySource(&data), views[0]).id);
  EXPECT_EQ(engine->query_service(), engine->query_service());
}

// Submitted queries are copied: the caller's buffer may die right after
// Submit returns.
TEST(QueryServiceTest, SubmitCopiesTheQuery) {
  const Dataset data = MakeData(600, 51);
  const Dataset queries = MakeQueries(1, 51);
  auto engine = BuildEngine(data, Algorithm::kMessi);
  ASSERT_NE(engine, nullptr);

  const Neighbor oracle =
      BruteForceNn(InMemorySource(&data), queries.series(0));
  std::future<Result<SearchResponse>> future;
  {
    std::vector<Value> ephemeral(queries.series(0).begin(),
                                 queries.series(0).end());
    future = engine->Submit(SeriesView(ephemeral.data(), ephemeral.size()));
    ephemeral.assign(ephemeral.size(), 0.0f);  // scribble before get()
  }
  auto response = future.get();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->neighbors[0].id, oracle.id);
}

// Invalid requests surface per-query Status through the future without
// poisoning the service.
TEST(QueryServiceTest, PerQueryErrorsDoNotPoisonTheService) {
  const Dataset data = MakeData(500, 61);
  const Dataset queries = MakeQueries(2, 61);
  auto engine = BuildEngine(data, Algorithm::kMessi);
  ASSERT_NE(engine, nullptr);

  std::vector<Value> short_query(kLength / 2, 0.0f);
  auto bad = engine->Submit(
      SeriesView(short_query.data(), short_query.size()));
  EXPECT_FALSE(bad.get().ok());

  // k-NN under DTW is unimplemented and must say so, not silently
  // answer 1-NN.
  SearchRequest knn_dtw;
  knn_dtw.k = 3;
  knn_dtw.dtw = true;
  auto unsupported = engine->Submit(queries.series(0), knn_dtw);
  EXPECT_FALSE(unsupported.get().ok());

  auto good = engine->Submit(queries.series(0));
  auto response = good.get();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->neighbors[0].id,
            BruteForceNn(InMemorySource(&data), queries.series(0)).id);
}

// Drain returns only after every outstanding query completed.
TEST(QueryServiceTest, DrainWaitsForOutstandingQueries) {
  const Dataset data = MakeData(1000, 71);
  const Dataset queries = MakeQueries(20, 71);
  auto engine = BuildEngine(data, Algorithm::kMessi);
  ASSERT_NE(engine, nullptr);

  QueryServiceOptions sopts;
  sopts.num_threads = 2;
  auto service = QueryService::Create(engine.get(), sopts);
  ASSERT_TRUE(service.ok());

  std::vector<std::future<Result<SearchResponse>>> futures;
  for (size_t q = 0; q < queries.count(); ++q) {
    futures.push_back((*service)->Submit(queries.series(q)));
  }
  (*service)->Drain();
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(future.get().ok());
  }
  EXPECT_EQ((*service)->stats().completed, queries.count());
}

}  // namespace
}  // namespace parisax
