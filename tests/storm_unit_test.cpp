// Unit tests for the storm harness's own pieces: the seeded plan
// generator (determinism, overrides, contradiction rejection), the
// workload model oracle, the shared test-support helpers, and one
// short end-to-end storm run per profile. The real fuzzing lives in
// the storm_test binary's ctest sweeps (see docs/testing.md); this TU
// is the fast gtest-shaped safety net around the harness itself.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "io/generator.h"
#include "storm/storm_plan.h"
#include "storm/storm_runner.h"
#include "storm/workload_model.h"
#include "support/failing_source.h"
#include "support/temp_dir.h"

namespace parisax {
namespace storm {
namespace {

using testsupport::FailingSource;
using testsupport::FailingSourceOptions;
using testsupport::ScopedTempDir;

TEST(StormPlanTest, SameSeedSameProfileIsBitIdentical) {
  for (const std::string& profile : StormProfiles()) {
    auto a = MakeStormPlan(7, profile);
    auto b = MakeStormPlan(7, profile);
    ASSERT_TRUE(a.ok()) << profile;
    ASSERT_TRUE(b.ok()) << profile;
    EXPECT_EQ(DumpPlan(*a), DumpPlan(*b)) << profile;
  }
}

TEST(StormPlanTest, DifferentSeedsDiverge) {
  auto a = MakeStormPlan(1, "chaos");
  auto b = MakeStormPlan(2, "chaos");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(DumpPlan(*a), DumpPlan(*b));
}

TEST(StormPlanTest, ProfilesAreRegistered) {
  const auto profiles = StormProfiles();
  EXPECT_EQ(profiles.size(), 3u);
  EXPECT_NE(std::find(profiles.begin(), profiles.end(), "query-heavy"),
            profiles.end());
  EXPECT_NE(std::find(profiles.begin(), profiles.end(), "ingest-heavy"),
            profiles.end());
  EXPECT_NE(std::find(profiles.begin(), profiles.end(), "chaos"),
            profiles.end());
  EXPECT_FALSE(MakeStormPlan(1, "no-such-profile").ok());
}

TEST(StormPlanTest, OverridesAreRespected) {
  StormOverrides overrides;
  overrides.backend = "messi";
  overrides.residency = "in-memory";
  overrides.shards = 1;
  overrides.wire = false;
  overrides.ops = 12;
  overrides.actors = 2;
  auto plan = MakeStormPlan(3, "query-heavy", overrides);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->config.algorithm, Algorithm::kMessi);
  EXPECT_EQ(plan->config.shards, 1u);
  EXPECT_FALSE(plan->config.wire);
  EXPECT_EQ(plan->ops.size(), 12u);
  EXPECT_EQ(plan->config.actors, 2u);
}

TEST(StormPlanTest, ContradictoryOverridesAreTypedErrors) {
  {
    // chaos is defined by wire-level garbage; wire=off contradicts it.
    StormOverrides overrides;
    overrides.wire = false;
    EXPECT_FALSE(MakeStormPlan(1, "chaos", overrides).ok());
  }
  {
    // sharded engines only build in memory.
    StormOverrides overrides;
    overrides.shards = 4;
    overrides.residency = "file";
    EXPECT_FALSE(MakeStormPlan(1, "query-heavy", overrides).ok());
  }
  {
    StormOverrides overrides;
    overrides.backend = "no-such-backend";
    EXPECT_FALSE(MakeStormPlan(1, "query-heavy", overrides).ok());
  }
}

TEST(WorkloadModelTest, OracleMatchesEngineBruteForce) {
  // The model's ExactNn/ExactKnn and a brute-force Engine over the
  // identical generated dataset must agree byte for byte — this is the
  // exactness the storm checks lean on.
  const uint64_t data_seed = 1234;
  constexpr size_t kCount = 120;
  constexpr size_t kLength = 64;
  WorkloadModel model(DatasetKind::kRandomWalk, data_seed, kCount, kLength);

  GeneratorOptions gen;
  gen.kind = DatasetKind::kRandomWalk;
  gen.count = kCount;
  gen.length = kLength;
  gen.seed = data_seed;
  EngineOptions options;
  options.algorithm = Algorithm::kBruteForce;
  options.num_threads = 2;
  auto engine =
      Engine::Build(SourceSpec::InMemory(GenerateDataset(gen)), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 4, kLength, 555);
  for (size_t q = 0; q < queries.count(); ++q) {
    const Neighbor want = model.ExactNn(queries.series(q), kCount);
    auto got = (*engine)->Search(queries.series(q), {});
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->neighbors.size(), 1u);
    EXPECT_EQ(got->neighbors[0], want);

    SearchRequest knn;
    knn.k = 5;
    const std::vector<Neighbor> want_k =
        model.ExactKnn(queries.series(q), 5, kCount);
    auto got_k = (*engine)->Search(queries.series(q), knn);
    ASSERT_TRUE(got_k.ok());
    EXPECT_EQ(got_k->neighbors, want_k);
  }
}

TEST(WorkloadModelTest, CandidateCountsAreBatchBoundaries) {
  WorkloadModel model(DatasetKind::kRandomWalk, 9, 100, 32);
  model.MarkPublished(100);
  (void)model.AppendBatch(10);  // 110
  (void)model.AppendBatch(5);   // 115
  EXPECT_EQ(model.count(), 115u);
  EXPECT_EQ(model.published_floor(), 100u);
  const std::vector<size_t> counts = model.CandidateCounts(100, 115);
  EXPECT_EQ(counts, (std::vector<size_t>{100, 110, 115}));
  // A window that saw no appends has exactly one legal prefix.
  EXPECT_EQ(model.CandidateCounts(110, 110),
            (std::vector<size_t>{110}));
}

TEST(WorkloadModelTest, AppendBatchIsDeterministic) {
  WorkloadModel a(DatasetKind::kSaldEeg, 77, 50, 32);
  WorkloadModel b(DatasetKind::kSaldEeg, 77, 50, 32);
  // Different batch shapes, same cumulative contents.
  (void)a.AppendBatch(7);
  (void)a.AppendBatch(3);
  (void)b.AppendBatch(10);
  const Dataset da = a.CopyData();
  const Dataset db = b.CopyData();
  ASSERT_EQ(da.count(), db.count());
  for (size_t i = 0; i < da.count(); ++i) {
    for (size_t j = 0; j < da.length(); ++j) {
      ASSERT_EQ(da.series(i)[j], db.series(i)[j]) << i << "," << j;
    }
  }
}

TEST(ScopedTempDirTest, CreatesUniqueDirsAndCleansUp) {
  std::string first;
  {
    ScopedTempDir a("parisax_unit");
    ScopedTempDir b("parisax_unit");
    first = a.path();
    EXPECT_NE(a.path(), b.path());
    EXPECT_TRUE(std::filesystem::is_directory(a.path()));
    std::ofstream(a.Path("nested.txt")) << "x";
    EXPECT_TRUE(std::filesystem::exists(a.Path("nested.txt")));
  }
  EXPECT_FALSE(std::filesystem::exists(first));
}

TEST(FailingSourceTest, ByteOffsetTripIsCumulative) {
  FailingSourceOptions fail;
  fail.fail_at_byte_offset = 3 * 16 * sizeof(Value);
  FailingSource source(10, 16, fail);
  std::vector<Value> buf(16);
  EXPECT_TRUE(source.GetSeries(0, buf.data()).ok());
  EXPECT_TRUE(source.GetSeries(1, buf.data()).ok());
  EXPECT_TRUE(source.GetSeries(2, buf.data()).ok());
  // The fourth read crosses the budget — regardless of which id it is.
  EXPECT_EQ(source.GetSeries(0, buf.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(source.bytes_read(), 4 * 16 * sizeof(Value));
}

TEST(FailingSourceTest, AppendTripAndAppendableGate) {
  std::vector<Value> row(16, 1.0f);
  {
    FailingSource source(4, 16);  // not appendable by default
    EXPECT_EQ(source.AppendSeries(row.data(), 1).code(),
              StatusCode::kNotSupported);
  }
  FailingSourceOptions fail;
  fail.appendable = true;
  fail.fail_after_appends = 2;
  FailingSource source(4, 16, fail);
  EXPECT_TRUE(source.AppendSeries(row.data(), 1).ok());
  EXPECT_TRUE(source.AppendSeries(row.data(), 1).ok());
  EXPECT_EQ(source.AppendSeries(row.data(), 1).code(), StatusCode::kIoError);
  EXPECT_EQ(source.count(), 6u);  // the failed batch was not applied
}

TEST(StormRunTest, ShortRunPerProfilePasses) {
  // A fast end-to-end smoke per profile: small plan, forced in-memory
  // single-shard messi so the whole matrix stays in milliseconds. The
  // broad config sweep lives in the storm_test ctest entries.
  for (const std::string& profile : StormProfiles()) {
    StormOverrides overrides;
    overrides.backend = "messi";
    overrides.residency = "in-memory";
    overrides.shards = 1;
    overrides.initial_series = 96;
    overrides.ops = 12;
    overrides.actors = 2;
    auto plan = MakeStormPlan(5, profile, overrides);
    ASSERT_TRUE(plan.ok()) << profile << ": " << plan.status().ToString();
    auto report = RunStorm(*plan);
    ASSERT_TRUE(report.ok()) << profile << ": " << report.status().ToString();
    EXPECT_TRUE(report->passed) << FormatReport(*plan, *report);
  }
}

}  // namespace
}  // namespace storm
}  // namespace parisax
