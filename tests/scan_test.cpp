// Tests for the scan baselines (brute force, UCR Suite serial/parallel/
// on-disk, DTW scans) and the KnnHeap.
#include "scan/ucr_scan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "index/knn_heap.h"
#include "io/format.h"
#include "io/generator.h"

namespace parisax {
namespace {

Dataset MakeData(size_t count = 2000, size_t length = 64,
                 uint64_t seed = 51) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = length;
  gen.seed = seed;
  return GenerateDataset(gen);
}

TEST(BruteForceTest, FindsPlantedNeighbor) {
  Dataset data = MakeData(500);
  // Plant an exact duplicate of the query at position 123.
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 1, 64, 51);
  const SeriesView q = queries.series(0);
  std::copy(q.begin(), q.end(), data.mutable_series(123).begin());
  const Neighbor nn = BruteForceNn(InMemorySource(&data), q);
  EXPECT_EQ(nn.id, 123u);
  EXPECT_FLOAT_EQ(nn.distance_sq, 0.0f);
}

TEST(BruteForceTest, KnnIsSortedPrefixOfFullRanking) {
  const Dataset data = MakeData(400);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 1, 64, 51);
  const SeriesView q = queries.series(0);
  const auto k10 = BruteForceKnn(InMemorySource(&data), q, 10);
  const auto k50 = BruteForceKnn(InMemorySource(&data), q, 50);
  ASSERT_EQ(k10.size(), 10u);
  ASSERT_EQ(k50.size(), 50u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(k10[i].id, k50[i].id);
    EXPECT_EQ(k10[i].distance_sq, k50[i].distance_sq);
  }
  for (size_t i = 1; i < k50.size(); ++i) {
    EXPECT_LE(k50[i - 1].distance_sq, k50[i].distance_sq);
  }
}

TEST(BruteForceTest, KnnClampsToCollectionSize) {
  const Dataset data = MakeData(7);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 1, 64, 51);
  EXPECT_EQ(
      BruteForceKnn(InMemorySource(&data), queries.series(0), 100).size(),
      7u);
}

TEST(UcrScanTest, SerialMatchesBruteForceAndAbandons) {
  const Dataset data = MakeData();
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 6, 64, 51);
  for (size_t q = 0; q < queries.count(); ++q) {
    const SeriesView query = queries.series(q);
    const Neighbor oracle =
        BruteForceNn(InMemorySource(&data), query, KernelPolicy::kScalar);
    ScanStats stats;
    const Neighbor got = UcrScanSerial(InMemorySource(&data), query, &stats);
    EXPECT_NEAR(got.distance_sq, oracle.distance_sq,
                1e-3f * std::max(1.0f, oracle.distance_sq));
    EXPECT_EQ(stats.distance_calcs, data.count());
    // Early abandoning must fire on the vast majority of candidates.
    EXPECT_GT(stats.abandoned, data.count() / 2);
  }
}

TEST(UcrScanTest, ParallelMatchesSerialAcrossThreadCounts) {
  const Dataset data = MakeData();
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 4, 64, 51);
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    for (size_t q = 0; q < queries.count(); ++q) {
      const SeriesView query = queries.series(q);
      const Neighbor serial = UcrScanSerial(InMemorySource(&data), query);
      const Neighbor parallel =
          UcrScanParallel(InMemorySource(&data), query, &pool);
      EXPECT_NEAR(parallel.distance_sq, serial.distance_sq,
                  1e-3f * std::max(1.0f, serial.distance_sq))
          << "threads=" << threads;
    }
  }
}

TEST(UcrScanTest, DiskScanMatchesInMemory) {
  const Dataset data = MakeData(800);
  const std::string path = ::testing::TempDir() + "/ucr_disk.psax";
  ASSERT_TRUE(WriteDataset(data, path).ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 3, 64, 51);
  for (size_t q = 0; q < queries.count(); ++q) {
    const SeriesView query = queries.series(q);
    const Neighbor mem = UcrScanSerial(InMemorySource(&data), query);
    ScanStats stats;
    auto source = FileSource::Open(path, DiskProfile::Instant());
    ASSERT_TRUE(source.ok());
    auto disk = UcrScanStream(**source, query, 128, &stats);
    ASSERT_TRUE(disk.ok());
    EXPECT_NEAR(disk->distance_sq, mem.distance_sq,
                1e-3f * std::max(1.0f, mem.distance_sq));
    EXPECT_EQ(stats.distance_calcs, data.count());
  }
}

TEST(UcrScanTest, DiskScanRejectsWrongLength) {
  const Dataset data = MakeData(50);
  const std::string path = ::testing::TempDir() + "/ucr_len.psax";
  ASSERT_TRUE(WriteDataset(data, path).ok());
  std::vector<float> query(32, 0.0f);
  auto source = FileSource::Open(path, DiskProfile::Instant());
  ASSERT_TRUE(source.ok());
  EXPECT_FALSE(
      UcrScanStream(**source, SeriesView(query.data(), 32)).ok());
}

TEST(UcrScanTest, EmptyDatasetReturnsInfinity) {
  const Dataset data(0, 64);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 1, 64, 51);
  const Neighbor nn = UcrScanSerial(InMemorySource(&data), queries.series(0));
  EXPECT_TRUE(std::isinf(nn.distance_sq));
  ThreadPool pool(2);
  const Neighbor pnn =
      UcrScanParallel(InMemorySource(&data), queries.series(0), &pool);
  EXPECT_TRUE(std::isinf(pnn.distance_sq));
}

TEST(DtwScanTest, SerialAndParallelMatchBruteForceDtw) {
  const Dataset data = MakeData(600);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 3, 64, 51);
  const size_t band = 6;
  ThreadPool pool(3);
  for (size_t q = 0; q < queries.count(); ++q) {
    const SeriesView query = queries.series(q);
    const Neighbor oracle = BruteForceDtwNn(InMemorySource(&data), query, band);
    ScanStats s1, s2;
    const Neighbor serial =
        DtwScanSerial(InMemorySource(&data), query, band, &s1);
    const Neighbor parallel = DtwScanParallel(InMemorySource(&data), query,
                                              band, &pool, &s2);
    EXPECT_NEAR(serial.distance_sq, oracle.distance_sq,
                1e-3f * std::max(1.0f, oracle.distance_sq));
    EXPECT_NEAR(parallel.distance_sq, oracle.distance_sq,
                1e-3f * std::max(1.0f, oracle.distance_sq));
    // LB_Keogh must prune a meaningful share of full DTW computations.
    EXPECT_LT(s1.distance_calcs, data.count());
  }
}

TEST(DtwScanTest, DtwNeverWorseThanEuclideanNeighbor) {
  const Dataset data = MakeData(300);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 3, 64, 51);
  for (size_t q = 0; q < queries.count(); ++q) {
    const Neighbor ed = UcrScanSerial(InMemorySource(&data), queries.series(q));
    const Neighbor dtw =
        DtwScanSerial(InMemorySource(&data), queries.series(q), 6);
    // DTW distance of the DTW-NN <= ED distance of the ED-NN.
    EXPECT_LE(dtw.distance_sq, ed.distance_sq * (1.0f + 1e-4f));
  }
}

// --- KnnHeap -----------------------------------------------------------------

TEST(KnnHeapTest, KeepsTheKSmallest) {
  KnnHeap heap(3);
  EXPECT_TRUE(std::isinf(heap.Bound()));
  for (const float d : {9.0f, 1.0f, 5.0f, 3.0f, 7.0f, 2.0f}) {
    heap.Update({static_cast<SeriesId>(d * 10), d});
  }
  EXPECT_FLOAT_EQ(heap.Bound(), 3.0f);
  const auto sorted = heap.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_FLOAT_EQ(sorted[0].distance_sq, 1.0f);
  EXPECT_FLOAT_EQ(sorted[1].distance_sq, 2.0f);
  EXPECT_FLOAT_EQ(sorted[2].distance_sq, 3.0f);
}

TEST(KnnHeapTest, RejectsDuplicateIds) {
  KnnHeap heap(5);
  heap.Update({7, 1.0f});
  heap.Update({7, 1.0f});
  heap.Update({7, 0.5f});
  EXPECT_EQ(heap.Sorted().size(), 1u);
}

TEST(KnnHeapTest, DuplicateOfWorstIsRejectedWhenFull) {
  KnnHeap heap(2);
  heap.Update({1, 1.0f});
  heap.Update({2, 2.0f});
  // Same id and same distance as the current worst: ties the bound, so
  // it passes the lock-free reject and must be caught by the duplicate
  // scan, not evict its own twin.
  heap.Update({2, 2.0f});
  const auto sorted = heap.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].id, 1u);
  EXPECT_EQ(sorted[1].id, 2u);
}

TEST(KnnHeapTest, EqualDistanceSmallerIdStillReplacesWorst) {
  // The lock-free reject compares with strict >: a candidate tying the
  // k-th distance with a smaller id must still get through and win the
  // (distance, id) tie-break.
  KnnHeap heap(2);
  heap.Update({1, 1.0f});
  heap.Update({9, 2.0f});
  heap.Update({4, 2.0f});
  const auto sorted = heap.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[1].id, 4u);
}

TEST(KnnHeapTest, BoundStaysExactThroughFastRejects) {
  KnnHeap heap(3);
  heap.Update({1, 1.0f});
  heap.Update({2, 2.0f});
  heap.Update({3, 3.0f});
  heap.Update({4, 10.0f});  // above the bound: fast-rejected
  EXPECT_FLOAT_EQ(heap.Bound(), 3.0f);
  heap.Update({5, 0.5f});  // improves: bound shrinks to the new k-th
  EXPECT_FLOAT_EQ(heap.Bound(), 2.0f);
  heap.Update({5, 0.1f});  // duplicate under the bound: still refused
  EXPECT_FLOAT_EQ(heap.Bound(), 2.0f);
}

TEST(KnnHeapTest, ConcurrentUpdatesKeepGlobalKSmallest) {
  constexpr size_t kK = 16;
  KnnHeap heap(kK);
  constexpr int kThreads = 4, kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t id = static_cast<uint64_t>(t) * kPerThread + i;
        heap.Update({id, static_cast<float>(id)});
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto sorted = heap.Sorted();
  ASSERT_EQ(sorted.size(), kK);
  for (size_t i = 0; i < kK; ++i) {
    EXPECT_EQ(sorted[i].id, i);
    EXPECT_FLOAT_EQ(sorted[i].distance_sq, static_cast<float>(i));
  }
}

}  // namespace
}  // namespace parisax
