// Property tests for the mindist lower bounds -- the correctness
// foundation of all pruning in ADS+/ParIS/MESSI:
//   mindist(PAA(q), iSAX(s)) <= ED(q, s)          (any cardinality)
//   envelope-mindist(q, iSAX(s)) <= DTW(q, s)     (any cardinality)
// plus tightness monotonicity in cardinality.
#include "sax/mindist.h"

#include <gtest/gtest.h>

#include <vector>

#include "dist/dtw.h"
#include "dist/euclidean.h"
#include "io/generator.h"
#include "sax/paa.h"
#include "util/rng.h"

namespace parisax {
namespace {

struct MindistCase {
  DatasetKind kind;
  int w;
  size_t n;
};

class MindistProperty : public ::testing::TestWithParam<MindistCase> {};

SaxWord WordAtBits(const SaxSymbols& full, int w, int bits) {
  SaxWord word;
  for (int s = 0; s < w; ++s) {
    word.bits[s] = static_cast<uint8_t>(bits);
    word.symbols[s] = TruncateSymbol(full.symbols[s], bits);
  }
  return word;
}

TEST_P(MindistProperty, LowerBoundsEuclidean) {
  const auto [kind, w, n] = GetParam();
  GeneratorOptions gen;
  gen.kind = kind;
  gen.count = 120;
  gen.length = n;
  gen.seed = 31;
  const Dataset data = GenerateDataset(gen);
  const Dataset queries = GenerateQueries(kind, 6, n, 31);

  float qpaa[kMaxSegments], spaa[kMaxSegments];
  SaxSymbols ssax;
  for (size_t qi = 0; qi < queries.count(); ++qi) {
    const SeriesView q = queries.series(qi);
    ComputePaa(q, w, qpaa);
    for (SeriesId i = 0; i < data.count(); ++i) {
      const SeriesView s = data.series(i);
      const float ed_sq = SquaredEuclideanScalar(q.data(), s.data(), n);
      ComputePaa(s, w, spaa);
      SymbolsFromPaa(spaa, w, &ssax);

      // Full-cardinality bound (the hot path).
      const float lb_full = MinDistPaaToSymbolsSq(qpaa, ssax, w, n);
      EXPECT_LE(lb_full, ed_sq * (1.0f + 1e-4f) + 1e-4f)
          << "q=" << qi << " s=" << i;

      // Every cardinality lower-bounds ED, and coarser cardinalities are
      // never tighter than finer ones.
      float prev = -1.0f;
      for (int bits = 1; bits <= kMaxCardBits; ++bits) {
        const SaxWord word = WordAtBits(ssax, w, bits);
        const float lb = MinDistPaaToWordSq(qpaa, word, w, n);
        EXPECT_LE(lb, ed_sq * (1.0f + 1e-4f) + 1e-4f)
            << "bits=" << bits << " q=" << qi << " s=" << i;
        EXPECT_GE(lb, prev - 1e-5f) << "tightness must grow with bits";
        prev = lb;
      }
      // Word at 8 bits equals the symbols-based bound.
      const SaxWord full_word = WordAtBits(ssax, w, kMaxCardBits);
      EXPECT_FLOAT_EQ(MinDistPaaToWordSq(qpaa, full_word, w, n), lb_full);
    }
  }
}

TEST_P(MindistProperty, EnvelopeLowerBoundsDtw) {
  const auto [kind, w, n] = GetParam();
  GeneratorOptions gen;
  gen.kind = kind;
  gen.count = 60;
  gen.length = n;
  gen.seed = 37;
  const Dataset data = GenerateDataset(gen);
  const Dataset queries = GenerateQueries(kind, 3, n, 37);
  const size_t band = n / 10;

  float spaa[kMaxSegments];
  SaxSymbols ssax;
  std::vector<Value> lower, upper;
  float env_lo_paa[kMaxSegments], env_hi_paa[kMaxSegments];
  for (size_t qi = 0; qi < queries.count(); ++qi) {
    const SeriesView q = queries.series(qi);
    ComputeEnvelope(q, band, &lower, &upper);
    ComputeEnvelopePaaMinMax(lower, upper, w, env_lo_paa, env_hi_paa);
    for (SeriesId i = 0; i < data.count(); ++i) {
      const SeriesView s = data.series(i);
      const float dtw_sq = DtwBand(q, s, band, 1e30f);
      ComputePaa(s, w, spaa);
      SymbolsFromPaa(spaa, w, &ssax);

      const float lb_full =
          MinDistEnvelopePaaToSymbolsSq(env_lo_paa, env_hi_paa, ssax, w, n);
      EXPECT_LE(lb_full, dtw_sq * (1.0f + 1e-4f) + 1e-4f)
          << "q=" << qi << " s=" << i;

      for (int bits = 1; bits <= kMaxCardBits; bits += 3) {
        const SaxWord word = WordAtBits(ssax, w, bits);
        const float lb =
            MinDistEnvelopePaaToWordSq(env_lo_paa, env_hi_paa, word, w, n);
        EXPECT_LE(lb, dtw_sq * (1.0f + 1e-4f) + 1e-4f)
            << "bits=" << bits << " q=" << qi << " s=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndShapes, MindistProperty,
    ::testing::Values(MindistCase{DatasetKind::kRandomWalk, 8, 64},
                      MindistCase{DatasetKind::kRandomWalk, 16, 256},
                      MindistCase{DatasetKind::kSaldEeg, 16, 128},
                      MindistCase{DatasetKind::kSeismicBurst, 8, 96},
                      MindistCase{DatasetKind::kRandomWalk, 4, 61}),
    [](const auto& info) {
      return std::string(DatasetKindName(info.param.kind)) + "_w" +
             std::to_string(info.param.w) + "_n" +
             std::to_string(info.param.n);
    });

TEST(MindistTest, ZeroWhenPaaInsideRegion) {
  // A query whose PAA equals the series PAA has mindist zero against that
  // series' symbols.
  GeneratorOptions gen;
  gen.count = 10;
  gen.length = 64;
  const Dataset data = GenerateDataset(gen);
  const int w = 8;
  float paa[kMaxSegments];
  SaxSymbols sax;
  for (SeriesId i = 0; i < data.count(); ++i) {
    ComputePaa(data.series(i), w, paa);
    SymbolsFromPaa(paa, w, &sax);
    EXPECT_FLOAT_EQ(MinDistPaaToSymbolsSq(paa, sax, w, 64), 0.0f);
  }
}

TEST(MindistTest, ScalesWithSeriesLength) {
  // Same PAA gap, doubled n => doubled squared mindist (n/w scaling).
  SaxSymbols sax;
  sax.symbols[0] = 0;  // region (-inf, lowest breakpoint]
  const int w = 1;
  float paa[1] = {10.0f};  // far above region 0
  const float d64 = MinDistPaaToSymbolsSq(paa, sax, w, 64);
  const float d128 = MinDistPaaToSymbolsSq(paa, sax, w, 128);
  EXPECT_GT(d64, 0.0f);
  EXPECT_NEAR(d128, 2.0f * d64, 1e-3f);
}

}  // namespace
}  // namespace parisax
