// Tests for the dataset file format, generators, simulated disk and the
// buffered reader.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "dist/znorm.h"
#include "io/format.h"
#include "io/generator.h"
#include "io/reader.h"
#include "io/sim_disk.h"
#include "util/threading.h"
#include "util/timer.h"

namespace parisax {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Dataset SmallDataset(size_t count = 100, size_t length = 32,
                     uint64_t seed = 1) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = length;
  gen.seed = seed;
  return GenerateDataset(gen);
}

// --- format --------------------------------------------------------------

TEST(FormatTest, WriteLoadRoundTrip) {
  const Dataset original = SmallDataset(123, 40);
  const std::string path = TempPath("fmt_roundtrip.psax");
  ASSERT_TRUE(WriteDataset(original, path).ok());

  auto info = ReadDatasetInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->count, 123u);
  EXPECT_EQ(info->length, 40u);
  EXPECT_EQ(info->flags & kDatasetFlagZNormalized, kDatasetFlagZNormalized);

  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->count(), original.count());
  ASSERT_EQ(loaded->length(), original.length());
  for (SeriesId i = 0; i < original.count(); ++i) {
    const SeriesView a = original.series(i), b = loaded->series(i);
    for (size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
  }
}

TEST(FormatTest, OffsetsMatchLayout) {
  DatasetFileInfo info;
  info.count = 10;
  info.length = 16;
  EXPECT_EQ(info.SeriesBytes(), 64u);
  EXPECT_EQ(info.SeriesOffset(0), kDatasetHeaderBytes);
  EXPECT_EQ(info.SeriesOffset(3), kDatasetHeaderBytes + 3 * 64);
  EXPECT_EQ(info.FileBytes(), kDatasetHeaderBytes + 640);
}

TEST(FormatTest, RejectsMissingFile) {
  EXPECT_EQ(ReadDatasetInfo(TempPath("does_not_exist.psax")).status().code(),
            StatusCode::kNotFound);
}

TEST(FormatTest, RejectsBadMagic) {
  const std::string path = TempPath("fmt_badmagic.psax");
  std::ofstream f(path, std::ios::binary);
  f << "NOTPSAXFILE.....garbage.....padding to be long enough";
  f.close();
  EXPECT_EQ(ReadDatasetInfo(path).status().code(), StatusCode::kCorruption);
}

TEST(FormatTest, RejectsTruncatedPayload) {
  const Dataset original = SmallDataset(50, 32);
  const std::string path = TempPath("fmt_truncated.psax");
  ASSERT_TRUE(WriteDataset(original, path).ok());
  // Truncate the file by a few bytes.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const DatasetFileInfo info{50, 32, 0};
  ASSERT_EQ(::truncate(path.c_str(),
                       static_cast<off_t>(info.FileBytes() - 8)), 0);
  std::fclose(f);
  EXPECT_EQ(ReadDatasetInfo(path).status().code(), StatusCode::kCorruption);
}

TEST(FormatTest, WriterEnforcesDeclaredCount) {
  const std::string path = TempPath("fmt_writer.psax");
  DatasetFileWriter writer;
  ASSERT_TRUE(writer.Open(path, 2, 4).ok());
  const std::vector<float> series = {1, 2, 3, 4};
  ASSERT_TRUE(writer.Append(SeriesView(series.data(), 4)).ok());
  // Wrong length rejected.
  EXPECT_FALSE(writer.Append(SeriesView(series.data(), 3)).ok());
  // Early close rejected.
  EXPECT_FALSE(writer.Close().ok());
}

TEST(FormatTest, WriterRejectsExtraAppends) {
  const std::string path = TempPath("fmt_writer2.psax");
  DatasetFileWriter writer;
  ASSERT_TRUE(writer.Open(path, 1, 4).ok());
  const std::vector<float> series = {1, 2, 3, 4};
  ASSERT_TRUE(writer.Append(SeriesView(series.data(), 4)).ok());
  EXPECT_FALSE(writer.Append(SeriesView(series.data(), 4)).ok());
  EXPECT_TRUE(writer.Close().ok());
  EXPECT_TRUE(ReadDatasetInfo(path).ok());
}

// --- generators -----------------------------------------------------------

TEST(GeneratorTest, DeterministicPerSeedAndIndex) {
  const Dataset a = SmallDataset(50, 64, 99);
  const Dataset b = SmallDataset(50, 64, 99);
  for (SeriesId i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 64; ++j) {
      ASSERT_EQ(a.series(i)[j], b.series(i)[j]) << "i=" << i << " j=" << j;
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const Dataset a = SmallDataset(10, 64, 1);
  const Dataset b = SmallDataset(10, 64, 2);
  bool any_diff = false;
  for (size_t j = 0; j < 64; ++j) any_diff |= a.series(0)[j] != b.series(0)[j];
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, ParallelGenerationMatchesSerial) {
  GeneratorOptions gen;
  gen.count = 1000;
  gen.length = 48;
  gen.seed = 7;
  const Dataset serial = GenerateDataset(gen);
  ThreadPool pool(4);
  const Dataset parallel = GenerateDataset(gen, &pool);
  for (SeriesId i = 0; i < gen.count; ++i) {
    for (size_t j = 0; j < gen.length; ++j) {
      ASSERT_EQ(serial.series(i)[j], parallel.series(i)[j]);
    }
  }
}

TEST(GeneratorTest, AllKindsAreZNormalized) {
  for (const DatasetKind kind :
       {DatasetKind::kRandomWalk, DatasetKind::kSaldEeg,
        DatasetKind::kSeismicBurst}) {
    GeneratorOptions gen;
    gen.kind = kind;
    gen.count = 30;
    gen.length = DefaultSeriesLength(kind);
    const Dataset data = GenerateDataset(gen);
    for (SeriesId i = 0; i < data.count(); ++i) {
      EXPECT_TRUE(IsZNormalized(data.series(i), 5e-3))
          << DatasetKindName(kind) << " series " << i;
    }
  }
}

TEST(GeneratorTest, QueriesAreDisjointFromData) {
  const uint64_t seed = 11;
  const Dataset data = SmallDataset(50, 32, seed);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 50, 32, seed);
  // Same index in both streams must differ (different seed stream).
  bool differs = false;
  for (size_t j = 0; j < 32; ++j) {
    differs |= data.series(0)[j] != queries.series(0)[j];
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorTest, PerturbedQueriesStayNearTheirSourceMembers) {
  // Each perturbed query must be z-normalized and much closer to *some*
  // dataset member than a fresh draw would be.
  const uint64_t seed = 77;
  const size_t count = 200, length = 64;
  const Dataset data = SmallDataset(count, length, seed);
  const Dataset perturbed = GeneratePerturbedQueries(
      DatasetKind::kRandomWalk, 10, length, seed, count, 0.1);
  const Dataset fresh =
      GenerateQueries(DatasetKind::kRandomWalk, 10, length, seed);

  auto nearest_sq = [&](SeriesView q) {
    float best = 1e30f;
    for (SeriesId i = 0; i < data.count(); ++i) {
      float sum = 0.0f;
      for (size_t j = 0; j < length; ++j) {
        const float d = q[j] - data.series(i)[j];
        sum += d * d;
      }
      best = std::min(best, sum);
    }
    return best;
  };

  double perturbed_mean = 0.0, fresh_mean = 0.0;
  for (SeriesId q = 0; q < 10; ++q) {
    EXPECT_TRUE(IsZNormalized(perturbed.series(q), 5e-3));
    perturbed_mean += std::sqrt(nearest_sq(perturbed.series(q)));
    fresh_mean += std::sqrt(nearest_sq(fresh.series(q)));
  }
  EXPECT_LT(perturbed_mean * 2.0, fresh_mean)
      << "perturbed queries should sit far closer to the collection";
}

TEST(GeneratorTest, PerturbedQueriesAreDeterministic) {
  const Dataset a = GeneratePerturbedQueries(DatasetKind::kSeismicBurst, 5,
                                             96, 9, 100, 0.25);
  const Dataset b = GeneratePerturbedQueries(DatasetKind::kSeismicBurst, 5,
                                             96, 9, 100, 0.25);
  for (SeriesId q = 0; q < 5; ++q) {
    for (size_t j = 0; j < 96; ++j) {
      ASSERT_EQ(a.series(q)[j], b.series(q)[j]);
    }
  }
}

TEST(GeneratorTest, KindNamesRoundTrip) {
  for (const DatasetKind kind :
       {DatasetKind::kRandomWalk, DatasetKind::kSaldEeg,
        DatasetKind::kSeismicBurst}) {
    auto parsed = ParseDatasetKind(DatasetKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseDatasetKind("bogus").ok());
  // "synthetic" is an accepted alias for the paper's dataset name.
  auto alias = ParseDatasetKind("synthetic");
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(*alias, DatasetKind::kRandomWalk);
}

// --- simulated disk --------------------------------------------------------

TEST(SimDiskTest, ReadsBytesFaithfully) {
  const Dataset data = SmallDataset(64, 32);
  const std::string path = TempPath("disk_faithful.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());
  auto disk = SimulatedDisk::Open(path, DiskProfile::Instant());
  ASSERT_TRUE(disk.ok());

  DatasetFileInfo info{64, 32, 0};
  std::vector<float> buf(32);
  for (const SeriesId id : {0ul, 7ul, 63ul}) {
    ASSERT_TRUE((*disk)
                    ->ReadAt(info.SeriesOffset(id), buf.data(),
                             info.SeriesBytes())
                    .ok());
    for (size_t j = 0; j < 32; ++j) EXPECT_EQ(buf[j], data.series(id)[j]);
  }
  EXPECT_EQ((*disk)->stats().read_calls, 3u);
  EXPECT_EQ((*disk)->stats().bytes_read, 3 * info.SeriesBytes());
}

TEST(SimDiskTest, RejectsOutOfRangeReads) {
  const Dataset data = SmallDataset(4, 8);
  const std::string path = TempPath("disk_range.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());
  auto disk = SimulatedDisk::Open(path, DiskProfile::Instant());
  ASSERT_TRUE(disk.ok());
  char buf[16];
  EXPECT_FALSE((*disk)->ReadAt((*disk)->file_size() - 4, buf, 16).ok());
}

TEST(SimDiskTest, ThroughputMeteringSlowsReads) {
  const Dataset data = SmallDataset(256, 64);  // 64 KB payload
  const std::string path = TempPath("disk_throughput.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());

  DiskProfile slow;
  slow.name = "slow";
  slow.seq_read_mbps = 1.0;  // 64 KB at 1 MB/s ~ 62 ms
  slow.seek_latency_us = 0.0;
  auto disk = SimulatedDisk::Open(path, slow);
  ASSERT_TRUE(disk.ok());

  std::vector<char> buf(64 * 1024);
  WallTimer timer;
  ASSERT_TRUE((*disk)->ReadAt(kDatasetHeaderBytes, buf.data(), buf.size())
                  .ok());
  EXPECT_GT(timer.ElapsedSeconds(), 0.04);
  EXPECT_GT((*disk)->stats().simulated_busy_seconds, 0.04);
}

TEST(SimDiskTest, SeeksAreChargedAndCounted) {
  const Dataset data = SmallDataset(100, 64);
  const std::string path = TempPath("disk_seeks.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());

  DiskProfile seeky;
  seeky.name = "seeky";
  seeky.seq_read_mbps = 10000.0;
  seeky.seek_latency_us = 5000.0;  // 5 ms
  seeky.contiguity_window_bytes = 0;
  auto disk = SimulatedDisk::Open(path, seeky);
  ASSERT_TRUE(disk.ok());

  DatasetFileInfo info{100, 64, 0};
  std::vector<float> buf(64);
  WallTimer timer;
  // Alternate between far-apart series: every read is a seek.
  for (int i = 0; i < 6; ++i) {
    const SeriesId id = (i % 2 == 0) ? 0 : 90;
    ASSERT_TRUE((*disk)
                    ->ReadAt(info.SeriesOffset(id), buf.data(),
                             info.SeriesBytes())
                    .ok());
  }
  EXPECT_GE((*disk)->stats().seeks, 5u);
  EXPECT_GT(timer.ElapsedSeconds(), 0.02);
}

TEST(SimDiskTest, ContiguityWindowSkipsSeekCharge) {
  const Dataset data = SmallDataset(100, 64);
  const std::string path = TempPath("disk_contig.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());

  DiskProfile profile;
  profile.name = "hddish";
  profile.seq_read_mbps = 10000.0;
  profile.seek_latency_us = 5000.0;
  profile.contiguity_window_bytes = 1 << 20;  // everything is "close"
  auto disk = SimulatedDisk::Open(path, profile);
  ASSERT_TRUE(disk.ok());

  DatasetFileInfo info{100, 64, 0};
  std::vector<float> buf(64);
  // Forward skip-sequential reads: no seek charges.
  for (SeriesId id = 0; id < 100; id += 7) {
    ASSERT_TRUE((*disk)
                    ->ReadAt(info.SeriesOffset(id), buf.data(),
                             info.SeriesBytes())
                    .ok());
  }
  EXPECT_EQ((*disk)->stats().seeks, 0u);
}

TEST(SimDiskTest, SingleChannelSerializesConcurrentReaders) {
  const Dataset data = SmallDataset(64, 64);
  const std::string path = TempPath("disk_channels.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());

  DiskProfile hdd1;
  hdd1.seq_read_mbps = 10000.0;
  hdd1.seek_latency_us = 2000.0;  // 2 ms per random read
  hdd1.channels = 1;
  auto disk = SimulatedDisk::Open(path, hdd1);
  ASSERT_TRUE(disk.ok());

  DatasetFileInfo info{64, 64, 0};
  constexpr int kThreads = 4, kReadsPerThread = 5;
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<float> buf(64);
      for (int i = 0; i < kReadsPerThread; ++i) {
        const SeriesId id = (t * 17 + i * 29) % 64;
        ASSERT_TRUE((*disk)
                        ->ReadAt(info.SeriesOffset(id), buf.data(),
                                 info.SeriesBytes())
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  // 20 random reads x 2 ms on one channel must take >= ~40 ms of wall
  // time even with 4 "concurrent" readers.
  EXPECT_GT(timer.ElapsedSeconds(), 0.030);
}

TEST(SimDiskTest, ProfilesHaveExpectedShape) {
  const DiskProfile hdd = DiskProfile::Hdd();
  const DiskProfile ssd = DiskProfile::Ssd();
  EXPECT_TRUE(hdd.metered());
  EXPECT_TRUE(ssd.metered());
  EXPECT_GT(ssd.seq_read_mbps, hdd.seq_read_mbps);
  EXPECT_LT(ssd.seek_latency_us, hdd.seek_latency_us);
  EXPECT_GT(ssd.channels, hdd.channels);
  EXPECT_FALSE(DiskProfile::Instant().metered());
}

// --- buffered reader --------------------------------------------------------

TEST(ReaderTest, StreamsWholeFileInBatches) {
  const Dataset data = SmallDataset(103, 24);
  const std::string path = TempPath("reader_stream.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());

  auto reader = BufferedSeriesReader::Open(path, DiskProfile::Instant(), 10);
  ASSERT_TRUE(reader.ok());
  size_t total = 0;
  for (;;) {
    SeriesBatch batch;
    ASSERT_TRUE((*reader)->NextBatch(&batch).ok());
    if (batch.empty()) break;
    ASSERT_LE(batch.count, 10u);
    EXPECT_EQ(batch.first_id, total);
    for (size_t i = 0; i < batch.count; ++i) {
      const SeriesView expect = data.series(batch.first_id + i);
      const SeriesView got = batch.series(i);
      for (size_t j = 0; j < 24; ++j) ASSERT_EQ(got[j], expect[j]);
    }
    total += batch.count;
  }
  EXPECT_EQ(total, 103u);
  // Final batch is the remainder (103 = 10*10 + 3).
}

TEST(ReaderTest, RewindRestarts) {
  const Dataset data = SmallDataset(20, 16);
  const std::string path = TempPath("reader_rewind.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());
  auto reader = BufferedSeriesReader::Open(path, DiskProfile::Instant(), 64);
  ASSERT_TRUE(reader.ok());
  SeriesBatch batch;
  ASSERT_TRUE((*reader)->NextBatch(&batch).ok());
  EXPECT_EQ(batch.count, 20u);
  ASSERT_TRUE((*reader)->NextBatch(&batch).ok());
  EXPECT_TRUE(batch.empty());
  (*reader)->Rewind();
  ASSERT_TRUE((*reader)->NextBatch(&batch).ok());
  EXPECT_EQ(batch.count, 20u);
  EXPECT_EQ(batch.first_id, 0u);
}

TEST(ReaderTest, RejectsZeroBatch) {
  const Dataset data = SmallDataset(4, 8);
  const std::string path = TempPath("reader_zero.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());
  EXPECT_FALSE(
      BufferedSeriesReader::Open(path, DiskProfile::Instant(), 0).ok());
}

}  // namespace
}  // namespace parisax
