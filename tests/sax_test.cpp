// Tests for PAA and iSAX words: prefix/promotion laws, root keys,
// containment, and the string rendering.
#include <gtest/gtest.h>

#include <vector>

#include "dist/znorm.h"
#include "io/generator.h"
#include "sax/paa.h"
#include "sax/word.h"
#include "util/rng.h"

namespace parisax {
namespace {

TEST(PaaTest, ExactMeansOnDivisibleLength) {
  const std::vector<float> series = {1, 1, 2, 2, 3, 3, 10, 10};
  float paa[4];
  ComputePaa(SeriesView(series.data(), series.size()), 4, paa);
  EXPECT_FLOAT_EQ(paa[0], 1.0f);
  EXPECT_FLOAT_EQ(paa[1], 2.0f);
  EXPECT_FLOAT_EQ(paa[2], 3.0f);
  EXPECT_FLOAT_EQ(paa[3], 10.0f);
}

TEST(PaaTest, RemainderSpreadsOverSegments) {
  // 10 points over 4 segments: boundaries at 0,2,5,7,10.
  std::vector<float> series(10);
  for (size_t i = 0; i < 10; ++i) series[i] = static_cast<float>(i);
  float paa[4];
  ComputePaa(SeriesView(series.data(), series.size()), 4, paa);
  EXPECT_FLOAT_EQ(paa[0], 0.5f);   // mean of 0,1
  EXPECT_FLOAT_EQ(paa[1], 3.0f);   // mean of 2,3,4
  EXPECT_FLOAT_EQ(paa[2], 5.5f);   // mean of 5,6
  EXPECT_FLOAT_EQ(paa[3], 8.0f);   // mean of 7,8,9
}

TEST(PaaTest, SegmentsCoverSeriesExactly) {
  for (const size_t n : {8u, 100u, 128u, 256u, 257u}) {
    for (const size_t w : {1u, 4u, 8u, 16u}) {
      if (w > n) continue;
      EXPECT_EQ(PaaSegmentBegin(n, w, 0), 0u);
      EXPECT_EQ(PaaSegmentBegin(n, w, w), n);
      for (size_t s = 0; s < w; ++s) {
        EXPECT_LT(PaaSegmentBegin(n, w, s), PaaSegmentBegin(n, w, s + 1))
            << "n=" << n << " w=" << w << " s=" << s;
      }
    }
  }
}

TEST(PaaTest, WholeSeriesMeanForSingleSegment) {
  std::vector<float> series = {2.0f, 4.0f, 6.0f, 8.0f};
  float paa[1];
  ComputePaa(SeriesView(series.data(), series.size()), 1, paa);
  EXPECT_FLOAT_EQ(paa[0], 5.0f);
}

TEST(SaxWordTest, TruncateIsBitPrefix) {
  // Symbol 0b10110011 at 8 bits.
  const uint8_t full = 0b10110011;
  EXPECT_EQ(TruncateSymbol(full, 8), full);
  EXPECT_EQ(TruncateSymbol(full, 4), 0b1011);
  EXPECT_EQ(TruncateSymbol(full, 2), 0b10);
  EXPECT_EQ(TruncateSymbol(full, 1), 0b1);
}

// The nesting law: truncating to b bits then "re-truncating" to fewer
// bits equals truncating directly.
TEST(SaxWordTest, TruncationComposes) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const uint8_t full = static_cast<uint8_t>(rng.NextU64() & 0xff);
    for (int b1 = 1; b1 <= 8; ++b1) {
      for (int b2 = 1; b2 <= b1; ++b2) {
        EXPECT_EQ(TruncateSymbol(full, b2),
                  TruncateSymbol(full, b1) >> (b1 - b2));
      }
    }
  }
}

TEST(SaxWordTest, RootKeyPacksTopBits) {
  SaxSymbols sax;
  const int w = 4;
  sax.symbols[0] = 0b10000000;  // top bit 1
  sax.symbols[1] = 0b01111111;  // top bit 0
  sax.symbols[2] = 0b11000000;  // top bit 1
  sax.symbols[3] = 0b00000000;  // top bit 0
  EXPECT_EQ(RootKey(sax, w), 0b1010u);
}

TEST(SaxWordTest, RootWordRoundTripsKey) {
  for (const int w : {1, 4, 8, 12, 16}) {
    const uint32_t max_key = 1u << w;
    for (uint32_t key = 0; key < max_key; key += (max_key / 16) + 1) {
      const SaxWord word = RootWord(key, w);
      SaxSymbols probe;
      for (int s = 0; s < w; ++s) {
        ASSERT_EQ(word.bits[s], 1);
        // Place the symbol's bit at the top of an 8-bit symbol.
        probe.symbols[s] = static_cast<uint8_t>(word.symbols[s] << 7);
      }
      EXPECT_EQ(RootKey(probe, w), key);
    }
  }
}

TEST(SaxWordTest, WordContainsMatchesTruncation) {
  Rng rng(4242);
  const int w = 8;
  for (int trial = 0; trial < 100; ++trial) {
    SaxSymbols full;
    for (int s = 0; s < w; ++s) {
      full.symbols[s] = static_cast<uint8_t>(rng.NextU64() & 0xff);
    }
    SaxWord word;
    for (int s = 0; s < w; ++s) {
      word.bits[s] = static_cast<uint8_t>(1 + rng.NextBelow(8));
      word.symbols[s] = TruncateSymbol(full.symbols[s], word.bits[s]);
    }
    EXPECT_TRUE(WordContains(word, full, w));
    // Perturbing any segment's symbol breaks containment.
    const int seg = static_cast<int>(rng.NextBelow(w));
    word.symbols[seg] ^= 1;
    EXPECT_FALSE(WordContains(word, full, w));
  }
}

TEST(SaxWordTest, SymbolsFromPaaMatchesTable) {
  GeneratorOptions gen;
  gen.count = 50;
  gen.length = 64;
  gen.seed = 5;
  const Dataset data = GenerateDataset(gen);
  const BreakpointTable& table = BreakpointTable::Get();
  const int w = 8;
  float paa[kMaxSegments];
  SaxSymbols sax;
  for (SeriesId i = 0; i < data.count(); ++i) {
    ComputePaa(data.series(i), w, paa);
    SymbolsFromPaa(paa, w, &sax);
    for (int s = 0; s < w; ++s) {
      EXPECT_EQ(sax.symbols[s], table.FullSymbol(paa[s]));
      EXPECT_GE(paa[s], table.RegionLow(kMaxCardBits, sax.symbols[s]));
      EXPECT_LE(paa[s], table.RegionHigh(kMaxCardBits, sax.symbols[s]));
    }
  }
}

TEST(SaxWordTest, ToStringRendersBits) {
  SaxWord word;
  word.symbols[0] = 0b1;
  word.bits[0] = 1;
  word.symbols[1] = 0b01;
  word.bits[1] = 2;
  EXPECT_EQ(word.ToString(2), "1^1 01^2");
}

}  // namespace
}  // namespace parisax
