// Cross-engine equivalence: every similarity-search engine must return
// the same exact nearest neighbor as the brute-force oracle, across
// dataset kinds, algorithms and thread counts, both in memory and on
// (simulated) disk.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <tuple>

#include "core/engine.h"
#include "dist/euclidean.h"
#include "io/format.h"
#include "io/generator.h"
#include "scan/ucr_scan.h"

namespace parisax {
namespace {

constexpr size_t kCount = 3000;
constexpr size_t kLength = 64;
constexpr size_t kQueries = 8;

// Engines compute distances with different kernel/block associations, so
// float rounding can differ in the last ulps.
constexpr float kTol = 1e-3f;

EngineOptions SmallTreeOptions(Algorithm algorithm, int threads) {
  EngineOptions options;
  options.algorithm = algorithm;
  options.num_threads = threads;
  options.tree.segments = 8;
  options.tree.leaf_capacity = 32;
  options.tree.series_length = 0;
  options.batch_series = 512;
  options.batches_per_round = 2;
  options.chunk_series = 256;
  return options;
}

void ExpectSameNeighbor(const Dataset& dataset, SeriesView query,
                        const Neighbor& got, const Neighbor& oracle,
                        const std::string& label) {
  ASSERT_LT(oracle.id, dataset.count());
  EXPECT_NEAR(got.distance_sq, oracle.distance_sq,
              kTol * std::max(1.0f, oracle.distance_sq))
      << label << ": distance mismatch (got id " << got.id << ", oracle id "
      << oracle.id << ")";
  // The returned id must actually realize (nearly) the oracle distance.
  ASSERT_LT(got.id, dataset.count()) << label;
  const float recomputed = SquaredEuclideanScalar(
      query.data(), dataset.series(got.id).data(), query.size());
  EXPECT_NEAR(recomputed, oracle.distance_sq,
              kTol * std::max(1.0f, oracle.distance_sq))
      << label << ": returned id is not a true nearest neighbor";
}

std::string SanitizeAlgo(Algorithm algorithm) {
  std::string algo = AlgorithmName(algorithm);
  for (char& c : algo) {
    if (c == '+') c = 'P';
    if (c == '-') c = '_';
  }
  return algo;
}

std::string InMemoryName(
    const ::testing::TestParamInfo<std::tuple<DatasetKind, Algorithm, int>>&
        info) {
  return std::string(DatasetKindName(std::get<0>(info.param))) + "_" +
         SanitizeAlgo(std::get<1>(info.param)) + "_t" +
         std::to_string(std::get<2>(info.param));
}

std::string OnDiskName(
    const ::testing::TestParamInfo<std::tuple<Algorithm, int>>& info) {
  return SanitizeAlgo(std::get<0>(info.param)) + "_t" +
         std::to_string(std::get<1>(info.param));
}

class InMemoryEquivalence
    : public ::testing::TestWithParam<std::tuple<DatasetKind, Algorithm,
                                                 int>> {};

TEST_P(InMemoryEquivalence, ExactMatchesBruteForce) {
  const auto [kind, algorithm, threads] = GetParam();
  GeneratorOptions gen;
  gen.kind = kind;
  gen.count = kCount;
  gen.length = kLength;
  gen.seed = 7;
  const Dataset dataset = GenerateDataset(gen);
  const Dataset queries = GenerateQueries(kind, kQueries, kLength, gen.seed);

  auto engine =
      Engine::Build(SourceSpec::Borrowed(&dataset),
                    SmallTreeOptions(algorithm, threads));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  for (size_t q = 0; q < queries.count(); ++q) {
    const SeriesView query = queries.series(q);
    const Neighbor oracle = BruteForceNn(InMemorySource(&dataset), query,
                                         KernelPolicy::kScalar);
    auto response = (*engine)->Search(query, {});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->neighbors.size(), 1u);
    ExpectSameNeighbor(dataset, query, response->neighbors[0], oracle,
                       std::string(AlgorithmName(algorithm)) + "/q" +
                           std::to_string(q));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, InMemoryEquivalence,
    ::testing::Combine(
        ::testing::Values(DatasetKind::kRandomWalk, DatasetKind::kSaldEeg,
                          DatasetKind::kSeismicBurst),
        ::testing::Values(Algorithm::kUcrSerial, Algorithm::kUcrParallel,
                          Algorithm::kAdsPlus, Algorithm::kParis,
                          Algorithm::kParisPlus, Algorithm::kMessi),
        ::testing::Values(1, 3, 4)),
    InMemoryName);

class OnDiskEquivalence
    : public ::testing::TestWithParam<std::tuple<Algorithm, int>> {
 protected:
  // One file set per parameter instance: ctest runs instances of this
  // suite in parallel processes, and rewriting a shared file races with
  // a concurrent reader.
  std::string InstancePath(const char* extension) const {
    const auto [algorithm, threads] = GetParam();
    return ::testing::TempDir() + "/ondisk_equivalence_" +
           std::to_string(static_cast<int>(algorithm)) + "_" +
           std::to_string(threads) + extension;
  }

  void SetUp() override {
    GeneratorOptions gen;
    gen.kind = DatasetKind::kRandomWalk;
    gen.count = kCount;
    gen.length = kLength;
    gen.seed = 11;
    dataset_ = GenerateDataset(gen);
    path_ = InstancePath(".psax");
    ASSERT_TRUE(WriteDataset(dataset_, path_).ok());
  }

  Dataset dataset_;
  std::string path_;
};

TEST_P(OnDiskEquivalence, ExactMatchesBruteForce) {
  const auto [algorithm, threads] = GetParam();
  EngineOptions options = SmallTreeOptions(algorithm, threads);
  options.leaf_storage_path = InstancePath(".leaves");

  auto engine = Engine::Build(SourceSpec::File(path_), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, kQueries, kLength, 11);
  for (size_t q = 0; q < queries.count(); ++q) {
    const SeriesView query = queries.series(q);
    const Neighbor oracle = BruteForceNn(InMemorySource(&dataset_), query,
                                         KernelPolicy::kScalar);
    auto response = (*engine)->Search(query, {});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ExpectSameNeighbor(dataset_, query, response->neighbors[0], oracle,
                       std::string("ondisk/") + AlgorithmName(algorithm));
  }
}

INSTANTIATE_TEST_SUITE_P(
    OnDiskEngines, OnDiskEquivalence,
    ::testing::Combine(::testing::Values(Algorithm::kUcrSerial,
                                         Algorithm::kAdsPlus,
                                         Algorithm::kParis,
                                         Algorithm::kParisPlus),
                       ::testing::Values(1, 4)),
    OnDiskName);

TEST(KnnIntegration, MessiMatchesBruteForceKnn) {
  GeneratorOptions gen;
  gen.count = kCount;
  gen.length = kLength;
  gen.seed = 13;
  const Dataset dataset = GenerateDataset(gen);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 4, kLength, 13);

  auto engine = Engine::Build(SourceSpec::Borrowed(&dataset),
                              SmallTreeOptions(Algorithm::kMessi, 4));
  ASSERT_TRUE(engine.ok());

  for (size_t q = 0; q < queries.count(); ++q) {
    const SeriesView query = queries.series(q);
    for (const size_t k : {1u, 5u, 17u}) {
      const auto oracle = BruteForceKnn(InMemorySource(&dataset), query, k,
                                        KernelPolicy::kScalar);
      SearchRequest request;
      request.k = k;
      auto response = (*engine)->Search(query, request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_EQ(response->neighbors.size(), k);
      for (size_t i = 0; i < k; ++i) {
        EXPECT_NEAR(response->neighbors[i].distance_sq,
                    oracle[i].distance_sq,
                    kTol * std::max(1.0f, oracle[i].distance_sq))
            << "k=" << k << " i=" << i;
      }
      // Ascending order.
      for (size_t i = 1; i < k; ++i) {
        EXPECT_LE(response->neighbors[i - 1].distance_sq,
                  response->neighbors[i].distance_sq);
      }
    }
  }
}

TEST(DtwIntegration, MessiAndScansMatchBruteForceDtw) {
  GeneratorOptions gen;
  gen.count = 800;
  gen.length = kLength;
  gen.seed = 17;
  const Dataset dataset = GenerateDataset(gen);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 4, kLength, 17);
  const size_t band = 5;

  for (const Algorithm algorithm :
       {Algorithm::kUcrSerial, Algorithm::kUcrParallel, Algorithm::kMessi}) {
    auto engine =
        Engine::Build(SourceSpec::Borrowed(&dataset),
                      SmallTreeOptions(algorithm, 3));
    ASSERT_TRUE(engine.ok());
    for (size_t q = 0; q < queries.count(); ++q) {
      const SeriesView query = queries.series(q);
      const Neighbor oracle =
          BruteForceDtwNn(InMemorySource(&dataset), query, band);
      SearchRequest request;
      request.dtw = true;
      request.dtw_band = band;
      auto response = (*engine)->Search(query, request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_NEAR(response->neighbors[0].distance_sq, oracle.distance_sq,
                  kTol * std::max(1.0f, oracle.distance_sq))
          << AlgorithmName(algorithm) << "/q" << q;
    }
  }
}

TEST(ApproximateIntegration, ApproximateIsUpperBoundOfExact) {
  GeneratorOptions gen;
  gen.count = kCount;
  gen.length = kLength;
  gen.seed = 19;
  const Dataset dataset = GenerateDataset(gen);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 8, kLength, 19);

  for (const Algorithm algorithm :
       {Algorithm::kAdsPlus, Algorithm::kParisPlus, Algorithm::kMessi}) {
    auto engine =
        Engine::Build(SourceSpec::Borrowed(&dataset),
                      SmallTreeOptions(algorithm, 3));
    ASSERT_TRUE(engine.ok());
    for (size_t q = 0; q < queries.count(); ++q) {
      const SeriesView query = queries.series(q);
      SearchRequest approx;
      approx.approximate = true;
      auto a = (*engine)->Search(query, approx);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      auto e = (*engine)->Search(query, {});
      ASSERT_TRUE(e.ok());
      // Approximate distance can never beat the exact minimum.
      EXPECT_GE(a->neighbors[0].distance_sq,
                e->neighbors[0].distance_sq - kTol);
    }
  }
}

}  // namespace
}  // namespace parisax
