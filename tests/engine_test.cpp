// Tests for the public Engine facade: option validation, the
// capability model (every Algorithm x request-feature cell must agree
// with Engine::capabilities()), SourceSpec residencies (borrowed,
// adopted, mmap, streamed file), build reports, and algorithm name
// parsing.
#include "core/engine.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "io/format.h"
#include "io/generator.h"

namespace parisax {
namespace {

Dataset MakeData(size_t count = 500, size_t length = 64) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = length;
  gen.seed = 71;
  return GenerateDataset(gen);
}

EngineOptions BaseOptions(Algorithm algorithm) {
  EngineOptions o;
  o.algorithm = algorithm;
  o.num_threads = 2;
  o.tree.segments = 8;
  o.tree.leaf_capacity = 16;
  return o;
}

TEST(EngineTest, AlgorithmNamesRoundTrip) {
  for (const Algorithm a :
       {Algorithm::kBruteForce, Algorithm::kUcrSerial,
        Algorithm::kUcrParallel, Algorithm::kAdsPlus, Algorithm::kParis,
        Algorithm::kParisPlus, Algorithm::kMessi}) {
    auto parsed = ParseAlgorithm(AlgorithmName(a));
    ASSERT_TRUE(parsed.ok()) << AlgorithmName(a);
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(ParseAlgorithm("quantum").ok());
}

TEST(EngineTest, BuildReportHasTreeForIndexEngines) {
  const Dataset data = MakeData();
  for (const Algorithm a :
       {Algorithm::kAdsPlus, Algorithm::kParisPlus, Algorithm::kMessi}) {
    auto engine = Engine::Build(SourceSpec::Borrowed(&data), BaseOptions(a));
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ((*engine)->build_report().tree.total_entries, data.count())
        << AlgorithmName(a);
    EXPECT_GT((*engine)->build_report().wall_seconds, 0.0);
    EXPECT_FALSE((*engine)->build_report().details.empty());
  }
  auto scan = Engine::Build(SourceSpec::Borrowed(&data),
                            BaseOptions(Algorithm::kUcrSerial));
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ((*scan)->build_report().tree.total_entries, 0u);
}

TEST(EngineTest, RejectsBadOptions) {
  const Dataset data = MakeData();
  EngineOptions bad = BaseOptions(Algorithm::kMessi);
  bad.num_threads = 0;
  EXPECT_EQ(Engine::Build(SourceSpec::Borrowed(&data), bad).status().code(),
            StatusCode::kInvalidArgument);

  EngineOptions wrong_len = BaseOptions(Algorithm::kMessi);
  wrong_len.tree.series_length = 32;
  EXPECT_EQ(
      Engine::Build(SourceSpec::Borrowed(&data), wrong_len).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, RejectsWrongQueryShapes) {
  const Dataset data = MakeData();
  auto engine =
      Engine::Build(SourceSpec::Borrowed(&data),
                    BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(engine.ok());
  std::vector<float> short_query(32, 0.0f);
  EXPECT_EQ((*engine)
                ->Search(SeriesView(short_query.data(), 32), {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  std::vector<float> query(64, 0.0f);
  SearchRequest zero_k;
  zero_k.k = 0;
  EXPECT_EQ((*engine)
                ->Search(SeriesView(query.data(), 64), zero_k)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, CapabilityGating) {
  const Dataset data = MakeData();
  std::vector<float> query(64, 0.0f);
  const SeriesView q(query.data(), 64);

  // kNN > 1 unsupported on ParIS+.
  auto paris = Engine::Build(SourceSpec::Borrowed(&data),
                             BaseOptions(Algorithm::kParisPlus));
  ASSERT_TRUE(paris.ok());
  SearchRequest knn;
  knn.k = 5;
  EXPECT_EQ((*paris)->Search(q, knn).status().code(),
            StatusCode::kNotSupported);

  // DTW unsupported on ADS+.
  auto ads = Engine::Build(SourceSpec::Borrowed(&data),
                           BaseOptions(Algorithm::kAdsPlus));
  ASSERT_TRUE(ads.ok());
  SearchRequest dtw;
  dtw.dtw = true;
  EXPECT_EQ((*ads)->Search(q, dtw).status().code(),
            StatusCode::kNotSupported);

  // Approximate unsupported on scans.
  auto ucr = Engine::Build(SourceSpec::Borrowed(&data),
                           BaseOptions(Algorithm::kUcrParallel));
  ASSERT_TRUE(ucr.ok());
  SearchRequest approx;
  approx.approximate = true;
  EXPECT_EQ((*ucr)->Search(q, approx).status().code(),
            StatusCode::kNotSupported);
}

TEST(EngineTest, OnDiskRejectsInMemoryOnlyEngines) {
  const Dataset data = MakeData(100);
  const std::string path = ::testing::TempDir() + "/engine_ondisk.psax";
  ASSERT_TRUE(WriteDataset(data, path).ok());
  for (const Algorithm a :
       {Algorithm::kBruteForce, Algorithm::kUcrParallel, Algorithm::kMessi}) {
    EXPECT_EQ(Engine::Build(SourceSpec::File(path), BaseOptions(a))
                  .status()
                  .code(),
              StatusCode::kNotSupported)
        << AlgorithmName(a);
  }
}

TEST(EngineTest, OnDiskDefaultsLeafStoragePath) {
  const Dataset data = MakeData(200);
  const std::string path = ::testing::TempDir() + "/engine_leafdflt.psax";
  ASSERT_TRUE(WriteDataset(data, path).ok());
  auto engine =
      Engine::Build(SourceSpec::File(path), BaseOptions(Algorithm::kParisPlus));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->options().leaf_storage_path, path + ".leaves");
}

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kBruteForce, Algorithm::kUcrSerial, Algorithm::kUcrParallel,
    Algorithm::kAdsPlus,    Algorithm::kParis,     Algorithm::kParisPlus,
    Algorithm::kMessi};

/// Success or typed kNotSupported, as the capability bit predicts --
/// anything else (crash, wrong code, silent success) fails the matrix.
void ExpectGated(const Status& status, bool supported,
                 const std::string& label) {
  if (supported) {
    EXPECT_TRUE(status.ok()) << label << ": " << status.ToString();
  } else {
    EXPECT_EQ(status.code(), StatusCode::kNotSupported) << label;
  }
}

TEST(EngineTest, CapabilityMatrixAgreesWithBehavior) {
  // The doc-only contracts are gone: sweep every Algorithm x
  // {k>1, dtw, approximate, Save} cell and require the observed result
  // to agree with Engine::capabilities().
  const Dataset data = MakeData(600);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 1, 64, 71);
  const SeriesView q = queries.series(0);

  for (const Algorithm a : kAllAlgorithms) {
    auto engine = Engine::Build(SourceSpec::Borrowed(&data),
                                BaseOptions(a));
    ASSERT_TRUE(engine.ok()) << AlgorithmName(a);
    const EngineCapabilities caps = (*engine)->capabilities();
    const std::string name = AlgorithmName(a);

    SearchRequest knn;
    knn.k = 4;
    ExpectGated((*engine)->Search(q, knn).status(), caps.max_k >= 4,
                name + "/knn");

    SearchRequest dtw;
    dtw.dtw = true;
    dtw.dtw_band = 4;
    ExpectGated((*engine)->Search(q, dtw).status(), caps.dtw,
                name + "/dtw");

    SearchRequest knn_dtw;
    knn_dtw.k = 4;
    knn_dtw.dtw = true;
    ExpectGated((*engine)->Search(q, knn_dtw).status(), caps.dtw_knn,
                name + "/knn_dtw");

    SearchRequest approx;
    approx.approximate = true;
    ExpectGated((*engine)->Search(q, approx).status(), caps.approximate,
                name + "/approximate");

    const std::string snap =
        ::testing::TempDir() + "/engine_caps_" +
        std::to_string(static_cast<int>(a)) + ".snap";
    ExpectGated((*engine)->Save(snap), caps.snapshot, name + "/save");
    std::remove(snap.c_str());

    // Borrowed collections cannot grow: the append cell must be a
    // typed rejection here for every algorithm.
    EXPECT_FALSE(caps.append) << name;
    GeneratorOptions tail_gen;
    tail_gen.count = 8;
    tail_gen.length = 64;
    tail_gen.seed = 99;
    const Dataset tail = GenerateDataset(tail_gen);
    ExpectGated((*engine)->Append(tail).status(), caps.append,
                name + "/append-borrowed");

    // Over an adopted source the table's append row applies as-is.
    auto adopted = Engine::Build(
        SourceSpec::InMemory(GenerateDataset(
            GeneratorOptions{.count = 600, .length = 64, .seed = 71})),
        BaseOptions(a));
    ASSERT_TRUE(adopted.ok()) << name;
    const EngineCapabilities adopted_caps = (*adopted)->capabilities();
    EXPECT_EQ(adopted_caps.append, AlgorithmCapabilities(a).append)
        << name;
    ExpectGated((*adopted)->Append(tail).status(), adopted_caps.append,
                name + "/append-adopted");
  }
}

TEST(EngineTest, NarrowCapabilitiesMatchesLiveEngines) {
  // The residency-enum narrowing (what docs/capabilities.md is
  // generated from) must agree with what a real engine of that
  // residency reports.
  const Dataset data = MakeData(400);
  auto borrowed = Engine::Build(SourceSpec::Borrowed(&data),
                                BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(borrowed.ok());
  const EngineCapabilities want_borrowed = NarrowCapabilities(
      Algorithm::kMessi, SourceResidency::kBorrowedMemory);
  EXPECT_EQ((*borrowed)->capabilities().append, want_borrowed.append);
  EXPECT_FALSE(want_borrowed.append);

  auto owned = Engine::Build(SourceSpec::InMemory(MakeData(400)),
                             BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(owned.ok());
  const EngineCapabilities want_owned =
      NarrowCapabilities(Algorithm::kMessi, SourceResidency::kOwnedMemory);
  EXPECT_EQ((*owned)->capabilities().append, want_owned.append);
  EXPECT_TRUE(want_owned.append);

  const EngineCapabilities streamed = NarrowCapabilities(
      Algorithm::kUcrSerial, SourceResidency::kStreamedFile);
  EXPECT_FALSE(streamed.dtw);
  EXPECT_TRUE(streamed.append);
}

TEST(EngineTest, StreamedSourceNarrowsCapabilities) {
  const Dataset data = MakeData(300);
  const std::string path = ::testing::TempDir() + "/engine_narrow.psax";
  ASSERT_TRUE(WriteDataset(data, path).ok());

  // In memory, the serial UCR scan supports DTW ...
  auto mem = Engine::Build(SourceSpec::Borrowed(&data),
                           BaseOptions(Algorithm::kUcrSerial));
  ASSERT_TRUE(mem.ok());
  EXPECT_TRUE((*mem)->capabilities().dtw);

  // ... but the streamed variant has no DTW path, and the instance
  // capabilities (and the search gate) must say so.
  auto streamed = Engine::Build(SourceSpec::File(path),
                                BaseOptions(Algorithm::kUcrSerial));
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_FALSE((*streamed)->capabilities().dtw);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 1, 64, 71);
  SearchRequest dtw;
  dtw.dtw = true;
  EXPECT_EQ((*streamed)->Search(queries.series(0), dtw).status().code(),
            StatusCode::kNotSupported);
  std::remove(path.c_str());
}

TEST(EngineTest, MmapBuildMatchesInMemoryBuildExactly) {
  // The ROADMAP item this PR delivers: Engine::Build over an mmap source
  // runs the full MESSI / ParIS+ construction with no in-RAM copy of the
  // collection, and answers byte-identically to the in-memory build.
  const Dataset data = MakeData(1200);
  const std::string path = ::testing::TempDir() + "/engine_mmap.psax";
  ASSERT_TRUE(WriteDataset(data, path).ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 5, 64, 72);

  for (const Algorithm a :
       {Algorithm::kMessi, Algorithm::kParisPlus, Algorithm::kParis}) {
    auto ram = Engine::Build(SourceSpec::Borrowed(&data), BaseOptions(a));
    ASSERT_TRUE(ram.ok()) << AlgorithmName(a);
    auto mmap = Engine::Build(SourceSpec::Mmap(path), BaseOptions(a));
    ASSERT_TRUE(mmap.ok()) << AlgorithmName(a) << ": "
                           << mmap.status().ToString();
    // Queries run straight off the mapping: the engine's source is the
    // mmap block, not a copy.
    EXPECT_NE((*mmap)->source().ContiguousData(), nullptr);

    for (SeriesId q = 0; q < queries.count(); ++q) {
      SearchRequest request;
      auto want = (*ram)->Search(queries.series(q), request);
      auto got = (*mmap)->Search(queries.series(q), request);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(want->neighbors.size(), got->neighbors.size());
      EXPECT_EQ(want->neighbors[0].id, got->neighbors[0].id);
      // Byte-identical: same kernels over the same float values.
      EXPECT_EQ(want->neighbors[0].distance_sq,
                got->neighbors[0].distance_sq);
    }
  }

  // MESSI kNN and DTW also agree exactly across residencies.
  auto ram = Engine::Build(SourceSpec::Borrowed(&data),
                           BaseOptions(Algorithm::kMessi));
  auto mmap = Engine::Build(SourceSpec::Mmap(path),
                            BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(ram.ok());
  ASSERT_TRUE(mmap.ok());
  for (SeriesId q = 0; q < queries.count(); ++q) {
    SearchRequest knn;
    knn.k = 7;
    auto want = (*ram)->Search(queries.series(q), knn);
    auto got = (*mmap)->Search(queries.series(q), knn);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(want->neighbors.size(), got->neighbors.size());
    for (size_t i = 0; i < want->neighbors.size(); ++i) {
      EXPECT_EQ(want->neighbors[i].id, got->neighbors[i].id);
      EXPECT_EQ(want->neighbors[i].distance_sq,
                got->neighbors[i].distance_sq);
    }
    SearchRequest dtw;
    dtw.dtw = true;
    dtw.dtw_band = 5;
    auto want_dtw = (*ram)->Search(queries.series(q), dtw);
    auto got_dtw = (*mmap)->Search(queries.series(q), dtw);
    ASSERT_TRUE(want_dtw.ok());
    ASSERT_TRUE(got_dtw.ok());
    EXPECT_EQ(want_dtw->neighbors[0].id, got_dtw->neighbors[0].id);
    EXPECT_EQ(want_dtw->neighbors[0].distance_sq,
              got_dtw->neighbors[0].distance_sq);
  }
  std::remove(path.c_str());
}

TEST(EngineTest, AdoptedSourceOutlivesCallerScope) {
  // SourceSpec::InMemory kills the dataset-lifetime footgun: the engine
  // owns the collection, so the caller's Dataset can go away.
  std::unique_ptr<Engine> engine;
  {
    Dataset data = MakeData(400);
    auto built = Engine::Build(SourceSpec::InMemory(std::move(data)),
                               BaseOptions(Algorithm::kMessi));
    ASSERT_TRUE(built.ok());
    engine = std::move(*built);
  }
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 3, 64, 73);
  for (SeriesId q = 0; q < queries.count(); ++q) {
    auto response = engine->Search(queries.series(q), {});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_LT(response->neighbors[0].id, 400u);
  }
}

TEST(EngineTest, SearchReportsStats) {
  const Dataset data = MakeData(1000);
  auto engine =
      Engine::Build(SourceSpec::Borrowed(&data),
                    BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(engine.ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 1, 64, 71);
  auto response = (*engine)->Search(queries.series(0), {});
  ASSERT_TRUE(response.ok());
  EXPECT_GT(response->stats.total_seconds, 0.0);
  EXPECT_GT(response->stats.real_dist_calcs, 0u);
  EXPECT_EQ(response->neighbors.size(), 1u);
}

}  // namespace
}  // namespace parisax
