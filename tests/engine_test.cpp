// Tests for the public Engine facade: option validation, capability
// gating, build reports, and algorithm name parsing.
#include "core/engine.h"

#include <gtest/gtest.h>

#include "io/format.h"
#include "io/generator.h"

namespace parisax {
namespace {

Dataset MakeData(size_t count = 500, size_t length = 64) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = length;
  gen.seed = 71;
  return GenerateDataset(gen);
}

EngineOptions BaseOptions(Algorithm algorithm) {
  EngineOptions o;
  o.algorithm = algorithm;
  o.num_threads = 2;
  o.tree.segments = 8;
  o.tree.leaf_capacity = 16;
  return o;
}

TEST(EngineTest, AlgorithmNamesRoundTrip) {
  for (const Algorithm a :
       {Algorithm::kBruteForce, Algorithm::kUcrSerial,
        Algorithm::kUcrParallel, Algorithm::kAdsPlus, Algorithm::kParis,
        Algorithm::kParisPlus, Algorithm::kMessi}) {
    auto parsed = ParseAlgorithm(AlgorithmName(a));
    ASSERT_TRUE(parsed.ok()) << AlgorithmName(a);
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(ParseAlgorithm("quantum").ok());
}

TEST(EngineTest, BuildReportHasTreeForIndexEngines) {
  const Dataset data = MakeData();
  for (const Algorithm a :
       {Algorithm::kAdsPlus, Algorithm::kParisPlus, Algorithm::kMessi}) {
    auto engine = Engine::BuildInMemory(&data, BaseOptions(a));
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ((*engine)->build_report().tree.total_entries, data.count())
        << AlgorithmName(a);
    EXPECT_GT((*engine)->build_report().wall_seconds, 0.0);
    EXPECT_FALSE((*engine)->build_report().details.empty());
  }
  auto scan = Engine::BuildInMemory(&data,
                                    BaseOptions(Algorithm::kUcrSerial));
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ((*scan)->build_report().tree.total_entries, 0u);
}

TEST(EngineTest, RejectsBadOptions) {
  const Dataset data = MakeData();
  EngineOptions bad = BaseOptions(Algorithm::kMessi);
  bad.num_threads = 0;
  EXPECT_EQ(Engine::BuildInMemory(&data, bad).status().code(),
            StatusCode::kInvalidArgument);

  EngineOptions wrong_len = BaseOptions(Algorithm::kMessi);
  wrong_len.tree.series_length = 32;
  EXPECT_EQ(Engine::BuildInMemory(&data, wrong_len).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, RejectsWrongQueryShapes) {
  const Dataset data = MakeData();
  auto engine =
      Engine::BuildInMemory(&data, BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(engine.ok());
  std::vector<float> short_query(32, 0.0f);
  EXPECT_EQ((*engine)
                ->Search(SeriesView(short_query.data(), 32), {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  std::vector<float> query(64, 0.0f);
  SearchRequest zero_k;
  zero_k.k = 0;
  EXPECT_EQ((*engine)
                ->Search(SeriesView(query.data(), 64), zero_k)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, CapabilityGating) {
  const Dataset data = MakeData();
  std::vector<float> query(64, 0.0f);
  const SeriesView q(query.data(), 64);

  // kNN > 1 unsupported on ParIS+.
  auto paris = Engine::BuildInMemory(&data,
                                     BaseOptions(Algorithm::kParisPlus));
  ASSERT_TRUE(paris.ok());
  SearchRequest knn;
  knn.k = 5;
  EXPECT_EQ((*paris)->Search(q, knn).status().code(),
            StatusCode::kNotSupported);

  // DTW unsupported on ADS+.
  auto ads = Engine::BuildInMemory(&data, BaseOptions(Algorithm::kAdsPlus));
  ASSERT_TRUE(ads.ok());
  SearchRequest dtw;
  dtw.dtw = true;
  EXPECT_EQ((*ads)->Search(q, dtw).status().code(),
            StatusCode::kNotSupported);

  // Approximate unsupported on scans.
  auto ucr = Engine::BuildInMemory(&data,
                                   BaseOptions(Algorithm::kUcrParallel));
  ASSERT_TRUE(ucr.ok());
  SearchRequest approx;
  approx.approximate = true;
  EXPECT_EQ((*ucr)->Search(q, approx).status().code(),
            StatusCode::kNotSupported);
}

TEST(EngineTest, OnDiskRejectsInMemoryOnlyEngines) {
  const Dataset data = MakeData(100);
  const std::string path = ::testing::TempDir() + "/engine_ondisk.psax";
  ASSERT_TRUE(WriteDataset(data, path).ok());
  for (const Algorithm a :
       {Algorithm::kBruteForce, Algorithm::kUcrParallel, Algorithm::kMessi}) {
    EXPECT_EQ(Engine::BuildFromFile(path, BaseOptions(a)).status().code(),
              StatusCode::kNotSupported)
        << AlgorithmName(a);
  }
}

TEST(EngineTest, OnDiskDefaultsLeafStoragePath) {
  const Dataset data = MakeData(200);
  const std::string path = ::testing::TempDir() + "/engine_leafdflt.psax";
  ASSERT_TRUE(WriteDataset(data, path).ok());
  auto engine =
      Engine::BuildFromFile(path, BaseOptions(Algorithm::kParisPlus));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->options().leaf_storage_path, path + ".leaves");
}

TEST(EngineTest, SearchReportsStats) {
  const Dataset data = MakeData(1000);
  auto engine =
      Engine::BuildInMemory(&data, BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(engine.ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 1, 64, 71);
  auto response = (*engine)->Search(queries.series(0), {});
  ASSERT_TRUE(response.ok());
  EXPECT_GT(response->stats.total_seconds, 0.0);
  EXPECT_GT(response->stats.real_dist_calcs, 0u);
  EXPECT_EQ(response->neighbors.size(), 1u);
}

}  // namespace
}  // namespace parisax
