// Tests for the threading substrate, RNG determinism, timers and aligned
// buffers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "util/aligned.h"
#include "util/rng.h"
#include "util/threading.h"
#include "util/timer.h"

namespace parisax {
namespace {

// --- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicStreams) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, SeedsProduceDistinctStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, MixSeedIsOrderIndependentAndSpreads) {
  // Each (seed, index) pair must yield a stable, well-spread seed.
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) {
    seen.insert(MixSeed(5, i));
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(MixSeed(5, 500), MixSeed(5, 500));
  EXPECT_NE(MixSeed(5, 500), MixSeed(6, 500));
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.NextBelow(17), 17u);
  }
}

// --- AtomicMinFloat ----------------------------------------------------------

TEST(AtomicMinFloatTest, SingleThreadedSemantics) {
  AtomicMinFloat bsf(10.0f);
  EXPECT_FALSE(bsf.UpdateMin(11.0f));
  EXPECT_EQ(bsf.Load(), 10.0f);
  EXPECT_TRUE(bsf.UpdateMin(5.0f));
  EXPECT_EQ(bsf.Load(), 5.0f);
  EXPECT_FALSE(bsf.UpdateMin(5.0f));  // equal is not an improvement
  bsf.Reset(100.0f);
  EXPECT_EQ(bsf.Load(), 100.0f);
}

TEST(AtomicMinFloatTest, ConcurrentUpdatesConvergeToMinimum) {
  AtomicMinFloat bsf(1e30f);
  constexpr int kThreads = 8, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      for (int i = 0; i < kPerThread; ++i) {
        bsf.UpdateMin(static_cast<float>(1.0 + rng.NextDouble() * 1000.0));
      }
      // Exactly one thread offers the global minimum late.
      if (t == 3) bsf.UpdateMin(0.5f);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bsf.Load(), 0.5f);
}

// --- WorkCounter -------------------------------------------------------------

TEST(WorkCounterTest, CoversRangeExactlyOnce) {
  WorkCounter counter(1000);
  std::vector<int> hits(1000, 0);
  size_t begin, end;
  while (counter.NextBatch(37, &begin, &end)) {
    ASSERT_LE(end, 1000u);
    for (size_t i = begin; i < end; ++i) hits[i]++;
  }
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(WorkCounterTest, ConcurrentClaimsArePartition) {
  WorkCounter counter(100000);
  std::atomic<uint64_t> covered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      size_t begin, end;
      uint64_t local = 0;
      while (counter.NextBatch(97, &begin, &end)) local += end - begin;
      covered.fetch_add(local);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(covered.load(), 100000u);
}

TEST(WorkCounterTest, NextItemExhausts) {
  WorkCounter counter(5);
  size_t item, n = 0;
  while (counter.NextItem(&item)) {
    EXPECT_LT(item, 5u);
    ++n;
  }
  EXPECT_EQ(n, 5u);
}

// --- SpinBarrier -------------------------------------------------------------

TEST(SpinBarrierTest, RoundsStayInLockstep) {
  constexpr int kThreads = 4, kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        barrier.ArriveAndWait();
        // Between barriers the counter must be exactly (r+1)*kThreads.
        if (counter.load() != (r + 1) * kThreads) failed.store(true);
        barrier.ArriveAndWait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kThreads * kRounds);
}

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPoolTest, RunExecutesOnAllWorkers) {
  ThreadPool pool(5);
  std::vector<std::atomic<int>> hits(5);
  for (auto& h : hits) h = 0;
  pool.Run([&](int worker) { hits[worker].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RunIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.Run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 60);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(5000, 64, [&](size_t begin, size_t end, int) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolDeathTest, ReentrantRunAbortsEvenInRelease) {
  // The guard must hold in Release builds too (an assert would not), so
  // a nested Run has to abort rather than silently race on the task.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        ThreadPool pool(2);
        pool.Run([&](int worker) {
          if (worker == 0) pool.Run([](int) {});
        });
      },
      "not reentrant");
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  int calls = 0;
  pool.Run([&](int worker) {
    EXPECT_EQ(worker, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

// --- Executor / InlineExecutor -----------------------------------------------

TEST(InlineExecutorTest, RunsOnCallingThreadAsWorkerZero) {
  InlineExecutor exec;
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  exec.Run([&](int worker) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(exec.num_threads(), 1);
}

TEST(InlineExecutorTest, ReentrantAndConcurrent) {
  // Unlike ThreadPool::Run, inline regions may nest and may run
  // concurrently on different threads: that is what lets N queries
  // execute at once, one per serve worker.
  InlineExecutor exec;
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 100; ++round) {
        exec.Run([&](int) { exec.Run([&](int) { total.fetch_add(1); }); });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 400);
}

TEST(InlineExecutorTest, ParallelForCoversRangeThroughExecutorInterface) {
  InlineExecutor exec;
  Executor* as_executor = &exec;
  std::vector<int> hits(1000, 0);
  as_executor->ParallelFor(1000, 32, [&](size_t begin, size_t end, int) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) ASSERT_EQ(h, 1);
}

// --- TaskGroup ---------------------------------------------------------------

TEST(TaskGroupTest, WaitReturnsImmediatelyWhenEmpty) {
  TaskGroup group;
  group.Wait();
  EXPECT_EQ(group.outstanding(), 0u);
}

TEST(TaskGroupTest, WaitBlocksUntilAllDone) {
  TaskGroup group;
  constexpr int kTasks = 64;
  group.Add(kTasks);
  std::atomic<int> finished{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kTasks / 4; ++i) {
        finished.fetch_add(1);
        group.Done();
      }
    });
  }
  group.Wait();
  EXPECT_EQ(finished.load(), kTasks);
  for (auto& t : threads) t.join();
}

TEST(TaskGroupTest, ReArmsAfterDraining) {
  TaskGroup group;
  for (int round = 0; round < 3; ++round) {
    group.Add();
    EXPECT_EQ(group.outstanding(), 1u);
    group.Done();
    group.Wait();
    EXPECT_EQ(group.outstanding(), 0u);
  }
}

// --- timers / aligned --------------------------------------------------------

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.ElapsedSeconds(), 0.015);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

TEST(TimerTest, StageAccumulatorSumsScopes) {
  StageAccumulator acc;
  {
    StageAccumulator::Scope s1(&acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    StageAccumulator::Scope s2(&acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(acc.TotalSeconds(), 0.008);
  acc.Reset();
  EXPECT_EQ(acc.TotalSeconds(), 0.0);
}

TEST(AlignedBufferTest, AlignmentAndZeroInit) {
  AlignedBuffer<float> buf(1000);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kBufferAlignment, 0u);
  for (size_t i = 0; i < 1000; ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a[3] = 7;
  const int* ptr = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[3], 7);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBufferTest, EmptyBufferIsSafe) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  AlignedBuffer<double> sized(0);
  EXPECT_TRUE(sized.empty());
}

}  // namespace
}  // namespace parisax
