// The serving front end: frame codec roundtrips and malformed-input
// fuzz (typed errors, never crashes), deadline and admission-control
// semantics at the query-service layer, and end-to-end parisax_server
// behaviour over real sockets — pipelined ordering, append + query +
// stats storms, overload rejections, and oracle-exact answers.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "index/raw_source.h"
#include "io/generator.h"
#include "net/protocol.h"
#include "net/server.h"
#include "scan/ucr_scan.h"
#include "serve/query_service.h"
#include "shard/sharded_engine.h"
#include "util/cancellation.h"

namespace parisax {
namespace {

constexpr size_t kLength = 64;

Dataset MakeData(size_t count, uint64_t seed) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = kLength;
  gen.seed = seed;
  return GenerateDataset(gen);
}

Dataset MakeQueries(size_t count, uint64_t data_seed) {
  return GenerateQueries(DatasetKind::kRandomWalk, count, kLength,
                         data_seed);
}

// --- codec -----------------------------------------------------------------

TEST(ProtocolTest, FrameHeaderRoundTrip) {
  uint8_t buf[kFrameHeaderSize];
  EncodeFrameHeader(FrameType::kQuery, 1234, buf);
  auto header = DecodeFrameHeader(buf);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, FrameType::kQuery);
  EXPECT_EQ(header->body_len, 1234u);
  EXPECT_EQ(header->version, kProtocolVersion);
}

TEST(ProtocolTest, FrameHeaderRejectsBadMagicVersionAndOversize) {
  uint8_t buf[kFrameHeaderSize];
  EncodeFrameHeader(FrameType::kQuery, 8, buf);
  buf[0] = 'X';  // corrupt the magic
  auto bad_magic = DecodeFrameHeader(buf);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_NE(bad_magic.status().message().find("magic"), std::string::npos);

  EncodeFrameHeader(FrameType::kQuery, 8, buf);
  buf[4] = kProtocolVersion + 1;
  auto bad_version = DecodeFrameHeader(buf);
  ASSERT_FALSE(bad_version.ok());
  EXPECT_NE(bad_version.status().message().find("version"),
            std::string::npos);

  EncodeFrameHeader(FrameType::kQuery, 8, buf);
  const uint32_t huge = kMaxBodyLen + 1;
  std::memcpy(buf + 8, &huge, sizeof(huge));
  auto oversize = DecodeFrameHeader(buf);
  ASSERT_FALSE(oversize.ok());
  EXPECT_NE(oversize.status().message().find("exceeds"), std::string::npos);
}

TEST(ProtocolTest, AllBodiesRoundTrip) {
  QueryFrame q;
  q.request_id = 42;
  q.k = 5;
  q.dtw_band = 7;
  q.approximate = true;
  q.high_priority = true;
  q.timeout_us = 123456;
  q.values = {1.0f, -2.5f, 3.25f};
  const auto qf = EncodeQueryFrame(FrameType::kKnn, q);
  auto qd = DecodeQueryFrame(
      std::span<const uint8_t>(qf.data() + kFrameHeaderSize,
                               qf.size() - kFrameHeaderSize));
  ASSERT_TRUE(qd.ok());
  EXPECT_EQ(qd->request_id, 42u);
  EXPECT_EQ(qd->k, 5u);
  EXPECT_EQ(qd->dtw_band, 7u);
  EXPECT_TRUE(qd->approximate);
  EXPECT_TRUE(qd->high_priority);
  EXPECT_EQ(qd->timeout_us, 123456u);
  EXPECT_EQ(qd->values, q.values);

  AppendFrame a;
  a.request_id = 7;
  a.count = 2;
  a.series_len = 3;
  a.values = {1, 2, 3, 4, 5, 6};
  const auto af = EncodeAppendFrame(a);
  auto ad = DecodeAppendFrame(
      std::span<const uint8_t>(af.data() + kFrameHeaderSize,
                               af.size() - kFrameHeaderSize));
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(ad->count, 2u);
  EXPECT_EQ(ad->series_len, 3u);
  EXPECT_EQ(ad->values, a.values);

  const auto pf = EncodePlainRequest(FrameType::kStats, 11);
  auto pd = DecodePlainRequest(
      std::span<const uint8_t>(pf.data() + kFrameHeaderSize,
                               pf.size() - kFrameHeaderSize));
  ASSERT_TRUE(pd.ok());
  EXPECT_EQ(*pd, 11u);

  ResultFrame r;
  r.request_id = 9;
  r.neighbors = {{3, 1.5f}, {8, 2.5f}};
  const auto rf = EncodeResultFrame(r);
  auto rd = DecodeResultFrame(
      std::span<const uint8_t>(rf.data() + kFrameHeaderSize,
                               rf.size() - kFrameHeaderSize));
  ASSERT_TRUE(rd.ok());
  ASSERT_EQ(rd->neighbors.size(), 2u);
  EXPECT_EQ(rd->neighbors[1].id, 8u);
  EXPECT_FLOAT_EQ(rd->neighbors[1].distance_sq, 2.5f);

  const auto okf = EncodeAppendOkFrame(AppendOkFrame{5, 1000, 3});
  auto okd = DecodeAppendOkFrame(
      std::span<const uint8_t>(okf.data() + kFrameHeaderSize,
                               okf.size() - kFrameHeaderSize));
  ASSERT_TRUE(okd.ok());
  EXPECT_EQ(okd->total_series, 1000u);
  EXPECT_EQ(okd->append_epoch, 3u);

  const auto sf = EncodeStatsTextFrame(StatsTextFrame{6, "metric 1\n"});
  auto sd = DecodeStatsTextFrame(
      std::span<const uint8_t>(sf.data() + kFrameHeaderSize,
                               sf.size() - kFrameHeaderSize));
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->text, "metric 1\n");

  const auto hf = EncodeHealthOkFrame(HealthOkFrame{2, 777, 64, "messi"});
  auto hd = DecodeHealthOkFrame(
      std::span<const uint8_t>(hf.data() + kFrameHeaderSize,
                               hf.size() - kFrameHeaderSize));
  ASSERT_TRUE(hd.ok());
  EXPECT_EQ(hd->series_count, 777u);
  EXPECT_EQ(hd->algorithm, "messi");

  const auto ef = EncodeErrorFrame(
      ErrorFrame{1, WireError::kOverloaded, "busy"});
  auto ed = DecodeErrorFrame(
      std::span<const uint8_t>(ef.data() + kFrameHeaderSize,
                               ef.size() - kFrameHeaderSize));
  ASSERT_TRUE(ed.ok());
  EXPECT_EQ(ed->code, WireError::kOverloaded);
  EXPECT_EQ(ed->message, "busy");
}

// Every strict prefix of every valid body must decode to a typed error,
// never crash or succeed.
TEST(ProtocolTest, TruncatedBodiesAreTypedErrors) {
  QueryFrame q;
  q.request_id = 1;
  q.values = {1.0f, 2.0f, 3.0f, 4.0f};
  AppendFrame a;
  a.request_id = 2;
  a.count = 1;
  a.series_len = 4;
  a.values = {1, 2, 3, 4};
  const std::vector<std::vector<uint8_t>> frames = {
      EncodeQueryFrame(FrameType::kQuery, q),
      EncodeAppendFrame(a),
      EncodePlainRequest(FrameType::kStats, 3),
      EncodeResultFrame(ResultFrame{4, {{1, 1.0f}}}),
      EncodeAppendOkFrame(AppendOkFrame{5, 10, 1}),
      EncodeStatsTextFrame(StatsTextFrame{6, "x"}),
      EncodeHealthOkFrame(HealthOkFrame{7, 1, 4, "messi"}),
      EncodeErrorFrame(ErrorFrame{8, WireError::kUnknown, "m"}),
  };
  for (size_t f = 0; f < frames.size(); ++f) {
    const size_t body_len = frames[f].size() - kFrameHeaderSize;
    const uint8_t* body = frames[f].data() + kFrameHeaderSize;
    for (size_t cut = 0; cut < body_len; ++cut) {
      const std::span<const uint8_t> prefix(body, cut);
      EXPECT_FALSE(DecodeQueryFrame(prefix).ok() &&
                   DecodeAppendFrame(prefix).ok())
          << "frame " << f << " cut " << cut;
      switch (f) {
        case 0:
          EXPECT_FALSE(DecodeQueryFrame(prefix).ok());
          break;
        case 1:
          EXPECT_FALSE(DecodeAppendFrame(prefix).ok());
          break;
        case 2:
          EXPECT_FALSE(DecodePlainRequest(prefix).ok());
          break;
        case 3:
          EXPECT_FALSE(DecodeResultFrame(prefix).ok());
          break;
        case 4:
          EXPECT_FALSE(DecodeAppendOkFrame(prefix).ok());
          break;
        case 5:
          // The stats text runs to the end of the body, so any prefix
          // holding the full request id is a valid shorter-text frame;
          // only a truncated id must fail.
          if (cut < sizeof(uint64_t)) {
            EXPECT_FALSE(DecodeStatsTextFrame(prefix).ok());
          }
          break;
        case 6:
          EXPECT_FALSE(DecodeHealthOkFrame(prefix).ok());
          break;
        case 7:
          EXPECT_FALSE(DecodeErrorFrame(prefix).ok());
          break;
      }
    }
  }
}

// Random bytes through every decoder: typed Status or success, never a
// crash, and declared lengths never read past the buffer (ASan leg).
TEST(ProtocolTest, RandomBytesNeverCrashDecoders) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<size_t> len(0, 96);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> junk(len(rng));
    for (auto& b : junk) b = static_cast<uint8_t>(byte(rng));
    const std::span<const uint8_t> body(junk.data(), junk.size());
    (void)DecodeQueryFrame(body);
    (void)DecodeAppendFrame(body);
    (void)DecodePlainRequest(body);
    (void)DecodeResultFrame(body);
    (void)DecodeAppendOkFrame(body);
    (void)DecodeStatsTextFrame(body);
    (void)DecodeHealthOkFrame(body);
    (void)DecodeErrorFrame(body);
    if (junk.size() >= kFrameHeaderSize) (void)DecodeFrameHeader(junk.data());
  }
}

TEST(ProtocolTest, WireErrorFromStatusMapsTypedFailures) {
  EXPECT_EQ(WireErrorFromStatus(Status::DeadlineExceeded("x")),
            WireError::kDeadlineExceeded);
  EXPECT_EQ(WireErrorFromStatus(Status::Overloaded("x")),
            WireError::kOverloaded);
  EXPECT_EQ(WireErrorFromStatus(Status::InvalidArgument("x")),
            WireError::kInvalidArgument);
  EXPECT_EQ(WireErrorFromStatus(Status::NotSupported("x")),
            WireError::kNotSupported);
  EXPECT_STREQ(WireErrorName(WireError::kOverloaded), "overloaded");
  EXPECT_STREQ(WireErrorName(WireError::kDeadlineExceeded),
               "deadline_exceeded");
}

// --- cancellation / deadlines ----------------------------------------------

TEST(CancellationTest, TokenExpiresAndLatches) {
  CancellationToken no_deadline;
  EXPECT_FALSE(no_deadline.Expired());

  CancellationToken expired =
      CancellationToken::After(std::chrono::nanoseconds(-1));
  EXPECT_TRUE(expired.Expired());
  EXPECT_TRUE(expired.Expired());  // latched

  CancellationToken far =
      CancellationToken::After(std::chrono::hours(24));
  EXPECT_FALSE(far.Expired());
  far.Cancel();
  EXPECT_TRUE(far.Expired());

  EXPECT_FALSE(Expired(static_cast<const CancellationToken*>(nullptr)));
}

// A pre-expired token must yield kDeadlineExceeded from every index
// engine, not a partial answer.
TEST(CancellationTest, EngineSearchHonorsExpiredToken) {
  const Dataset data = MakeData(1200, 3);
  const Dataset queries = MakeQueries(2, 3);
  for (const Algorithm algorithm :
       {Algorithm::kMessi, Algorithm::kParisPlus}) {
    EngineOptions options;
    options.algorithm = algorithm;
    options.num_threads = 2;
    options.tree.segments = 8;
    options.tree.leaf_capacity = 32;
    auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    const CancellationToken expired =
        CancellationToken::After(std::chrono::nanoseconds(-1));
    SearchRequest request;
    request.cancel = &expired;
    auto response = (*engine)->Search(queries.series(0), request);
    ASSERT_FALSE(response.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);

    // Without the token the same query answers normally.
    auto fine = (*engine)->Search(queries.series(0));
    EXPECT_TRUE(fine.ok());
  }
}

// --- admission control -----------------------------------------------------

TEST(AdmissionTest, TrySubmitRejectsOverCapWithTypedError) {
  const Dataset data = MakeData(4000, 13);
  const Dataset queries = MakeQueries(8, 13);
  EngineOptions options;
  options.num_threads = 2;
  options.tree.segments = 8;
  options.tree.leaf_capacity = 32;
  auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
  ASSERT_TRUE(engine.ok());

  QueryServiceOptions sopts;
  sopts.num_threads = 1;
  sopts.max_inflight = 2;
  auto service = QueryService::Create(engine->get(), sopts);
  ASSERT_TRUE(service.ok());

  // Back-to-back submission is orders of magnitude faster than query
  // execution on one worker, so the cap must trip.
  std::vector<std::future<Result<SearchResponse>>> accepted;
  size_t rejected = 0;
  for (int i = 0; i < 64; ++i) {
    auto r = (*service)->TrySubmit(queries.series(i % queries.count()));
    if (r.ok()) {
      accepted.push_back(std::move(*r));
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kOverloaded);
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1u);
  for (auto& f : accepted) EXPECT_TRUE(f.get().ok());

  const ServeStats stats = (*service)->stats();
  EXPECT_EQ(stats.rejected_overload, rejected);
  EXPECT_LE(stats.peak_inflight, 2u);
  EXPECT_EQ(stats.submitted, accepted.size());
  EXPECT_EQ(stats.completed, accepted.size());
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(AdmissionTest, QueuedQueryPastDeadlineAnswersTyped) {
  const Dataset data = MakeData(4000, 17);
  const Dataset queries = MakeQueries(4, 17);
  EngineOptions options;
  options.num_threads = 2;
  options.tree.segments = 8;
  options.tree.leaf_capacity = 32;
  auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
  ASSERT_TRUE(engine.ok());

  QueryServiceOptions sopts;
  sopts.num_threads = 1;
  auto service = QueryService::Create(engine->get(), sopts);
  ASSERT_TRUE(service.ok());

  // Occupy the single worker, then queue queries whose 1ns deadlines
  // are long gone by dequeue time.
  auto slow = (*service)->Submit(queries.series(0));
  SubmitOptions submit;
  submit.timeout = std::chrono::nanoseconds(1);
  std::vector<std::future<Result<SearchResponse>>> doomed;
  for (int i = 0; i < 4; ++i) {
    auto r = (*service)->TrySubmit(queries.series(1), {}, submit);
    ASSERT_TRUE(r.ok());
    doomed.push_back(std::move(*r));
  }
  EXPECT_TRUE(slow.get().ok());
  for (auto& f : doomed) {
    auto response = f.get();
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  }
  const ServeStats stats = (*service)->stats();
  EXPECT_EQ(stats.expired_in_queue, doomed.size());
  EXPECT_EQ(stats.completed, doomed.size() + 1);
}

// --- end-to-end server -----------------------------------------------------

/// A minimal blocking protocol client over a real socket.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void SendRaw(const void* data, size_t n) {
    ASSERT_EQ(::send(fd_, data, n, MSG_NOSIGNAL),
              static_cast<ssize_t>(n));
  }
  void SendFrame(const std::vector<uint8_t>& frame) {
    SendRaw(frame.data(), frame.size());
  }

  /// Reads one frame; fails the test on EOF or a malformed header.
  void ReadFrame(FrameHeader* header, std::vector<uint8_t>* body) {
    uint8_t hdr[kFrameHeaderSize];
    ASSERT_TRUE(ReadFull(hdr, kFrameHeaderSize)) << "EOF reading header";
    auto decoded = DecodeFrameHeader(hdr);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    *header = *decoded;
    body->resize(decoded->body_len);
    if (!body->empty()) {
      ASSERT_TRUE(ReadFull(body->data(), body->size()))
          << "EOF reading body";
    }
  }

  /// True when the peer has closed (clean EOF).
  bool ReadEof() {
    uint8_t b;
    return ::recv(fd_, &b, 1, 0) == 0;
  }

 private:
  bool ReadFull(uint8_t* buf, size_t n) {
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd_, buf + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
};

struct ServerFixture {
  Dataset oracle;  // mirror of the served collection
  std::unique_ptr<Engine> engine;          // num_shards == 1
  std::unique_ptr<ShardedEngine> sharded;  // num_shards > 1
  SearchBackend* backend = nullptr;
  std::unique_ptr<Server> server;
};

/// Serves `count` series over `num_shards` engine shards (1: a plain
/// Engine); `oracle` stays an exact client-side mirror (Dataset::Append
/// keeps it in lockstep after wire appends). The server speaks
/// SearchBackend either way — the wire tests cannot tell the backends
/// apart, which is exactly the property under test.
ServerFixture StartServer(size_t count, uint64_t seed, size_t num_shards,
                          ServerOptions sopts = {}) {
  ServerFixture fx;
  fx.oracle = MakeData(count, seed);
  EngineOptions eopts;
  eopts.num_threads = 2;
  eopts.tree.segments = 8;
  eopts.tree.leaf_capacity = 32;
  if (num_shards > 1) {
    auto sharded =
        ShardedEngine::Build(MakeData(count, seed), num_shards, eopts);
    if (!sharded.ok()) {
      ADD_FAILURE() << sharded.status().ToString();
      return fx;
    }
    fx.sharded = std::move(*sharded);
    fx.backend = fx.sharded.get();
  } else {
    auto engine = Engine::Build(SourceSpec::InMemory(MakeData(count, seed)),
                                eopts);
    if (!engine.ok()) {
      ADD_FAILURE() << engine.status().ToString();
      return fx;
    }
    fx.engine = std::move(*engine);
    fx.backend = fx.engine.get();
  }
  auto server = Server::Start(fx.backend, sopts);
  if (!server.ok()) {
    ADD_FAILURE() << server.status().ToString();
    return fx;
  }
  fx.server = std::move(*server);
  return fx;
}

/// The live-server suite runs identically over a single engine and a
/// 4-shard router: same frames, same oracle-exact answers.
class ServerShardTest : public ::testing::TestWithParam<size_t> {};

QueryFrame WireQuery(uint64_t request_id, SeriesView query) {
  QueryFrame q;
  q.request_id = request_id;
  q.values.assign(query.begin(), query.end());
  return q;
}

TEST_P(ServerShardTest, AnswersMixedQueriesExactly) {
  ServerFixture fx = StartServer(2000, 101, GetParam());
  ASSERT_NE(fx.server, nullptr);
  const Dataset queries = MakeQueries(9, 101);

  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());

  for (size_t q = 0; q < queries.count(); ++q) {
    QueryFrame wire = WireQuery(1000 + q, queries.series(q));
    FrameType type = FrameType::kQuery;
    std::vector<Neighbor> expect;
    switch (q % 3) {
      case 0:
        expect = {BruteForceNn(InMemorySource(&fx.oracle),
                               queries.series(q))};
        break;
      case 1:
        type = FrameType::kKnn;
        wire.k = 5;
        expect = BruteForceKnn(InMemorySource(&fx.oracle),
                               queries.series(q), 5);
        break;
      case 2:
        type = FrameType::kDtw;
        wire.dtw_band = 6;
        expect = {BruteForceDtwNn(InMemorySource(&fx.oracle),
                                  queries.series(q), 6)};
        break;
    }
    client.SendFrame(EncodeQueryFrame(type, wire));

    FrameHeader header;
    std::vector<uint8_t> body;
    client.ReadFrame(&header, &body);
    ASSERT_EQ(header.type, FrameType::kResult) << "query " << q;
    auto result = DecodeResultFrame(body);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->request_id, 1000 + q);
    ASSERT_EQ(result->neighbors.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(result->neighbors[i].id, expect[i].id)
          << "query " << q << " rank " << i;
      EXPECT_FLOAT_EQ(result->neighbors[i].distance_sq,
                      expect[i].distance_sq);
    }
  }
}

TEST_P(ServerShardTest, AppendsThenServesGrownCollection) {
  ServerFixture fx = StartServer(1000, 103, GetParam());
  ASSERT_NE(fx.server, nullptr);
  const Dataset extra = MakeData(50, 9103);

  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());

  AppendFrame append;
  append.request_id = 1;
  append.count = static_cast<uint32_t>(extra.count());
  append.series_len = static_cast<uint32_t>(extra.length());
  append.values.assign(extra.raw(), extra.raw() + extra.TotalValues());
  client.SendFrame(EncodeAppendFrame(append));
  fx.oracle.Append(extra.raw(), extra.count());

  FrameHeader header;
  std::vector<uint8_t> body;
  client.ReadFrame(&header, &body);
  ASSERT_EQ(header.type, FrameType::kAppendOk);
  auto ok = DecodeAppendOkFrame(body);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->total_series, 1050u);
  EXPECT_GE(ok->append_epoch, 1u);

  // Query one of the appended series verbatim: the nearest neighbor
  // must be that series at distance 0.
  const SeriesId target = 1000 + 7;
  client.SendFrame(EncodeQueryFrame(
      FrameType::kQuery, WireQuery(2, fx.oracle.series(target))));
  client.ReadFrame(&header, &body);
  ASSERT_EQ(header.type, FrameType::kResult);
  auto result = DecodeResultFrame(body);
  ASSERT_TRUE(result.ok());
  const Neighbor oracle =
      BruteForceNn(InMemorySource(&fx.oracle), fx.oracle.series(target));
  EXPECT_EQ(result->neighbors[0].id, oracle.id);
  EXPECT_FLOAT_EQ(result->neighbors[0].distance_sq, oracle.distance_sq);
  EXPECT_FLOAT_EQ(result->neighbors[0].distance_sq, 0.0f);
}

TEST_P(ServerShardTest, StatsAndHealthAnswer) {
  ServerFixture fx = StartServer(600, 107, GetParam());
  ASSERT_NE(fx.server, nullptr);

  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());

  client.SendFrame(EncodePlainRequest(FrameType::kHealth, 5));
  FrameHeader header;
  std::vector<uint8_t> body;
  client.ReadFrame(&header, &body);
  ASSERT_EQ(header.type, FrameType::kHealthOk);
  auto health = DecodeHealthOkFrame(body);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->request_id, 5u);
  EXPECT_EQ(health->series_count, 600u);
  EXPECT_EQ(health->series_length, kLength);
  EXPECT_EQ(health->algorithm, "messi");

  client.SendFrame(EncodePlainRequest(FrameType::kStats, 6));
  client.ReadFrame(&header, &body);
  ASSERT_EQ(header.type, FrameType::kStatsText);
  auto stats = DecodeStatsTextFrame(body);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->text.find("# TYPE parisax_requests_total counter"),
            std::string::npos);
  EXPECT_NE(stats->text.find("parisax_series_count 600"),
            std::string::npos);
  EXPECT_NE(stats->text.find("parisax_request_seconds_bucket"),
            std::string::npos);
}

TEST_P(ServerShardTest, MalformedFramesGetTypedErrors) {
  ServerFixture fx = StartServer(500, 109, GetParam());
  ASSERT_NE(fx.server, nullptr);

  {  // bad magic: one error frame, then close — the stream cannot resync
    TestClient client(fx.server->port());
    ASSERT_TRUE(client.connected());
    const uint8_t junk[kFrameHeaderSize] = {'X', 'X', 'X', 'X'};
    client.SendRaw(junk, sizeof(junk));
    FrameHeader header;
    std::vector<uint8_t> body;
    client.ReadFrame(&header, &body);
    ASSERT_EQ(header.type, FrameType::kError);
    auto error = DecodeErrorFrame(body);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->code, WireError::kBadFrame);
    EXPECT_TRUE(client.ReadEof());
  }
  {  // future protocol version
    TestClient client(fx.server->port());
    ASSERT_TRUE(client.connected());
    uint8_t hdr[kFrameHeaderSize];
    EncodeFrameHeader(FrameType::kHealth, 8, hdr);
    hdr[4] = kProtocolVersion + 1;
    client.SendRaw(hdr, sizeof(hdr));
    FrameHeader header;
    std::vector<uint8_t> body;
    client.ReadFrame(&header, &body);
    auto error = DecodeErrorFrame(body);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->code, WireError::kBadVersion);
    EXPECT_TRUE(client.ReadEof());
  }
  {  // oversized body announcement: rejected before any allocation
    TestClient client(fx.server->port());
    ASSERT_TRUE(client.connected());
    uint8_t hdr[kFrameHeaderSize];
    EncodeFrameHeader(FrameType::kQuery, 8, hdr);
    const uint32_t huge = kMaxBodyLen + 1;
    std::memcpy(hdr + 8, &huge, sizeof(huge));
    client.SendRaw(hdr, sizeof(hdr));
    FrameHeader header;
    std::vector<uint8_t> body;
    client.ReadFrame(&header, &body);
    auto error = DecodeErrorFrame(body);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->code, WireError::kFrameTooLarge);
    EXPECT_TRUE(client.ReadEof());
  }
  {  // body that does not match its type: typed error, connection lives
    TestClient client(fx.server->port());
    ASSERT_TRUE(client.connected());
    QueryFrame q;
    q.request_id = 9;
    q.values.assign(kLength, 0.0f);
    auto frame = EncodeQueryFrame(FrameType::kQuery, q);
    frame.resize(frame.size() - 40);  // truncate the body...
    const uint32_t short_len =
        static_cast<uint32_t>(frame.size() - kFrameHeaderSize);
    std::memcpy(frame.data() + 8, &short_len, sizeof(short_len));
    client.SendFrame(frame);
    FrameHeader header;
    std::vector<uint8_t> body;
    client.ReadFrame(&header, &body);
    ASSERT_EQ(header.type, FrameType::kError);
    auto error = DecodeErrorFrame(body);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->code, WireError::kBadFrame);
    // The request-id prefix survived the truncation, so the error
    // echoes it — pipelined clients can tell which request died.
    EXPECT_EQ(error->request_id, 9u);

    client.SendFrame(EncodePlainRequest(FrameType::kHealth, 10));
    client.ReadFrame(&header, &body);
    EXPECT_EQ(header.type, FrameType::kHealthOk);
  }
  {  // unknown request type: typed error, connection lives
    TestClient client(fx.server->port());
    ASSERT_TRUE(client.connected());
    auto frame = EncodePlainRequest(FrameType::kHealth, 11);
    frame[5] = 0x55;
    client.SendFrame(frame);
    FrameHeader header;
    std::vector<uint8_t> body;
    client.ReadFrame(&header, &body);
    ASSERT_EQ(header.type, FrameType::kError);
    auto error = DecodeErrorFrame(body);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->code, WireError::kBadFrame);
    client.SendFrame(EncodePlainRequest(FrameType::kHealth, 12));
    client.ReadFrame(&header, &body);
    EXPECT_EQ(header.type, FrameType::kHealthOk);
  }
}

// An overload storm must yield typed kOverloaded rejections, responses
// for every request in order, an in-flight count that never exceeds the
// cap — and oracle-exact answers once the storm passes.
TEST_P(ServerShardTest, OverloadStormRejectsTypedThenRecovers) {
  ServerOptions sopts;
  sopts.serve_threads = 1;
  sopts.max_inflight = 2;
  ServerFixture fx = StartServer(4000, 113, GetParam(), sopts);
  ASSERT_NE(fx.server, nullptr);
  const Dataset queries = MakeQueries(8, 113);

  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());

  constexpr int kStorm = 64;
  for (int i = 0; i < kStorm; ++i) {
    client.SendFrame(EncodeQueryFrame(
        FrameType::kQuery,
        WireQuery(i, queries.series(i % queries.count()))));
  }
  int ok = 0, overloaded = 0;
  for (int i = 0; i < kStorm; ++i) {
    FrameHeader header;
    std::vector<uint8_t> body;
    client.ReadFrame(&header, &body);
    if (header.type == FrameType::kResult) {
      auto result = DecodeResultFrame(body);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->request_id, static_cast<uint64_t>(i));
      ++ok;
    } else {
      ASSERT_EQ(header.type, FrameType::kError);
      auto error = DecodeErrorFrame(body);
      ASSERT_TRUE(error.ok());
      EXPECT_EQ(error->code, WireError::kOverloaded);
      EXPECT_EQ(error->request_id, static_cast<uint64_t>(i));
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kStorm);
  EXPECT_GE(overloaded, 1);
  EXPECT_GE(ok, 1);  // accepted work still completed
  const ServeStats stats = fx.server->query_service()->stats();
  EXPECT_LE(stats.peak_inflight, 2u);
  EXPECT_EQ(stats.rejected_overload, static_cast<uint64_t>(overloaded));

  // Settled phase: the same connection now gets oracle-exact answers.
  for (size_t q = 0; q < queries.count(); ++q) {
    client.SendFrame(EncodeQueryFrame(
        FrameType::kQuery, WireQuery(500 + q, queries.series(q))));
    FrameHeader header;
    std::vector<uint8_t> body;
    client.ReadFrame(&header, &body);
    ASSERT_EQ(header.type, FrameType::kResult);
    auto result = DecodeResultFrame(body);
    ASSERT_TRUE(result.ok());
    const Neighbor oracle =
        BruteForceNn(InMemorySource(&fx.oracle), queries.series(q));
    EXPECT_EQ(result->neighbors[0].id, oracle.id);
    EXPECT_FLOAT_EQ(result->neighbors[0].distance_sq, oracle.distance_sq);
  }
}

// Queries carrying microsecond deadlines through a saturated
// single-worker server must answer deadline_exceeded, not hang or
// crash; an undeadlined query afterwards succeeds.
TEST_P(ServerShardTest, WireDeadlinesAnswerTyped) {
  ServerOptions sopts;
  sopts.serve_threads = 1;
  ServerFixture fx = StartServer(4000, 127, GetParam(), sopts);
  ASSERT_NE(fx.server, nullptr);
  const Dataset queries = MakeQueries(4, 127);

  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());

  constexpr int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) {
    QueryFrame wire = WireQuery(i, queries.series(i % queries.count()));
    wire.timeout_us = 1;
    client.SendFrame(EncodeQueryFrame(FrameType::kQuery, wire));
  }
  int expired = 0, answered = 0;
  for (int i = 0; i < kBurst; ++i) {
    FrameHeader header;
    std::vector<uint8_t> body;
    client.ReadFrame(&header, &body);
    if (header.type == FrameType::kError) {
      auto error = DecodeErrorFrame(body);
      ASSERT_TRUE(error.ok());
      EXPECT_EQ(error->code, WireError::kDeadlineExceeded);
      ++expired;
    } else {
      ASSERT_EQ(header.type, FrameType::kResult);
      ++answered;
    }
  }
  EXPECT_EQ(expired + answered, kBurst);
  EXPECT_GE(expired, 1);  // 1us cannot survive the queue

  QueryFrame fine = WireQuery(99, queries.series(0));
  client.SendFrame(EncodeQueryFrame(FrameType::kQuery, fine));
  FrameHeader header;
  std::vector<uint8_t> body;
  client.ReadFrame(&header, &body);
  EXPECT_EQ(header.type, FrameType::kResult);
}

// The acceptance storm: concurrent query, append and stats clients on
// separate connections. Zero crashes, every response well-formed, and
// settled-phase answers byte-identical to the brute-force oracle over
// the grown collection.
TEST_P(ServerShardTest, ConcurrentQueryAppendStatsStorm) {
  ServerOptions sopts;
  sopts.serve_threads = 2;
  sopts.max_inflight = 16;
  ServerFixture fx = StartServer(1500, 131, GetParam(), sopts);
  ASSERT_NE(fx.server, nullptr);
  const Dataset queries = MakeQueries(12, 131);
  const Dataset extra = MakeData(60, 9131);

  std::atomic<int> malformed{0};
  std::vector<std::thread> clients;

  for (int c = 0; c < 3; ++c) {  // query storm
    clients.emplace_back([&, c] {
      TestClient client(fx.server->port());
      if (!client.connected()) {
        ++malformed;
        return;
      }
      for (int i = 0; i < 40; ++i) {
        client.SendFrame(EncodeQueryFrame(
            FrameType::kQuery,
            WireQuery(c * 1000 + i,
                      queries.series((c + i) % queries.count()))));
        FrameHeader header;
        std::vector<uint8_t> body;
        client.ReadFrame(&header, &body);
        if (header.type == FrameType::kResult) {
          if (!DecodeResultFrame(body).ok()) ++malformed;
        } else if (header.type == FrameType::kError) {
          auto error = DecodeErrorFrame(body);
          if (!error.ok() || error->code != WireError::kOverloaded) {
            ++malformed;
          }
        } else {
          ++malformed;
        }
      }
    });
  }
  clients.emplace_back([&] {  // append storm: 6 batches of 10
    TestClient client(fx.server->port());
    if (!client.connected()) {
      ++malformed;
      return;
    }
    for (int batch = 0; batch < 6; ++batch) {
      AppendFrame append;
      append.request_id = 5000 + batch;
      append.count = 10;
      append.series_len = kLength;
      const Value* start = extra.raw() + batch * 10 * kLength;
      append.values.assign(start, start + 10 * kLength);
      client.SendFrame(EncodeAppendFrame(append));
      FrameHeader header;
      std::vector<uint8_t> body;
      client.ReadFrame(&header, &body);
      if (header.type != FrameType::kAppendOk ||
          !DecodeAppendOkFrame(body).ok()) {
        ++malformed;
      }
    }
  });
  clients.emplace_back([&] {  // stats + health hammering
    TestClient client(fx.server->port());
    if (!client.connected()) {
      ++malformed;
      return;
    }
    for (int i = 0; i < 30; ++i) {
      const FrameType type =
          i % 2 == 0 ? FrameType::kStats : FrameType::kHealth;
      client.SendFrame(EncodePlainRequest(type, 7000 + i));
      FrameHeader header;
      std::vector<uint8_t> body;
      client.ReadFrame(&header, &body);
      const bool ok =
          (header.type == FrameType::kStatsText &&
           DecodeStatsTextFrame(body).ok()) ||
          (header.type == FrameType::kHealthOk &&
           DecodeHealthOkFrame(body).ok());
      if (!ok) ++malformed;
    }
  });
  for (auto& t : clients) t.join();
  EXPECT_EQ(malformed.load(), 0);

  // Settled phase over the grown collection.
  fx.oracle.Append(extra.raw(), extra.count());
  ASSERT_EQ(fx.backend->series_count(), fx.oracle.count());
  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());
  for (size_t q = 0; q < queries.count(); ++q) {
    client.SendFrame(EncodeQueryFrame(
        FrameType::kQuery, WireQuery(q, queries.series(q))));
    FrameHeader header;
    std::vector<uint8_t> body;
    client.ReadFrame(&header, &body);
    ASSERT_EQ(header.type, FrameType::kResult);
    auto result = DecodeResultFrame(body);
    ASSERT_TRUE(result.ok());
    const Neighbor oracle =
        BruteForceNn(InMemorySource(&fx.oracle), queries.series(q));
    EXPECT_EQ(result->neighbors[0].id, oracle.id) << "query " << q;
    EXPECT_FLOAT_EQ(result->neighbors[0].distance_sq, oracle.distance_sq);
  }

  // Stop() under no load: clean shutdown, no hang (the test timing out
  // would be the failure).
  fx.server->Stop();
}

INSTANTIATE_TEST_SUITE_P(Shards, ServerShardTest,
                         ::testing::Values<size_t>(1, 4),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return std::to_string(info.param) + "Shard" +
                                  (info.param == 1 ? "" : "s");
                         });

}  // namespace
}  // namespace parisax
