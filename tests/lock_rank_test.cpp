// Tests for the annotated mutex wrappers and the debug-build runtime
// lock-rank checker (util/mutex.h, docs/concurrency.md).
//
// The death tests only run where the checker is compiled in
// (PARISAX_LOCK_RANK_CHECKS, i.e. debug builds); release builds skip
// them, since there the bookkeeping is compiled out entirely.
#include "util/mutex.h"

#include <thread>

#include "gtest/gtest.h"

namespace parisax {
namespace {

TEST(LockRankTest, IncreasingOrderIsAccepted) {
  Mutex low("test::low", LockRank::kEngineAppend);
  Mutex high("test::high", LockRank::kPool);
  SharedMutex gate("test::gate", LockRank::kIndexGate);
  {
    MutexLock a(&low);
    ReaderLock g(&gate);
    MutexLock b(&high);
  }
  // Reacquirable after release, including on another thread (the held
  // set is per-thread).
  std::thread t([&] {
    MutexLock a(&low);
    WriterLock g(&gate);
  });
  t.join();
  MutexLock a(&low);
}

TEST(LockRankTest, OutOfOrderReleaseIsTracked) {
  // The checker scans the whole held set, so releasing in a different
  // order than acquiring must not confuse it.
  Mutex a("test::a", LockRank::kEngineAppend);
  Mutex b("test::b", LockRank::kEnginePool);
  Mutex c("test::c", LockRank::kIndexGate);
  a.Lock();
  b.Lock();
  a.Unlock();  // out of order
  c.Lock();
  c.Unlock();
  b.Unlock();
  a.Lock();  // held set must be empty again
  a.Unlock();
}

TEST(LockRankTest, CondVarWaitKeepsHeldSetAccurate) {
  Mutex mu("test::cv_mu", LockRank::kServeWake);
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
  }
  notifier.join();
  // After the wait returned, mu must be recorded as held exactly once:
  // acquiring a higher rank works, re-acquiring mu would abort.
  MutexLock lock(&mu);
  Mutex above("test::above", LockRank::kServeDeque);
  MutexLock l2(&above);
}

#if PARISAX_LOCK_RANK_CHECKS

TEST(LockRankDeathTest, OutOfOrderAcquisitionAbortsNamingBothLocks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex inner("test::inner_lock", LockRank::kIndexGate);
  Mutex outer("test::outer_lock", LockRank::kEngineAppend);
  ASSERT_DEATH(
      {
        MutexLock a(&inner);
        MutexLock b(&outer);  // kEngineAppend < kIndexGate: inverted
      },
      // The abort message must name both locks so the violation is
      // diagnosable from the log alone.
      "lock rank violation.*\"test::outer_lock\".*"
      "holding \"test::inner_lock\"");
}

TEST(LockRankDeathTest, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu("test::recursive", LockRank::kLeaf);
  ASSERT_DEATH(
      {
        MutexLock a(&mu);
        mu.Lock();  // same rank: strict ordering rejects re-entry
      },
      "lock rank violation.*\"test::recursive\".*"
      "holding \"test::recursive\"");
}

TEST(LockRankDeathTest, SameRankPairAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two distinct locks sharing a rank may never be held together (a
  // shared rank asserts exactly that); the checker enforces it.
  Mutex a("test::same_a", LockRank::kResultMerge);
  Mutex b("test::same_b", LockRank::kResultMerge);
  ASSERT_DEATH(
      {
        MutexLock la(&a);
        MutexLock lb(&b);
      },
      "lock rank violation.*\"test::same_b\".*holding \"test::same_a\"");
}

#else

TEST(LockRankDeathTest, CheckerCompiledOut) {
  GTEST_SKIP() << "lock-rank checks are compiled out (NDEBUG build); "
                  "run a Debug build to exercise the checker";
}

#endif  // PARISAX_LOCK_RANK_CHECKS

}  // namespace
}  // namespace parisax
