// Tests for the N(0,1) breakpoint tables and the inverse normal CDF.
#include "sax/breakpoints.h"

#include <gtest/gtest.h>

#include <cmath>

namespace parisax {
namespace {

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-12);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959963984540054, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.8413447460685429), 1.0, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.9986501019683699), 3.0, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.0013498980316301), -3.0, 1e-9);
}

TEST(InverseNormalCdfTest, SymmetricAroundHalf) {
  for (double p : {0.01, 0.1, 0.2, 0.3, 0.45}) {
    EXPECT_NEAR(InverseNormalCdf(p), -InverseNormalCdf(1.0 - p), 1e-10)
        << "p=" << p;
  }
}

TEST(InverseNormalCdfTest, RoundTripsThroughErfc) {
  for (double p = 0.02; p < 1.0; p += 0.07) {
    const double x = InverseNormalCdf(p);
    const double back = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(back, p, 1e-12) << "p=" << p;
  }
}

TEST(BreakpointTableTest, SizesAndMonotonicity) {
  const BreakpointTable& table = BreakpointTable::Get();
  for (int bits = 1; bits <= kMaxCardBits; ++bits) {
    const auto& level = table.Breakpoints(bits);
    ASSERT_EQ(level.size(), (1u << bits) - 1) << "bits=" << bits;
    for (size_t i = 1; i < level.size(); ++i) {
      EXPECT_LT(level[i - 1], level[i]) << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(BreakpointTableTest, TwoRegionSplitIsAtZero) {
  const BreakpointTable& table = BreakpointTable::Get();
  ASSERT_EQ(table.Breakpoints(1).size(), 1u);
  EXPECT_NEAR(table.Breakpoints(1)[0], 0.0, 1e-12);
}

// The defining iSAX property: the grid at cardinality 2^b is a subset of
// the grid at 2^(b+1) (every breakpoint survives refinement).
TEST(BreakpointTableTest, NestedGrids) {
  const BreakpointTable& table = BreakpointTable::Get();
  for (int bits = 1; bits < kMaxCardBits; ++bits) {
    const auto& coarse = table.Breakpoints(bits);
    const auto& fine = table.Breakpoints(bits + 1);
    for (size_t i = 0; i < coarse.size(); ++i) {
      // coarse[i] corresponds to fine[2i + 1].
      EXPECT_NEAR(coarse[i], fine[2 * i + 1], 1e-12)
          << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(BreakpointTableTest, RegionBoundsTileTheRealLine) {
  const BreakpointTable& table = BreakpointTable::Get();
  for (int bits = 1; bits <= kMaxCardBits; ++bits) {
    const uint32_t cardinality = 1u << bits;
    EXPECT_TRUE(std::isinf(table.RegionLow(bits, 0)));
    EXPECT_TRUE(std::isinf(table.RegionHigh(bits, cardinality - 1)));
    for (uint32_t sym = 0; sym + 1 < cardinality; ++sym) {
      // Adjacent regions share an edge.
      EXPECT_FLOAT_EQ(table.RegionHigh(bits, sym),
                      table.RegionLow(bits, sym + 1));
    }
    for (uint32_t sym = 0; sym < cardinality; ++sym) {
      EXPECT_LT(table.RegionLow(bits, sym), table.RegionHigh(bits, sym));
    }
  }
}

TEST(BreakpointTableTest, FullSymbolLocatesValues) {
  const BreakpointTable& table = BreakpointTable::Get();
  // Values around the median map to the middle regions.
  EXPECT_EQ(table.FullSymbol(-10.0f), 0);
  EXPECT_EQ(table.FullSymbol(10.0f), kMaxCardinality - 1);
  const uint8_t mid = table.FullSymbol(0.0f);
  EXPECT_TRUE(mid == kMaxCardinality / 2 || mid == kMaxCardinality / 2 - 1);
  // Each value lies inside its region.
  for (float v = -3.0f; v <= 3.0f; v += 0.13f) {
    const uint8_t sym = table.FullSymbol(v);
    EXPECT_GE(v, table.RegionLow(kMaxCardBits, sym));
    EXPECT_LE(v, table.RegionHigh(kMaxCardBits, sym));
  }
}

TEST(BreakpointTableTest, FullSymbolOnExactBreakpointIsConsistent) {
  const BreakpointTable& table = BreakpointTable::Get();
  const auto& level = table.Breakpoints(kMaxCardBits);
  for (size_t i = 0; i < level.size(); i += 37) {
    const float v = static_cast<float>(level[i]);
    const uint8_t sym = table.FullSymbol(v);
    EXPECT_GE(v, table.RegionLow(kMaxCardBits, sym));
    EXPECT_LE(v, table.RegionHigh(kMaxCardBits, sym));
  }
}

}  // namespace
}  // namespace parisax
