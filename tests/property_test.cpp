// Broad property sweeps across index shapes: every engine stays exact
// under every (segments, leaf capacity) combination; kNN result sets are
// consistent prefixes; DTW tightens with the band; approximate answers
// degrade gracefully. These parameterized suites are the repository's
// main defense against configuration-dependent correctness bugs.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/engine.h"
#include "io/generator.h"
#include "scan/ucr_scan.h"

namespace parisax {
namespace {

constexpr size_t kCount = 2000;
constexpr size_t kLength = 96;
constexpr float kTol = 1e-3f;

Dataset TestData(uint64_t seed = 404) {
  GeneratorOptions gen;
  gen.count = kCount;
  gen.length = kLength;
  gen.seed = seed;
  return GenerateDataset(gen);
}

// --- exactness across tree shapes -------------------------------------------

struct ShapeCase {
  Algorithm algorithm;
  int segments;
  size_t leaf_capacity;
};

class TreeShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(TreeShapeSweep, ExactUnderAllShapes) {
  const ShapeCase c = GetParam();
  const Dataset data = TestData();
  EngineOptions options;
  options.algorithm = c.algorithm;
  options.num_threads = 3;
  options.tree.segments = c.segments;
  options.tree.leaf_capacity = c.leaf_capacity;
  options.batch_series = 256;
  options.chunk_series = 128;
  auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 4, kLength, 404);
  for (size_t q = 0; q < queries.count(); ++q) {
    const Neighbor oracle =
        BruteForceNn(InMemorySource(&data), queries.series(q),
                     KernelPolicy::kScalar);
    auto response = (*engine)->Search(queries.series(q), {});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_NEAR(response->neighbors[0].distance_sq, oracle.distance_sq,
                kTol * std::max(1.0f, oracle.distance_sq))
        << "q=" << q;
  }
}

std::string ShapeName(const ::testing::TestParamInfo<ShapeCase>& info) {
  std::string algo = AlgorithmName(info.param.algorithm);
  for (char& ch : algo) {
    if (ch == '+') ch = 'P';
    if (ch == '-') ch = '_';
  }
  return algo + "_w" + std::to_string(info.param.segments) + "_cap" +
         std::to_string(info.param.leaf_capacity);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeShapeSweep,
    ::testing::Values(
        // Extreme and ordinary shapes for every index engine.
        ShapeCase{Algorithm::kMessi, 1, 16},
        ShapeCase{Algorithm::kMessi, 4, 1},
        ShapeCase{Algorithm::kMessi, 8, 8},
        ShapeCase{Algorithm::kMessi, 16, 64},
        ShapeCase{Algorithm::kMessi, 16, 1024},
        ShapeCase{Algorithm::kParisPlus, 1, 16},
        ShapeCase{Algorithm::kParisPlus, 4, 1},
        ShapeCase{Algorithm::kParisPlus, 8, 8},
        ShapeCase{Algorithm::kParisPlus, 16, 64},
        ShapeCase{Algorithm::kParis, 4, 4},
        ShapeCase{Algorithm::kParis, 16, 256},
        ShapeCase{Algorithm::kAdsPlus, 2, 2},
        ShapeCase{Algorithm::kAdsPlus, 16, 512}),
    ShapeName);

// --- kNN consistency ---------------------------------------------------------

class KnnSweep : public ::testing::TestWithParam<std::tuple<Algorithm,
                                                            size_t>> {};

TEST_P(KnnSweep, MatchesOracleAndNestedPrefixes) {
  const auto [algorithm, k] = GetParam();
  const Dataset data = TestData(405);
  EngineOptions options;
  options.algorithm = algorithm;
  options.num_threads = 3;
  options.tree.segments = 8;
  options.tree.leaf_capacity = 32;
  auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
  ASSERT_TRUE(engine.ok());

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 3, kLength, 405);
  for (size_t q = 0; q < queries.count(); ++q) {
    const auto oracle = BruteForceKnn(InMemorySource(&data),
                                      queries.series(q), k,
                                      KernelPolicy::kScalar);
    SearchRequest request;
    request.k = k;
    auto response = (*engine)->Search(queries.series(q), request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->neighbors.size(), oracle.size());
    for (size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_NEAR(response->neighbors[i].distance_sq, oracle[i].distance_sq,
                  kTol * std::max(1.0f, oracle[i].distance_sq))
          << "i=" << i;
    }
    // k=1 must agree with the 1-NN search path.
    if (k == 1) {
      auto single = (*engine)->Search(queries.series(q), {});
      ASSERT_TRUE(single.ok());
      EXPECT_NEAR(single->neighbors[0].distance_sq,
                  response->neighbors[0].distance_sq, kTol);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ks, KnnSweep,
    ::testing::Combine(::testing::Values(Algorithm::kMessi,
                                         Algorithm::kUcrParallel),
                       ::testing::Values(1u, 2u, 8u, 31u, 100u)),
    [](const auto& info) {
      std::string algo = AlgorithmName(std::get<0>(info.param));
      for (char& ch : algo) {
        if (ch == '+') ch = 'P';
        if (ch == '-') ch = '_';
      }
      return algo + "_k" + std::to_string(std::get<1>(info.param));
    });

// --- DTW band monotonicity ---------------------------------------------------

class DtwBandSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(DtwBandSweep, MatchesOracleAtEveryBand) {
  const size_t band = GetParam();
  const Dataset data = TestData(406);
  EngineOptions options;
  options.algorithm = Algorithm::kMessi;
  options.num_threads = 3;
  options.tree.segments = 8;
  options.tree.leaf_capacity = 32;
  auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
  ASSERT_TRUE(engine.ok());

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 3, kLength, 406);
  for (size_t q = 0; q < queries.count(); ++q) {
    const Neighbor oracle =
        BruteForceDtwNn(InMemorySource(&data), queries.series(q), band);
    SearchRequest request;
    request.dtw = true;
    request.dtw_band = band;
    auto response = (*engine)->Search(queries.series(q), request);
    ASSERT_TRUE(response.ok());
    EXPECT_NEAR(response->neighbors[0].distance_sq, oracle.distance_sq,
                kTol * std::max(1.0f, oracle.distance_sq))
        << "band=" << band << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Bands, DtwBandSweep,
                         ::testing::Values(0u, 1u, 3u, 8u, 20u, 96u));

TEST(DtwBandProperty, BestDistanceShrinksAsBandGrows) {
  const Dataset data = TestData(407);
  EngineOptions options;
  options.algorithm = Algorithm::kMessi;
  options.num_threads = 2;
  options.tree.segments = 8;
  auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
  ASSERT_TRUE(engine.ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 3, kLength, 407);
  for (size_t q = 0; q < queries.count(); ++q) {
    float prev = std::numeric_limits<float>::infinity();
    for (const size_t band : {0ul, 2ul, 5ul, 12ul, 30ul}) {
      SearchRequest request;
      request.dtw = true;
      request.dtw_band = band;
      auto response = (*engine)->Search(queries.series(q), request);
      ASSERT_TRUE(response.ok());
      const float d = response->neighbors[0].distance_sq;
      EXPECT_LE(d, prev * (1.0f + 1e-4f) + 1e-4f) << "band=" << band;
      prev = d;
    }
  }
}

// --- approximate quality -----------------------------------------------------

TEST(ApproximateProperty, ApproximateAnswerIsUsuallyCompetitive) {
  // Statistical sanity: over many queries, the approximate answer's
  // distance should be within 2x of the exact distance most of the time
  // on random-walk data (the iSAX approximate-search selling point).
  const Dataset data = TestData(408);
  EngineOptions options;
  options.algorithm = Algorithm::kMessi;
  options.num_threads = 2;
  options.tree.segments = 8;
  options.tree.leaf_capacity = 64;
  auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
  ASSERT_TRUE(engine.ok());

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 32, kLength, 408);
  size_t competitive = 0;
  for (size_t q = 0; q < queries.count(); ++q) {
    SearchRequest approx;
    approx.approximate = true;
    auto a = (*engine)->Search(queries.series(q), approx);
    auto e = (*engine)->Search(queries.series(q), {});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(e.ok());
    const float ratio = std::sqrt(a->neighbors[0].distance_sq /
                                  std::max(1e-9f,
                                           e->neighbors[0].distance_sq));
    if (ratio <= 2.0f) ++competitive;
  }
  EXPECT_GE(competitive, queries.count() / 2)
      << "approximate answers should be within 2x of exact for at least "
         "half the queries";
}

// --- cross-engine agreement on identical workloads ---------------------------

TEST(CrossEngineProperty, AllEnginesAgreeOnPlantedNeighbors) {
  // Plant near-duplicates so the true 1-NN is unambiguous, then demand
  // every engine returns exactly that id.
  Dataset data = TestData(409);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 6, kLength, 409);
  for (size_t q = 0; q < queries.count(); ++q) {
    const SeriesId target = 100 + q * 37;
    MutableSeriesView dst = data.mutable_series(target);
    const SeriesView src = queries.series(q);
    for (size_t i = 0; i < kLength; ++i) {
      dst[i] = src[i] + (i % 7 == 0 ? 1e-3f : 0.0f);
    }
  }

  for (const Algorithm algorithm :
       {Algorithm::kUcrSerial, Algorithm::kUcrParallel, Algorithm::kAdsPlus,
        Algorithm::kParis, Algorithm::kParisPlus, Algorithm::kMessi}) {
    EngineOptions options;
    options.algorithm = algorithm;
    options.num_threads = 3;
    options.tree.segments = 8;
    options.tree.leaf_capacity = 32;
    options.batch_series = 256;
    auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
    ASSERT_TRUE(engine.ok());
    for (size_t q = 0; q < queries.count(); ++q) {
      auto response = (*engine)->Search(queries.series(q), {});
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(response->neighbors[0].id, 100 + q * 37)
          << AlgorithmName(algorithm) << " q=" << q;
    }
  }
}

}  // namespace
}  // namespace parisax
