// One RAII temporary directory per test case (or per storm run).
//
// ctest runs test binaries — and gtest value-parameterized instances —
// as separate concurrent processes, so any two cases writing the same
// path under a shared temp root race: one process's cleanup deletes the
// other's live file, or a half-written file from a crashed run poisons
// the next. Every repository test that touches disk therefore takes its
// paths from a ScopedTempDir: a mkdtemp-unique directory that is
// removed, recursively, when the scope ends.
//
// Deliberately gtest-free so non-gtest harnesses (tests/storm/) can use
// it too; it honors TMPDIR like ::testing::TempDir() does.
#ifndef PARISAX_TESTS_SUPPORT_TEMP_DIR_H_
#define PARISAX_TESTS_SUPPORT_TEMP_DIR_H_

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace parisax {
namespace testsupport {

class ScopedTempDir {
 public:
  /// Creates "<TMPDIR or /tmp>/<prefix>.XXXXXX". `prefix` names the
  /// owning suite in leftover-directory listings; keep it short and
  /// path-safe.
  explicit ScopedTempDir(const std::string& prefix = "parisax_test") {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = (base != nullptr && base[0] != '\0')
                           ? std::string(base)
                           : std::string("/tmp");
    if (tmpl.back() != '/') tmpl += '/';
    tmpl += prefix + ".XXXXXX";
    // mkdtemp mutates its argument in place.
    std::string buf = tmpl;
    if (::mkdtemp(buf.data()) != nullptr) {
      path_ = buf;
    } else {
      // Out of temp space or an unwritable TMPDIR: surface it at first
      // use (Path below still returns a unique-ish name under the
      // requested root so the failing open carries the real path).
      std::perror("ScopedTempDir: mkdtemp");
      path_ = tmpl;
    }
  }

  ~ScopedTempDir() {
    if (path_.empty()) return;
    std::error_code ec;  // best-effort: never throw from a destructor
    std::filesystem::remove_all(path_, ec);
  }

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  /// The directory itself.
  const std::string& path() const { return path_; }

  /// "<dir>/<name>" — the drop-in replacement for the old per-file
  /// TempPath helpers.
  std::string Path(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

}  // namespace testsupport
}  // namespace parisax

#endif  // PARISAX_TESTS_SUPPORT_TEMP_DIR_H_
