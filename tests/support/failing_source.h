// Deterministic failure injection on the RawSeriesSource data plane.
//
// FailingSource feeds the build pipelines and the engine append path
// exactly like a real source until a configured trip point, then
// returns a typed kIoError — driving the error-unwinding paths (worker
// pools, segment builders, Engine::Append's "snapshot unchanged on
// failure" contract) on demand and without real hardware faults.
// Shared by tests/failure_test.cpp and the storm harness
// (tests/storm/).
#ifndef PARISAX_TESTS_SUPPORT_FAILING_SOURCE_H_
#define PARISAX_TESTS_SUPPORT_FAILING_SOURCE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>

#include "index/raw_source.h"
#include "util/status.h"

namespace parisax {
namespace testsupport {

struct FailingSourceOptions {
  /// GetSeries(id) with id >= this returns kIoError ("the far half of
  /// the device is bad"). Position-based, so the trip is independent of
  /// read order.
  size_t fail_after_id = std::numeric_limits<size_t>::max();
  /// Reads fail once the *cumulative* bytes served by GetSeries reach
  /// this ("the device dies mid-run"). Order-dependent by design — it
  /// trips whichever reader crosses the budget first, wherever the
  /// pipeline happens to be.
  uint64_t fail_at_byte_offset = std::numeric_limits<uint64_t>::max();
  /// AppendSeries calls beyond this many successful ones return
  /// kIoError (the batch is not applied). Requires `appendable`.
  size_t fail_after_appends = std::numeric_limits<size_t>::max();
  /// Advertise (and implement) AppendSeries. Off by default to match
  /// the read-only build-pipeline uses.
  bool appendable = false;
};

/// A non-addressable source (ContiguousData() == nullptr — builds must
/// take the streamed path, which is where the interesting unwinding
/// lives) that serves zeros, or a wrapped delegate's data, until an
/// injection point trips.
class FailingSource : public RawSeriesSource {
 public:
  /// Synthesizes `count` zero series of `length` points.
  FailingSource(size_t count, size_t length,
                FailingSourceOptions options = {})
      : count_(count), length_(length), options_(options) {}

  /// Serves `delegate`'s data (through virtual per-series reads) until
  /// an injection point trips. The delegate supplies count/length and
  /// receives the appends that are allowed through.
  explicit FailingSource(std::unique_ptr<RawSeriesSource> delegate,
                         FailingSourceOptions options = {})
      : delegate_(std::move(delegate)),
        count_(0),
        length_(0),
        options_(options) {}

  size_t count() const override {
    return delegate_ != nullptr ? delegate_->count()
                                : count_ + appended_.load();
  }
  size_t length() const override {
    return delegate_ != nullptr ? delegate_->length() : length_;
  }

  Status GetSeries(SeriesId id, Value* out) const override {
    if (id >= options_.fail_after_id) {
      return Status::IOError("injected read failure (id trip)");
    }
    const size_t len = length();
    const uint64_t bytes = bytes_read_.fetch_add(len * sizeof(Value)) +
                           len * sizeof(Value);
    if (bytes > options_.fail_at_byte_offset) {
      return Status::IOError("injected read failure (byte-offset trip)");
    }
    if (delegate_ != nullptr) return delegate_->GetSeries(id, out);
    for (size_t i = 0; i < len; ++i) out[i] = 0.0f;
    return Status::OK();
  }

  bool appendable() const override { return options_.appendable; }

  Status AppendSeries(const Value* values, size_t count) override {
    if (!options_.appendable) {
      return Status::NotSupported("FailingSource is not appendable");
    }
    if (appends_done_.fetch_add(1) >= options_.fail_after_appends) {
      return Status::IOError("injected append failure");
    }
    if (delegate_ != nullptr) {
      return delegate_->AppendSeries(values, count);
    }
    appended_.fetch_add(count);
    return Status::OK();
  }

  /// Cumulative bytes GetSeries has served (including the read that
  /// tripped the byte-offset injection).
  uint64_t bytes_read() const { return bytes_read_.load(); }

 private:
  const std::unique_ptr<RawSeriesSource> delegate_;
  const size_t count_;
  const size_t length_;
  const FailingSourceOptions options_;
  mutable std::atomic<uint64_t> bytes_read_{0};
  std::atomic<size_t> appends_done_{0};
  std::atomic<size_t> appended_{0};
};

}  // namespace testsupport
}  // namespace parisax

#endif  // PARISAX_TESTS_SUPPORT_FAILING_SOURCE_H_
