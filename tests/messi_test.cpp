// Tests for MESSI: build equivalence across worker counts and buffer
// strategies (footnote-2 ablation), query correctness under varied queue
// counts, pruning statistics, and the iSAX buffer set.
#include "messi/messi_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "index/ads_index.h"
#include "io/generator.h"
#include "messi/isax_buffers.h"
#include "scan/ucr_scan.h"

namespace parisax {
namespace {

Dataset MakeData(size_t count = 4000, size_t length = 64,
                 uint64_t seed = 21) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = length;
  gen.seed = seed;
  return GenerateDataset(gen);
}

std::unique_ptr<InMemorySource> Mem(const Dataset& data) {
  return std::make_unique<InMemorySource>(&data);
}

MessiBuildOptions SmallBuild(int workers, bool locked = false) {
  MessiBuildOptions o;
  o.num_workers = workers;
  o.chunk_series = 256;
  o.locked_buffers = locked;
  o.tree.segments = 8;
  o.tree.leaf_capacity = 32;
  o.tree.series_length = 64;
  return o;
}

std::vector<SeriesId> AllIndexedIds(const SaxTree& tree) {
  std::vector<SeriesId> ids;
  tree.VisitLeaves(nullptr, [&](Node* leaf) {
    for (const LeafEntry& e : leaf->entries()) ids.push_back(e.id);
  });
  std::sort(ids.begin(), ids.end());
  return ids;
}

class MessiBuildConfigs
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(MessiBuildConfigs, IndexesEverySeriesExactlyOnce) {
  const auto [workers, locked] = GetParam();
  const Dataset data = MakeData();
  ThreadPool pool(workers);
  auto index = MessiIndex::Build(Mem(data), SmallBuild(workers, locked), &pool);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  EXPECT_TRUE((*index)->tree().CheckInvariants().ok());
  EXPECT_EQ((*index)->build_stats().tree.total_entries, data.count());
  const auto ids = AllIndexedIds((*index)->tree());
  ASSERT_EQ(ids.size(), data.count());
  for (SeriesId i = 0; i < data.count(); ++i) ASSERT_EQ(ids[i], i);
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndBuffers, MessiBuildConfigs,
    ::testing::Combine(::testing::Values(1, 2, 4, 7),
                       ::testing::Bool()),
    [](const auto& info) {
      return "w" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_locked" : "_partitioned");
    });

TEST(MessiTest, LockedAndPartitionedBuffersBuildSameRootPopulation) {
  // Footnote 2: both buffer strategies must index identically (the
  // difference is only performance).
  const Dataset data = MakeData(3000);
  ThreadPool pool(4);
  auto partitioned = MessiIndex::Build(Mem(data), SmallBuild(4, false), &pool);
  auto locked = MessiIndex::Build(Mem(data), SmallBuild(4, true), &pool);
  ASSERT_TRUE(partitioned.ok());
  ASSERT_TRUE(locked.ok());
  EXPECT_EQ((*partitioned)->tree().PresentRoots(),
            (*locked)->tree().PresentRoots());
  EXPECT_EQ(AllIndexedIds((*partitioned)->tree()),
            AllIndexedIds((*locked)->tree()));
}

TEST(MessiTest, BuildStatsCoverBothStages) {
  const Dataset data = MakeData(3000);
  ThreadPool pool(2);
  auto index = MessiIndex::Build(Mem(data), SmallBuild(2), &pool);
  ASSERT_TRUE(index.ok());
  const MessiBuildStats& stats = (*index)->build_stats();
  EXPECT_GT(stats.summarize_wall_seconds, 0.0);
  EXPECT_GT(stats.tree_wall_seconds, 0.0);
  EXPECT_GE(stats.wall_seconds,
            stats.summarize_wall_seconds + stats.tree_wall_seconds - 1e-3);
}

TEST(MessiTest, ExactSearchMatchesBruteForceAcrossQueueCounts) {
  const Dataset data = MakeData(3000);
  ThreadPool pool(4);
  auto index = MessiIndex::Build(Mem(data), SmallBuild(4), &pool);
  ASSERT_TRUE(index.ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 5, 64, 21);

  for (const int queues : {1, 2, 4, 9}) {
    MessiQueryOptions qopts;
    qopts.num_workers = 4;
    qopts.num_queues = queues;
    for (size_t q = 0; q < queries.count(); ++q) {
      const Neighbor oracle =
          BruteForceNn(InMemorySource(&data), queries.series(q),
                       KernelPolicy::kScalar);
      auto got = (*index)->SearchExact(queries.series(q), qopts, &pool);
      ASSERT_TRUE(got.ok());
      EXPECT_NEAR(got->distance_sq, oracle.distance_sq,
                  1e-3f * std::max(1.0f, oracle.distance_sq))
          << "queues=" << queues << " q=" << q;
    }
  }
}

TEST(MessiTest, QueryStatsShowTreePruning) {
  const Dataset data = MakeData(6000);
  ThreadPool pool(2);
  auto index = MessiIndex::Build(Mem(data), SmallBuild(2), &pool);
  ASSERT_TRUE(index.ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 4, 64, 21);

  const TreeStats tree_stats = (*index)->tree().Collect();
  for (size_t q = 0; q < queries.count(); ++q) {
    QueryStats stats;
    ASSERT_TRUE(
        (*index)->SearchExact(queries.series(q), {}, &pool, &stats).ok());
    // The tree-based search must not touch every entry: lower-bound
    // checks well below the collection size indicate subtree pruning.
    EXPECT_LT(stats.lb_checks, data.count()) << "q=" << q;
    EXPECT_LT(stats.real_dist_calcs, data.count() / 2) << "q=" << q;
    EXPECT_GT(stats.nodes_visited, 0u);
    EXPECT_LE(stats.leaves_inspected, tree_stats.leaves);
  }
}

TEST(MessiTest, MessiPrunesMoreRealDistancesThanParisFilter) {
  // The paper: "MESSI applies pruning when performing the lower bound
  // distance calculations ... As a side effect, MESSI also performs less
  // real distance calculations than ParIS."  ParIS's refinement computes
  // a real distance for every candidate surviving the flat filter; MESSI
  // re-checks entries against the evolving BSF.
  const Dataset data = MakeData(6000);
  ThreadPool pool(2);
  auto messi = MessiIndex::Build(Mem(data), SmallBuild(2), &pool);
  ASSERT_TRUE(messi.ok());

  AdsBuildOptions ads_options;
  ads_options.tree = SmallBuild(1).tree;
  auto ads = AdsIndex::Build(Mem(data), ads_options);
  ASSERT_TRUE(ads.ok());

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 6, 64, 21);
  uint64_t messi_real = 0, sims_real = 0;
  for (size_t q = 0; q < queries.count(); ++q) {
    QueryStats ms, as;
    ASSERT_TRUE((*messi)->SearchExact(queries.series(q), {}, &pool, &ms)
                    .ok());
    ASSERT_TRUE((*ads)->SearchExact(queries.series(q), {}, &as).ok());
    messi_real += ms.real_dist_calcs;
    sims_real += as.real_dist_calcs;
  }
  EXPECT_LE(messi_real, sims_real);
}

TEST(MessiTest, WorksWithTinyCollections) {
  for (const size_t count : {1u, 2u, 5u}) {
    const Dataset data = MakeData(count);
    ThreadPool pool(3);
    auto index = MessiIndex::Build(Mem(data), SmallBuild(3), &pool);
    ASSERT_TRUE(index.ok());
    const Dataset queries =
        GenerateQueries(DatasetKind::kRandomWalk, 2, 64, 21);
    for (size_t q = 0; q < queries.count(); ++q) {
      const Neighbor oracle =
          BruteForceNn(InMemorySource(&data), queries.series(q),
                       KernelPolicy::kScalar);
      auto got = (*index)->SearchExact(queries.series(q), {}, &pool);
      ASSERT_TRUE(got.ok());
      EXPECT_NEAR(got->distance_sq, oracle.distance_sq,
                  1e-3f * std::max(1.0f, oracle.distance_sq));
    }
  }
}

TEST(MessiTest, RejectsMismatchedOptions) {
  const Dataset data = MakeData(100);
  ThreadPool pool(2);
  MessiBuildOptions bad = SmallBuild(2);
  bad.tree.series_length = 32;  // dataset has 64
  EXPECT_EQ(MessiIndex::Build(Mem(data), bad, &pool).status().code(),
            StatusCode::kInvalidArgument);

  MessiBuildOptions too_many_workers = SmallBuild(8);
  EXPECT_EQ(
      MessiIndex::Build(Mem(data), too_many_workers, &pool).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(MessiTest, KnnDegeneratesGracefully) {
  const Dataset data = MakeData(50);
  ThreadPool pool(2);
  auto index = MessiIndex::Build(Mem(data), SmallBuild(2), &pool);
  ASSERT_TRUE(index.ok());
  const Dataset queries = GenerateQueries(DatasetKind::kRandomWalk, 1, 64, 21);
  // k larger than the collection returns everything, sorted.
  auto result = (*index)->SearchKnn(queries.series(0), 100, {}, &pool);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 50u);
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_LE((*result)[i - 1].distance_sq, (*result)[i].distance_sq);
  }
  // No duplicate ids.
  std::vector<SeriesId> ids;
  for (const Neighbor& n : *result) ids.push_back(n.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

// --- IsaxBufferSet -----------------------------------------------------------

class BufferModes : public ::testing::TestWithParam<bool> {};

TEST_P(BufferModes, GatherReturnsAllAppendedEntries) {
  const bool locked = GetParam();
  IsaxBufferSet buffers(6, 3, locked);
  for (int worker = 0; worker < 3; ++worker) {
    for (int i = 0; i < 100; ++i) {
      LeafEntry e;
      e.id = static_cast<uint64_t>(worker) * 1000 + i;
      buffers.Append(worker, static_cast<uint32_t>(i % 8), e);
    }
  }
  const auto keys = buffers.CollectKeys();
  EXPECT_EQ(keys.size(), 8u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

  size_t total = 0;
  for (const uint32_t key : keys) {
    std::vector<LeafEntry> out;
    buffers.Gather(key, &out);
    total += out.size();
    for (const LeafEntry& e : out) {
      EXPECT_EQ(e.id % 1000 % 8, key);
    }
  }
  EXPECT_EQ(total, 300u);
}

TEST_P(BufferModes, ConcurrentAppendsSurvive) {
  const bool locked = GetParam();
  constexpr int kThreads = 4, kPerThread = 3000;
  IsaxBufferSet buffers(8, kThreads, locked);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        LeafEntry e;
        e.id = static_cast<uint64_t>(t) * kPerThread + i;
        buffers.Append(t, static_cast<uint32_t>((t * 31 + i) % 200), e);
      }
    });
  }
  for (auto& t : threads) t.join();
  size_t total = 0;
  for (const uint32_t key : buffers.CollectKeys()) {
    std::vector<LeafEntry> out;
    buffers.Gather(key, &out);
    total += out.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(kThreads) * kPerThread);
}

INSTANTIATE_TEST_SUITE_P(LockedAndPartitioned, BufferModes,
                         ::testing::Bool(), [](const auto& info) {
                           return info.param ? std::string("locked")
                                             : std::string("partitioned");
                         });

}  // namespace
}  // namespace parisax
