// Segment-machinery tests: Engine::Append publishes immutable delta
// segments onto the serving snapshot (no exclusive index lock), the
// background compactor folds them into the base off the serving path,
// Compact/Save fold synchronously, and a workload storm — queries,
// appends, delta saves and compaction interleaved under QueryService
// load — leaves MESSI and ParIS+ answering byte-identically to a
// brute-force oracle over the combined collection.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "index/segment.h"
#include "io/format.h"
#include "io/generator.h"
#include "messi/messi_index.h"
#include "paris/paris_index.h"
#include "persist/snapshot.h"
#include "support/temp_dir.h"

namespace parisax {
namespace {

constexpr size_t kLength = 64;

std::string TempPath(const std::string& name) {
  static testsupport::ScopedTempDir dir("parisax_segment");
  return dir.Path(name);
}

Dataset MakeData(size_t count, uint64_t seed = 211) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = kLength;
  gen.seed = seed;
  return GenerateDataset(gen);
}

/// Rows [first, first + count) of `data` as their own collection.
Dataset Slice(const Dataset& data, size_t first, size_t count) {
  Dataset out(count, data.length());
  for (size_t i = 0; i < count; ++i) {
    const SeriesView src = data.series(first + i);
    std::copy(src.begin(), src.end(), out.mutable_series(i).begin());
  }
  return out;
}

EngineOptions BaseOptions(Algorithm algorithm) {
  EngineOptions o;
  o.algorithm = algorithm;
  o.num_threads = 2;
  o.tree.segments = 8;
  o.tree.leaf_capacity = 16;
  return o;
}

std::shared_ptr<const ServingState> Serving(Engine* engine) {
  if (engine->messi_index() != nullptr) {
    return engine->messi_index()->serving();
  }
  return engine->paris_index()->serving();
}

void ExpectSameResponse(const SearchResponse& want,
                        const SearchResponse& got,
                        const std::string& label) {
  ASSERT_EQ(want.neighbors.size(), got.neighbors.size()) << label;
  for (size_t i = 0; i < want.neighbors.size(); ++i) {
    EXPECT_EQ(want.neighbors[i].id, got.neighbors[i].id) << label;
    EXPECT_EQ(want.neighbors[i].distance_sq, got.neighbors[i].distance_sq)
        << label;
  }
}

/// ED 1-NN plus kNN (where supported) equivalence over a workload.
void ExpectQueryEquivalence(Engine* want, Engine* got,
                            const Dataset& queries,
                            const std::string& label) {
  const EngineCapabilities caps = got->capabilities();
  for (SeriesId q = 0; q < queries.count(); ++q) {
    const SeriesView view = queries.series(q);
    auto w = want->Search(view, {});
    auto g = got->Search(view, {});
    ASSERT_TRUE(w.ok()) << label << ": " << w.status().ToString();
    ASSERT_TRUE(g.ok()) << label << ": " << g.status().ToString();
    ExpectSameResponse(*w, *g, label + "/ed");
    if (caps.max_k >= 5) {
      SearchRequest knn;
      knn.k = 5;
      auto wk = want->Search(view, knn);
      auto gk = got->Search(view, knn);
      ASSERT_TRUE(wk.ok() && gk.ok()) << label;
      ExpectSameResponse(*wk, *gk, label + "/knn");
    }
  }
}

// --- segment publication ----------------------------------------------

TEST(SegmentTest, AppendsPublishSegmentsWithoutFolding) {
  const Dataset full = MakeData(600);
  for (const Algorithm a : {Algorithm::kMessi, Algorithm::kParisPlus}) {
    EngineOptions options = BaseOptions(a);
    options.background_compaction = false;  // keep the segments visible
    auto engine = Engine::Build(SourceSpec::InMemory(Slice(full, 0, 300)),
                                options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    const auto before = Serving(engine->get());
    EXPECT_EQ(before->base_count, 300u);
    EXPECT_TRUE(before->segments.empty());

    ASSERT_TRUE((*engine)->Append(Slice(full, 300, 120)).ok());
    ASSERT_TRUE((*engine)->Append(Slice(full, 420, 100)).ok());
    ASSERT_TRUE((*engine)->Append(Slice(full, 520, 80)).ok());

    // Three appends -> three immutable segments over an untouched base;
    // each segment knows exactly which id range it covers.
    const auto after = Serving(engine->get());
    EXPECT_EQ(after->base_count, 300u);
    EXPECT_EQ(after->count, 600u);
    ASSERT_EQ(after->segments.size(), 3u);
    EXPECT_EQ(after->segments[0]->first, 300u);
    EXPECT_EQ(after->segments[0]->count, 120u);
    EXPECT_EQ(after->segments[2]->first, 520u);
    EXPECT_EQ(after->segments[2]->count, 80u);
    EXPECT_EQ(after->segment_series(), 300u);
    // The snapshot captured before the appends is untouched: queries
    // that entered earlier keep serving it.
    EXPECT_TRUE(before->segments.empty());
    EXPECT_EQ(before->count, 300u);

    auto scratch = Engine::Build(
        SourceSpec::InMemory(Slice(full, 0, full.count())),
        BaseOptions(a));
    ASSERT_TRUE(scratch.ok());
    const Dataset queries =
        GenerateQueries(DatasetKind::kRandomWalk, 5, kLength, 212);
    ExpectQueryEquivalence(scratch->get(), engine->get(), queries,
                           std::string(AlgorithmName(a)) + "/segments");
  }
}

TEST(SegmentTest, CompactFoldsAllSegmentsSynchronously) {
  const Dataset full = MakeData(500, 221);
  EngineOptions options = BaseOptions(Algorithm::kMessi);
  options.background_compaction = false;
  auto engine = Engine::Build(SourceSpec::InMemory(Slice(full, 0, 350)),
                              options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Append(Slice(full, 350, 100)).ok());
  ASSERT_TRUE((*engine)->Append(Slice(full, 450, 50)).ok());
  ASSERT_EQ(Serving(engine->get())->segments.size(), 2u);

  const std::string path = TempPath("compact_folds.snap");
  ASSERT_TRUE((*engine)->Compact(path).ok());
  const auto folded = Serving(engine->get());
  EXPECT_TRUE(folded->segments.empty());
  EXPECT_EQ(folded->base_count, 500u);
  EXPECT_EQ(folded->count, 500u);

  auto scratch = Engine::Build(
      SourceSpec::InMemory(Slice(full, 0, full.count())),
      BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(scratch.ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 5, kLength, 222);
  ExpectQueryEquivalence(scratch->get(), engine->get(), queries,
                         "messi/folded");
  std::remove(path.c_str());
}

TEST(SegmentTest, BackgroundCompactorFoldsPastTheTrigger) {
  const Dataset full = MakeData(800, 231);
  for (const Algorithm a : {Algorithm::kMessi, Algorithm::kParisPlus}) {
    EngineOptions options = BaseOptions(a);
    options.compaction_trigger_segments = 4;
    auto engine = Engine::Build(SourceSpec::InMemory(Slice(full, 0, 400)),
                                options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->capabilities().background_compaction);

    for (size_t first = 400; first < 800; first += 50) {
      ASSERT_TRUE((*engine)->Append(Slice(full, first, 50)).ok());
    }
    // The compactor runs on its own thread; give it (ample) time to
    // bring the segment count back under the trigger.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (Serving(engine->get())->segments.size() >= 4 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const auto settled = Serving(engine->get());
    EXPECT_LT(settled->segments.size(), 4u) << AlgorithmName(a);
    EXPECT_EQ(settled->count, 800u);

    auto scratch = Engine::Build(
        SourceSpec::InMemory(Slice(full, 0, full.count())),
        BaseOptions(a));
    ASSERT_TRUE(scratch.ok());
    const Dataset queries =
        GenerateQueries(DatasetKind::kRandomWalk, 5, kLength, 232);
    ExpectQueryEquivalence(scratch->get(), engine->get(), queries,
                           std::string(AlgorithmName(a)) + "/compacted");
  }
}

TEST(SegmentTest, OpenRestoresLiveSegments) {
  // A delta save serializes the unfolded tail as one segment; Open
  // rehydrates it as a live serving segment rather than replaying it
  // into the base.
  const Dataset full = MakeData(900, 241);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 5, kLength, 242);
  for (const Algorithm a : {Algorithm::kMessi, Algorithm::kParisPlus}) {
    const std::string tag = std::string(AlgorithmName(a));
    const std::string data_path = TempPath(tag + "_open.psax");
    const std::string base_snap = TempPath(tag + "_open_base.snap");
    const std::string delta_snap = TempPath(tag + "_open_delta.snap");
    ASSERT_TRUE(WriteDataset(Slice(full, 0, 700), data_path).ok());

    EngineOptions options = BaseOptions(a);
    options.background_compaction = false;
    auto engine = Engine::Build(SourceSpec::Mmap(data_path), options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->Save(base_snap).ok());
    ASSERT_TRUE((*engine)->Append(Slice(full, 700, 200)).ok());
    ASSERT_TRUE((*engine)->Save(delta_snap).ok());

    auto restored = Engine::Open(delta_snap, data_path);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    const auto serving = Serving(restored->get());
    EXPECT_EQ(serving->base_count, 700u);
    EXPECT_EQ(serving->count, 900u);
    ASSERT_EQ(serving->segments.size(), 1u);
    EXPECT_EQ(serving->segments[0]->first, 700u);
    EXPECT_EQ(serving->segments[0]->count, 200u);

    ExpectQueryEquivalence(engine->get(), restored->get(), queries,
                           tag + "/reopened");
    for (const std::string& p : {data_path, base_snap, delta_snap}) {
      std::remove(p.c_str());
    }
  }
}

// --- the workload storm -----------------------------------------------

TEST(SegmentTest, WorkloadStormMatchesBruteForceOracle) {
  // Queries (QueryService load), appends, delta saves and synchronous
  // compaction interleaved, with the background compactor live the
  // whole time. Every mid-storm response must be well-formed for the
  // epoch it observed; the settled engine and the reopened last save
  // must answer byte-identically to a brute-force oracle.
  const Dataset full = MakeData(1400, 251);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 6, kLength, 252);

  auto oracle = Engine::Build(
      SourceSpec::InMemory(Slice(full, 0, full.count())),
      BaseOptions(Algorithm::kBruteForce));
  ASSERT_TRUE(oracle.ok());

  for (const Algorithm a : {Algorithm::kMessi, Algorithm::kParisPlus}) {
    const std::string tag = std::string(AlgorithmName(a));
    const std::string data_path = TempPath(tag + "_storm.psax");
    const std::string save_a = TempPath(tag + "_storm_a.snap");
    const std::string save_b = TempPath(tag + "_storm_b.snap");
    const std::string save_c = TempPath(tag + "_storm_c.snap");
    ASSERT_TRUE(WriteDataset(Slice(full, 0, 800), data_path).ok());

    EngineOptions options = BaseOptions(a);
    options.compaction_trigger_segments = 3;
    auto built = Engine::Build(SourceSpec::Mmap(data_path), options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    Engine* engine = built->get();

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> answered{0};
    const size_t knn_k = engine->capabilities().max_k >= 3 ? 3 : 1;
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&, c] {
        uint64_t i = 0;
        while (!stop.load(std::memory_order_acquire)) {
          const SeriesView q =
              queries.series((c + i++) % queries.count());
          SearchRequest request;
          if (i % 3 == 0) request.k = knn_k;
          auto response = engine->Submit(q, request).get();
          EXPECT_TRUE(response.ok()) << response.status().ToString();
          if (response.ok()) {
            for (const Neighbor& n : response->neighbors) {
              EXPECT_LT(n.id, engine->series_count());
              EXPECT_GE(n.distance_sq, 0.0f);
            }
          }
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    // The storm: append / save / append / compact / append / save.
    ASSERT_TRUE(engine->Save(save_a).ok());
    for (size_t first = 800; first < 1000; first += 50) {
      ASSERT_TRUE(engine->Append(Slice(full, first, 50)).ok());
    }
    ASSERT_TRUE(engine->Save(save_b).ok());
    for (size_t first = 1000; first < 1200; first += 50) {
      ASSERT_TRUE(engine->Append(Slice(full, first, 50)).ok());
    }
    ASSERT_TRUE(engine->Compact(save_c).ok());
    for (size_t first = 1200; first < 1400; first += 50) {
      ASSERT_TRUE(engine->Append(Slice(full, first, 50)).ok());
    }
    ASSERT_TRUE(engine->Save(save_b).ok());

    while (answered.load(std::memory_order_relaxed) < 30) {
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : clients) t.join();

    ASSERT_EQ(engine->series_count(), full.count());
    ExpectQueryEquivalence(oracle->get(), engine, queries,
                           tag + "/storm");

    // The last save (a delta over the compacted file, or a full
    // fallback — either is legal) restores the full collection.
    auto restored = Engine::Open(save_b, data_path);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ((*restored)->series_count(), full.count());
    ExpectQueryEquivalence(oracle->get(), restored->get(), queries,
                           tag + "/storm-reopened");

    for (const std::string& p : {data_path, save_a, save_b, save_c}) {
      std::remove(p.c_str());
    }
  }
}

}  // namespace
}  // namespace parisax
