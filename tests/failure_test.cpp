// Failure injection: corrupted files, impossible options, and error
// propagation out of the parallel build pipelines. A failed build or
// query must surface a Status -- never crash, hang, or silently return
// wrong answers.
#include <gtest/gtest.h>

#include <fstream>
#include <unistd.h>

#include "core/engine.h"
#include "index/leaf_storage.h"
#include "io/format.h"
#include "io/generator.h"
#include "paris/paris_index.h"
#include "support/failing_source.h"
#include "support/temp_dir.h"

namespace parisax {
namespace {

using testsupport::FailingSource;
using testsupport::FailingSourceOptions;

std::string TempPath(const std::string& name) {
  static testsupport::ScopedTempDir dir("parisax_failure");
  return dir.Path(name);
}

Dataset MakeData(size_t count = 1000, size_t length = 64) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = length;
  gen.seed = 313;
  return GenerateDataset(gen);
}

TEST(FailureTest, EngineRejectsMissingFile) {
  EngineOptions options;
  options.algorithm = Algorithm::kParisPlus;
  options.tree.segments = 8;
  auto engine = Engine::Build(
      SourceSpec::File(TempPath("missing_engine.psax")), options);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotFound);
}

TEST(FailureTest, EngineRejectsCorruptHeader) {
  const std::string path = TempPath("corrupt_header.psax");
  std::ofstream f(path, std::ios::binary);
  f << "GARBAGEGARBAGEGARBAGEGARBAGE";
  f.close();
  EngineOptions options;
  options.algorithm = Algorithm::kAdsPlus;
  options.tree.segments = 8;
  auto engine = Engine::Build(SourceSpec::File(path), options);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kCorruption);
}

TEST(FailureTest, ParisBuildSurvivesTruncatedDataset) {
  // A dataset that shrinks under the build (truncated after the source
  // was opened) must fail cleanly mid-pipeline -- the interesting part
  // is that the coordinator's read error must unwind the worker pool
  // without deadlock. (A file already truncated at open time is caught
  // earlier, by FileSource::Open's header validation.)
  const Dataset data = MakeData(2000);
  const std::string path = TempPath("truncated_build.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());

  ParisBuildOptions build;
  build.num_workers = 4;
  build.plus_mode = true;
  build.batch_series = 128;
  build.tree.segments = 8;
  build.tree.leaf_capacity = 16;
  build.tree.series_length = 64;
  build.leaf_storage_path = TempPath("truncated_build.leaves");
  auto source = FileSource::Open(path, DiskProfile::Instant());
  ASSERT_TRUE(source.ok());
  const DatasetFileInfo info{2000, 64, 0};
  ASSERT_EQ(::truncate(path.c_str(),
                       static_cast<off_t>(info.FileBytes() / 2)), 0);
  auto index = ParisIndex::Build(std::move(*source), build);
  EXPECT_FALSE(index.ok());

  // A file short at open time fails fast with a typed error instead.
  EXPECT_EQ(FileSource::Open(path, DiskProfile::Instant()).status().code(),
            StatusCode::kCorruption);
}

TEST(FailureTest, ParisPipelineUnwindsOnMidStreamReadError) {
  // The coordinator hits the injected read error several batches in;
  // the bulk-loading workers (and, for ParIS, the construction pool)
  // must unwind without deadlock and surface the Status.
  for (const bool plus : {false, true}) {
    ParisBuildOptions build;
    build.num_workers = 4;
    build.plus_mode = plus;
    build.batch_series = 64;
    build.tree.segments = 8;
    build.tree.leaf_capacity = 16;
    build.tree.series_length = 64;
    build.leaf_storage_path = TempPath("midstream_fail.leaves");
    FailingSourceOptions fail;
    fail.fail_after_id = 300;
    auto index = ParisIndex::Build(
        std::make_unique<FailingSource>(1000, 64, fail), build);
    ASSERT_FALSE(index.ok()) << (plus ? "paris+" : "paris");
    EXPECT_EQ(index.status().code(), StatusCode::kIoError);
  }
}

TEST(FailureTest, ParisPipelineUnwindsOnByteBudgetExhaustion) {
  // Unlike the id trip, the byte-offset trip is cumulative across all
  // readers: the "device" dies mid-run wherever the pipeline happens to
  // be, not at a fixed series. The unwinding contract is the same.
  ParisBuildOptions build;
  build.num_workers = 4;
  build.plus_mode = true;
  build.batch_series = 64;
  build.tree.segments = 8;
  build.tree.leaf_capacity = 16;
  build.tree.series_length = 64;
  build.leaf_storage_path = TempPath("byte_trip.leaves");
  FailingSourceOptions fail;
  fail.fail_at_byte_offset = 250 * 64 * sizeof(Value);
  auto index = ParisIndex::Build(
      std::make_unique<FailingSource>(1000, 64, fail), build);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kIoError);
}

TEST(FailureTest, FailedAppendLeavesServingSnapshotUnchanged) {
  // Scan engines route Engine::Append straight to the raw source; an
  // injected source failure must surface the Status without growing the
  // serving count, and later queries must still succeed.
  FailingSourceOptions fail;
  fail.appendable = true;
  fail.fail_after_appends = 1;
  EngineOptions options;
  // ucr-s is the scan engine that accepts a streamed (non-addressable)
  // custom source.
  options.algorithm = Algorithm::kUcrSerial;
  options.num_threads = 2;
  auto engine = Engine::Build(
      SourceSpec::Custom(std::make_unique<FailingSource>(100, 64, fail)),
      options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->capabilities().append);

  const Dataset extra = MakeData(3);
  auto first = (*engine)->Append(extra);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->total_series, 103u);

  auto second = (*engine)->Append(extra);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kIoError);
  EXPECT_EQ((*engine)->series_count(), 103u);

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 2, 64, 617);
  for (size_t q = 0; q < queries.count(); ++q) {
    auto response = (*engine)->Search(queries.series(q), {});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    for (const auto& n : response->neighbors) {
      EXPECT_LT(n.id, 103u);
    }
  }
}

TEST(FailureTest, LeafStorageReadBeyondEndFails) {
  auto storage = LeafStorage::Create(TempPath("short_leaf.bin"));
  ASSERT_TRUE(storage.ok());
  std::vector<LeafEntry> entries(4);
  auto ref = (*storage)->AppendChunk(entries);
  ASSERT_TRUE(ref.ok());
  LeafChunkRef bogus = *ref;
  bogus.count = 400;  // far beyond what was written
  std::vector<LeafEntry> out;
  EXPECT_EQ((*storage)->ReadChunk(bogus, &out).code(),
            StatusCode::kCorruption);
}

TEST(FailureTest, ParisRejectsImpossibleLeafStoragePath) {
  const Dataset data = MakeData(500);
  const std::string path = TempPath("ok_data.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());
  ParisBuildOptions build;
  build.num_workers = 2;
  build.tree.segments = 8;
  build.tree.series_length = 64;
  build.leaf_storage_path = "/no-such-dir-xyz/leaves.bin";
  auto source = FileSource::Open(path, DiskProfile::Instant());
  ASSERT_TRUE(source.ok());
  EXPECT_FALSE(ParisIndex::Build(std::move(*source), build).ok());
}

TEST(FailureTest, EngineSearchAfterFailedOptionsNeverCrashes) {
  const Dataset data = MakeData(200);
  // segments beyond kMaxSegments would corrupt SaxWord storage; the
  // options path must refuse before any engine code runs.
  EngineOptions options;
  options.algorithm = Algorithm::kMessi;
  options.tree.segments = 8;
  options.tree.leaf_capacity = 0;  // nonsense
  auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);

  options.tree.leaf_capacity = 128;
  options.tree.segments = 0;  // also nonsense
  EXPECT_EQ(Engine::Build(SourceSpec::Borrowed(&data), options).status().code(),
            StatusCode::kInvalidArgument);
  options.tree.segments = 17;  // beyond kMaxSegments
  EXPECT_EQ(Engine::Build(SourceSpec::Borrowed(&data), options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FailureTest, UcrDiskScanPropagatesOpenFailure) {
  std::vector<float> query(64, 0.0f);
  EngineOptions options;
  options.algorithm = Algorithm::kUcrSerial;
  auto engine = Engine::Build(
      SourceSpec::File(TempPath("missing_ucr.psax")), options);
  EXPECT_FALSE(engine.ok());
}

TEST(FailureTest, DeletedFileAfterOpenIsHandledAtQueryTime) {
  // Building ParIS+ keeps a FileSource fd open; deleting the file under
  // it is fine on POSIX (the fd stays valid). The engine must keep
  // answering queries correctly.
  const Dataset data = MakeData(1500);
  const std::string path = TempPath("deleted_under_fd.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());
  EngineOptions options;
  options.algorithm = Algorithm::kParisPlus;
  options.num_threads = 2;
  options.tree.segments = 8;
  options.leaf_storage_path = TempPath("deleted_under_fd.leaves");
  auto engine = Engine::Build(SourceSpec::File(path), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_EQ(std::remove(path.c_str()), 0);

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 2, 64, 313);
  for (size_t q = 0; q < queries.count(); ++q) {
    auto response = (*engine)->Search(queries.series(q), {});
    EXPECT_TRUE(response.ok()) << response.status().ToString();
  }
}

TEST(FailureTest, ZeroLengthQuerySpanRejectedEverywhere) {
  const Dataset data = MakeData(100);
  for (const Algorithm algorithm :
       {Algorithm::kBruteForce, Algorithm::kUcrParallel, Algorithm::kMessi,
        Algorithm::kAdsPlus, Algorithm::kParisPlus}) {
    EngineOptions options;
    options.algorithm = algorithm;
    options.num_threads = 2;
    options.tree.segments = 8;
    auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
    ASSERT_TRUE(engine.ok()) << AlgorithmName(algorithm);
    auto response = (*engine)->Search(SeriesView(), {});
    EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument)
        << AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace parisax
