// Failure injection: corrupted files, impossible options, and error
// propagation out of the parallel build pipelines. A failed build or
// query must surface a Status -- never crash, hang, or silently return
// wrong answers.
#include <gtest/gtest.h>

#include <fstream>
#include <unistd.h>

#include "core/engine.h"
#include "index/leaf_storage.h"
#include "io/format.h"
#include "io/generator.h"
#include "paris/paris_index.h"

namespace parisax {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Dataset MakeData(size_t count = 1000, size_t length = 64) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = length;
  gen.seed = 313;
  return GenerateDataset(gen);
}

TEST(FailureTest, EngineRejectsMissingFile) {
  EngineOptions options;
  options.algorithm = Algorithm::kParisPlus;
  options.tree.segments = 8;
  auto engine = Engine::BuildFromFile(TempPath("missing_engine.psax"),
                                      options);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotFound);
}

TEST(FailureTest, EngineRejectsCorruptHeader) {
  const std::string path = TempPath("corrupt_header.psax");
  std::ofstream f(path, std::ios::binary);
  f << "GARBAGEGARBAGEGARBAGEGARBAGE";
  f.close();
  EngineOptions options;
  options.algorithm = Algorithm::kAdsPlus;
  options.tree.segments = 8;
  auto engine = Engine::BuildFromFile(path, options);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kCorruption);
}

TEST(FailureTest, ParisBuildSurvivesTruncatedDataset) {
  // A dataset whose payload is shorter than its header claims must fail
  // cleanly during the pipelined build -- the interesting part is that
  // the coordinator error must unwind the worker pool without deadlock.
  const Dataset data = MakeData(2000);
  const std::string path = TempPath("truncated_build.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());
  const DatasetFileInfo info{2000, 64, 0};
  ASSERT_EQ(::truncate(path.c_str(),
                       static_cast<off_t>(info.FileBytes() / 2)), 0);

  ParisBuildOptions build;
  build.num_workers = 4;
  build.plus_mode = true;
  build.batch_series = 128;
  build.tree.segments = 8;
  build.tree.leaf_capacity = 16;
  build.tree.series_length = 64;
  build.raw_profile = DiskProfile::Instant();
  build.leaf_storage_path = TempPath("truncated_build.leaves");
  auto index = ParisIndex::BuildFromFile(path, build,
                                         DiskProfile::Instant());
  EXPECT_FALSE(index.ok());
}

TEST(FailureTest, LeafStorageReadBeyondEndFails) {
  auto storage = LeafStorage::Create(TempPath("short_leaf.bin"));
  ASSERT_TRUE(storage.ok());
  std::vector<LeafEntry> entries(4);
  auto ref = (*storage)->AppendChunk(entries);
  ASSERT_TRUE(ref.ok());
  LeafChunkRef bogus = *ref;
  bogus.count = 400;  // far beyond what was written
  std::vector<LeafEntry> out;
  EXPECT_EQ((*storage)->ReadChunk(bogus, &out).code(),
            StatusCode::kCorruption);
}

TEST(FailureTest, ParisRejectsImpossibleLeafStoragePath) {
  const Dataset data = MakeData(500);
  const std::string path = TempPath("ok_data.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());
  ParisBuildOptions build;
  build.num_workers = 2;
  build.tree.segments = 8;
  build.tree.series_length = 64;
  build.raw_profile = DiskProfile::Instant();
  build.leaf_storage_path = "/no-such-dir-xyz/leaves.bin";
  EXPECT_FALSE(
      ParisIndex::BuildFromFile(path, build, DiskProfile::Instant()).ok());
}

TEST(FailureTest, EngineSearchAfterFailedOptionsNeverCrashes) {
  const Dataset data = MakeData(200);
  // segments beyond kMaxSegments would corrupt SaxWord storage; the
  // options path must refuse before any engine code runs.
  EngineOptions options;
  options.algorithm = Algorithm::kMessi;
  options.tree.segments = 8;
  options.tree.leaf_capacity = 0;  // nonsense
  auto engine = Engine::BuildInMemory(&data, options);
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);

  options.tree.leaf_capacity = 128;
  options.tree.segments = 0;  // also nonsense
  EXPECT_EQ(Engine::BuildInMemory(&data, options).status().code(),
            StatusCode::kInvalidArgument);
  options.tree.segments = 17;  // beyond kMaxSegments
  EXPECT_EQ(Engine::BuildInMemory(&data, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FailureTest, UcrDiskScanPropagatesOpenFailure) {
  std::vector<float> query(64, 0.0f);
  EngineOptions options;
  options.algorithm = Algorithm::kUcrSerial;
  auto engine = Engine::BuildFromFile(TempPath("missing_ucr.psax"),
                                      options);
  EXPECT_FALSE(engine.ok());
}

TEST(FailureTest, DeletedFileAfterOpenIsHandledAtQueryTime) {
  // Building ParIS+ keeps a DiskSource fd open; deleting the file under
  // it is fine on POSIX (the fd stays valid). The engine must keep
  // answering queries correctly.
  const Dataset data = MakeData(1500);
  const std::string path = TempPath("deleted_under_fd.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());
  EngineOptions options;
  options.algorithm = Algorithm::kParisPlus;
  options.num_threads = 2;
  options.tree.segments = 8;
  options.leaf_storage_path = TempPath("deleted_under_fd.leaves");
  auto engine = Engine::BuildFromFile(path, options);
  ASSERT_TRUE(engine.ok());
  ASSERT_EQ(std::remove(path.c_str()), 0);

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 2, 64, 313);
  for (size_t q = 0; q < queries.count(); ++q) {
    auto response = (*engine)->Search(queries.series(q), {});
    EXPECT_TRUE(response.ok()) << response.status().ToString();
  }
}

TEST(FailureTest, ZeroLengthQuerySpanRejectedEverywhere) {
  const Dataset data = MakeData(100);
  for (const Algorithm algorithm :
       {Algorithm::kBruteForce, Algorithm::kUcrParallel, Algorithm::kMessi,
        Algorithm::kAdsPlus, Algorithm::kParisPlus}) {
    EngineOptions options;
    options.algorithm = algorithm;
    options.num_threads = 2;
    options.tree.segments = 8;
    auto engine = Engine::BuildInMemory(&data, options);
    ASSERT_TRUE(engine.ok()) << AlgorithmName(algorithm);
    auto response = (*engine)->Search(SeriesView(), {});
    EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument)
        << AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace parisax
