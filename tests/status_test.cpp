// Tests for the Status / Result error-handling primitives.
#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace parisax {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  const Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kIoError,
        StatusCode::kCorruption, StatusCode::kNotFound,
        StatusCode::kNotSupported, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  PARISAX_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

Status UseAssignOrReturn(int x, int* out) {
  PARISAX_ASSIGN_OR_RETURN(*out, DoubleIfPositive(x));
  return Status::OK();
}

TEST(ResultTest, MacrosPropagateErrors) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  const Status s = UseAssignOrReturn(-1, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace parisax
