// Tests for the iSAX tree: insertion, splitting (balance policy, cascades,
// max-cardinality overflow), routing, approximate descent, invariants and
// stats.
#include "index/tree.h"

#include <gtest/gtest.h>

#include <set>

#include "io/generator.h"
#include "sax/mindist.h"
#include "sax/paa.h"
#include "util/rng.h"

namespace parisax {
namespace {

LeafEntry MakeEntry(const SaxSymbols& sax, SeriesId id) {
  LeafEntry e;
  e.sax = sax;
  e.id = id;
  return e;
}

SaxTreeOptions SmallOptions(int segments = 4, size_t leaf_capacity = 4) {
  SaxTreeOptions o;
  o.segments = segments;
  o.leaf_capacity = leaf_capacity;
  o.series_length = 64;
  return o;
}

std::vector<LeafEntry> EntriesFromDataset(const Dataset& data, int w) {
  std::vector<LeafEntry> entries;
  float paa[kMaxSegments];
  for (SeriesId i = 0; i < data.count(); ++i) {
    ComputePaa(data.series(i), w, paa);
    LeafEntry e;
    e.id = i;
    SymbolsFromPaa(paa, w, &e.sax);
    entries.push_back(e);
  }
  return entries;
}

TEST(NodeTest, MakeInnerRefinesWord) {
  SaxWord word = RootWord(0b1010, 4);
  Node node(word);
  ASSERT_TRUE(node.IsLeaf());
  node.MakeInner(2);
  ASSERT_FALSE(node.IsLeaf());
  EXPECT_EQ(node.split_segment(), 2);
  for (int bit = 0; bit < 2; ++bit) {
    const Node* child = node.child(bit);
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(child->word().bits[2], 2);
    EXPECT_EQ(child->word().symbols[2], (word.symbols[2] << 1) | bit);
    // Other segments untouched.
    for (int s = 0; s < 4; ++s) {
      if (s == 2) continue;
      EXPECT_EQ(child->word().bits[s], word.bits[s]);
      EXPECT_EQ(child->word().symbols[s], word.symbols[s]);
    }
  }
}

TEST(NodeTest, RouteFollowsRefinedBit) {
  Node node(RootWord(0, 2));
  node.MakeInner(1);
  SaxSymbols low, high;
  low.symbols[1] = 0b00000000;   // second bit 0
  high.symbols[1] = 0b01000000;  // second bit 1 (top bit still 0)
  EXPECT_EQ(node.Route(low), node.child(0));
  EXPECT_EQ(node.Route(high), node.child(1));
}

TEST(TreeTest, InsertBuildsValidTree) {
  GeneratorOptions gen;
  gen.count = 2000;
  gen.length = 64;
  gen.seed = 23;
  const Dataset data = GenerateDataset(gen);
  const SaxTreeOptions options = SmallOptions(8, 16);
  SaxTree tree(options);
  for (const LeafEntry& e : EntriesFromDataset(data, options.segments)) {
    ASSERT_TRUE(tree.Insert(e).ok());
  }
  tree.SealRoots();
  EXPECT_TRUE(tree.CheckInvariants().ok());
  const TreeStats stats = tree.Collect();
  EXPECT_EQ(stats.total_entries, data.count());
  EXPECT_GT(stats.leaves, data.count() / options.leaf_capacity / 2);
  EXPECT_EQ(stats.root_children, tree.PresentRoots().size());
}

TEST(TreeTest, EveryEntryReachableByRouting) {
  GeneratorOptions gen;
  gen.count = 500;
  gen.length = 64;
  gen.seed = 29;
  const Dataset data = GenerateDataset(gen);
  const SaxTreeOptions options = SmallOptions(8, 8);
  SaxTree tree(options);
  const auto entries = EntriesFromDataset(data, options.segments);
  for (const LeafEntry& e : entries) ASSERT_TRUE(tree.Insert(e).ok());
  tree.SealRoots();

  for (const LeafEntry& e : entries) {
    Node* node = tree.RootAt(RootKey(e.sax, options.segments));
    ASSERT_NE(node, nullptr);
    while (!node->IsLeaf()) node = node->Route(e.sax);
    bool found = false;
    for (const LeafEntry& le : node->entries()) {
      if (le.id == e.id) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "series " << e.id
                       << " not in the leaf routing reaches";
  }
}

TEST(TreeTest, LeafCapacityRespected) {
  GeneratorOptions gen;
  gen.count = 3000;
  gen.length = 64;
  gen.seed = 31;
  const Dataset data = GenerateDataset(gen);
  for (const size_t capacity : {1u, 2u, 7u, 64u}) {
    SaxTreeOptions options = SmallOptions(8, capacity);
    SaxTree tree(options);
    for (const LeafEntry& e : EntriesFromDataset(data, options.segments)) {
      ASSERT_TRUE(tree.Insert(e).ok());
    }
    tree.SealRoots();
    EXPECT_TRUE(tree.CheckInvariants().ok()) << "capacity=" << capacity;
    size_t checked = 0;
    tree.VisitLeaves(nullptr, [&](Node* leaf) {
      ++checked;
      if (leaf->LeafSize() > capacity) {
        // Only allowed at max cardinality everywhere.
        for (int s = 0; s < options.segments; ++s) {
          EXPECT_EQ(leaf->word().bits[s], kMaxCardBits);
        }
      }
    });
    EXPECT_GT(checked, 0u);
  }
}

TEST(TreeTest, DuplicateSummariesOverflowGracefully) {
  // Identical summaries cannot be separated by any split: the leaf chain
  // must refine to max cardinality and then hold everything.
  const SaxTreeOptions options = SmallOptions(2, 2);
  SaxTree tree(options);
  SaxSymbols sax;
  sax.symbols[0] = 0b10110010;
  sax.symbols[1] = 0b01010101;
  for (SeriesId i = 0; i < 20; ++i) {
    ASSERT_TRUE(tree.Insert(MakeEntry(sax, i)).ok());
  }
  tree.SealRoots();
  EXPECT_TRUE(tree.CheckInvariants().ok());
  const TreeStats stats = tree.Collect();
  EXPECT_EQ(stats.total_entries, 20u);
  EXPECT_EQ(stats.oversized_leaves, 1u);
}

TEST(TreeTest, SplitPrefersBalancedSegment) {
  // Segment 0: all entries share the next bit (unbalanced split).
  // Segment 1: entries split 3/3 (perfectly balanced) -> must be chosen.
  const SaxTreeOptions options = SmallOptions(2, 5);
  SaxTree tree(options);
  std::vector<LeafEntry> entries;
  for (int i = 0; i < 6; ++i) {
    SaxSymbols sax;
    sax.symbols[0] = 0b00000000;  // next bit always 0
    sax.symbols[1] = i < 3 ? 0b00000000 : 0b01000000;  // next bit 0/1
    entries.push_back(MakeEntry(sax, i));
  }
  for (const LeafEntry& e : entries) ASSERT_TRUE(tree.Insert(e).ok());
  tree.SealRoots();
  Node* root = tree.RootAt(0);
  ASSERT_NE(root, nullptr);
  ASSERT_FALSE(root->IsLeaf());
  EXPECT_EQ(root->split_segment(), 1);
  EXPECT_EQ(root->child(0)->LeafSize(), 3u);
  EXPECT_EQ(root->child(1)->LeafSize(), 3u);
}

TEST(TreeTest, CascadingSplitWhenAllEntriesShareOneSide) {
  // All entries agree on the first few refinement bits of every segment,
  // forcing repeated splits until a separating bit is found.
  const SaxTreeOptions options = SmallOptions(1, 1);
  SaxTree tree(options);
  SaxSymbols a, b;
  a.symbols[0] = 0b10000000;
  b.symbols[0] = 0b10000001;  // differs only in the last bit
  ASSERT_TRUE(tree.Insert(MakeEntry(a, 0)).ok());
  ASSERT_TRUE(tree.Insert(MakeEntry(b, 1)).ok());
  tree.SealRoots();
  EXPECT_TRUE(tree.CheckInvariants().ok());
  const TreeStats stats = tree.Collect();
  EXPECT_EQ(stats.total_entries, 2u);
  // 7 cascading splits were needed to separate the last bit.
  EXPECT_EQ(stats.max_depth, 8u);
  EXPECT_EQ(stats.oversized_leaves, 0u);
}

TEST(TreeTest, ApproximateLeafDescendsToMatchingRegion) {
  GeneratorOptions gen;
  gen.count = 1000;
  gen.length = 64;
  gen.seed = 37;
  const Dataset data = GenerateDataset(gen);
  const SaxTreeOptions options = SmallOptions(8, 8);
  SaxTree tree(options);
  const auto entries = EntriesFromDataset(data, options.segments);
  for (const LeafEntry& e : entries) ASSERT_TRUE(tree.Insert(e).ok());
  tree.SealRoots();

  // For an indexed series, the approximate leaf must contain it.
  float paa[kMaxSegments];
  for (SeriesId i = 0; i < 50; ++i) {
    ComputePaa(data.series(i), options.segments, paa);
    Node* leaf = tree.ApproximateLeaf(entries[i].sax, paa);
    ASSERT_NE(leaf, nullptr);
    bool found = false;
    for (const LeafEntry& le : leaf->entries()) found |= le.id == i;
    EXPECT_TRUE(found) << "series " << i;
  }
}

TEST(TreeTest, ApproximateLeafFallsBackToNearestRoot) {
  const SaxTreeOptions options = SmallOptions(2, 4);
  SaxTree tree(options);
  // Only root 0b11 exists (both segments high).
  SaxSymbols high;
  high.symbols[0] = 0b11000000;
  high.symbols[1] = 0b11000000;
  ASSERT_TRUE(tree.Insert(MakeEntry(high, 0)).ok());
  tree.SealRoots();

  // Query in region 0b00: exact root child missing -> fallback.
  SaxSymbols low;
  low.symbols[0] = 0;
  low.symbols[1] = 0;
  float paa[2] = {-2.0f, -2.0f};
  Node* leaf = tree.ApproximateLeaf(low, paa);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->LeafSize(), 1u);
}

TEST(TreeTest, EmptyTreeBehaviour) {
  SaxTree tree(SmallOptions());
  tree.SealRoots();
  EXPECT_TRUE(tree.PresentRoots().empty());
  SaxSymbols sax;
  float paa[4] = {0, 0, 0, 0};
  EXPECT_EQ(tree.ApproximateLeaf(sax, paa), nullptr);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  const TreeStats stats = tree.Collect();
  EXPECT_EQ(stats.total_entries, 0u);
  EXPECT_EQ(stats.leaves, 0u);
}

TEST(TreeTest, SealRootsIsSortedAndComplete) {
  const SaxTreeOptions options = SmallOptions(4, 4);
  SaxTree tree(options);
  Rng rng(41);
  std::set<uint32_t> expected;
  for (int i = 0; i < 200; ++i) {
    SaxSymbols sax;
    for (int s = 0; s < options.segments; ++s) {
      sax.symbols[s] = static_cast<uint8_t>(rng.NextU64() & 0xff);
    }
    expected.insert(RootKey(sax, options.segments));
    ASSERT_TRUE(tree.Insert(MakeEntry(sax, i)).ok());
  }
  tree.SealRoots();
  const auto& present = tree.PresentRoots();
  ASSERT_EQ(present.size(), expected.size());
  size_t idx = 0;
  for (const uint32_t key : expected) {
    EXPECT_EQ(present[idx++], key);  // std::set iterates ascending
  }
}

}  // namespace
}  // namespace parisax
