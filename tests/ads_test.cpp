// Tests for the ADS+ baseline: SIMS phase behavior, build stats, leaf
// materialization, and in-memory/on-disk equivalence.
#include "index/ads_index.h"

#include <gtest/gtest.h>

#include <cmath>

#include "io/format.h"
#include "io/generator.h"
#include "scan/ucr_scan.h"

namespace parisax {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Dataset MakeData(size_t count = 3000, size_t length = 64,
                 uint64_t seed = 61) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = length;
  gen.seed = seed;
  return GenerateDataset(gen);
}

AdsBuildOptions SmallBuild() {
  AdsBuildOptions o;
  o.tree.segments = 8;
  o.tree.leaf_capacity = 32;
  o.tree.series_length = 64;
  return o;
}

std::unique_ptr<InMemorySource> Mem(const Dataset& data) {
  return std::make_unique<InMemorySource>(&data);
}

std::unique_ptr<FileSource> Streamed(const std::string& path) {
  auto source = FileSource::Open(path, DiskProfile::Instant());
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  return source.ok() ? std::move(*source) : nullptr;
}

TEST(AdsTest, InMemoryBuildIndexesEverything) {
  const Dataset data = MakeData();
  auto index = AdsIndex::Build(Mem(data), SmallBuild());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->build_stats().tree.total_entries, data.count());
  EXPECT_TRUE((*index)->tree().CheckInvariants().ok());
  EXPECT_EQ((*index)->cache().count(), data.count());
  EXPECT_GT((*index)->build_stats().cpu_seconds, 0.0);
}

TEST(AdsTest, OnDiskBuildEqualsInMemoryBuild) {
  const Dataset data = MakeData();
  const std::string path = TempPath("ads_equal.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());

  auto mem = AdsIndex::Build(Mem(data), SmallBuild());
  ASSERT_TRUE(mem.ok());
  AdsBuildOptions disk_build = SmallBuild();
  disk_build.leaf_storage_path = TempPath("ads_equal.leaves");
  auto disk = AdsIndex::Build(Streamed(path), disk_build);
  ASSERT_TRUE(disk.ok());

  // Identical trees: same serial insertion order, so the structures must
  // match exactly (root population and leaf count).
  EXPECT_EQ((*mem)->tree().PresentRoots(), (*disk)->tree().PresentRoots());
  EXPECT_EQ((*mem)->build_stats().tree.leaves,
            (*disk)->build_stats().tree.leaves);
  EXPECT_EQ((*mem)->build_stats().tree.inner_nodes,
            (*disk)->build_stats().tree.inner_nodes);

  // Same SAX cache.
  for (SeriesId i = 0; i < data.count(); i += 61) {
    for (int s = 0; s < 8; ++s) {
      EXPECT_EQ((*mem)->cache().At(i).symbols[s],
                (*disk)->cache().At(i).symbols[s]);
    }
  }

  // Same exact answers.
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 5, 64, 61);
  for (size_t q = 0; q < queries.count(); ++q) {
    auto a = (*mem)->SearchExact(queries.series(q));
    auto b = (*disk)->SearchExact(queries.series(q));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->id, b->id);
    EXPECT_FLOAT_EQ(a->distance_sq, b->distance_sq);
  }
}

TEST(AdsTest, OnDiskBuildMaterializesAllLeaves) {
  const Dataset data = MakeData();
  const std::string path = TempPath("ads_mat.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());
  AdsBuildOptions build = SmallBuild();
  build.leaf_storage_path = TempPath("ads_mat.leaves");
  auto index = AdsIndex::Build(Streamed(path), build);
  ASSERT_TRUE(index.ok());
  size_t in_memory = 0, chunks = 0;
  (*index)->tree().VisitLeaves(nullptr, [&](Node* leaf) {
    in_memory += leaf->entries().size();
    chunks += leaf->flushed_chunks().size();
  });
  EXPECT_EQ(in_memory, 0u);
  EXPECT_GT(chunks, 0u);
  EXPECT_GT((*index)->leaf_storage()->bytes_written(),
            data.count() * sizeof(LeafEntry) - 1);
}

TEST(AdsTest, SimsPhaseAccountingIsConsistent) {
  const Dataset data = MakeData(5000);
  auto index = AdsIndex::Build(Mem(data), SmallBuild());
  ASSERT_TRUE(index.ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 4, 64, 61);
  for (size_t q = 0; q < queries.count(); ++q) {
    QueryStats stats;
    auto nn = (*index)->SearchExact(queries.series(q), {}, &stats);
    ASSERT_TRUE(nn.ok());
    // One lower-bound check per series.
    EXPECT_EQ(stats.lb_checks, data.count());
    // Candidates = what survived; every candidate got a real distance,
    // plus the approximate phase's leaf members.
    EXPECT_GE(stats.real_dist_calcs, stats.candidates);
    EXPECT_LE(stats.real_dist_calcs,
              stats.candidates + SmallBuild().tree.leaf_capacity + 1);
    // Phases are timed.
    EXPECT_GE(stats.total_seconds,
              stats.filter_phase_seconds + stats.refine_phase_seconds);
  }
}

TEST(AdsTest, ApproximateNeverBeatsExact) {
  const Dataset data = MakeData(4000);
  auto index = AdsIndex::Build(Mem(data), SmallBuild());
  ASSERT_TRUE(index.ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 8, 64, 61);
  for (size_t q = 0; q < queries.count(); ++q) {
    auto approx = (*index)->SearchApproximate(queries.series(q));
    auto exact = (*index)->SearchExact(queries.series(q));
    ASSERT_TRUE(approx.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(approx->distance_sq, exact->distance_sq - 1e-3f);
    // Both must point at real series.
    EXPECT_LT(approx->id, data.count());
    EXPECT_LT(exact->id, data.count());
  }
}

TEST(AdsTest, ExactMatchesOracleOnEveryDatasetKind) {
  for (const DatasetKind kind :
       {DatasetKind::kRandomWalk, DatasetKind::kSaldEeg,
        DatasetKind::kSeismicBurst}) {
    GeneratorOptions gen;
    gen.kind = kind;
    gen.count = 2000;
    gen.length = 64;
    gen.seed = 62;
    const Dataset data = GenerateDataset(gen);
    auto index = AdsIndex::Build(Mem(data), SmallBuild());
    ASSERT_TRUE(index.ok());
    const Dataset queries = GenerateQueries(kind, 4, 64, 62);
    for (size_t q = 0; q < queries.count(); ++q) {
      const Neighbor oracle =
          BruteForceNn(InMemorySource(&data), queries.series(q),
                       KernelPolicy::kScalar);
      auto nn = (*index)->SearchExact(queries.series(q));
      ASSERT_TRUE(nn.ok());
      EXPECT_NEAR(nn->distance_sq, oracle.distance_sq,
                  1e-3f * std::max(1.0f, oracle.distance_sq))
          << DatasetKindName(kind);
    }
  }
}

TEST(AdsTest, RejectsMismatchedSeriesLength) {
  const Dataset data = MakeData();
  AdsBuildOptions bad = SmallBuild();
  bad.tree.series_length = 32;
  EXPECT_EQ(AdsIndex::Build(Mem(data), bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AdsTest, StreamedBuildRequiresLeafStorage) {
  const Dataset data = MakeData(100);
  const std::string path = TempPath("ads_noleaves.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());
  AdsBuildOptions build = SmallBuild();
  build.leaf_storage_path.clear();
  EXPECT_EQ(AdsIndex::Build(Streamed(path), build).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AdsTest, EmptyCollection) {
  const Dataset data(0, 64);
  auto index = AdsIndex::Build(Mem(data), SmallBuild());
  ASSERT_TRUE(index.ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 1, 64, 61);
  auto nn = (*index)->SearchExact(queries.series(0));
  ASSERT_TRUE(nn.ok());
  EXPECT_TRUE(std::isinf(nn->distance_sq));
}

}  // namespace
}  // namespace parisax
