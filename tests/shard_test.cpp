// ShardedEngine tests: the router's answers must be byte-identical to
// a single Engine over the same data (ED, kNN and DTW, before and
// after appends), per-shard checkpoints must restore independently
// with typed errors for missing/corrupt pieces, and the serve layer
// must drive a sharded backend through SearchBackend under a
// query/append/compact storm without ever diverging from the oracle.
#include "shard/sharded_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "io/generator.h"
#include "persist/shard_manifest.h"
#include "serve/query_service.h"
#include "support/temp_dir.h"

namespace parisax {
namespace {

constexpr size_t kLength = 64;

std::string TempPath(const std::string& name) {
  static testsupport::ScopedTempDir dir("parisax_shard");
  return dir.Path(name);
}

Dataset MakeData(size_t count, uint64_t seed = 71) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = kLength;
  gen.seed = seed;
  return GenerateDataset(gen);
}

Dataset MakeQueries(size_t count, uint64_t seed = 9071) {
  return MakeData(count, seed);
}

EngineOptions BaseOptions(Algorithm algorithm) {
  EngineOptions o;
  o.algorithm = algorithm;
  o.num_threads = 2;
  o.tree.segments = 8;
  o.tree.leaf_capacity = 16;
  return o;
}

/// One single-shard engine and one `num_shards`-way sharded engine over
/// the same collection: the equivalence pair every oracle test uses.
struct BackendPair {
  std::unique_ptr<Engine> single;
  std::unique_ptr<ShardedEngine> sharded;
};

BackendPair MakePair(Algorithm algorithm, size_t count, size_t num_shards,
                     uint64_t seed = 71) {
  BackendPair pair;
  const EngineOptions options = BaseOptions(algorithm);
  auto single =
      Engine::Build(SourceSpec::InMemory(MakeData(count, seed)), options);
  EXPECT_TRUE(single.ok()) << single.status().ToString();
  if (single.ok()) pair.single = std::move(*single);
  auto sharded = ShardedEngine::Build(MakeData(count, seed), num_shards,
                                      options);
  EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
  if (sharded.ok()) pair.sharded = std::move(*sharded);
  return pair;
}

/// Byte-identical equivalence: same ids, bit-equal distances, same
/// order.
void ExpectSameAnswers(SearchBackend& single, SearchBackend& sharded,
                       const Dataset& queries, const SearchRequest& request) {
  for (size_t q = 0; q < queries.count(); ++q) {
    auto expect = single.Search(queries.series(q), request);
    auto got = sharded.Search(queries.series(q), request);
    ASSERT_TRUE(expect.ok()) << expect.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->neighbors.size(), expect->neighbors.size())
        << "query " << q;
    for (size_t i = 0; i < expect->neighbors.size(); ++i) {
      EXPECT_EQ(got->neighbors[i].id, expect->neighbors[i].id)
          << "query " << q << " rank " << i;
      EXPECT_EQ(got->neighbors[i].distance_sq,
                expect->neighbors[i].distance_sq)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(ShardedEngineTest, EdMatchesSingleEngineExactly) {
  for (Algorithm a : {Algorithm::kMessi, Algorithm::kParisPlus}) {
    for (size_t shards : {size_t{2}, size_t{4}}) {
      SCOPED_TRACE(std::string("algorithm ") + AlgorithmName(a) +
                   " shards " + std::to_string(shards));
      BackendPair pair = MakePair(a, 1200, shards);
      ASSERT_NE(pair.single, nullptr);
      ASSERT_NE(pair.sharded, nullptr);
      ExpectSameAnswers(*pair.single, *pair.sharded, MakeQueries(10), {});
    }
  }
}

TEST(ShardedEngineTest, KnnMatchesSingleEngineExactly) {
  BackendPair pair = MakePair(Algorithm::kMessi, 1500, 4);
  ASSERT_NE(pair.single, nullptr);
  ASSERT_NE(pair.sharded, nullptr);
  SearchRequest request;
  request.k = 7;
  ExpectSameAnswers(*pair.single, *pair.sharded, MakeQueries(8), request);
  // k larger than the collection answers every series, exactly once.
  request.k = 100000;
  auto all = pair.sharded->Search(MakeQueries(1).series(0), request);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->neighbors.size(), pair.sharded->series_count());
}

TEST(ShardedEngineTest, DtwMatchesSingleEngineExactly) {
  BackendPair pair = MakePair(Algorithm::kMessi, 900, 3);
  ASSERT_NE(pair.single, nullptr);
  ASSERT_NE(pair.sharded, nullptr);
  SearchRequest request;
  request.dtw = true;
  request.dtw_band = 6;
  ExpectSameAnswers(*pair.single, *pair.sharded, MakeQueries(6), request);
}

TEST(ShardedEngineTest, ExecutorPathMatchesParallelPath) {
  BackendPair pair = MakePair(Algorithm::kMessi, 1000, 4);
  ASSERT_NE(pair.sharded, nullptr);
  const Dataset queries = MakeQueries(6);
  for (size_t q = 0; q < queries.count(); ++q) {
    auto parallel = pair.sharded->Search(queries.series(q), {});
    InlineExecutor inline_exec;
    auto inline_r = pair.sharded->Search(queries.series(q), {}, &inline_exec);
    ASSERT_TRUE(parallel.ok());
    ASSERT_TRUE(inline_r.ok());
    ASSERT_EQ(inline_r->neighbors.size(), parallel->neighbors.size());
    EXPECT_EQ(inline_r->neighbors[0], parallel->neighbors[0]);
  }
}

TEST(ShardedEngineTest, ModuloPartitioningDealsIdsToShards) {
  const size_t count = 103;  // deliberately not a multiple of the shards
  auto sharded = ShardedEngine::Build(MakeData(count), 4,
                                      BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ((*sharded)->num_shards(), 4u);
  EXPECT_EQ((*sharded)->series_count(), count);
  size_t total = 0;
  for (size_t s = 0; s < 4; ++s) {
    const size_t expect = count / 4 + (s < count % 4 ? 1 : 0);
    EXPECT_EQ((*sharded)->shard(s).series_count(), expect) << "shard " << s;
    total += (*sharded)->shard(s).series_count();
  }
  EXPECT_EQ(total, count);
  // Searching with a member series must answer that series' global id
  // at distance zero — the router's id translation, end to end.
  const Dataset data = MakeData(count);
  for (SeriesId g : {SeriesId{0}, SeriesId{1}, SeriesId{57}, SeriesId{102}}) {
    auto response = (*sharded)->Search(data.series(g), {});
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->neighbors[0].id, g);
    EXPECT_EQ(response->neighbors[0].distance_sq, 0.0f);
  }
}

TEST(ShardedEngineTest, BuildRejectsDegenerateShapes) {
  EXPECT_EQ(ShardedEngine::Build(MakeData(64), 0,
                                 BaseOptions(Algorithm::kMessi))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShardedEngine::Build(MakeData(3), 4,
                                 BaseOptions(Algorithm::kMessi))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedEngineTest, CapabilitiesAreTheShardIntersection) {
  auto sharded = ShardedEngine::Build(MakeData(400), 2,
                                      BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(sharded.ok());
  // Homogeneous shards over owned memory: the intersection equals one
  // shard's capability row.
  const EngineCapabilities caps = (*sharded)->capabilities();
  const EngineCapabilities shard_caps = (*sharded)->shard(0).capabilities();
  EXPECT_EQ(caps.max_k, shard_caps.max_k);
  EXPECT_EQ(caps.dtw, shard_caps.dtw);
  EXPECT_EQ(caps.append, shard_caps.append);
  EXPECT_EQ(caps.snapshot, shard_caps.snapshot);
  EXPECT_STREQ((*sharded)->algorithm_name(), "messi");
  EXPECT_EQ((*sharded)->algorithm(), Algorithm::kMessi);
}

TEST(ShardedEngineTest, AppendMatchesSingleEngineAfterGrowth) {
  for (Algorithm a : {Algorithm::kMessi, Algorithm::kParisPlus}) {
    BackendPair pair = MakePair(a, 800, 4);
    ASSERT_NE(pair.single, nullptr);
    ASSERT_NE(pair.sharded, nullptr);
    const Dataset extra = MakeData(130, 4444);
    auto single_report = pair.single->Append(extra);
    auto sharded_report = pair.sharded->Append(extra);
    ASSERT_TRUE(single_report.ok()) << single_report.status().ToString();
    ASSERT_TRUE(sharded_report.ok()) << sharded_report.status().ToString();
    EXPECT_EQ(sharded_report->appended, extra.count());
    EXPECT_EQ(sharded_report->total_series, 800 + extra.count());
    EXPECT_EQ(pair.sharded->series_count(), pair.single->series_count());
    EXPECT_EQ(pair.sharded->append_epoch(), 1u);
    ExpectSameAnswers(*pair.single, *pair.sharded, MakeQueries(8), {});
    // An appended series is findable under its new global id.
    auto hit = pair.sharded->Search(extra.series(7), {});
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(hit->neighbors[0].id, 800 + 7);
    EXPECT_EQ(hit->neighbors[0].distance_sq, 0.0f);
  }
}

TEST(ShardedEngineTest, AppendRejectsLengthMismatchTyped) {
  auto sharded = ShardedEngine::Build(MakeData(200), 2,
                                      BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(sharded.ok());
  GeneratorOptions gen;
  gen.count = 4;
  gen.length = kLength / 2;
  EXPECT_EQ((*sharded)->Append(GenerateDataset(gen)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedEngineTest, SaveOpenRoundtripServesIdentically) {
  for (Algorithm a : {Algorithm::kMessi, Algorithm::kParisPlus}) {
    const std::string manifest =
        TempPath(std::string("roundtrip_") + AlgorithmName(a) +
                 ".psaxshards");
    BackendPair pair = MakePair(a, 900, 3);
    ASSERT_NE(pair.single, nullptr);
    ASSERT_NE(pair.sharded, nullptr);
    ASSERT_TRUE(pair.sharded->Save(manifest).ok());

    auto restored = ShardedEngine::Open(manifest);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ((*restored)->num_shards(), 3u);
    EXPECT_EQ((*restored)->series_count(), 900u);
    EXPECT_EQ((*restored)->series_length(), kLength);
    EXPECT_STREQ((*restored)->algorithm_name(), AlgorithmName(a));
    ExpectSameAnswers(*pair.single, **restored, MakeQueries(6), {});

    // The explicit-options overload is binding on the algorithm.
    const Algorithm other = a == Algorithm::kMessi ? Algorithm::kParisPlus
                                                   : Algorithm::kMessi;
    EXPECT_FALSE(ShardedEngine::Open(manifest, BaseOptions(other)).ok());
    EXPECT_TRUE(ShardedEngine::Open(manifest, BaseOptions(a)).ok());
  }
}

TEST(ShardedEngineTest, AppendSaveCompactChainRoundtrip) {
  const std::string manifest = TempPath("chain.psaxshards");
  const std::string compacted = TempPath("chain_compacted.psaxshards");
  BackendPair pair = MakePair(Algorithm::kMessi, 600, 3);
  ASSERT_NE(pair.single, nullptr);
  ASSERT_NE(pair.sharded, nullptr);

  const Dataset extra = MakeData(90, 5555);
  ASSERT_TRUE(pair.sharded->Append(extra).ok());
  ASSERT_TRUE(pair.single->Append(extra).ok());
  ASSERT_TRUE(pair.sharded->Save(manifest).ok());

  auto restored = ShardedEngine::Open(manifest);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->series_count(), 690u);
  ExpectSameAnswers(*pair.single, **restored, MakeQueries(6), {});

  // Compacting the restored engine folds every shard and re-checkpoints.
  ASSERT_TRUE((*restored)->Compact(compacted).ok());
  auto recompacted = ShardedEngine::Open(compacted);
  ASSERT_TRUE(recompacted.ok()) << recompacted.status().ToString();
  EXPECT_EQ((*recompacted)->series_count(), 690u);
  ExpectSameAnswers(*pair.single, **recompacted, MakeQueries(6), {});
}

TEST(ShardedEngineTest, MissingShardSnapshotIsTypedNotFound) {
  const std::string manifest = TempPath("missing_piece.psaxshards");
  auto sharded = ShardedEngine::Build(MakeData(500), 3,
                                      BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE((*sharded)->Save(manifest).ok());
  ASSERT_EQ(std::remove((manifest + ".shard1").c_str()), 0);

  auto restored = ShardedEngine::Open(manifest);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
  EXPECT_NE(restored.status().message().find("shard 1"), std::string::npos)
      << restored.status().ToString();
}

TEST(ShardedEngineTest, CorruptManifestIsTypedCorruption) {
  const std::string manifest = TempPath("corrupt.psaxshards");
  auto sharded = ShardedEngine::Build(MakeData(300), 2,
                                      BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE((*sharded)->Save(manifest).ok());
  {
    // Flip one byte past the header: the CRC must catch it.
    std::fstream f(manifest, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(10);
    char b = 0;
    f.seekg(10);
    f.read(&b, 1);
    b ^= 0x40;
    f.seekp(10);
    f.write(&b, 1);
  }
  EXPECT_EQ(ShardedEngine::Open(manifest).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ReadShardManifest(manifest).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ShardedEngine::Open(TempPath("never_written.psaxshards"))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(ShardedEngineTest, QueryServiceStormOverShardedBackend) {
  auto sharded = ShardedEngine::Build(MakeData(1200), 4,
                                      BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(sharded.ok());
  ShardedEngine& backend = **sharded;
  QueryService* service = backend.query_service();
  ASSERT_NE(service, nullptr);

  const Dataset queries = MakeQueries(16);
  std::atomic<bool> stop{false};
  std::atomic<size_t> answered{0};

  // Query threads hammer the service while appends and a synchronous
  // compaction checkpoint run concurrently; every answer must stay
  // plausible (non-empty, id inside the live collection).
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      size_t q = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto future = backend.Submit(queries.series(q % queries.count()));
        auto response = future.get();
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        ASSERT_FALSE(response->neighbors.empty());
        EXPECT_LT(response->neighbors[0].id, backend.series_count());
        answered.fetch_add(1, std::memory_order_relaxed);
        ++q;
      }
    });
  }

  for (int round = 0; round < 5; ++round) {
    const Dataset extra = MakeData(40, 7000 + round);
    auto report = backend.Append(extra);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  const std::string manifest = TempPath("storm.psaxshards");
  ASSERT_TRUE(backend.Compact(manifest).ok());
  while (answered.load(std::memory_order_relaxed) < 60) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();

  EXPECT_EQ(backend.series_count(), 1200u + 5 * 40);
  EXPECT_EQ(backend.append_epoch(), 5u);
  const ServeStats stats = service->stats();
  EXPECT_EQ(stats.completed, stats.submitted);

  // The storm's checkpoint is a valid restore point.
  auto restored = ShardedEngine::Open(manifest);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->series_count(), backend.series_count());
}

}  // namespace
}  // namespace parisax
