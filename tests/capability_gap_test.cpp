// Capability-table gap sweep: every capabilities()==false cell must
// come back as the documented typed Status — never a crash, a silent
// wrong answer, or an undifferentiated error — through all three
// surfaces: Engine, ShardedEngine, and the wire protocol. The expected
// Status for each probe is taken from CheckRequestAgainstCapabilities,
// the single shared gate, so this sweep fails if an implementation
// drifts from the documented table (docs/capabilities.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/search_backend.h"
#include "io/generator.h"
#include "net/protocol.h"
#include "net/server.h"
#include "shard/sharded_engine.h"
#include "storm/wire_client.h"
#include "support/temp_dir.h"

namespace parisax {
namespace {

constexpr size_t kLength = 64;

Dataset MakeData(size_t count = 160, uint64_t seed = 97) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = kLength;
  gen.seed = seed;
  return GenerateDataset(gen);
}

SeriesView ProbeQuery() {
  static const Dataset* queries = new Dataset(
      GenerateQueries(DatasetKind::kRandomWalk, 1, kLength, 11));
  return queries->series(0);
}

EngineOptions BaseOptions(Algorithm algorithm) {
  EngineOptions o;
  o.algorithm = algorithm;
  o.num_threads = 2;
  o.tree.segments = 8;
  o.tree.leaf_capacity = 32;
  return o;
}

struct GapProbe {
  std::string name;
  SearchRequest request;
};

/// One probe per false search-capability cell of `caps`. (The append
/// cell is probed separately — it is not a SearchRequest.)
std::vector<GapProbe> GapProbes(const EngineCapabilities& caps) {
  std::vector<GapProbe> probes;
  if (caps.max_k != SIZE_MAX) {
    SearchRequest r;
    r.k = caps.max_k + 1;
    probes.push_back({"k-beyond-max", r});
  }
  if (!caps.dtw) {
    SearchRequest r;
    r.dtw = true;
    probes.push_back({"dtw", r});
  }
  if (!caps.dtw_knn && caps.dtw && caps.max_k >= 2) {
    // Only reachable as a *distinct* gap where dtw and k=2 are each
    // individually legal; elsewhere an earlier check owns the error.
    SearchRequest r;
    r.dtw = true;
    r.k = 2;
    probes.push_back({"dtw-knn", r});
  }
  if (!caps.approximate) {
    SearchRequest r;
    r.approximate = true;
    probes.push_back({"approximate", r});
  }
  return probes;
}

/// Every gap probe must fail with exactly the Status the shared
/// capability gate documents, and that Status must be kNotSupported.
void ExpectGapsTyped(SearchBackend* backend) {
  const EngineCapabilities caps = backend->capabilities();
  for (const GapProbe& probe : GapProbes(caps)) {
    const Status want = CheckRequestAgainstCapabilities(
        caps, backend->series_length(), backend->algorithm_name(),
        ProbeQuery(), probe.request);
    ASSERT_FALSE(want.ok()) << backend->algorithm_name() << " " << probe.name;
    EXPECT_EQ(want.code(), StatusCode::kNotSupported)
        << backend->algorithm_name() << " " << probe.name;
    auto got = backend->Search(ProbeQuery(), probe.request);
    ASSERT_FALSE(got.ok()) << backend->algorithm_name() << " " << probe.name;
    EXPECT_EQ(got.status().code(), want.code())
        << backend->algorithm_name() << " " << probe.name << ": "
        << got.status().ToString();
  }
}

/// A backend whose capabilities say no appends must reject them typed.
void ExpectAppendGapTyped(SearchBackend* backend) {
  if (backend->capabilities().append) return;
  const Dataset extra = MakeData(2, 41);
  auto report = backend->Append(extra);
  ASSERT_FALSE(report.ok()) << backend->algorithm_name();
  EXPECT_EQ(report.status().code(), StatusCode::kNotSupported)
      << backend->algorithm_name();
}

TEST(CapabilityGapTest, EngineEveryFalseCellIsTyped) {
  for (const Algorithm algorithm :
       {Algorithm::kBruteForce, Algorithm::kUcrSerial,
        Algorithm::kUcrParallel, Algorithm::kAdsPlus, Algorithm::kParis,
        Algorithm::kParisPlus, Algorithm::kMessi}) {
    auto engine =
        Engine::Build(SourceSpec::InMemory(MakeData()), BaseOptions(algorithm));
    ASSERT_TRUE(engine.ok())
        << AlgorithmName(algorithm) << ": " << engine.status().ToString();
    ExpectGapsTyped(engine->get());
    ExpectAppendGapTyped(engine->get());  // covers the ADS+ append cell
  }
}

TEST(CapabilityGapTest, BorrowedSourceNarrowsAppendToTypedRejection) {
  // Borrowed collections cannot grow, so append narrows to false even
  // for algorithms whose table row says true.
  const Dataset data = MakeData();
  auto engine = Engine::Build(SourceSpec::Borrowed(&data),
                              BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_FALSE((*engine)->capabilities().append);
  ExpectAppendGapTyped(engine->get());
}

TEST(CapabilityGapTest, StreamedSourceNarrowsDtwToTypedRejection) {
  // A streamed (non-addressable) source drops dtw even where the
  // algorithm's own row supports it: the refine path cannot random-read
  // raw series. ucr-s is the streaming-capable row with base dtw=true.
  testsupport::ScopedTempDir dir("parisax_capgap");
  const std::string path = dir.Path("streamed.psax");
  ASSERT_TRUE(WriteDataset(MakeData(), path).ok());
  auto engine = Engine::Build(SourceSpec::File(path),
                              BaseOptions(Algorithm::kUcrSerial));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_FALSE((*engine)->capabilities().dtw);
  ExpectGapsTyped(engine->get());
}

TEST(CapabilityGapTest, ShardedEngineEveryFalseCellIsTyped) {
  for (const Algorithm algorithm :
       {Algorithm::kParis, Algorithm::kParisPlus, Algorithm::kMessi}) {
    auto sharded =
        ShardedEngine::Build(MakeData(), 4, BaseOptions(algorithm));
    ASSERT_TRUE(sharded.ok())
        << AlgorithmName(algorithm) << ": " << sharded.status().ToString();
    ExpectGapsTyped(sharded->get());
    ExpectAppendGapTyped(sharded->get());
  }
}

// --- the wire surface -------------------------------------------------------

std::vector<Value> ProbeValues() {
  const SeriesView view = ProbeQuery();
  return std::vector<Value>(view.data(), view.data() + view.size());
}

/// Sends one query frame and expects a kError reply carrying the wire
/// mapping of kNotSupported, echoing the request id.
void ExpectWireNotSupported(uint16_t port, FrameType type,
                            const QueryFrame& frame) {
  storm::WireClient client;
  ASSERT_TRUE(client.Connect(port).ok());
  ASSERT_TRUE(client.SendFrame(EncodeQueryFrame(type, frame)).ok());
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->header.type, FrameType::kError);
  auto error = DecodeErrorFrame(reply->body);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->request_id, frame.request_id);
  EXPECT_EQ(error->code, WireErrorFromStatus(Status::NotSupported("")));
}

TEST(CapabilityGapTest, WireRejectsMaxKAndDtwGapsTyped) {
  // ParIS carries both "k > max_k" and "no dtw" false cells.
  auto engine = Engine::Build(SourceSpec::InMemory(MakeData()),
                              BaseOptions(Algorithm::kParis));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto server = Server::Start(engine->get(), {});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  QueryFrame knn;
  knn.request_id = 21;
  knn.k = 2;
  knn.values = ProbeValues();
  ExpectWireNotSupported((*server)->port(), FrameType::kKnn, knn);

  QueryFrame dtw;
  dtw.request_id = 22;
  dtw.values = ProbeValues();
  ExpectWireNotSupported((*server)->port(), FrameType::kDtw, dtw);
}

TEST(CapabilityGapTest, WireRejectsApproximateGapTyped) {
  auto engine = Engine::Build(SourceSpec::InMemory(MakeData()),
                              BaseOptions(Algorithm::kBruteForce));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto server = Server::Start(engine->get(), {});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  QueryFrame approx;
  approx.request_id = 23;
  approx.approximate = true;
  approx.values = ProbeValues();
  ExpectWireNotSupported((*server)->port(), FrameType::kQuery, approx);
}

TEST(CapabilityGapTest, WireRejectsAppendGapTyped) {
  auto engine = Engine::Build(SourceSpec::InMemory(MakeData()),
                              BaseOptions(Algorithm::kAdsPlus));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_FALSE((*engine)->capabilities().append);
  auto server = Server::Start(engine->get(), {});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  AppendFrame append;
  append.request_id = 24;
  append.count = 1;
  append.series_len = kLength;
  append.values = ProbeValues();
  storm::WireClient client;
  ASSERT_TRUE(client.Connect((*server)->port()).ok());
  ASSERT_TRUE(client.SendFrame(EncodeAppendFrame(append)).ok());
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->header.type, FrameType::kError);
  auto error = DecodeErrorFrame(reply->body);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->request_id, 24u);
  EXPECT_EQ(error->code, WireErrorFromStatus(Status::NotSupported("")));
}

TEST(CapabilityGapTest, WireCannotExpressDtwKnn) {
  // The dtw_knn=false cell is unreachable over the wire by
  // construction: kDtw frames are served as 1-NN regardless of the
  // frame's k field, so a k>1 DTW request degrades to a legal query
  // instead of an error. Pin that mapping down so a protocol change
  // that opens the gap has to revisit this test.
  auto engine = Engine::Build(SourceSpec::InMemory(MakeData()),
                              BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto server = Server::Start(engine->get(), {});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  QueryFrame dtw_knn;
  dtw_knn.request_id = 25;
  dtw_knn.k = 3;  // ignored by the server for kDtw
  dtw_knn.values = ProbeValues();
  storm::WireClient client;
  ASSERT_TRUE(client.Connect((*server)->port()).ok());
  ASSERT_TRUE(
      client.SendFrame(EncodeQueryFrame(FrameType::kDtw, dtw_knn)).ok());
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->header.type, FrameType::kResult);
  auto result = DecodeResultFrame(reply->body);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->request_id, 25u);
  EXPECT_EQ(result->neighbors.size(), 1u);
}

}  // namespace
}  // namespace parisax
