// Tests for on-disk leaf materialization: round-trips, multi-chunk
// leaves, split-after-flush read-backs, metering accounting and
// concurrent appends.
#include "index/leaf_storage.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "index/tree.h"
#include "util/rng.h"

namespace parisax {
namespace {

std::vector<LeafEntry> RandomEntries(Rng& rng, size_t count) {
  std::vector<LeafEntry> entries(count);
  for (size_t i = 0; i < count; ++i) {
    for (int s = 0; s < kMaxSegments; ++s) {
      entries[i].sax.symbols[s] = static_cast<uint8_t>(rng.NextU64() & 0xff);
    }
    entries[i].id = rng.NextU64();
  }
  return entries;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(LeafStorageTest, AppendReadRoundTrip) {
  auto storage = LeafStorage::Create(TempPath("ls_roundtrip.bin"));
  ASSERT_TRUE(storage.ok());
  Rng rng(1);
  const auto entries = RandomEntries(rng, 257);
  auto ref = (*storage)->AppendChunk(entries);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->count, entries.size());

  std::vector<LeafEntry> back;
  ASSERT_TRUE((*storage)->ReadChunk(*ref, &back).ok());
  ASSERT_EQ(back.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(back[i].id, entries[i].id);
    for (int s = 0; s < kMaxSegments; ++s) {
      EXPECT_EQ(back[i].sax.symbols[s], entries[i].sax.symbols[s]);
    }
  }
}

TEST(LeafStorageTest, ManyChunksKeepDistinctOffsets) {
  auto storage = LeafStorage::Create(TempPath("ls_many.bin"));
  ASSERT_TRUE(storage.ok());
  Rng rng(2);
  std::vector<std::vector<LeafEntry>> chunks;
  std::vector<LeafChunkRef> refs;
  for (int c = 0; c < 50; ++c) {
    chunks.push_back(RandomEntries(rng, 1 + rng.NextBelow(40)));
    auto ref = (*storage)->AppendChunk(chunks.back());
    ASSERT_TRUE(ref.ok());
    refs.push_back(*ref);
  }
  EXPECT_EQ((*storage)->chunks_appended(), 50u);
  // Read back in reverse order.
  for (int c = 49; c >= 0; --c) {
    std::vector<LeafEntry> back;
    ASSERT_TRUE((*storage)->ReadChunk(refs[c], &back).ok());
    ASSERT_EQ(back.size(), chunks[c].size());
    EXPECT_EQ(back.front().id, chunks[c].front().id);
    EXPECT_EQ(back.back().id, chunks[c].back().id);
  }
}

TEST(LeafStorageTest, EmptyChunkRejected) {
  auto storage = LeafStorage::Create(TempPath("ls_empty.bin"));
  ASSERT_TRUE(storage.ok());
  const std::vector<LeafEntry> none;
  EXPECT_EQ((*storage)->AppendChunk(none).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LeafStorageTest, CollectLeafEntriesMergesMemoryAndChunks) {
  auto storage = LeafStorage::Create(TempPath("ls_collect.bin"));
  ASSERT_TRUE(storage.ok());
  Rng rng(3);
  Node leaf(RootWord(0, 4));
  const auto flushed = RandomEntries(rng, 10);
  auto ref = (*storage)->AppendChunk(flushed);
  ASSERT_TRUE(ref.ok());
  leaf.flushed_chunks().push_back(*ref);
  const auto in_memory = RandomEntries(rng, 5);
  leaf.entries() = in_memory;

  EXPECT_EQ(leaf.LeafSize(), 15u);
  std::vector<LeafEntry> all;
  ASSERT_TRUE(CollectLeafEntries(leaf, storage->get(), &all).ok());
  ASSERT_EQ(all.size(), 15u);
  EXPECT_EQ(all[0].id, in_memory[0].id);
  EXPECT_EQ(all[5].id, flushed[0].id);
}

TEST(LeafStorageTest, CollectWithoutStorageFailsOnFlushedChunks) {
  Node leaf(RootWord(0, 4));
  leaf.flushed_chunks().push_back(LeafChunkRef{0, 3});
  std::vector<LeafEntry> all;
  EXPECT_FALSE(CollectLeafEntries(leaf, nullptr, &all).ok());
}

TEST(LeafStorageTest, SplitReadsFlushedChunksBack) {
  // Insert through the tree with a storage, flush the leaf, then keep
  // inserting so it must split: the flushed entries must survive.
  auto storage = LeafStorage::Create(TempPath("ls_split.bin"));
  ASSERT_TRUE(storage.ok());
  SaxTreeOptions options;
  options.segments = 2;
  options.leaf_capacity = 8;
  options.series_length = 16;
  SaxTree tree(options);

  Rng rng(4);
  std::vector<LeafEntry> inserted;
  auto insert_some = [&](size_t count) {
    for (size_t i = 0; i < count; ++i) {
      LeafEntry e;
      for (int s = 0; s < options.segments; ++s) {
        e.sax.symbols[s] = static_cast<uint8_t>(rng.NextU64() & 0xff);
      }
      e.id = inserted.size();
      inserted.push_back(e);
      ASSERT_TRUE(tree.Insert(e, storage->get()).ok());
    }
  };
  insert_some(8);
  // Flush every leaf.
  tree.VisitLeaves(nullptr, [&](Node* leaf) {
    if (leaf->entries().empty()) return;
    auto ref = (*storage)->AppendChunk(leaf->entries());
    ASSERT_TRUE(ref.ok());
    leaf->flushed_chunks().push_back(*ref);
    leaf->entries().clear();
  });
  insert_some(200);
  tree.SealRoots();
  ASSERT_TRUE(tree.CheckInvariants(storage->get()).ok());
  EXPECT_GT((*storage)->chunks_read(), 0u);

  // All inserted ids present exactly once.
  std::vector<uint64_t> seen;
  tree.VisitLeaves(nullptr, [&](Node* leaf) {
    std::vector<LeafEntry> all;
    ASSERT_TRUE(CollectLeafEntries(*leaf, storage->get(), &all).ok());
    for (const LeafEntry& e : all) seen.push_back(e.id);
  });
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), inserted.size());
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(LeafStorageTest, ConcurrentAppendsDoNotInterleave) {
  auto storage = LeafStorage::Create(TempPath("ls_concurrent.bin"));
  ASSERT_TRUE(storage.ok());
  constexpr int kThreads = 4;
  constexpr int kChunksPerThread = 25;
  std::vector<std::vector<LeafChunkRef>> refs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int c = 0; c < kChunksPerThread; ++c) {
        std::vector<LeafEntry> entries(1 + rng.NextBelow(20));
        for (auto& e : entries) {
          e.id = static_cast<uint64_t>(t) << 32 | c;
        }
        auto ref = (*storage)->AppendChunk(entries);
        ASSERT_TRUE(ref.ok());
        refs[t].push_back(*ref);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int c = 0; c < kChunksPerThread; ++c) {
      std::vector<LeafEntry> back;
      ASSERT_TRUE((*storage)->ReadChunk(refs[t][c], &back).ok());
      for (const LeafEntry& e : back) {
        EXPECT_EQ(e.id, static_cast<uint64_t>(t) << 32 | c);
      }
    }
  }
}

TEST(LeafStorageTest, MeteredWritesTakeTime) {
  // 1 MB/s metering: writing ~24 KB should take ~23 ms.
  auto storage = LeafStorage::Create(TempPath("ls_metered.bin"), 1.0);
  ASSERT_TRUE(storage.ok());
  Rng rng(5);
  const auto entries = RandomEntries(rng, 1000);  // 24 KB
  ASSERT_TRUE((*storage)->AppendChunk(entries).ok());
  EXPECT_GT((*storage)->write_seconds(), 0.01);
  EXPECT_EQ((*storage)->bytes_written(), 1000 * sizeof(LeafEntry));
}

TEST(LeafStorageTest, CreateFailsInMissingDirectory) {
  EXPECT_FALSE(LeafStorage::Create("/nonexistent-dir-xyz/file.bin").ok());
}

}  // namespace
}  // namespace parisax
