// Tests for the distance kernels: scalar/AVX2 agreement, early
// abandoning semantics, z-normalization, DTW against a naive reference,
// envelopes and LB_Keogh.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dist/dtw.h"
#include "dist/euclidean.h"
#include "dist/znorm.h"
#include "io/generator.h"
#include "util/rng.h"

namespace parisax {
namespace {

std::vector<float> RandomSeries(Rng& rng, size_t n) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

class EuclideanLengths : public ::testing::TestWithParam<size_t> {};

TEST_P(EuclideanLengths, ScalarAndSimdAgree) {
  const size_t n = GetParam();
  Rng rng(1000 + n);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = RandomSeries(rng, n);
    const auto b = RandomSeries(rng, n);
    const float scalar = SquaredEuclideanScalar(a.data(), b.data(), n);
    const float dispatched =
        SquaredEuclidean(a.data(), b.data(), n, KernelPolicy::kAuto);
    EXPECT_NEAR(dispatched, scalar, 1e-3f * std::max(1.0f, scalar));
#ifdef PARISAX_HAVE_AVX2
    ASSERT_TRUE(SimdAvailable());
    const float simd = SquaredEuclideanAvx2(a.data(), b.data(), n);
    EXPECT_NEAR(simd, scalar, 1e-3f * std::max(1.0f, scalar));
#endif
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, EuclideanLengths,
                         ::testing::Values(1, 3, 7, 8, 15, 16, 17, 31, 32,
                                           33, 64, 100, 128, 256, 1000));

// The AVX2 kernel processes 8 floats per lane-step; every length that is
// not a multiple of 8 exercises the scalar tail. Cover the boundary
// explicitly for all dispatch policies, including kAvx2 on builds (or
// CPUs) without AVX2, where it must fall back to scalar instead of
// faulting.
TEST(KernelBoundaryTest, TailLengthsAgreeAcrossAllPolicies) {
  Rng rng(900);
  for (const size_t n : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 16u, 25u,
                         128u, 256u}) {
    const auto a = RandomSeries(rng, n);
    const auto b = RandomSeries(rng, n);
    const float scalar = SquaredEuclideanScalar(a.data(), b.data(), n);
    for (const KernelPolicy policy :
         {KernelPolicy::kAuto, KernelPolicy::kScalar, KernelPolicy::kAvx2}) {
      const float d = SquaredEuclidean(a.data(), b.data(), n, policy);
      EXPECT_NEAR(d, scalar, 1e-3f * std::max(1.0f, scalar)) << "n=" << n;
      const float ea = SquaredEuclideanEarlyAbandon(a.data(), b.data(), n,
                                                    scalar * 2.0f + 1.0f,
                                                    policy);
      EXPECT_NEAR(ea, scalar, 1e-3f * std::max(1.0f, scalar)) << "n=" << n;
    }
  }
}

TEST(KernelBoundaryTest, ScalarPolicyIsExactlyTheScalarKernel) {
  Rng rng(901);
  const auto a = RandomSeries(rng, 100);
  const auto b = RandomSeries(rng, 100);
  EXPECT_FLOAT_EQ(
      SquaredEuclidean(a.data(), b.data(), 100, KernelPolicy::kScalar),
      SquaredEuclideanScalar(a.data(), b.data(), 100));
}

TEST(KernelBoundaryTest, DispatchIsConsistentWithSimdAvailability) {
#ifdef PARISAX_HAVE_AVX2
  // Compiled in: availability is the CPU's call, and kAuto must serve
  // answers either way (checked by TailLengthsAgreeAcrossAllPolicies).
  SUCCEED() << "AVX2 kernel compiled in, SimdAvailable()="
            << SimdAvailable();
#else
  // Not compiled in: kAuto/kAvx2 have nothing to dispatch to and must
  // report SIMD as unavailable (the scalar fallback path).
  EXPECT_FALSE(SimdAvailable());
#endif
}

TEST(EuclideanTest, ZeroForIdenticalSeries) {
  Rng rng(2);
  const auto a = RandomSeries(rng, 128);
  EXPECT_FLOAT_EQ(SquaredEuclidean(a.data(), a.data(), 128), 0.0f);
}

TEST(EuclideanTest, EarlyAbandonExactWhenUnderBound) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = RandomSeries(rng, 200);
    const auto b = RandomSeries(rng, 200);
    const float exact = SquaredEuclidean(a.data(), b.data(), 200);
    const float ea = SquaredEuclideanEarlyAbandon(a.data(), b.data(), 200,
                                                  exact * 2.0f + 1.0f);
    EXPECT_NEAR(ea, exact, 1e-3f * std::max(1.0f, exact));
  }
}

TEST(EuclideanTest, EarlyAbandonReturnsAtLeastBoundWhenAbandoned) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = RandomSeries(rng, 200);
    const auto b = RandomSeries(rng, 200);
    const float exact = SquaredEuclidean(a.data(), b.data(), 200);
    const float bound = exact * 0.25f;
    const float ea =
        SquaredEuclideanEarlyAbandon(a.data(), b.data(), 200, bound);
    EXPECT_GE(ea, bound);
  }
}

TEST(EuclideanTest, EarlyAbandonZeroBoundAbandonsImmediately) {
  Rng rng(5);
  const auto a = RandomSeries(rng, 64);
  const auto b = RandomSeries(rng, 64);
  EXPECT_GE(SquaredEuclideanEarlyAbandon(a.data(), b.data(), 64, 0.0f),
            0.0f);
}

TEST(ZNormTest, NormalizesMoments) {
  Rng rng(6);
  std::vector<float> v(500);
  for (float& x : v) x = static_cast<float>(3.0 + 5.0 * rng.NextGaussian());
  ZNormalize(MutableSeriesView(v.data(), v.size()));
  EXPECT_TRUE(IsZNormalized(SeriesView(v.data(), v.size())));
  const SeriesMoments m = ComputeMoments(SeriesView(v.data(), v.size()));
  EXPECT_NEAR(m.mean, 0.0, 1e-4);
  EXPECT_NEAR(m.stddev, 1.0, 1e-4);
}

TEST(ZNormTest, ConstantSeriesBecomesZeros) {
  std::vector<float> v(64, 42.0f);
  ZNormalize(MutableSeriesView(v.data(), v.size()));
  for (const float x : v) EXPECT_EQ(x, 0.0f);
  EXPECT_TRUE(IsZNormalized(SeriesView(v.data(), v.size())));
}

TEST(ZNormTest, EmptySeriesIsHandled) {
  std::vector<float> v;
  ZNormalize(MutableSeriesView(v.data(), 0));  // must not crash
  const SeriesMoments m = ComputeMoments(SeriesView(v.data(), 0));
  EXPECT_EQ(m.mean, 0.0);
  EXPECT_EQ(m.stddev, 0.0);
}

// --- DTW ---------------------------------------------------------------

TEST(DtwTest, EqualsNaiveWithFullBand) {
  Rng rng(7);
  for (const size_t n : {1u, 2u, 5u, 16u, 50u}) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto a = RandomSeries(rng, n);
      const auto b = RandomSeries(rng, n);
      const SeriesView av(a.data(), n), bv(b.data(), n);
      const float naive = DtwNaive(av, bv);
      const float banded = DtwBand(av, bv, n, 1e30f);
      EXPECT_NEAR(banded, naive, 1e-3f * std::max(1.0f, naive))
          << "n=" << n;
    }
  }
}

TEST(DtwTest, ZeroForIdenticalSeries) {
  Rng rng(8);
  const auto a = RandomSeries(rng, 64);
  const SeriesView av(a.data(), a.size());
  EXPECT_FLOAT_EQ(DtwBand(av, av, 5, 1e30f), 0.0f);
}

TEST(DtwTest, NeverExceedsEuclidean) {
  // The diagonal alignment is always inside any band: DTW <= ED^2.
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = RandomSeries(rng, 80);
    const auto b = RandomSeries(rng, 80);
    const SeriesView av(a.data(), 80), bv(b.data(), 80);
    const float ed = SquaredEuclideanScalar(a.data(), b.data(), 80);
    for (const size_t band : {0u, 3u, 10u, 80u}) {
      EXPECT_LE(DtwBand(av, bv, band, 1e30f),
                ed * (1.0f + 1e-4f) + 1e-4f)
          << "band=" << band;
    }
  }
}

TEST(DtwTest, WiderBandNeverIncreasesCost) {
  Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = RandomSeries(rng, 60);
    const auto b = RandomSeries(rng, 60);
    const SeriesView av(a.data(), 60), bv(b.data(), 60);
    float prev = DtwBand(av, bv, 0, 1e30f);
    for (const size_t band : {1u, 2u, 4u, 8u, 16u, 60u}) {
      const float cur = DtwBand(av, bv, band, 1e30f);
      EXPECT_LE(cur, prev * (1.0f + 1e-4f) + 1e-4f) << "band=" << band;
      prev = cur;
    }
  }
}

TEST(DtwTest, BandZeroIsEuclidean) {
  Rng rng(11);
  const auto a = RandomSeries(rng, 70);
  const auto b = RandomSeries(rng, 70);
  const float ed = SquaredEuclideanScalar(a.data(), b.data(), 70);
  const float dtw0 =
      DtwBand(SeriesView(a.data(), 70), SeriesView(b.data(), 70), 0, 1e30f);
  EXPECT_NEAR(dtw0, ed, 1e-3f * std::max(1.0f, ed));
}

TEST(DtwTest, EarlyAbandonReturnsAtLeastBound) {
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = RandomSeries(rng, 64);
    const auto b = RandomSeries(rng, 64);
    const SeriesView av(a.data(), 64), bv(b.data(), 64);
    const float exact = DtwBand(av, bv, 8, 1e30f);
    const float bound = exact * 0.3f;
    if (bound <= 0.0f) continue;
    EXPECT_GE(DtwBand(av, bv, 8, bound), bound);
  }
}

// --- Envelopes and LB_Keogh ---------------------------------------------

void NaiveEnvelope(SeriesView s, size_t band, std::vector<float>* lo,
                   std::vector<float>* hi) {
  const size_t n = s.size();
  lo->assign(n, 0.0f);
  hi->assign(n, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    const size_t b = i >= band ? i - band : 0;
    const size_t e = std::min(n - 1, i + band);
    float mn = s[b], mx = s[b];
    for (size_t j = b; j <= e; ++j) {
      mn = std::min(mn, s[j]);
      mx = std::max(mx, s[j]);
    }
    (*lo)[i] = mn;
    (*hi)[i] = mx;
  }
}

TEST(EnvelopeTest, MatchesNaiveSlidingMinMax) {
  Rng rng(13);
  for (const size_t n : {1u, 5u, 32u, 100u}) {
    for (const size_t band : {0u, 1u, 3u, 10u, 99u}) {
      const auto s = RandomSeries(rng, n);
      const SeriesView sv(s.data(), n);
      std::vector<float> lo1, hi1, lo2, hi2;
      ComputeEnvelope(sv, band, &lo1, &hi1);
      NaiveEnvelope(sv, band, &lo2, &hi2);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(lo1[i], lo2[i]) << "n=" << n << " band=" << band
                                  << " i=" << i;
        EXPECT_EQ(hi1[i], hi2[i]) << "n=" << n << " band=" << band
                                  << " i=" << i;
      }
    }
  }
}

TEST(EnvelopeTest, ContainsTheSeries) {
  Rng rng(14);
  const auto s = RandomSeries(rng, 120);
  const SeriesView sv(s.data(), 120);
  std::vector<float> lo, hi;
  for (const size_t band : {0u, 5u, 20u}) {
    ComputeEnvelope(sv, band, &lo, &hi);
    for (size_t i = 0; i < 120; ++i) {
      EXPECT_LE(lo[i], s[i]);
      EXPECT_GE(hi[i], s[i]);
    }
  }
}

TEST(LbKeoghTest, LowerBoundsDtw) {
  Rng rng(15);
  const size_t n = 96, band = 9;
  for (int trial = 0; trial < 40; ++trial) {
    const auto q = RandomSeries(rng, n);
    const auto c = RandomSeries(rng, n);
    const SeriesView qv(q.data(), n), cv(c.data(), n);
    std::vector<float> lo, hi;
    ComputeEnvelope(qv, band, &lo, &hi);
    const float lb = LbKeoghSq(lo, hi, cv, 1e30f);
    const float dtw = DtwBand(qv, cv, band, 1e30f);
    EXPECT_LE(lb, dtw * (1.0f + 1e-4f) + 1e-4f) << "trial=" << trial;
  }
}

TEST(LbKeoghTest, ZeroWhenInsideEnvelope) {
  Rng rng(16);
  const auto q = RandomSeries(rng, 64);
  const SeriesView qv(q.data(), 64);
  std::vector<float> lo, hi;
  ComputeEnvelope(qv, 4, &lo, &hi);
  // The query itself lies inside its own envelope.
  EXPECT_FLOAT_EQ(LbKeoghSq(lo, hi, qv, 1e30f), 0.0f);
}

TEST(LbKeoghTest, EarlyAbandonReturnsAtLeastBound) {
  Rng rng(17);
  const auto q = RandomSeries(rng, 64);
  std::vector<float> lo, hi;
  ComputeEnvelope(SeriesView(q.data(), 64), 2, &lo, &hi);
  for (int trial = 0; trial < 20; ++trial) {
    const auto c = RandomSeries(rng, 64);
    const SeriesView cv(c.data(), 64);
    const float full = LbKeoghSq(lo, hi, cv, 1e30f);
    if (full <= 0.0f) continue;
    const float bound = full * 0.5f;
    EXPECT_GE(LbKeoghSq(lo, hi, cv, bound), bound);
  }
}

}  // namespace
}  // namespace parisax
