// Snapshot persistence tests: save -> load -> query equivalence against
// both the original index and the brute-force oracle, mmap-backed raw
// sources, and corruption handling (truncation, bad magic, version
// mismatch, checksum flips) -- every malformed input must fail with a
// typed error, never crash.
#include "persist/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "io/format.h"
#include "io/generator.h"
#include "io/mmap_source.h"
#include "persist/checksum.h"
#include "serve/query_service.h"
#include "support/temp_dir.h"

namespace parisax {
namespace {

std::string TempPath(const std::string& name) {
  static testsupport::ScopedTempDir dir("parisax_persist");
  return dir.Path(name);
}

Dataset MakeData(size_t count = 1500, size_t length = 64,
                 uint64_t seed = 29) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = length;
  gen.seed = seed;
  return GenerateDataset(gen);
}

EngineOptions BaseOptions(Algorithm algorithm) {
  EngineOptions o;
  o.algorithm = algorithm;
  o.num_threads = 2;
  o.tree.segments = 8;
  o.tree.leaf_capacity = 16;
  return o;
}

/// Writes `data` to a dataset file and returns its path.
std::string WriteDataFile(const Dataset& data, const std::string& name) {
  const std::string path = TempPath(name);
  EXPECT_TRUE(WriteDataset(data, path).ok());
  return path;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void ExpectSameResponse(const SearchResponse& want,
                        const SearchResponse& got,
                        const std::string& label) {
  ASSERT_EQ(want.neighbors.size(), got.neighbors.size()) << label;
  for (size_t i = 0; i < want.neighbors.size(); ++i) {
    EXPECT_EQ(want.neighbors[i].id, got.neighbors[i].id) << label;
    // Byte-identical distances: same kernels over the same float values
    // (the mmap view of the file the dataset was written to).
    EXPECT_EQ(want.neighbors[i].distance_sq, got.neighbors[i].distance_sq)
        << label;
  }
}

// --- mmap source ------------------------------------------------------

TEST(MmapSourceTest, ServesSeriesZeroCopy) {
  const Dataset data = MakeData(64, 32);
  const std::string path = WriteDataFile(data, "mmap_basic.psax");
  auto source = MmapSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->count(), data.count());
  EXPECT_EQ((*source)->length(), data.length());
  ASSERT_NE((*source)->ContiguousData(), nullptr);
  for (SeriesId id : {SeriesId{0}, SeriesId{13}, SeriesId{63}}) {
    const SeriesView view = (*source)->TryView(id);
    ASSERT_EQ(view.size(), data.length());
    std::vector<Value> copied(data.length());
    ASSERT_TRUE((*source)->GetSeries(id, copied.data()).ok());
    for (size_t i = 0; i < data.length(); ++i) {
      EXPECT_EQ(view[i], data.series(id)[i]);
      EXPECT_EQ(copied[i], data.series(id)[i]);
    }
  }
  EXPECT_TRUE((*source)->TryView(data.count()).empty());
  std::vector<Value> buffer(data.length());
  EXPECT_FALSE((*source)->GetSeries(data.count(), buffer.data()).ok());
  std::remove(path.c_str());
}

TEST(MmapSourceTest, MissingFileIsNotFound) {
  auto source = MmapSource::Open(TempPath("does_not_exist.psax"));
  EXPECT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kNotFound);
}

TEST(MmapSourceTest, RejectsNonDatasetFile) {
  const std::string path = TempPath("mmap_garbage.psax");
  WriteAll(path, std::vector<uint8_t>(100, 0x5A));
  auto source = MmapSource::Open(path);
  EXPECT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// --- save/load equivalence --------------------------------------------

TEST(SnapshotTest, MessiRoundtripAnswersIdenticallyEdKnnDtw) {
  const Dataset data = MakeData();
  const std::string data_path = WriteDataFile(data, "messi_rt.psax");
  const std::string snap_path = TempPath("messi_rt.snap");

  auto built = Engine::Build(SourceSpec::Borrowed(&data),
                             BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(snap_path).ok());

  auto restored = Engine::Open(snap_path, data_path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->algorithm(), Algorithm::kMessi);
  EXPECT_EQ((*restored)->series_count(), data.count());
  EXPECT_EQ((*restored)->series_length(), data.length());
  // The restored tree is structurally valid and complete.
  ASSERT_NE((*restored)->messi_index(), nullptr);
  EXPECT_TRUE((*restored)->messi_index()->tree().CheckInvariants().ok());

  auto oracle =
      Engine::Build(SourceSpec::Borrowed(&data),
                    BaseOptions(Algorithm::kBruteForce));
  ASSERT_TRUE(oracle.ok());

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 6, data.length(), 31);
  for (SeriesId q = 0; q < queries.count(); ++q) {
    const SeriesView query = queries.series(q);
    for (const SearchRequest& request :
         {SearchRequest{}, SearchRequest{.k = 5},
          SearchRequest{.dtw = true, .dtw_band = 6},
          SearchRequest{.approximate = true}}) {
      if (request.approximate) {
        // Approximate search is index-only; compare built vs restored.
        auto want = (*built)->Search(query, request);
        auto got = (*restored)->Search(query, request);
        ASSERT_TRUE(want.ok() && got.ok());
        ExpectSameResponse(*want, *got, "messi approx");
        continue;
      }
      auto want = (*built)->Search(query, request);
      auto got = (*restored)->Search(query, request);
      auto truth = (*oracle)->Search(query, request);
      ASSERT_TRUE(want.ok() && got.ok() && truth.ok());
      const std::string label = "messi q" + std::to_string(q) + " k" +
                                std::to_string(request.k) +
                                (request.dtw ? " dtw" : " ed");
      ExpectSameResponse(*want, *got, label);
      ExpectSameResponse(*truth, *got, label + " (oracle)");
    }
  }
  std::remove(data_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(SnapshotTest, ParisRoundtripAnswersIdentically) {
  const Dataset data = MakeData();
  const std::string data_path = WriteDataFile(data, "paris_rt.psax");
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 6, data.length(), 33);

  for (const Algorithm algorithm :
       {Algorithm::kParis, Algorithm::kParisPlus}) {
    const std::string snap_path =
        TempPath(std::string("paris_rt_") + AlgorithmName(algorithm) +
                 ".snap");
    auto built = Engine::Build(SourceSpec::Borrowed(&data),
                               BaseOptions(algorithm));
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE((*built)->Save(snap_path).ok());

    auto restored = Engine::Open(snap_path, data_path);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    // The snapshot remembers ParIS vs ParIS+.
    EXPECT_EQ((*restored)->algorithm(), algorithm);
    ASSERT_NE((*restored)->paris_index(), nullptr);
    EXPECT_TRUE((*restored)->paris_index()->tree().CheckInvariants().ok());

    auto oracle =
        Engine::Build(SourceSpec::Borrowed(&data),
                    BaseOptions(Algorithm::kBruteForce));
    ASSERT_TRUE(oracle.ok());
    for (SeriesId q = 0; q < queries.count(); ++q) {
      const SeriesView query = queries.series(q);
      auto want = (*built)->Search(query);
      auto got = (*restored)->Search(query);
      auto truth = (*oracle)->Search(query);
      ASSERT_TRUE(want.ok() && got.ok() && truth.ok());
      const std::string label =
          std::string(AlgorithmName(algorithm)) + " q" + std::to_string(q);
      ExpectSameResponse(*want, *got, label);
      ExpectSameResponse(*truth, *got, label + " (oracle)");

      SearchRequest approx;
      approx.approximate = true;
      auto want_a = (*built)->Search(query, approx);
      auto got_a = (*restored)->Search(query, approx);
      ASSERT_TRUE(want_a.ok() && got_a.ok());
      ExpectSameResponse(*want_a, *got_a, label + " approx");
    }
    std::remove(snap_path.c_str());
  }
  std::remove(data_path.c_str());
}

TEST(SnapshotTest, OnDiskParisSnapshotInlinesFlushedLeaves) {
  // An on-disk ParIS+ build materializes leaves into LeafStorage; the
  // snapshot must inline those chunks so the restored index works
  // without the .leaves file.
  const Dataset data = MakeData(800, 48);
  const std::string data_path = WriteDataFile(data, "paris_disk.psax");
  const std::string snap_path = TempPath("paris_disk.snap");

  EngineOptions options = BaseOptions(Algorithm::kParisPlus);
  options.leaf_storage_path = TempPath("paris_disk.leaves");
  auto built = Engine::Build(SourceSpec::File(data_path), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_GT((*built)->paris_index()->build_stats().leaf_chunks_flushed,
            0u);
  ASSERT_TRUE((*built)->Save(snap_path).ok());
  // The restored index must not depend on the leaf file.
  std::remove(options.leaf_storage_path.c_str());

  auto restored = Engine::Open(snap_path, data_path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 5, data.length(), 37);
  for (SeriesId q = 0; q < queries.count(); ++q) {
    auto want = (*built)->Search(queries.series(q));
    auto got = (*restored)->Search(queries.series(q));
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectSameResponse(*want, *got, "paris ondisk q" + std::to_string(q));
  }
  std::remove(data_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(SnapshotTest, RestoredEngineServesThroughQueryService) {
  const Dataset data = MakeData(900, 48);
  const std::string data_path = WriteDataFile(data, "serve_rt.psax");
  const std::string snap_path = TempPath("serve_rt.snap");
  auto built = Engine::Build(SourceSpec::Borrowed(&data),
                             BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(snap_path).ok());
  auto restored = Engine::Open(snap_path, data_path);
  ASSERT_TRUE(restored.ok());

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 12, data.length(), 41);
  std::vector<SeriesView> views;
  for (SeriesId q = 0; q < queries.count(); ++q) {
    views.push_back(queries.series(q));
  }
  auto batch = (*restored)->SearchBatch(views);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), queries.count());
  for (size_t q = 0; q < views.size(); ++q) {
    auto want = (*built)->Search(views[q]);
    ASSERT_TRUE(want.ok());
    ExpectSameResponse(*want, (*batch)[q], "serve q" + std::to_string(q));
  }
  std::remove(data_path.c_str());
  std::remove(snap_path.c_str());
}

// --- header / metadata ------------------------------------------------

TEST(SnapshotTest, ReadSnapshotInfoReportsShape) {
  const Dataset data = MakeData(600, 32);
  const std::string data_path = WriteDataFile(data, "info.psax");
  const std::string snap_path = TempPath("info.snap");
  auto built = Engine::Build(SourceSpec::Borrowed(&data),
                             BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(snap_path).ok());

  auto info = ReadSnapshotInfo(snap_path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kSnapshotVersion);
  EXPECT_EQ(info->kind, SnapshotKind::kMessi);
  EXPECT_EQ(info->algorithm,
            static_cast<uint8_t>(Algorithm::kMessi));
  EXPECT_EQ(info->tree.segments, 8);
  EXPECT_EQ(info->tree.leaf_capacity, 16u);
  EXPECT_EQ(info->tree.series_length, data.length());
  EXPECT_EQ(info->series_count, data.count());
  EXPECT_EQ(info->total_entries, data.count());
  EXPECT_GT(info->subtree_count, 0u);
  std::remove(data_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(SnapshotTest, LoadRejectsKindMismatch) {
  const Dataset data = MakeData(400, 32);
  const std::string data_path = WriteDataFile(data, "kind.psax");
  const std::string snap_path = TempPath("kind.snap");
  auto built = Engine::Build(SourceSpec::Borrowed(&data),
                             BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(snap_path).ok());

  auto source = MmapSource::Open(data_path);
  ASSERT_TRUE(source.ok());
  InlineExecutor exec;
  auto loaded = LoadParisIndex(snap_path, std::move(*source), &exec);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(data_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(SnapshotTest, LoadRejectsMismatchedRawSource) {
  const Dataset data = MakeData(500, 32);
  const Dataset other = MakeData(200, 32, 99);
  const std::string data_path = WriteDataFile(data, "shape_a.psax");
  const std::string other_path = WriteDataFile(other, "shape_b.psax");
  const std::string snap_path = TempPath("shape.snap");
  auto built = Engine::Build(SourceSpec::Borrowed(&data),
                             BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(snap_path).ok());

  // Opening against the wrong raw file must fail loudly, not answer
  // queries against unrelated data.
  auto restored = Engine::Open(snap_path, other_path);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  std::remove(data_path.c_str());
  std::remove(other_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(SnapshotTest, OpenWithExplicitAlgorithmEnforcesMatch) {
  const Dataset data = MakeData(400, 32);
  const std::string data_path = WriteDataFile(data, "algo_match.psax");
  const std::string snap_path = TempPath("algo_match.snap");
  auto built = Engine::Build(SourceSpec::Borrowed(&data),
                             BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(snap_path).ok());

  // Explicit options bind options.algorithm: a mismatch with what the
  // snapshot records is an error, never a silent override.
  auto mismatched = Engine::Open(snap_path, data_path,
                                 BaseOptions(Algorithm::kParisPlus));
  EXPECT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);

  auto matched = Engine::Open(snap_path, data_path,
                              BaseOptions(Algorithm::kMessi));
  EXPECT_TRUE(matched.ok()) << matched.status().ToString();

  // The two-argument overload accepts whatever the snapshot holds.
  auto any = Engine::Open(snap_path, data_path);
  ASSERT_TRUE(any.ok());
  EXPECT_EQ((*any)->algorithm(), Algorithm::kMessi);
  std::remove(data_path.c_str());
  std::remove(snap_path.c_str());
}

// --- corruption handling ----------------------------------------------

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Parallel ctest runs every case of this fixture as its own process;
    // the scratch files must be distinct per case or the processes race.
    const std::string unique =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    data_ = MakeData(700, 32);
    data_path_ = WriteDataFile(data_, "corrupt_" + unique + ".psax");
    snap_path_ = TempPath("corrupt_" + unique + ".snap");
    auto built =
        Engine::Build(SourceSpec::Borrowed(&data_),
                      BaseOptions(Algorithm::kMessi));
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE((*built)->Save(snap_path_).ok());
    bytes_ = ReadAll(snap_path_);
    ASSERT_GT(bytes_.size(), 100u);
  }

  void TearDown() override {
    std::remove(data_path_.c_str());
    std::remove(snap_path_.c_str());
    std::remove(mutated_path_.c_str());
  }

  /// Writes `mutated` to a scratch snapshot and returns the load result.
  Status TryLoad(const std::vector<uint8_t>& mutated) {
    mutated_path_ = snap_path_ + ".mutated";
    WriteAll(mutated_path_, mutated);
    auto restored = Engine::Open(mutated_path_, data_path_);
    return restored.status();
  }

  Dataset data_;
  std::string data_path_;
  std::string snap_path_;
  std::string mutated_path_;
  std::vector<uint8_t> bytes_;
};

TEST_F(SnapshotCorruptionTest, TruncatedFilesFailCleanly) {
  for (const size_t keep :
       {size_t{0}, size_t{7}, size_t{63}, size_t{64}, size_t{100},
        bytes_.size() / 2, bytes_.size() - 1}) {
    std::vector<uint8_t> truncated(bytes_.begin(),
                                   bytes_.begin() + keep);
    const Status status = TryLoad(truncated);
    EXPECT_FALSE(status.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(status.code(), StatusCode::kCorruption)
        << "kept " << keep << " bytes: " << status.ToString();
  }
}

TEST_F(SnapshotCorruptionTest, BadMagicFailsCleanly) {
  std::vector<uint8_t> mutated = bytes_;
  mutated[0] ^= 0xFF;
  const Status status = TryLoad(mutated);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, WrongVersionIsNotSupported) {
  std::vector<uint8_t> mutated = bytes_;
  const uint32_t future_version = kSnapshotVersion + 7;
  std::memcpy(mutated.data() + 8, &future_version, 4);
  // Re-seal the header so the version check (not the CRC) fires: this is
  // the "newer writer, older reader" case.
  const uint32_t crc = Crc32(mutated.data(), 60);
  std::memcpy(mutated.data() + 60, &crc, 4);
  const Status status = TryLoad(mutated);
  EXPECT_EQ(status.code(), StatusCode::kNotSupported);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, FlippedHeaderByteFailsChecksum) {
  std::vector<uint8_t> mutated = bytes_;
  mutated[30] ^= 0x01;  // series_count field
  const Status status = TryLoad(mutated);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_F(SnapshotCorruptionTest, FlippedBodyByteFailsChecksum) {
  for (const size_t at : {size_t{70}, bytes_.size() / 2,
                          bytes_.size() - 5}) {
    std::vector<uint8_t> mutated = bytes_;
    mutated[at] ^= 0x40;
    const Status status = TryLoad(mutated);
    EXPECT_FALSE(status.ok()) << "flipped byte " << at;
    EXPECT_EQ(status.code(), StatusCode::kCorruption)
        << "flipped byte " << at << ": " << status.ToString();
  }
}

TEST_F(SnapshotCorruptionTest, FlippedTrailerChecksumByteFailsCleanly) {
  std::vector<uint8_t> mutated = bytes_;
  mutated[mutated.size() - 2] ^= 0x10;
  const Status status = TryLoad(mutated);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, MissingSnapshotIsNotFound) {
  auto restored =
      Engine::Open(TempPath("never_written.snap"), data_path_);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace parisax
