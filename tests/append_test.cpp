// Incremental-ingest tests: Engine::Append must leave the engine
// answering exactly like a from-scratch build over the combined
// collection (ED/kNN/DTW, MESSI + ParIS/ParIS+, in-memory and mmap and
// streamed-file residencies), stay correct under concurrent
// QueryService load, and the append-only delta snapshots must
// round-trip (save -> open -> query equivalence), fail typed on
// corruption, and compact back into a full snapshot.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "io/format.h"
#include "io/generator.h"
#include "persist/snapshot.h"
#include "serve/query_service.h"
#include "support/temp_dir.h"

namespace parisax {
namespace {

constexpr size_t kLength = 64;

std::string TempPath(const std::string& name) {
  static testsupport::ScopedTempDir dir("parisax_append");
  return dir.Path(name);
}

Dataset MakeData(size_t count, uint64_t seed = 37) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = kLength;
  gen.seed = seed;
  return GenerateDataset(gen);
}

/// Rows [first, first + count) of `data` as their own collection.
Dataset Slice(const Dataset& data, size_t first, size_t count) {
  Dataset out(count, data.length());
  for (size_t i = 0; i < count; ++i) {
    const SeriesView src = data.series(first + i);
    std::copy(src.begin(), src.end(),
              out.mutable_series(i).begin());
  }
  return out;
}

EngineOptions BaseOptions(Algorithm algorithm) {
  EngineOptions o;
  o.algorithm = algorithm;
  o.num_threads = 2;
  o.tree.segments = 8;
  o.tree.leaf_capacity = 16;
  return o;
}

void ExpectSameResponse(const SearchResponse& want,
                        const SearchResponse& got,
                        const std::string& label) {
  ASSERT_EQ(want.neighbors.size(), got.neighbors.size()) << label;
  for (size_t i = 0; i < want.neighbors.size(); ++i) {
    EXPECT_EQ(want.neighbors[i].id, got.neighbors[i].id) << label;
    // Byte-identical: same kernels over the same float values.
    EXPECT_EQ(want.neighbors[i].distance_sq, got.neighbors[i].distance_sq)
        << label;
  }
}

/// Exact-search equivalence between two engines over a query workload:
/// ED 1-NN everywhere, plus kNN and DTW where the engine supports them.
void ExpectQueryEquivalence(Engine* want, Engine* got,
                            const Dataset& queries,
                            const std::string& label) {
  const EngineCapabilities caps = got->capabilities();
  for (SeriesId q = 0; q < queries.count(); ++q) {
    const SeriesView view = queries.series(q);
    auto w = want->Search(view, {});
    auto g = got->Search(view, {});
    ASSERT_TRUE(w.ok()) << label << ": " << w.status().ToString();
    ASSERT_TRUE(g.ok()) << label << ": " << g.status().ToString();
    ExpectSameResponse(*w, *g, label + "/ed");
    if (caps.max_k >= 5) {
      SearchRequest knn;
      knn.k = 5;
      auto wk = want->Search(view, knn);
      auto gk = got->Search(view, knn);
      ASSERT_TRUE(wk.ok() && gk.ok()) << label;
      ExpectSameResponse(*wk, *gk, label + "/knn");
    }
    if (caps.dtw) {
      SearchRequest dtw;
      dtw.dtw = true;
      dtw.dtw_band = 5;
      auto wd = want->Search(view, dtw);
      auto gd = got->Search(view, dtw);
      ASSERT_TRUE(wd.ok() && gd.ok()) << label;
      ExpectSameResponse(*wd, *gd, label + "/dtw");
    }
  }
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// --- append == from-scratch build -------------------------------------

TEST(AppendTest, AppendMatchesFromScratchBuild) {
  const Dataset full = MakeData(1200);
  const Dataset queries = GenerateQueries(DatasetKind::kRandomWalk, 6,
                                          kLength, 91);
  for (const Algorithm a :
       {Algorithm::kMessi, Algorithm::kParisPlus, Algorithm::kParis}) {
    auto scratch = Engine::Build(
        SourceSpec::InMemory(Slice(full, 0, full.count())),
        BaseOptions(a));
    ASSERT_TRUE(scratch.ok()) << AlgorithmName(a);

    // Base 800, then two append batches of 300 and 100.
    auto grown = Engine::Build(SourceSpec::InMemory(Slice(full, 0, 800)),
                               BaseOptions(a));
    ASSERT_TRUE(grown.ok()) << AlgorithmName(a);
    ASSERT_TRUE((*grown)->capabilities().append);
    auto r1 = (*grown)->Append(Slice(full, 800, 300));
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    EXPECT_EQ(r1->appended, 300u);
    EXPECT_EQ(r1->total_series, 1100u);
    EXPECT_GT(r1->touched_subtrees, 0u);
    auto r2 = (*grown)->Append(Slice(full, 1100, 100));
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ((*grown)->series_count(), full.count());
    EXPECT_EQ((*grown)->append_epoch(), 2u);
    // build_report() stays the *initial* build's; post-append tree
    // stats live on the index.
    const TreeStats& tree = a == Algorithm::kMessi
                                ? (*grown)->messi_index()->build_stats().tree
                                : (*grown)->paris_index()->build_stats().tree;
    EXPECT_EQ(tree.total_entries, full.count());

    ExpectQueryEquivalence(scratch->get(), grown->get(), queries,
                           AlgorithmName(a));
  }
}

TEST(AppendTest, ManySmallAppendsMatchFromScratchBuild) {
  // The streaming-ingest shape: lots of tiny batches. Exercises the
  // geometric-capacity path (later batches land in spare capacity
  // without reallocating) and id continuity across appends.
  const Dataset full = MakeData(900, 47);
  auto scratch = Engine::Build(
      SourceSpec::InMemory(Slice(full, 0, full.count())),
      BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(scratch.ok());
  auto grown = Engine::Build(SourceSpec::InMemory(Slice(full, 0, 500)),
                             BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(grown.ok());
  for (size_t first = 500; first < 900; first += 20) {
    auto report = (*grown)->Append(Slice(full, first, 20));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  EXPECT_EQ((*grown)->series_count(), full.count());
  EXPECT_EQ((*grown)->append_epoch(), 20u);
  const Dataset queries = GenerateQueries(DatasetKind::kRandomWalk, 5,
                                          kLength, 48);
  ExpectQueryEquivalence(scratch->get(), grown->get(), queries,
                         "messi/small-appends");
}

TEST(AppendTest, AppendGrowsMmapBackedFileInPlace) {
  const Dataset full = MakeData(900, 53);
  const std::string path = TempPath("mmap_grow.psax");
  ASSERT_TRUE(WriteDataset(Slice(full, 0, 600), path).ok());

  auto engine = Engine::Build(SourceSpec::Mmap(path),
                              BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto report = (*engine)->Append(Slice(full, 600, 300));
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The dataset file itself grew: a valid WriteDataset file holding the
  // whole collection (what Engine::Open later mmaps).
  auto info = ReadDatasetInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->count, full.count());

  auto scratch = Engine::Build(
      SourceSpec::InMemory(Slice(full, 0, full.count())),
      BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(scratch.ok());
  const Dataset queries = GenerateQueries(DatasetKind::kRandomWalk, 5,
                                          kLength, 92);
  ExpectQueryEquivalence(scratch->get(), engine->get(), queries,
                         "messi/mmap-append");
  std::remove(path.c_str());
}

TEST(AppendTest, AppendOverStreamedFileSource) {
  const Dataset full = MakeData(700, 61);
  const std::string path = TempPath("stream_grow.psax");
  ASSERT_TRUE(WriteDataset(Slice(full, 0, 500), path).ok());

  auto engine = Engine::Build(SourceSpec::File(path),
                              BaseOptions(Algorithm::kParisPlus));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto report = (*engine)->Append(Slice(full, 500, 200));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ((*engine)->series_count(), full.count());

  // The streamed engine fetches raw values through the (re-opened)
  // device; results must match the in-memory oracle exactly.
  auto oracle = Engine::Build(
      SourceSpec::InMemory(Slice(full, 0, full.count())),
      BaseOptions(Algorithm::kBruteForce));
  ASSERT_TRUE(oracle.ok());
  const Dataset queries = GenerateQueries(DatasetKind::kRandomWalk, 4,
                                          kLength, 93);
  for (SeriesId q = 0; q < queries.count(); ++q) {
    auto want = (*oracle)->Search(queries.series(q), {});
    auto got = (*engine)->Search(queries.series(q), {});
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectSameResponse(*want, *got, "paris+/streamed-append");
  }
  std::remove(path.c_str());
  std::remove((path + ".leaves").c_str());
}

TEST(AppendTest, ScanEngineAppendCoversNewSeries) {
  const Dataset full = MakeData(300, 71);
  auto engine = Engine::Build(SourceSpec::InMemory(Slice(full, 0, 200)),
                              BaseOptions(Algorithm::kBruteForce));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Append(Slice(full, 200, 100)).ok());
  // Querying with an appended series itself must find it at distance 0.
  auto response = (*engine)->Search(full.series(250), {});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->neighbors[0].id, 250u);
  EXPECT_EQ(response->neighbors[0].distance_sq, 0.0f);
}

// --- gating -----------------------------------------------------------

TEST(AppendTest, AppendRejectionsAreTyped) {
  const Dataset data = MakeData(400, 83);
  const Dataset tail = MakeData(10, 84);

  // ADS+ cannot append (capability row is false).
  auto ads = Engine::Build(SourceSpec::InMemory(Slice(data, 0, 400)),
                           BaseOptions(Algorithm::kAdsPlus));
  ASSERT_TRUE(ads.ok());
  EXPECT_FALSE((*ads)->capabilities().append);
  EXPECT_EQ((*ads)->Append(tail).status().code(),
            StatusCode::kNotSupported);

  // A borrowed collection cannot grow.
  auto borrowed = Engine::Build(SourceSpec::Borrowed(&data),
                                BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(borrowed.ok());
  EXPECT_FALSE((*borrowed)->capabilities().append);
  EXPECT_EQ((*borrowed)->Append(tail).status().code(),
            StatusCode::kNotSupported);

  // Wrong series length is invalid, not silently reshaped.
  auto messi = Engine::Build(SourceSpec::InMemory(Slice(data, 0, 400)),
                             BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(messi.ok());
  Dataset wrong(4, kLength / 2);
  EXPECT_EQ((*messi)->Append(wrong).status().code(),
            StatusCode::kInvalidArgument);

  // Empty append is a no-op, not an error.
  auto empty = (*messi)->Append(Dataset());
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->appended, 0u);
  EXPECT_EQ((*messi)->append_epoch(), 0u);
}

// --- concurrency ------------------------------------------------------

TEST(AppendTest, AppendUnderConcurrentQueryServiceLoad) {
  const Dataset full = MakeData(1600, 101);
  const Dataset queries = GenerateQueries(DatasetKind::kRandomWalk, 8,
                                          kLength, 102);
  auto built = Engine::Build(SourceSpec::InMemory(Slice(full, 0, 1000)),
                             BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(built.ok());
  Engine* engine = built->get();

  // Clients hammer the query service while the main thread appends the
  // remaining series in batches. Every response must be well-formed
  // against whatever epoch it observed (neighbor id inside the
  // collection, finite distance).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const SeriesView q = queries.series((c + i++) % queries.count());
        SearchRequest request;
        if (i % 3 == 0) request.k = 3;
        auto response = engine->Submit(q, request).get();
        EXPECT_TRUE(response.ok()) << response.status().ToString();
        if (response.ok()) {
          for (const Neighbor& n : response->neighbors) {
            EXPECT_LT(n.id, engine->series_count());
            EXPECT_GE(n.distance_sq, 0.0f);
          }
        }
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (size_t first = 1000; first < 1600; first += 200) {
    auto report = engine->Append(Slice(full, first, 200));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  // Let the clients observe the final epoch before stopping.
  while (answered.load(std::memory_order_relaxed) < 24) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(engine->series_count(), full.count());
  EXPECT_EQ(engine->append_epoch(), 3u);

  // And the final state answers exactly like a from-scratch build.
  auto scratch = Engine::Build(
      SourceSpec::InMemory(Slice(full, 0, full.count())),
      BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(scratch.ok());
  ExpectQueryEquivalence(scratch->get(), engine, queries,
                         "messi/concurrent");
}

// --- delta snapshots --------------------------------------------------

struct Chain {
  std::string data_path;
  std::string base;
  std::string delta1;
  std::string delta2;
  std::unique_ptr<Engine> engine;  // live engine, post-appends
};

/// Builds over an mmap-backed copy of the first 600 series, saves a
/// full base, then appends twice with a delta save after each. Uses
/// the paper's 16 SAX segments: with the full root fan-out an append
/// batch touches a small fraction of the subtrees, which is what makes
/// deltas smaller than full snapshots.
Chain BuildChain(Algorithm algorithm, const Dataset& full,
                 const std::string& tag) {
  Chain c;
  c.data_path = TempPath(tag + "_data.psax");
  c.base = TempPath(tag + "_base.snap");
  c.delta1 = TempPath(tag + "_delta1.snap");
  c.delta2 = TempPath(tag + "_delta2.snap");
  EXPECT_TRUE(WriteDataset(Slice(full, 0, 600), c.data_path).ok());

  EngineOptions options = BaseOptions(algorithm);
  options.tree.segments = 16;
  auto engine = Engine::Build(SourceSpec::Mmap(c.data_path), options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  c.engine = std::move(*engine);
  EXPECT_TRUE(c.engine->Save(c.base).ok());
  EXPECT_TRUE(c.engine->Append(Slice(full, 600, 250)).ok());
  EXPECT_TRUE(c.engine->Save(c.delta1).ok());
  EXPECT_TRUE(c.engine->Append(Slice(full, 850, 150)).ok());
  EXPECT_TRUE(c.engine->Save(c.delta2).ok());
  return c;
}

void RemoveChain(const Chain& c) {
  for (const std::string& p :
       {c.data_path, c.base, c.delta1, c.delta2}) {
    std::remove(p.c_str());
  }
}

TEST(AppendTest, DeltaSnapshotChainRoundtrip) {
  const Dataset full = MakeData(1000, 111);
  const Dataset queries = GenerateQueries(DatasetKind::kRandomWalk, 5,
                                          kLength, 112);
  for (const Algorithm a : {Algorithm::kMessi, Algorithm::kParisPlus}) {
    Chain c = BuildChain(a, full, std::string("chain_") +
                                      std::to_string(static_cast<int>(a)));

    // The files record what they are: v1 base, then chained deltas.
    auto base_info = ReadSnapshotInfo(c.base);
    ASSERT_TRUE(base_info.ok());
    EXPECT_EQ(base_info->version, kSnapshotVersion);
    EXPECT_FALSE(base_info->is_delta);
    auto d1 = ReadSnapshotInfo(c.delta1);
    ASSERT_TRUE(d1.ok());
    EXPECT_TRUE(d1->is_delta);
    EXPECT_EQ(d1->version, kSnapshotVersionDelta);
    EXPECT_EQ(d1->base_path, c.base);
    EXPECT_EQ(d1->chain_depth, 1u);
    EXPECT_EQ(d1->prev_series_count, 600u);
    EXPECT_EQ(d1->series_count, 850u);
    auto d2 = ReadSnapshotInfo(c.delta2);
    ASSERT_TRUE(d2.ok());
    EXPECT_EQ(d2->base_path, c.delta1);
    EXPECT_EQ(d2->chain_depth, 2u);

    // Deltas are smaller than the base: only touched subtrees travel.
    EXPECT_LT(ReadAll(c.delta2).size(), ReadAll(c.base).size());

    // Open replays base + both deltas and answers like the live engine.
    auto restored = Engine::Open(c.delta2, c.data_path);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ((*restored)->series_count(), 1000u);
    ExpectQueryEquivalence(c.engine.get(), restored->get(), queries,
                           std::string(AlgorithmName(a)) + "/chain");
    RemoveChain(c);
  }
}

TEST(AppendTest, DeltaCorruptionAndBrokenChainsAreTyped) {
  const Dataset full = MakeData(1000, 121);
  Chain c = BuildChain(Algorithm::kMessi, full, "corrupt");
  const std::vector<uint8_t> base_bytes = ReadAll(c.base);
  const std::vector<uint8_t> delta_bytes = ReadAll(c.delta2);

  // Body byte flip in the delta.
  {
    std::vector<uint8_t> bad = delta_bytes;
    bad[bad.size() / 2] ^= 0x40;
    WriteAll(c.delta2, bad);
    auto opened = Engine::Open(c.delta2, c.data_path);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  }
  // Truncated delta.
  {
    std::vector<uint8_t> bad = delta_bytes;
    bad.resize(bad.size() - 9);
    WriteAll(c.delta2, bad);
    auto opened = Engine::Open(c.delta2, c.data_path);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  }
  WriteAll(c.delta2, delta_bytes);

  // Corrupting a file earlier in the chain is caught too.
  {
    std::vector<uint8_t> bad = base_bytes;
    bad[bad.size() / 2] ^= 0x40;
    WriteAll(c.base, bad);
    auto opened = Engine::Open(c.delta2, c.data_path);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  }
  // A *swapped* base (valid snapshot, wrong identity) breaks the CRC
  // back-reference.
  {
    auto other = Engine::Build(SourceSpec::InMemory(Slice(full, 0, 300)),
                               BaseOptions(Algorithm::kMessi));
    ASSERT_TRUE(other.ok());
    ASSERT_TRUE((*other)->Save(c.base).ok());
    auto opened = Engine::Open(c.delta2, c.data_path);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  }
  // A missing base is NotFound.
  {
    std::remove(c.base.c_str());
    auto opened = Engine::Open(c.delta2, c.data_path);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
  }
  RemoveChain(c);
}

TEST(AppendTest, CompactRewritesTheChain) {
  const Dataset full = MakeData(1000, 131);
  const Dataset queries = GenerateQueries(DatasetKind::kRandomWalk, 4,
                                          kLength, 132);
  Chain c = BuildChain(Algorithm::kParisPlus, full, "compact");
  const std::string compacted = TempPath("compacted.snap");

  ASSERT_TRUE(c.engine->Compact(compacted).ok());
  auto info = ReadSnapshotInfo(compacted);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, kSnapshotVersion);  // full again
  EXPECT_EQ(info->series_count, 1000u);

  // The compacted file alone restores the whole collection — the chain
  // files are no longer needed.
  std::remove(c.base.c_str());
  std::remove(c.delta1.c_str());
  std::remove(c.delta2.c_str());
  auto restored = Engine::Open(compacted, c.data_path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectQueryEquivalence(c.engine.get(), restored->get(), queries,
                         "paris+/compacted");

  // Post-compaction appends chain onto the compacted file.
  ASSERT_TRUE(c.engine->Append(Slice(full, 0, 40)).ok());
  const std::string next = TempPath("post_compact.snap");
  ASSERT_TRUE(c.engine->Save(next).ok());
  auto next_info = ReadSnapshotInfo(next);
  ASSERT_TRUE(next_info.ok());
  EXPECT_TRUE(next_info->is_delta);
  EXPECT_EQ(next_info->base_path, compacted);
  EXPECT_EQ(next_info->chain_depth, 1u);

  std::remove(compacted.c_str());
  std::remove(next.c_str());
  std::remove(c.data_path.c_str());
}

TEST(AppendTest, SaveOverChainMemberFallsBackToFull) {
  // Asking Save to overwrite a file the chain back-references (here:
  // the base, via ping-pong save paths) must not write a delta — that
  // would make the chain a cycle. It falls back to a full snapshot,
  // which supersedes the chain.
  const Dataset full = MakeData(1100, 151);
  Chain c = BuildChain(Algorithm::kMessi, full, "pingpong");
  ASSERT_TRUE(c.engine->Append(Slice(full, 1000, 100)).ok());
  ASSERT_TRUE(c.engine->Save(c.base).ok());

  auto info = ReadSnapshotInfo(c.base);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->is_delta);
  EXPECT_EQ(info->series_count, 1100u);

  // The overwritten base alone restores the full collection.
  auto restored = Engine::Open(c.base, c.data_path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->series_count(), 1100u);
  RemoveChain(c);
}

TEST(AppendTest, SaveWithoutAppendsStaysFull) {
  const Dataset full = MakeData(700, 141);
  const std::string data_path = TempPath("full_data.psax");
  ASSERT_TRUE(WriteDataset(Slice(full, 0, 700), data_path).ok());
  auto engine = Engine::Build(SourceSpec::Mmap(data_path),
                              BaseOptions(Algorithm::kMessi));
  ASSERT_TRUE(engine.ok());

  const std::string first = TempPath("full_first.snap");
  const std::string second = TempPath("full_second.snap");
  ASSERT_TRUE((*engine)->Save(first).ok());
  // No appends since: a save to a new path is still a full snapshot.
  ASSERT_TRUE((*engine)->Save(second).ok());
  auto info = ReadSnapshotInfo(second);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->is_delta);

  for (const std::string& p : {data_path, first, second}) {
    std::remove(p.c_str());
  }
}

}  // namespace
}  // namespace parisax
