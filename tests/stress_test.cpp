// Concurrency stress: repeated parallel builds and query storms must be
// deterministic in their *results* (answers and index contents) even
// when thread interleavings differ, and must never lose or duplicate
// work. These loops are small enough for CI but hammer every
// synchronization point (RecBuf locks, slot barriers, buffer parts,
// priority queues, the shared BSF) hundreds of times.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "core/engine.h"
#include "io/generator.h"
#include "messi/messi_index.h"
#include "paris/paris_index.h"
#include "scan/ucr_scan.h"

namespace parisax {
namespace {

Dataset MakeData(size_t count, uint64_t seed) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = 64;
  gen.seed = seed;
  return GenerateDataset(gen);
}

std::unique_ptr<InMemorySource> Mem(const Dataset& data) {
  return std::make_unique<InMemorySource>(&data);
}

TEST(StressTest, RepeatedMessiBuildsIndexIdentically) {
  const Dataset data = MakeData(2000, 901);
  MessiBuildOptions build;
  build.num_workers = 7;
  build.chunk_series = 64;
  build.tree.segments = 8;
  build.tree.leaf_capacity = 16;
  build.tree.series_length = 64;

  std::vector<uint32_t> first_roots;
  size_t first_entries = 0;
  for (int round = 0; round < 15; ++round) {
    ThreadPool pool(7);
    auto index = MessiIndex::Build(Mem(data), build, &pool);
    ASSERT_TRUE(index.ok()) << "round " << round;
    ASSERT_TRUE((*index)->tree().CheckInvariants().ok()) << "round "
                                                         << round;
    const TreeStats stats = (*index)->build_stats().tree;
    ASSERT_EQ(stats.total_entries, data.count()) << "round " << round;
    if (round == 0) {
      first_roots = (*index)->tree().PresentRoots();
      first_entries = stats.total_entries;
    } else {
      // Root population is interleaving-independent.
      EXPECT_EQ((*index)->tree().PresentRoots(), first_roots);
      EXPECT_EQ(stats.total_entries, first_entries);
    }
  }
}

TEST(StressTest, RepeatedParisPipelinesNeverLoseSeries) {
  const Dataset data = MakeData(3000, 902);
  for (int round = 0; round < 10; ++round) {
    ParisBuildOptions build;
    build.num_workers = 1 + round % 5;
    build.plus_mode = round % 2 == 1;
    build.batch_series = 64 + 37 * (round % 3);
    build.batches_per_round = 1 + round % 4;
    build.tree.segments = 8;
    build.tree.leaf_capacity = 16;
    build.tree.series_length = 64;
    auto index = ParisIndex::Build(Mem(data), build);
    ASSERT_TRUE(index.ok()) << "round " << round;
    EXPECT_EQ((*index)->build_stats().tree.total_entries, data.count())
        << "round " << round;
    ASSERT_TRUE((*index)->tree().CheckInvariants().ok())
        << "round " << round;
  }
}

TEST(StressTest, QueryStormReturnsIdenticalDistances) {
  const Dataset data = MakeData(4000, 903);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 10, 64, 903);

  EngineOptions options;
  options.algorithm = Algorithm::kMessi;
  options.num_threads = 6;
  options.tree.segments = 8;
  options.tree.leaf_capacity = 32;
  auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
  ASSERT_TRUE(engine.ok());

  // Reference distances once, then many repetitions: parallel query
  // answering must be exact every single time, not just on average.
  std::vector<float> reference;
  for (size_t q = 0; q < queries.count(); ++q) {
    reference.push_back(
        BruteForceNn(InMemorySource(&data), queries.series(q),
                     KernelPolicy::kScalar)
            .distance_sq);
  }
  for (int round = 0; round < 25; ++round) {
    const size_t q = round % queries.count();
    auto response = (*engine)->Search(queries.series(q), {});
    ASSERT_TRUE(response.ok());
    EXPECT_NEAR(response->neighbors[0].distance_sq, reference[q],
                1e-3f * std::max(1.0f, reference[q]))
        << "round " << round;
  }
}

TEST(StressTest, ConcurrentEnginesDoNotInterfere) {
  // Two engines over different datasets queried from different threads:
  // no shared mutable state may leak between them.
  const Dataset data_a = MakeData(1500, 904);
  const Dataset data_b = MakeData(1500, 905);

  EngineOptions options;
  options.algorithm = Algorithm::kMessi;
  options.num_threads = 2;
  options.tree.segments = 8;
  auto engine_a = Engine::Build(SourceSpec::Borrowed(&data_a), options);
  auto engine_b = Engine::Build(SourceSpec::Borrowed(&data_b), options);
  ASSERT_TRUE(engine_a.ok());
  ASSERT_TRUE(engine_b.ok());

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 6, 64, 906);
  std::vector<float> ref_a, ref_b;
  for (size_t q = 0; q < queries.count(); ++q) {
    ref_a.push_back(BruteForceNn(InMemorySource(&data_a), queries.series(q),
                                 KernelPolicy::kScalar)
                        .distance_sq);
    ref_b.push_back(BruteForceNn(InMemorySource(&data_b), queries.series(q),
                                 KernelPolicy::kScalar)
                        .distance_sq);
  }

  std::atomic<bool> failed{false};
  const auto storm = [&](Engine* engine, const std::vector<float>& ref) {
    for (int round = 0; round < 12 && !failed.load(); ++round) {
      const size_t q = round % queries.count();
      auto response = engine->Search(queries.series(q), {});
      if (!response.ok() ||
          std::fabs(response->neighbors[0].distance_sq - ref[q]) >
              1e-3f * std::max(1.0f, ref[q])) {
        failed.store(true);
      }
    }
  };
  std::thread ta(storm, engine_a->get(), ref_a);
  std::thread tb(storm, engine_b->get(), ref_b);
  ta.join();
  tb.join();
  EXPECT_FALSE(failed.load());
}

TEST(StressTest, OversubscribedThreadCounts) {
  // Way more workers than hardware threads (and than work): everything
  // must still be exact.
  const Dataset data = MakeData(500, 907);
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 3, 64, 907);
  for (const int threads : {12, 16}) {
    EngineOptions options;
    options.algorithm = Algorithm::kMessi;
    options.num_threads = threads;
    options.tree.segments = 8;
    options.chunk_series = 8;  // force many tiny work items
    auto engine = Engine::Build(SourceSpec::Borrowed(&data), options);
    ASSERT_TRUE(engine.ok());
    for (size_t q = 0; q < queries.count(); ++q) {
      const Neighbor oracle =
          BruteForceNn(InMemorySource(&data), queries.series(q),
                     KernelPolicy::kScalar);
      auto response = (*engine)->Search(queries.series(q), {});
      ASSERT_TRUE(response.ok());
      EXPECT_NEAR(response->neighbors[0].distance_sq, oracle.distance_sq,
                  1e-3f * std::max(1.0f, oracle.distance_sq))
          << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace parisax
