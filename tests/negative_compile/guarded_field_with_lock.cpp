// Control for the negative-compile probe: the same guarded-field access
// with the lock correctly held. This file MUST COMPILE cleanly under
// `clang++ -Wthread-safety -Werror`; if it does not, the probe harness
// is broken (wrong flags or include path), not the analysis.
#include "util/mutex.h"

namespace {

struct Guarded {
  parisax::Mutex mu{"negative_compile::mu", parisax::LockRank::kLeaf};
  int value PARISAX_GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Guarded g;
  int out;
  {
    parisax::MutexLock lock(&g.mu);
    g.value = 1;
    out = g.value;
  }
  return out;
}
