// Negative-compile probe: touching a PARISAX_GUARDED_BY field without
// holding its lock. Under `clang++ -Wthread-safety -Werror` this file
// MUST FAIL to compile; CMake's configure step asserts that it does
// (and that the control snippet next to it still compiles), proving the
// thread-safety analysis is actually armed rather than silently
// expanding to no-ops.
#include "util/mutex.h"

namespace {

struct Guarded {
  parisax::Mutex mu{"negative_compile::mu", parisax::LockRank::kLeaf};
  int value PARISAX_GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.value = 1;  // guarded-field write without g.mu held: must not compile
  return g.value;
}
