// Tests for the ParIS/ParIS+ build pipeline and query answering:
// equivalence with the serial builder, stats accounting, leaf
// materialization, RecBuf semantics, and failure paths.
#include "paris/paris_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "index/ads_index.h"
#include "io/format.h"
#include "io/generator.h"
#include "paris/recbuf.h"
#include "scan/ucr_scan.h"

namespace parisax {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Dataset MakeData(size_t count = 4000, size_t length = 64,
                 uint64_t seed = 3) {
  GeneratorOptions gen;
  gen.count = count;
  gen.length = length;
  gen.seed = seed;
  return GenerateDataset(gen);
}

ParisBuildOptions SmallBuild(int workers, bool plus) {
  ParisBuildOptions o;
  o.num_workers = workers;
  o.plus_mode = plus;
  o.batch_series = 512;
  o.batches_per_round = 2;
  o.tree.segments = 8;
  o.tree.leaf_capacity = 32;
  o.tree.series_length = 64;
  return o;
}

std::unique_ptr<InMemorySource> Mem(const Dataset& data) {
  return std::make_unique<InMemorySource>(&data);
}

std::unique_ptr<FileSource> Streamed(const std::string& path) {
  auto source = FileSource::Open(path, DiskProfile::Instant());
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  return source.ok() ? std::move(*source) : nullptr;
}

// Sorted multiset of (leaf-resident) series ids: build-strategy
// independent content check.
std::vector<SeriesId> AllIndexedIds(const SaxTree& tree,
                                    LeafStorage* storage) {
  std::vector<SeriesId> ids;
  tree.VisitLeaves(nullptr, [&](Node* leaf) {
    std::vector<LeafEntry> all;
    ASSERT_TRUE(CollectLeafEntries(*leaf, storage, &all).ok());
    for (const LeafEntry& e : all) ids.push_back(e.id);
  });
  std::sort(ids.begin(), ids.end());
  return ids;
}

class ParisBuildModes
    : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(ParisBuildModes, InMemoryBuildIndexesEverySeries) {
  const auto [plus, workers] = GetParam();
  const Dataset data = MakeData();
  auto index = ParisIndex::Build(Mem(data), SmallBuild(workers, plus));
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  const auto& stats = (*index)->build_stats();
  EXPECT_EQ(stats.tree.total_entries, data.count());
  EXPECT_EQ(stats.tree.root_children,
            (*index)->tree().PresentRoots().size());
  EXPECT_TRUE((*index)->tree().CheckInvariants().ok());

  const auto ids = AllIndexedIds((*index)->tree(), nullptr);
  ASSERT_EQ(ids.size(), data.count());
  for (SeriesId i = 0; i < data.count(); ++i) EXPECT_EQ(ids[i], i);
}

TEST_P(ParisBuildModes, OnDiskBuildMaterializesLeaves) {
  const auto [plus, workers] = GetParam();
  const Dataset data = MakeData(2500);
  // Unique per parameter instance: parallel ctest processes must not
  // rewrite a dataset file another instance is reading.
  const std::string base = TempPath(
      std::string("paris_ondisk_") + (plus ? "plus" : "base") +
      std::to_string(workers));
  const std::string path = base + ".psax";
  ASSERT_TRUE(WriteDataset(data, path).ok());

  ParisBuildOptions options = SmallBuild(workers, plus);
  options.leaf_storage_path = base + ".leaves";
  auto index = ParisIndex::Build(Streamed(path), options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  EXPECT_GT((*index)->build_stats().leaf_chunks_flushed, 0u);
  EXPECT_TRUE(
      (*index)->tree().CheckInvariants((*index)->leaf_storage()).ok());
  const auto ids =
      AllIndexedIds((*index)->tree(), (*index)->leaf_storage());
  ASSERT_EQ(ids.size(), data.count());
  for (SeriesId i = 0; i < data.count(); ++i) EXPECT_EQ(ids[i], i);

  // On-disk leaves must be mostly flushed: in-memory remainder small.
  size_t in_memory = 0;
  (*index)->tree().VisitLeaves(nullptr, [&](Node* leaf) {
    in_memory += leaf->entries().size();
  });
  EXPECT_EQ(in_memory, 0u) << "final flush must empty all leaves";
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ParisBuildModes,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "plus" : "base") + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ParisTest, BuildsMatchSerialBuilderContents) {
  // ParIS, ParIS+ and the serial ADS+ builder must index the same
  // multiset of series into structurally valid trees.
  const Dataset data = MakeData(3000);
  AdsBuildOptions ads_options;
  ads_options.tree = SmallBuild(1, false).tree;
  auto ads = AdsIndex::Build(Mem(data), ads_options);
  ASSERT_TRUE(ads.ok());

  for (const bool plus : {false, true}) {
    auto paris = ParisIndex::Build(Mem(data), SmallBuild(3, plus));
    ASSERT_TRUE(paris.ok());
    // Same root key population.
    EXPECT_EQ((*paris)->tree().PresentRoots(),
              (*ads)->tree().PresentRoots())
        << (plus ? "paris+" : "paris");
    // Same flat SAX contents.
    for (SeriesId i = 0; i < data.count(); i += 97) {
      for (int s = 0; s < 8; ++s) {
        EXPECT_EQ((*paris)->cache().At(i).symbols[s],
                  (*ads)->cache().At(i).symbols[s]);
      }
    }
  }
}

TEST(ParisTest, PlusModeOverlapsConstruction) {
  // ParIS+ must not accumulate stage-3 wall time (its tree growth rides
  // inside the bulk-loading workers); ParIS must.
  const Dataset data = MakeData(6000);
  auto paris = ParisIndex::Build(Mem(data), SmallBuild(2, false));
  auto plus = ParisIndex::Build(Mem(data), SmallBuild(2, true));
  ASSERT_TRUE(paris.ok());
  ASSERT_TRUE(plus.ok());
  EXPECT_GT((*paris)->build_stats().stage3_wall_seconds, 0.0);
  EXPECT_GT((*paris)->build_stats().tree_cpu_seconds, 0.0);
  EXPECT_GT((*plus)->build_stats().tree_cpu_seconds, 0.0);
}

TEST(ParisTest, QueryMatchesBruteForceUnderManyWorkerCounts) {
  const Dataset data = MakeData(3000);
  auto index = ParisIndex::Build(Mem(data), SmallBuild(2, true));
  ASSERT_TRUE(index.ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 5, 64, 3);

  for (const int workers : {1, 2, 5}) {
    ThreadPool pool(workers);
    ParisQueryOptions qopts;
    qopts.num_workers = workers;
    for (size_t q = 0; q < queries.count(); ++q) {
      const Neighbor oracle =
          BruteForceNn(InMemorySource(&data), queries.series(q),
                       KernelPolicy::kScalar);
      QueryStats stats;
      auto got =
          (*index)->SearchExact(queries.series(q), qopts, &pool, &stats);
      ASSERT_TRUE(got.ok());
      EXPECT_NEAR(got->distance_sq, oracle.distance_sq,
                  1e-3f * std::max(1.0f, oracle.distance_sq))
          << "workers=" << workers << " q=" << q;
      EXPECT_EQ(stats.lb_checks, data.count());
      EXPECT_GT(stats.candidates, 0u);
      EXPECT_LE(stats.candidates, data.count());
    }
  }
}

TEST(ParisTest, QueryStatsShowPruning) {
  const Dataset data = MakeData(5000);
  auto index = ParisIndex::Build(Mem(data), SmallBuild(2, true));
  ASSERT_TRUE(index.ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 3, 64, 3);
  ThreadPool pool(2);
  for (size_t q = 0; q < queries.count(); ++q) {
    QueryStats stats;
    ASSERT_TRUE((*index)
                    ->SearchExact(queries.series(q), {}, &pool, &stats)
                    .ok());
    // Random-walk data prunes the vast majority of candidates.
    EXPECT_LT(stats.candidates, data.count() / 2)
        << "pruning should remove most series";
  }
}

TEST(ParisTest, ApproximateSearchReturnsRealSeries) {
  const Dataset data = MakeData(2000);
  auto index = ParisIndex::Build(Mem(data), SmallBuild(2, true));
  ASSERT_TRUE(index.ok());
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 5, 64, 3);
  ThreadPool pool(2);
  for (size_t q = 0; q < queries.count(); ++q) {
    auto approx = (*index)->SearchApproximate(queries.series(q));
    ASSERT_TRUE(approx.ok());
    ASSERT_LT(approx->id, data.count());
    auto exact = (*index)->SearchExact(queries.series(q), {}, &pool);
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(approx->distance_sq, exact->distance_sq - 1e-3f);
  }
}

TEST(ParisTest, RejectsWrongQueryLength) {
  const Dataset data = MakeData(100);
  auto index = ParisIndex::Build(Mem(data), SmallBuild(1, false));
  ASSERT_TRUE(index.ok());
  std::vector<float> short_query(32, 0.0f);
  ThreadPool pool(1);
  EXPECT_EQ((*index)
                ->SearchExact(SeriesView(short_query.data(), 32), {}, &pool)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ParisTest, StreamedBuildRequiresLeafStorage) {
  const Dataset data = MakeData(200);
  const std::string path = TempPath("paris_noleaves.psax");
  ASSERT_TRUE(WriteDataset(data, path).ok());
  ParisBuildOptions options = SmallBuild(1, false);
  options.leaf_storage_path.clear();
  EXPECT_EQ(ParisIndex::Build(Streamed(path), options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ParisTest, MissingDatasetFileFails) {
  EXPECT_FALSE(
      FileSource::Open(TempPath("missing.psax"), DiskProfile::Instant())
          .ok());
}

// --- RecBufSet --------------------------------------------------------------

TEST(RecBufTest, AppendDrainRoundTrip) {
  RecBufSet bufs(4);
  LeafEntry e;
  e.id = 7;
  bufs.Append(3, e);
  e.id = 9;
  bufs.Append(3, e);
  e.id = 11;
  bufs.Append(12, e);

  auto touched = bufs.TakeTouched();
  std::sort(touched.begin(), touched.end());
  EXPECT_EQ(touched, (std::vector<uint32_t>{3, 12}));
  EXPECT_FALSE(bufs.HasTouched());

  std::vector<LeafEntry> out;
  bufs.Drain(3, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 7u);
  EXPECT_EQ(out[1].id, 9u);
  bufs.Drain(3, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RecBufTest, RelistingAfterDrain) {
  RecBufSet bufs(4);
  LeafEntry e;
  e.id = 1;
  bufs.Append(5, e);
  (void)bufs.TakeTouched();
  std::vector<LeafEntry> out;
  bufs.Drain(5, &out);
  // A new append after drain must re-register the key.
  e.id = 2;
  bufs.Append(5, e);
  const auto touched = bufs.TakeTouched();
  EXPECT_EQ(touched, std::vector<uint32_t>{5});
}

TEST(RecBufTest, ConcurrentAppendsKeepAllEntries) {
  RecBufSet bufs(8);
  constexpr int kThreads = 4, kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        LeafEntry e;
        e.id = static_cast<uint64_t>(t) * kPerThread + i;
        bufs.Append(static_cast<uint32_t>(i % 256), e);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto touched = bufs.TakeTouched();
  EXPECT_EQ(touched.size(), 256u);
  size_t total = 0;
  std::vector<LeafEntry> out;
  for (const uint32_t key : touched) {
    bufs.Drain(key, &out);
    total += out.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace parisax
