// Sharded-engine scaling: build and query throughput at 1/2/4 shards
// over the same collection, with exactness gated against the
// single-engine reference.
//
// The workload models the `parisax_server --shards=N` configuration:
// one in-memory collection hash-partitioned over N MESSI shards, each
// shard building on its own thread pool (so total build threads are
// N * per-shard threads) and every query fanned across the shards
// through one shared best-so-far bound. --check gates on (a) every
// sharded answer (ED and kNN) being byte-identical to the single
// engine's and (b) the 4-shard build beating the single-engine build
// by at least kMinBuildSpeedup — (b) only on hosts with spare cores
// beyond the single build's pool, because shard parallelism cannot
// show up in wall-clock time on an oversubscribed machine.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "shard/sharded_engine.h"
#include "util/timer.h"

namespace {

using namespace parisax;
using namespace parisax::bench;

/// The 4-shard build must beat the single-engine build by at least this
/// factor for the --check gate (shard-parallel construction, with
/// CI-noise headroom: the ideal is ~4x on idle cores).
constexpr double kMinBuildSpeedup = 1.5;

struct Row {
  size_t shards = 0;
  double build_seconds = 0.0;
  double build_speedup = 1.0;  // vs the single-engine build
  double query_seconds = 0.0;
  double qps = 0.0;
  bool results_equal = false;  // byte-identical to the single engine
};

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::cerr << what << ": " << status.ToString() << "\n";
  std::exit(1);
}

/// Answers every query (kNN on the odd ones) and appends the responses.
std::vector<SearchResponse> RunQueries(SearchBackend& backend,
                                       const Dataset& queries, size_t knn_k,
                                       double* seconds) {
  std::vector<SearchResponse> responses;
  responses.reserve(queries.count());
  WallTimer timer;
  for (SeriesId q = 0; q < queries.count(); ++q) {
    SearchRequest request;
    if (q % 2 == 1) request.k = knn_k;
    auto response = backend.Search(queries.series(q), request);
    if (!response.ok()) Die("query", response.status());
    responses.push_back(std::move(*response));
  }
  *seconds = timer.ElapsedSeconds();
  return responses;
}

bool SameNeighbors(const std::vector<SearchResponse>& want,
                   const std::vector<SearchResponse>& got) {
  if (want.size() != got.size()) return false;
  for (size_t q = 0; q < want.size(); ++q) {
    if (want[q].neighbors != got[q].neighbors) return false;
  }
  return true;
}

void WriteJson(size_t series, size_t length, size_t queries, int threads,
               unsigned hw, bool speedup_gated, const std::vector<Row>& rows,
               std::ostream& out) {
  out << "{\n"
      << "  \"bench\": \"shard_scaling\",\n"
      << "  " << JsonMetaFields() << ",\n"
      << "  \"series\": " << series << ",\n"
      << "  \"length\": " << length << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"threads_per_shard\": " << threads << ",\n"
      << "  \"hw_threads\": " << hw << ",\n"
      << "  \"speedup_gated\": " << (speedup_gated ? "true" : "false")
      << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"shards\": " << r.shards
        << ", \"build_seconds\": " << r.build_seconds
        << ", \"build_speedup\": " << r.build_speedup
        << ", \"query_seconds\": " << r.query_seconds
        << ", \"qps\": " << r.qps
        << ", \"results_equal\": " << (r.results_equal ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const size_t series = SeriesOrDefault(args, 100000, 20000);
  const size_t queries_count = QueriesOrDefault(args, 20, 10);
  const size_t length = args.length != 0 ? args.length : 128;
  // Per-shard engine threads: an N-shard build runs N of these pools at
  // once, which is exactly the configuration under test.
  const std::vector<int> thread_list = ThreadsOrDefault(args, {2});
  const int threads = thread_list.front();
  constexpr size_t kKnn = 8;
  const std::vector<size_t> shard_counts = {1, 2, 4};

  PrintFigureHeader("shard_scaling",
                    "sharded engine: build + query throughput at 1/2/4 "
                    "shards, exact-vs-single equivalence");
  std::cout << series << " x " << length << " random-walk series, "
            << queries_count << " queries (ED + " << kKnn << "-NN), "
            << threads << " threads per shard, messi shards\n\n";

  const Dataset full =
      MakeDataset(DatasetKind::kRandomWalk, series, length, args.seed);
  const Dataset queries = MakeQueryWorkload(
      DatasetKind::kRandomWalk, queries_count, length, args.seed, series);

  EngineOptions eopts;
  eopts.algorithm = Algorithm::kMessi;
  eopts.num_threads = threads;
  eopts.tree.segments = 16;

  std::vector<Row> rows;
  std::vector<SearchResponse> reference;
  for (const size_t shards : shard_counts) {
    Row row;
    row.shards = shards;

    Dataset copy(full.count(), full.length());
    std::copy(full.raw(), full.raw() + full.TotalValues(),
              copy.mutable_raw());

    std::unique_ptr<Engine> single;
    std::unique_ptr<ShardedEngine> sharded;
    SearchBackend* backend = nullptr;
    WallTimer build_timer;
    if (shards == 1) {
      auto built = Engine::Build(SourceSpec::InMemory(std::move(copy)),
                                 eopts);
      if (!built.ok()) Die("build (single)", built.status());
      single = std::move(*built);
      backend = single.get();
    } else {
      auto built = ShardedEngine::Build(std::move(copy), shards, eopts);
      if (!built.ok()) Die("build (sharded)", built.status());
      sharded = std::move(*built);
      backend = sharded.get();
    }
    row.build_seconds = build_timer.ElapsedSeconds();
    row.build_speedup = rows.empty()
                            ? 1.0
                            : rows.front().build_seconds / row.build_seconds;

    std::vector<SearchResponse> responses =
        RunQueries(*backend, queries, kKnn, &row.query_seconds);
    row.qps = row.query_seconds > 0.0
                  ? static_cast<double>(queries.count()) / row.query_seconds
                  : 0.0;
    if (shards == 1) {
      reference = std::move(responses);
      row.results_equal = true;
    } else {
      row.results_equal = SameNeighbors(reference, responses);
    }
    rows.push_back(std::move(row));
  }

  Table table({"shards", "build", "speedup", "queries", "qps",
               "exact vs single"});
  for (const Row& r : rows) {
    table.AddRow({std::to_string(r.shards), FmtSeconds(r.build_seconds),
                  FmtRatio(r.build_speedup), FmtSeconds(r.query_seconds),
                  FmtCount(static_cast<uint64_t>(r.qps)),
                  r.results_equal ? "yes" : "NO"});
  }
  table.Print();

  bool all_equal = true;
  for (const Row& r : rows) all_equal = all_equal && r.results_equal;
  const double speedup4 = rows.back().build_speedup;
  // The speedup leg only makes sense with spare cores: the 4-shard
  // build wants ~2x the single build's threads actually running.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_speedup = hw >= 2u * static_cast<unsigned>(threads);
  const bool claim_holds =
      all_equal && (!gate_speedup || speedup4 >= kMinBuildSpeedup);
  PrintPaperShape(
      "hash-partitioned shards build in parallel and the query router's "
      "shared-bound merge stays exact",
      "4-shard build speedup " + FmtRatio(speedup4) +
          (gate_speedup ? "" : " (not gated on this host)") +
          ", sharded results " +
          (all_equal ? "identical to the single engine" : "DIFFER") + " (" +
          (claim_holds ? "holds" : "DOES NOT HOLD") + ")");
  if (!gate_speedup) PrintHardwareNote();

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::cerr << "cannot write " << args.json_path << "\n";
      return 1;
    }
    WriteJson(series, length, queries_count, threads, hw, gate_speedup,
              rows, out);
    std::cout << "wrote " << args.json_path << "\n";
  }
  if (args.check && !claim_holds) {
    std::cerr << "check failed: shard-scaling claim does not hold\n";
    return 1;
  }
  return 0;
}
