// Figure 5: MESSI in-memory index creation time as the number of cores
// grows, split into its two stages ("Calculate iSAX Representations" and
// "Tree Index Construction").
//
// Paper claim: "the index creation time of MESSI reduces linearly as the
// number of cores increases".
#include "bench_common.h"

#include "messi/messi_index.h"
#include "util/threading.h"

namespace parisax {
namespace bench {
namespace {

constexpr size_t kDefaultSeries = 100000;
constexpr size_t kQuickSeries = 8000;
constexpr size_t kLength = 256;

int Run(const BenchArgs& args) {
  const size_t series = SeriesOrDefault(args, kDefaultSeries, kQuickSeries);
  const size_t length = args.length != 0 ? args.length : kLength;
  const std::vector<int> threads = ThreadsOrDefault(args, {1, 2, 4, 8});

  PrintFigureHeader("Fig. 5",
                    "MESSI in-memory index creation vs cores (stage "
                    "breakdown)");
  PrintHardwareNote();
  std::cout << "workload: " << series << " random-walk series x " << length
            << " points, in memory\n";

  const Dataset data =
      MakeDataset(DatasetKind::kRandomWalk, series, length, args.seed);

  Table table({"threads", "total", "isax_summaries", "tree_construction",
               "leaves", "nodes"});
  double first_total = 0.0, last_total = 0.0;
  for (const int t : threads) {
    ThreadPool pool(t);
    MessiBuildOptions build;
    build.num_workers = t;
    build.chunk_series = 4096;
    // scale-consistent mapping of the paper's w=16 (see EXPERIMENTS.md)
    build.tree.segments = 8;
    build.tree.leaf_capacity = 128;
    build.tree.series_length = length;
    auto index = MessiIndex::Build(MemSource(data), build, &pool);
    if (!index.ok()) {
      std::cerr << index.status().ToString() << "\n";
      return 1;
    }
    const MessiBuildStats& s = (*index)->build_stats();
    table.AddRow({std::to_string(t), FmtSeconds(s.wall_seconds),
                  FmtSeconds(s.summarize_wall_seconds),
                  FmtSeconds(s.tree_wall_seconds),
                  FmtCount(s.tree.leaves),
                  FmtCount(s.tree.inner_nodes + s.tree.root_children)});
    if (t == threads.front()) first_total = s.wall_seconds;
    last_total = s.wall_seconds;
  }
  table.Print();

  PrintPaperShape(
      "MESSI creation time shrinks ~linearly with cores (Fig. 5 shows "
      "4->24 cores cutting the time ~5x)",
      "time at " + std::to_string(threads.front()) + " thread(s) " +
          FmtSeconds(first_total) + " -> at " +
          std::to_string(threads.back()) + " thread(s) " +
          FmtSeconds(last_total) +
          " (flat on this 1-core host, as expected)");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace parisax

int main(int argc, char** argv) {
  return parisax::bench::Run(parisax::bench::ParseArgs(argc, argv));
}
