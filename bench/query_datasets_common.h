// Shared implementation of Figs. 10 and 11: on-disk exact query
// answering across the three datasets for UCR Suite / ADS+ / ParIS+,
// parameterized by the storage profile.
#ifndef PARISAX_BENCH_QUERY_DATASETS_COMMON_H_
#define PARISAX_BENCH_QUERY_DATASETS_COMMON_H_

#include <string>

#include "bench_common.h"
#include "io/sim_disk.h"

namespace parisax {
namespace bench {

/// Runs the figure; returns the process exit code.
int RunQueryDatasets(const BenchArgs& args, const DiskProfile& profile,
                     const std::string& figure_id,
                     const std::string& paper_claim);

}  // namespace bench
}  // namespace parisax

#endif  // PARISAX_BENCH_QUERY_DATASETS_COMMON_H_
