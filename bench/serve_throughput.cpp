// Serve-layer throughput: queries/sec vs. concurrent clients x
// scheduling policy, over one shared MESSI engine.
//
// The baseline ("sequential") answers the workload with a plain loop of
// Engine::Search calls -- the paper's one-query-at-a-time model, each
// query fanned out over every worker. The service rows push the same
// workload through QueryService::Submit from N concurrent client
// threads under kThroughput / kLatency / kAuto scheduling.
//
// --json writes the measurements as machine-readable JSON (the CI
// perf-smoke artifact that seeds the BENCH_*.json trajectory); --check
// exits non-zero when batched kThroughput fails to beat the sequential
// loop, so CI gates on the claim instead of just recording it.
#include <algorithm>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/query_service.h"
#include "util/timer.h"

namespace {

using namespace parisax;
using namespace parisax::bench;

struct Row {
  std::string policy;
  int clients = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
};

/// One query at a time through the engine's intra-query parallel path.
Row RunSequential(Engine* engine, const Dataset& queries) {
  WallTimer timer;
  for (size_t q = 0; q < queries.count(); ++q) {
    auto response = engine->Search(queries.series(q));
    if (!response.ok()) {
      std::cerr << "query failed: " << response.status().ToString() << "\n";
      std::exit(1);
    }
  }
  const double wall = timer.ElapsedSeconds();
  return Row{"sequential", 1, wall,
             static_cast<double>(queries.count()) / wall};
}

/// `num_clients` threads each submit a slice of the workload and wait.
Row RunService(Engine* engine, const Dataset& queries, int num_clients,
               SchedulingPolicy policy, int num_threads) {
  QueryServiceOptions sopts;
  sopts.num_threads = num_threads;
  sopts.policy = policy;
  auto service = QueryService::Create(engine, sopts);
  if (!service.ok()) {
    std::cerr << "service failed: " << service.status().ToString() << "\n";
    std::exit(1);
  }

  WallTimer timer;
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<Result<SearchResponse>>> futures;
      for (size_t q = c; q < queries.count();
           q += static_cast<size_t>(num_clients)) {
        futures.push_back((*service)->Submit(queries.series(q)));
      }
      for (auto& future : futures) {
        auto response = future.get();
        if (!response.ok()) {
          std::cerr << "query failed: " << response.status().ToString()
                    << "\n";
          std::exit(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall = timer.ElapsedSeconds();
  return Row{SchedulingPolicyName(policy), num_clients, wall,
             static_cast<double>(queries.count()) / wall};
}

void WriteJson(size_t series, size_t length, size_t queries, int threads,
               const std::vector<Row>& rows, std::ostream& out) {
  out << "{\n"
      << "  \"bench\": \"serve_throughput\",\n"
      << "  " << JsonMetaFields() << ",\n"
      << "  \"algorithm\": \"messi\",\n"
      << "  \"series\": " << series << ",\n"
      << "  \"length\": " << length << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"policy\": \"" << r.policy << "\", \"clients\": "
        << r.clients << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"qps\": " << r.qps << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const size_t series = SeriesOrDefault(args, 20000, 5000);
  const size_t queries_count = QueriesOrDefault(args, 128, 64);
  const size_t length = args.length != 0 ? args.length : 128;
  // This bench sweeps *clients*, not worker counts: one service width.
  const std::vector<int> thread_list = ThreadsOrDefault(args, {8});
  const int threads = thread_list.front();
  if (thread_list.size() > 1) {
    std::cerr << "note: serve_throughput sweeps --clients, not "
                 "--threads; using threads=" << threads << "\n";
  }
  std::vector<int> clients = args.clients;
  if (clients.empty()) clients = args.quick ? std::vector<int>{1, 4}
                                            : std::vector<int>{1, 2, 4, 8};

  PrintFigureHeader("serve_throughput",
                    "queries/sec vs concurrent clients x scheduling "
                    "policy over one shared MESSI engine");
  std::cout << series << " x " << length << " random-walk series, "
            << queries_count << " queries, " << threads << " threads\n\n";

  const Dataset dataset =
      MakeDataset(DatasetKind::kRandomWalk, series, length, args.seed);
  const Dataset queries = MakeQueryWorkload(DatasetKind::kRandomWalk,
                                            queries_count, length,
                                            args.seed, series);

  EngineOptions eopts;
  eopts.algorithm = Algorithm::kMessi;
  eopts.num_threads = threads;
  eopts.tree.segments = 8;
  auto engine = Engine::Build(SourceSpec::Borrowed(&dataset), eopts);
  if (!engine.ok()) {
    std::cerr << "build failed: " << engine.status().ToString() << "\n";
    return 1;
  }

  std::vector<Row> rows;
  rows.push_back(RunSequential(engine->get(), queries));
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kThroughput, SchedulingPolicy::kLatency,
        SchedulingPolicy::kAuto}) {
    for (const int num_clients : clients) {
      rows.push_back(RunService(engine->get(), queries, num_clients,
                                policy, threads));
    }
  }

  Table table({"policy", "clients", "wall", "queries/sec"});
  for (const Row& r : rows) {
    table.AddRow({r.policy, std::to_string(r.clients),
                  FmtSeconds(r.wall_seconds), FmtCount(static_cast<uint64_t>(
                      r.qps))});
  }
  table.Print();

  // The acceptance comparison: batched kThroughput vs the sequential
  // per-query loop.
  double best_throughput = 0.0;
  for (const Row& r : rows) {
    if (r.policy == "throughput") {
      best_throughput = std::max(best_throughput, r.qps);
    }
  }
  const double speedup = best_throughput / rows.front().qps;
  const bool claim_holds = speedup > 1.0;
  PrintPaperShape(
      "inter-query concurrency (batched kThroughput scheduling) beats "
      "the one-query-at-a-time loop the paper's engines assume",
      "batched vs sequential: " + FmtRatio(speedup) + " queries/sec (" +
          (claim_holds ? "holds" : "DOES NOT HOLD") + ")");

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::cerr << "cannot write " << args.json_path << "\n";
      return 1;
    }
    WriteJson(series, length, queries_count, threads, rows, out);
    std::cout << "wrote " << args.json_path << "\n";
  }
  if (args.check && !claim_holds) {
    std::cerr << "check failed: kThroughput did not beat the sequential "
                 "loop\n";
    return 1;
  }
  return 0;
}
