// End-to-end serving-front-end latency and overload behaviour: real TCP
// clients speaking the net/protocol.h frame protocol against a
// parisax::Server, in two regimes.
//
//   no_overload  N clients, one request in flight each, ample admission
//                cap: measures end-to-end p50/p99 latency and qps. The
//                --check gate requires zero rejections and a p99 under
//                an absolute bound (loopback round trips over an
//                in-memory MESSI index have no business taking longer).
//   overload     small admission cap, pipelining clients: the server
//                must shed load with typed `overloaded` rejections
//                instead of queueing without bound. --check requires a
//                non-zero rejected fraction (the cap actually bites)
//                and that every accepted query still answered.
//
// --json writes the measurements for the CI perf-smoke artifact and the
// bench-regression gate (tools/compare_bench.py --kind frontend).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/protocol.h"
#include "net/server.h"
#include "util/timer.h"

namespace {

using namespace parisax;
using namespace parisax::bench;

struct Row {
  std::string regime;
  int clients = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double rejected_fraction = 0.0;
};

/// A blocking protocol client; exits the process on transport failure
/// (a bench has no business surviving a broken socket).
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      std::cerr << "connect failed: " << std::strerror(errno) << "\n";
      std::exit(1);
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::vector<uint8_t>& frame) {
    size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t w =
          ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
      if (w <= 0) {
        std::cerr << "send failed\n";
        std::exit(1);
      }
      sent += static_cast<size_t>(w);
    }
  }

  /// Reads one response frame; returns its type.
  FrameType Read() {
    uint8_t hdr[kFrameHeaderSize];
    ReadFull(hdr, kFrameHeaderSize);
    auto header = DecodeFrameHeader(hdr);
    if (!header.ok()) {
      std::cerr << "malformed response: " << header.status().ToString()
                << "\n";
      std::exit(1);
    }
    body_.resize(header->body_len);
    if (!body_.empty()) ReadFull(body_.data(), body_.size());
    return header->type;
  }

  /// True when the last Read() was an `overloaded` error; any other
  /// error kills the bench (nothing else is expected here).
  bool LastWasOverloaded() const {
    auto error = DecodeErrorFrame(
        std::span<const uint8_t>(body_.data(), body_.size()));
    if (!error.ok() || error->code != WireError::kOverloaded) {
      std::cerr << "unexpected error response\n";
      std::exit(1);
    }
    return true;
  }

 private:
  void ReadFull(uint8_t* buf, size_t n) {
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd_, buf + got, n - got, 0);
      if (r <= 0) {
        std::cerr << "recv failed (connection closed?)\n";
        std::exit(1);
      }
      got += static_cast<size_t>(r);
    }
  }

  int fd_ = -1;
  std::vector<uint8_t> body_;
};

double PercentileMs(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[idx];
}

/// One request in flight per client: end-to-end latency distribution.
Row RunNoOverload(uint16_t port, const Dataset& queries, int num_clients,
                  int rounds) {
  std::vector<std::vector<double>> latencies(num_clients);
  std::atomic<uint64_t> rejected{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      Client client(port);
      for (int r = 0; r < rounds; ++r) {
        QueryFrame wire;
        wire.request_id = static_cast<uint64_t>(c) * rounds + r;
        const SeriesView query =
            queries.series((c + r) % queries.count());
        wire.values.assign(query.begin(), query.end());
        const auto frame = EncodeQueryFrame(FrameType::kQuery, wire);
        const auto start = std::chrono::steady_clock::now();
        client.Send(frame);
        const FrameType type = client.Read();
        const auto stop = std::chrono::steady_clock::now();
        if (type == FrameType::kResult) {
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(stop - start)
                  .count());
        } else {
          client.LastWasOverloaded();
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = timer.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  const uint64_t total =
      static_cast<uint64_t>(num_clients) * static_cast<uint64_t>(rounds);
  Row row;
  row.regime = "no_overload";
  row.clients = num_clients;
  row.wall_seconds = wall;
  row.qps = static_cast<double>(all.size()) / wall;
  row.p50_ms = PercentileMs(all, 0.50);
  row.p99_ms = PercentileMs(all, 0.99);
  row.rejected_fraction =
      static_cast<double>(rejected.load()) / static_cast<double>(total);
  return row;
}

/// Every client pipelines its whole workload at once against a small
/// admission cap: the shed fraction is the point.
Row RunOverload(uint16_t port, const Dataset& queries, int num_clients,
                int burst) {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      Client client(port);
      for (int r = 0; r < burst; ++r) {
        QueryFrame wire;
        wire.request_id = static_cast<uint64_t>(c) * burst + r;
        const SeriesView query =
            queries.series((c + r) % queries.count());
        wire.values.assign(query.begin(), query.end());
        client.Send(EncodeQueryFrame(FrameType::kQuery, wire));
      }
      for (int r = 0; r < burst; ++r) {
        if (client.Read() == FrameType::kResult) {
          accepted.fetch_add(1);
        } else {
          client.LastWasOverloaded();
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = timer.ElapsedSeconds();

  const uint64_t total = accepted.load() + rejected.load();
  Row row;
  row.regime = "overload";
  row.clients = num_clients;
  row.wall_seconds = wall;
  row.qps = static_cast<double>(accepted.load()) / wall;
  row.rejected_fraction =
      static_cast<double>(rejected.load()) / static_cast<double>(total);
  return row;
}

void WriteJson(size_t series, size_t length, size_t queries,
               const std::vector<Row>& rows, std::ostream& out) {
  out << "{\n"
      << "  \"bench\": \"serve_frontend\",\n"
      << "  " << JsonMetaFields() << ",\n"
      << "  \"algorithm\": \"messi\",\n"
      << "  \"series\": " << series << ",\n"
      << "  \"length\": " << length << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"regime\": \"" << r.regime << "\", \"clients\": "
        << r.clients << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"qps\": " << r.qps << ", \"p50_ms\": " << r.p50_ms
        << ", \"p99_ms\": " << r.p99_ms << ", \"rejected_fraction\": "
        << r.rejected_fraction << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const size_t series = SeriesOrDefault(args, 20000, 5000);
  const size_t queries_count = QueriesOrDefault(args, 64, 32);
  const size_t length = args.length != 0 ? args.length : 128;
  const int rounds = args.quick ? 16 : 48;
  const int no_overload_clients = 4;
  const int overload_clients = 8;
  const int overload_burst = args.quick ? 16 : 32;

  PrintFigureHeader("serve_frontend",
                    "end-to-end TCP front-end latency (no-overload) and "
                    "load shedding (overload) over one MESSI engine");
  std::cout << series << " x " << length << " random-walk series, "
            << queries_count << " distinct queries\n\n";

  const Dataset dataset =
      MakeDataset(DatasetKind::kRandomWalk, series, length, args.seed);
  const Dataset queries = MakeQueryWorkload(DatasetKind::kRandomWalk,
                                            queries_count, length,
                                            args.seed, series);

  EngineOptions eopts;
  eopts.algorithm = Algorithm::kMessi;
  eopts.num_threads = 4;
  eopts.tree.segments = 8;
  auto engine = Engine::Build(SourceSpec::Borrowed(&dataset), eopts);
  if (!engine.ok()) {
    std::cerr << "build failed: " << engine.status().ToString() << "\n";
    return 1;
  }

  std::vector<Row> rows;
  {
    ServerOptions sopts;
    sopts.serve_threads = 4;
    sopts.max_inflight = 256;  // ample: nothing should be shed
    auto server = Server::Start(engine->get(), sopts);
    if (!server.ok()) {
      std::cerr << "server start failed: " << server.status().ToString()
                << "\n";
      return 1;
    }
    rows.push_back(RunNoOverload((*server)->port(), queries,
                                 no_overload_clients, rounds));
  }
  {
    ServerOptions sopts;
    sopts.serve_threads = 1;
    sopts.max_inflight = 2;  // tiny cap: shedding is the point
    auto server = Server::Start(engine->get(), sopts);
    if (!server.ok()) {
      std::cerr << "server start failed: " << server.status().ToString()
                << "\n";
      return 1;
    }
    rows.push_back(RunOverload((*server)->port(), queries,
                               overload_clients, overload_burst));
  }

  Table table({"regime", "clients", "qps", "p50", "p99", "rejected"});
  for (const Row& r : rows) {
    table.AddRow({r.regime, std::to_string(r.clients),
                  FmtCount(static_cast<uint64_t>(r.qps)),
                  FmtSeconds(r.p50_ms / 1e3), FmtSeconds(r.p99_ms / 1e3),
                  std::to_string(r.rejected_fraction)});
  }
  table.Print();

  const Row& calm = rows[0];
  const Row& storm = rows[1];
  // Generous absolute bound: a loopback round trip against an in-memory
  // index answering in the hundreds of microseconds. Catches gross
  // serving-path regressions (lost wakeups, accidental serialization)
  // without being hardware-sensitive.
  const double p99_bound_ms = 250.0;
  const bool calm_ok =
      calm.rejected_fraction == 0.0 && calm.p99_ms <= p99_bound_ms;
  const bool storm_ok = storm.rejected_fraction > 0.0;
  PrintPaperShape(
      "the front end keeps tail latency bounded off-peak and sheds load "
      "with typed rejections under overload instead of queueing without "
      "bound",
      "no-overload p99 " + FmtSeconds(calm.p99_ms / 1e3) + " (bound " +
          FmtSeconds(p99_bound_ms / 1e3) + "), overload shed " +
          std::to_string(storm.rejected_fraction) + " (" +
          ((calm_ok && storm_ok) ? "holds" : "DOES NOT HOLD") + ")");

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::cerr << "cannot write " << args.json_path << "\n";
      return 1;
    }
    WriteJson(series, length, queries_count, rows, out);
    std::cout << "wrote " << args.json_path << "\n";
  }
  if (args.check) {
    if (!calm_ok) {
      std::cerr << "check failed: no-overload regime (p99 " << calm.p99_ms
                << " ms, rejected_fraction " << calm.rejected_fraction
                << ")\n";
      return 1;
    }
    if (!storm_ok) {
      std::cerr << "check failed: overload regime shed nothing "
                   "(max_inflight cap did not bite)\n";
      return 1;
    }
  }
  return 0;
}
