// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every bench binary reproduces one figure of the paper's evaluation
// (see DESIGN.md §4): it builds the figure's workload, runs the same
// engines the paper ran, prints a table of measured numbers, and then a
// "paper shape" block stating the qualitative claim the figure makes and
// how the measurement compares. Sizes are scaled down from the paper's
// 100GB datasets (see DESIGN.md §1) and can be overridden:
//   --series N      collection size          --queries N   query count
//   --length N      points per series        --seed N      generator seed
//   --threads a,b,c worker-count sweep       --quick       tiny smoke run
//   --clients a,b,c concurrent-client sweep  --json PATH   JSON output
//   --check         exit non-zero when the bench's claim fails
#ifndef PARISAX_BENCH_BENCH_COMMON_H_
#define PARISAX_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "index/raw_source.h"
#include "io/dataset.h"
#include "io/generator.h"
#include "util/status.h"

namespace parisax {
namespace bench {

struct BenchArgs {
  size_t series = 0;   // 0 = figure default
  size_t queries = 0;  // 0 = figure default
  size_t length = 0;   // 0 = dataset default
  std::vector<int> threads;
  uint64_t seed = 42;
  bool quick = false;
  /// Concurrent-client sweep (serve benches); empty = bench default.
  std::vector<int> clients;
  /// Machine-readable JSON output path; empty = stdout tables only.
  std::string json_path;
  /// Exit non-zero when the bench's qualitative claim does not hold
  /// (lets CI gate on the measurement instead of just recording it).
  bool check = false;
};

/// Parses the common flags; exits with a usage message on error.
BenchArgs ParseArgs(int argc, char** argv);

/// `args.series` if set; `quick_value` under --quick; else `dflt`.
size_t SeriesOrDefault(const BenchArgs& args, size_t dflt,
                       size_t quick_value);
size_t QueriesOrDefault(const BenchArgs& args, size_t dflt,
                        size_t quick_value);
std::vector<int> ThreadsOrDefault(const BenchArgs& args,
                                  std::vector<int> dflt);

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& out = std::cout) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FmtSeconds(double seconds);
std::string FmtMillis(double seconds);
std::string FmtRatio(double ratio);
std::string FmtCount(uint64_t n);

/// The git SHA this binary was built from: $GITHUB_SHA when set (CI), else
/// the SHA baked in at configure time, else "unknown". Recorded in every
/// bench JSON so baseline comparisons are attributable.
std::string GitSha();

/// CMAKE_BUILD_TYPE baked in at configure time ("Release", "Debug", ...).
std::string BuildTypeName();

/// The `"git_sha": ..., "build_type": ...` fragment (no surrounding
/// braces, no trailing comma) every bench JSON writer embeds.
std::string JsonMetaFields();

/// Prints the figure banner.
void PrintFigureHeader(const std::string& figure_id,
                       const std::string& description);

/// Prints one "paper_shape" line: the paper's qualitative claim and the
/// measured counterpart, so EXPERIMENTS.md can quote both.
void PrintPaperShape(const std::string& claim, const std::string& measured);

/// Prints the standard caveat for thread sweeps on this host.
void PrintHardwareNote();

/// Generates (or reuses a cached copy of) an on-disk dataset file under
/// the bench data directory; returns its path.
Result<std::string> EnsureDatasetFile(DatasetKind kind, size_t count,
                                      size_t length, uint64_t seed);

/// In-memory dataset generation with a transient thread pool.
Dataset MakeDataset(DatasetKind kind, size_t count, size_t length,
                    uint64_t seed);

/// The query workload used by the figure benches: fresh same-distribution
/// draws for the random-walk collection (the paper's synthetic
/// methodology), noise-perturbed dataset members for the SALD/Seismic
/// stand-ins (modeling the paper's real-data query workloads, which have
/// close neighbors in the collection).
Dataset MakeQueryWorkload(DatasetKind kind, size_t count, size_t length,
                          uint64_t seed, size_t dataset_count);

/// The directory bench files (datasets, leaf storage) live in.
std::string BenchDataDir();

/// Wraps a caller-owned dataset for the source-based build APIs.
std::unique_ptr<InMemorySource> MemSource(const Dataset& data);

/// Opens the streaming file source the on-disk pipelines consume
/// (random: query-time fetches, stream: build-time sequential passes);
/// prints the error and exits on failure.
std::unique_ptr<FileSource> MustOpenFileSource(const std::string& path,
                                               DiskProfile random_profile,
                                               DiskProfile stream_profile);

/// Mean wall seconds per query over the workload for one engine.
struct QueryRunResult {
  double mean_seconds = 0.0;
  double total_seconds = 0.0;
  QueryStats stats;  // counters summed over all queries
};
Result<QueryRunResult> RunQueries(Engine* engine, const Dataset& queries,
                                  const SearchRequest& request = {});

}  // namespace bench
}  // namespace parisax

#endif  // PARISAX_BENCH_BENCH_COMMON_H_
