// Ablation D3: leaf capacity. Small leaves give finer pruning granularity
// (fewer raw-series distance computations) but a bigger tree (more nodes
// to traverse and split during the build); big leaves flip the trade.
#include "bench_common.h"

#include "messi/messi_index.h"
#include "util/threading.h"
#include "util/timer.h"

namespace parisax {
namespace bench {
namespace {

constexpr size_t kDefaultSeries = 100000;
constexpr size_t kQuickSeries = 8000;
constexpr size_t kLength = 256;

int Run(const BenchArgs& args) {
  const size_t series = SeriesOrDefault(args, kDefaultSeries, kQuickSeries);
  const size_t queries_n = QueriesOrDefault(args, 15, 4);
  const size_t length = args.length != 0 ? args.length : kLength;
  const int workers = args.threads.empty() ? 4 : args.threads.back();

  PrintFigureHeader("Ablation D3", "Leaf capacity sweep (MESSI)");
  std::cout << "workload: " << series << " random-walk series x " << length
            << ", " << queries_n << " queries, " << workers
            << " workers\n";

  const Dataset data =
      MakeDataset(DatasetKind::kRandomWalk, series, length, args.seed);
  const Dataset queries = GenerateQueries(DatasetKind::kRandomWalk,
                                          queries_n, length, args.seed);

  ThreadPool pool(workers);
  Table table({"leaf_capacity", "build", "leaves", "mean_query",
               "real_dists/query", "lb_checks/query"});
  for (const size_t capacity : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    MessiBuildOptions build;
    build.num_workers = workers;
    // scale-consistent mapping of the paper's w=16 (see EXPERIMENTS.md)
    build.tree.segments = 8;
    build.tree.leaf_capacity = capacity;
    build.tree.series_length = length;
    auto index = MessiIndex::Build(MemSource(data), build, &pool);
    if (!index.ok()) {
      std::cerr << index.status().ToString() << "\n";
      return 1;
    }

    MessiQueryOptions qopts;
    qopts.num_workers = workers;
    QueryStats stats;
    WallTimer timer;
    for (SeriesId q = 0; q < queries.count(); ++q) {
      auto nn = (*index)->SearchExact(queries.series(q), qopts, &pool,
                                      &stats);
      if (!nn.ok()) {
        std::cerr << nn.status().ToString() << "\n";
        return 1;
      }
    }
    const double mean = timer.ElapsedSeconds() / queries.count();
    table.AddRow({std::to_string(capacity),
                  FmtSeconds((*index)->build_stats().wall_seconds),
                  FmtCount((*index)->build_stats().tree.leaves),
                  FmtMillis(mean),
                  FmtCount(stats.real_dist_calcs / queries.count()),
                  FmtCount(stats.lb_checks / queries.count())});
  }
  table.Print();

  PrintPaperShape(
      "leaf capacity trades pruning granularity (small leaves: fewer "
      "real distances) against tree size (big leaves: cheaper build, "
      "fewer nodes); the papers settle near 2000 at 100M-series scale",
      "see build time vs real_dists/query trade in the table above");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace parisax

int main(int argc, char** argv) {
  return parisax::bench::Run(parisax::bench::ParseArgs(argc, argv));
}
