// Figure 4: ParIS/ParIS+ on-disk index creation time, stacked into
// Read / Write / (visible) CPU, as the number of cores grows, with the
// serial ADS+ build as the reference bar.
//
// Paper claim: "ParIS+ completely removes the (visible) CPU cost when we
// use more than 6 cores" -- its creation time collapses onto the raw-data
// read time, while ParIS keeps visible stage-3 CPU bursts and ADS+ pays
// everything serially.
#include "bench_common.h"

#include "index/ads_index.h"
#include "paris/paris_index.h"

namespace parisax {
namespace bench {
namespace {

constexpr size_t kDefaultSeries = 60000;
constexpr size_t kQuickSeries = 4000;
constexpr size_t kLength = 256;

int Run(const BenchArgs& args) {
  const size_t series = SeriesOrDefault(args, kDefaultSeries, kQuickSeries);
  const size_t length = args.length != 0 ? args.length : kLength;
  const std::vector<int> threads = ThreadsOrDefault(args, {1, 2, 4, 8});

  PrintFigureHeader("Fig. 4",
                    "ParIS/ParIS+ on-disk index creation (Read/Write/CPU "
                    "breakdown) vs cores; ADS+ serial reference");
  PrintHardwareNote();
  std::cout << "workload: " << series << " random-walk series x " << length
            << " points, simulated HDD ("
            << DiskProfile::Hdd().seq_read_mbps << " MB/s)\n";

  auto path = EnsureDatasetFile(DatasetKind::kRandomWalk, series, length,
                                args.seed);
  if (!path.ok()) {
    std::cerr << path.status().ToString() << "\n";
    return 1;
  }

  Table table({"algorithm", "threads", "total", "read", "visible_cpu",
               "write", "summarize_cpu", "tree_cpu"});

  SaxTreeOptions tree;
  // scale-consistent mapping of the paper's w=16 (see EXPERIMENTS.md)
  tree.segments = 8;
  tree.leaf_capacity = 128;
  tree.series_length = length;

  // ADS+ reference: one serial pass, everything visible.
  double ads_total = 0.0;
  {
    AdsBuildOptions build;
    build.tree = tree;
    build.leaf_storage_path = BenchDataDir() + "/fig04_ads.leaves";
    build.leaf_write_mbps = DiskProfile::Hdd().seq_read_mbps;
    auto index = AdsIndex::Build(
        MustOpenFileSource(*path, DiskProfile::Instant(),
                           DiskProfile::Hdd()),
        build);
    if (!index.ok()) {
      std::cerr << index.status().ToString() << "\n";
      return 1;
    }
    const AdsBuildStats& s = (*index)->build_stats();
    ads_total = s.wall_seconds;
    table.AddRow({"ads+", "1", FmtSeconds(s.wall_seconds),
                  FmtSeconds(s.read_seconds), FmtSeconds(s.cpu_seconds),
                  FmtSeconds(s.write_seconds), FmtSeconds(s.cpu_seconds),
                  "-"});
  }

  double paris_best = 1e30, plus_best = 1e30, plus_best_read = 0.0;
  for (const bool plus : {false, true}) {
    for (const int t : threads) {
      ParisBuildOptions build;
      build.num_workers = t;
      build.plus_mode = plus;
      build.batch_series = 4096;
      build.batches_per_round = 4;
      build.tree = tree;
      build.leaf_storage_path =
          BenchDataDir() + "/fig04_" + (plus ? "plus" : "paris") +
          std::to_string(t) + ".leaves";
      build.leaf_write_mbps = DiskProfile::Hdd().seq_read_mbps;
      auto index = ParisIndex::Build(
          MustOpenFileSource(*path, DiskProfile::Instant(),
                             DiskProfile::Hdd()),
          build);
      if (!index.ok()) {
        std::cerr << index.status().ToString() << "\n";
        return 1;
      }
      const ParisBuildStats& s = (*index)->build_stats();
      table.AddRow({plus ? "paris+" : "paris", std::to_string(t),
                    FmtSeconds(s.wall_seconds),
                    FmtSeconds(s.read_wall_seconds),
                    FmtSeconds(s.stage3_wall_seconds),
                    FmtSeconds(s.final_flush_wall_seconds),
                    FmtSeconds(s.summarize_cpu_seconds),
                    FmtSeconds(s.tree_cpu_seconds)});
      if (plus && s.wall_seconds < plus_best) {
        plus_best = s.wall_seconds;
        plus_best_read = s.read_wall_seconds;
      }
      if (!plus) paris_best = std::min(paris_best, s.wall_seconds);
    }
  }
  table.Print();

  PrintPaperShape(
      "ParIS+ creation time collapses onto the raw read time (CPU fully "
      "masked at >=6 cores); ParIS keeps visible stage-3 CPU; ADS+ is "
      "slowest (fully serial)",
      "ParIS+ best total " + FmtSeconds(plus_best) + " vs its read " +
          FmtSeconds(plus_best_read) + " (overhead " +
          FmtRatio(plus_best / std::max(1e-9, plus_best_read)) +
          "); ParIS best " + FmtSeconds(paris_best) + "; ADS+ " +
          FmtSeconds(ads_total));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace parisax

int main(int argc, char** argv) {
  return parisax::bench::Run(parisax::bench::ParseArgs(argc, argv));
}
