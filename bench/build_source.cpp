// Cold-start index construction: copy path vs mmap path.
//
// The copy path is what BuildInMemory-era cold starts paid: read the
// whole dataset file into an in-RAM Dataset (LoadDataset), then run the
// parallel construction over the copy. The mmap path is the owned-source
// API's new capability: Engine::Build over SourceSpec::Mmap summarizes
// the collection straight off the page cache -- same construction, zero
// raw-data copy. Both engines must answer queries byte-identically;
// --check gates on that equivalence (and on the mmap build succeeding at
// all, which the old Dataset*-based API could not express).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "io/format.h"
#include "util/timer.h"

namespace {

using namespace parisax;
using namespace parisax::bench;

struct Row {
  std::string algorithm;
  double copy_seconds = 0.0;  // LoadDataset + build over the RAM copy
  double mmap_seconds = 0.0;  // Engine::Build over SourceSpec::Mmap
  bool results_equal = false;

  double Speedup() const {
    return mmap_seconds > 0.0 ? copy_seconds / mmap_seconds : 0.0;
  }
};

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::cerr << what << ": " << status.ToString() << "\n";
  std::exit(1);
}

Row RunComparison(Algorithm algorithm, const std::string& data_path,
                  const Dataset& queries, int threads) {
  Row row;
  row.algorithm = AlgorithmName(algorithm);

  EngineOptions eopts;
  eopts.algorithm = algorithm;
  eopts.num_threads = threads;
  eopts.tree.segments = 8;

  // Copy path: file -> RAM Dataset -> build (the engine adopts the copy).
  WallTimer copy_timer;
  auto dataset = LoadDataset(data_path);
  if (!dataset.ok()) Die("load dataset", dataset.status());
  auto copied = Engine::Build(
      SourceSpec::InMemory(std::move(dataset.value())), eopts);
  if (!copied.ok()) Die("copy build", copied.status());
  row.copy_seconds = copy_timer.ElapsedSeconds();

  // Mmap path: the same construction over the mapping, no copy.
  WallTimer mmap_timer;
  auto mapped = Engine::Build(SourceSpec::Mmap(data_path), eopts);
  if (!mapped.ok()) Die("mmap build", mapped.status());
  row.mmap_seconds = mmap_timer.ElapsedSeconds();

  row.results_equal = true;
  for (SeriesId q = 0; q < queries.count(); ++q) {
    auto want = (*copied)->Search(queries.series(q), {});
    auto got = (*mapped)->Search(queries.series(q), {});
    if (!want.ok()) Die("query (copy)", want.status());
    if (!got.ok()) Die("query (mmap)", got.status());
    if (want->neighbors[0].id != got->neighbors[0].id ||
        want->neighbors[0].distance_sq != got->neighbors[0].distance_sq) {
      row.results_equal = false;
    }
  }
  return row;
}

void WriteJson(size_t series, size_t length, size_t queries, int threads,
               const std::vector<Row>& rows, std::ostream& out) {
  out << "{\n"
      << "  \"bench\": \"build_source\",\n"
      << "  " << JsonMetaFields() << ",\n"
      << "  \"series\": " << series << ",\n"
      << "  \"length\": " << length << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"algorithm\": \"" << r.algorithm
        << "\", \"copy_seconds\": " << r.copy_seconds
        << ", \"mmap_seconds\": " << r.mmap_seconds
        << ", \"mmap_speedup\": " << r.Speedup()
        << ", \"results_equal\": " << (r.results_equal ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const size_t series = SeriesOrDefault(args, 60000, 8000);
  const size_t queries_count = QueriesOrDefault(args, 10, 5);
  const size_t length = args.length != 0 ? args.length : 128;
  const std::vector<int> thread_list = ThreadsOrDefault(args, {4});
  const int threads = thread_list.front();

  PrintFigureHeader("build_source",
                    "cold-start index construction: LoadDataset copy vs "
                    "zero-copy mmap (Engine::Build + SourceSpec)");
  std::cout << series << " x " << length << " random-walk series, "
            << queries_count << " equivalence queries, " << threads
            << " threads\n\n";

  auto data_path = EnsureDatasetFile(DatasetKind::kRandomWalk, series,
                                     length, args.seed);
  if (!data_path.ok()) Die("dataset file", data_path.status());
  const Dataset queries = MakeQueryWorkload(
      DatasetKind::kRandomWalk, queries_count, length, args.seed, series);

  std::vector<Row> rows;
  for (const Algorithm algorithm :
       {Algorithm::kMessi, Algorithm::kParisPlus}) {
    rows.push_back(RunComparison(algorithm, *data_path, queries, threads));
  }

  Table table({"engine", "copy build", "mmap build", "mmap speedup",
               "queries equal"});
  for (const Row& r : rows) {
    table.AddRow({r.algorithm, FmtSeconds(r.copy_seconds),
                  FmtSeconds(r.mmap_seconds), FmtRatio(r.Speedup()),
                  r.results_equal ? "yes" : "NO"});
  }
  table.Print();

  bool all_equal = true;
  double worst_ratio = 1e300;
  for (const Row& r : rows) {
    all_equal = all_equal && r.results_equal;
    worst_ratio = std::min(worst_ratio, r.Speedup());
  }
  PrintPaperShape(
      "building over mmap skips the raw-data copy: cold starts get the "
      "same index and byte-identical answers without materializing the "
      "collection in RAM",
      std::string("results ") + (all_equal ? "identical" : "DIFFER") +
          ", worst mmap/copy time ratio " + FmtRatio(worst_ratio));

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::cerr << "cannot write " << args.json_path << "\n";
      return 1;
    }
    WriteJson(series, length, queries_count, threads, rows, out);
    std::cout << "wrote " << args.json_path << "\n";
  }
  if (args.check && !all_equal) {
    std::cerr << "check failed: mmap build answers differ from the "
                 "copy build\n";
    return 1;
  }
  return 0;
}
