#include "bench_common.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <thread>

#include "io/format.h"
#include "util/threading.h"
#include "util/timer.h"

namespace parisax {
namespace bench {

namespace {

[[noreturn]] void Usage(const char* argv0, const std::string& error) {
  std::cerr << "error: " << error << "\n"
            << "usage: " << argv0
            << " [--series N] [--queries N] [--length N]"
            << " [--threads a,b,c] [--seed N] [--quick]"
            << " [--clients a,b,c] [--json PATH] [--check]\n";
  std::exit(2);
}

std::vector<int> ParseThreadList(const std::string& arg) {
  std::vector<int> threads;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    threads.push_back(std::atoi(item.c_str()));
    if (threads.back() <= 0) threads.pop_back();
  }
  return threads;
}

}  // namespace

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(argv[0], "missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--series") {
      args.series = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--queries") {
      args.queries = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--length") {
      args.length = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--threads") {
      args.threads = ParseThreadList(next());
    } else if (flag == "--seed") {
      args.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--quick") {
      args.quick = true;
    } else if (flag == "--clients") {
      args.clients = ParseThreadList(next());
      if (args.clients.empty()) {
        Usage(argv[0], "--clients needs positive entries");
      }
    } else if (flag == "--json") {
      args.json_path = next();
    } else if (flag == "--check") {
      args.check = true;
    } else if (flag == "--help" || flag == "-h") {
      Usage(argv[0], "help requested");
    } else {
      Usage(argv[0], "unknown flag " + flag);
    }
  }
  return args;
}

size_t SeriesOrDefault(const BenchArgs& args, size_t dflt,
                       size_t quick_value) {
  if (args.series != 0) return args.series;
  return args.quick ? quick_value : dflt;
}

size_t QueriesOrDefault(const BenchArgs& args, size_t dflt,
                        size_t quick_value) {
  if (args.queries != 0) return args.queries;
  return args.quick ? quick_value : dflt;
}

std::vector<int> ThreadsOrDefault(const BenchArgs& args,
                                  std::vector<int> dflt) {
  return args.threads.empty() ? dflt : args.threads;
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& out) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    out << "  ";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    out << "\n";
  };
  print_row(columns_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  out << "  " << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FmtSeconds(double seconds) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3) << seconds << "s";
  return out.str();
}

std::string FmtMillis(double seconds) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << seconds * 1e3 << "ms";
  return out.str();
}

std::string FmtRatio(double ratio) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << ratio << "x";
  return out.str();
}

std::string FmtCount(uint64_t n) { return std::to_string(n); }

std::string GitSha() {
  const char* env = std::getenv("GITHUB_SHA");
  if (env != nullptr && env[0] != '\0') return env;
#ifdef PARISAX_GIT_SHA
  return PARISAX_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string BuildTypeName() {
#ifdef PARISAX_BUILD_TYPE
  return PARISAX_BUILD_TYPE;
#else
  return "unknown";
#endif
}

std::string JsonMetaFields() {
  return "\"git_sha\": \"" + GitSha() + "\", \"build_type\": \"" +
         BuildTypeName() + "\"";
}

void PrintFigureHeader(const std::string& figure_id,
                       const std::string& description) {
  std::cout << "\n=== " << figure_id << ": " << description << " ===\n";
}

void PrintPaperShape(const std::string& claim, const std::string& measured) {
  std::cout << "paper_shape: " << claim << "\n";
  std::cout << "   measured: " << measured << "\n";
}

void PrintHardwareNote() {
  std::cout << "note: this host exposes "
            << std::thread::hardware_concurrency()
            << " hardware thread(s); thread sweeps exercise the "
               "synchronization code paths but cannot show real parallel "
               "speedup here (the paper used 24 cores / 2 sockets).\n";
}

std::string BenchDataDir() {
  const char* env = std::getenv("PARISAX_BENCH_DIR");
  std::string dir = env != nullptr ? env : "/tmp/parisax_bench";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

Result<std::string> EnsureDatasetFile(DatasetKind kind, size_t count,
                                      size_t length, uint64_t seed) {
  std::ostringstream name;
  name << BenchDataDir() << "/" << DatasetKindName(kind) << "_" << count
       << "x" << length << "_s" << seed << ".psax";
  const std::string path = name.str();
  // Reuse if the header matches exactly.
  auto info = ReadDatasetInfo(path);
  if (info.ok() && info->count == count && info->length == length) {
    return path;
  }
  const Dataset dataset = MakeDataset(kind, count, length, seed);
  PARISAX_RETURN_IF_ERROR(WriteDataset(dataset, path));
  return path;
}

Dataset MakeDataset(DatasetKind kind, size_t count, size_t length,
                    uint64_t seed) {
  GeneratorOptions options;
  options.kind = kind;
  options.count = count;
  options.length = length;
  options.seed = seed;
  ThreadPool pool(4);
  return GenerateDataset(options, &pool);
}

Dataset MakeQueryWorkload(DatasetKind kind, size_t count, size_t length,
                          uint64_t seed, size_t dataset_count) {
  if (kind == DatasetKind::kRandomWalk) {
    return GenerateQueries(kind, count, length, seed);
  }
  return GeneratePerturbedQueries(kind, count, length, seed, dataset_count);
}

std::unique_ptr<InMemorySource> MemSource(const Dataset& data) {
  return std::make_unique<InMemorySource>(&data);
}

std::unique_ptr<FileSource> MustOpenFileSource(const std::string& path,
                                               DiskProfile random_profile,
                                               DiskProfile stream_profile) {
  auto source = FileSource::Open(path, random_profile, stream_profile);
  if (!source.ok()) {
    std::cerr << "open " << path << ": " << source.status().ToString()
              << "\n";
    std::exit(1);
  }
  return std::move(*source);
}

Result<QueryRunResult> RunQueries(Engine* engine, const Dataset& queries,
                                  const SearchRequest& request) {
  QueryRunResult result;
  WallTimer timer;
  for (SeriesId q = 0; q < queries.count(); ++q) {
    SearchResponse response;
    PARISAX_ASSIGN_OR_RETURN(response,
                             engine->Search(queries.series(q), request));
    result.stats.MergeCounters(response.stats);
  }
  result.total_seconds = timer.ElapsedSeconds();
  result.mean_seconds =
      queries.count() > 0 ? result.total_seconds /
                                static_cast<double>(queries.count())
                          : 0.0;
  return result;
}

}  // namespace bench
}  // namespace parisax
