// Incremental ingest: appended-build throughput and delta-save vs
// full-save cost, for MESSI and ParIS+.
//
// The workload models a long-lived serving process: build over a base
// collection, Save a full snapshot, Engine::Append a tail of new
// series, then persist the change. The "delta save" column is
// Engine::Save after the append — an append-only delta holding just
// the touched subtrees, chained to the base (docs/snapshot-format.md);
// the "full save" column is Engine::Compact — re-serializing the whole
// index, which is what every save would cost without delta support.
// --check gates on (a) the appended engine and the replayed
// base+delta chain answering byte-identically to a from-scratch build
// over the combined collection, and (b) the delta save being
// measurably cheaper than the full save.
#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "io/format.h"
#include "persist/snapshot.h"
#include "util/timer.h"

namespace {

using namespace parisax;
using namespace parisax::bench;

/// Delta saves must beat full saves by at least this factor for the
/// --check gate ("measurably cheaper", with CI-noise headroom).
constexpr double kMinDeltaSpeedup = 1.3;

struct Row {
  std::string algorithm;
  double rebuild_seconds = 0.0;     // from-scratch build over base+tail
  double append_seconds = 0.0;      // Engine::Append of the tail
  size_t appended = 0;
  size_t touched_subtrees = 0;
  double delta_save_seconds = 0.0;  // Engine::Save (delta) post-append
  double full_save_seconds = 0.0;   // Engine::Compact (full snapshot)
  uint64_t delta_bytes = 0;
  uint64_t full_bytes = 0;
  bool results_equal = false;       // appended + replayed == scratch

  double AppendSeriesPerSec() const {
    return append_seconds > 0.0
               ? static_cast<double>(appended) / append_seconds
               : 0.0;
  }
  double DeltaSpeedup() const {
    return delta_save_seconds > 0.0
               ? full_save_seconds / delta_save_seconds
               : 0.0;
  }
};

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::cerr << what << ": " << status.ToString() << "\n";
  std::exit(1);
}

bool SameNeighbors(const SearchResponse& a, const SearchResponse& b) {
  if (a.neighbors.size() != b.neighbors.size()) return false;
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    if (a.neighbors[i].id != b.neighbors[i].id ||
        a.neighbors[i].distance_sq != b.neighbors[i].distance_sq) {
      return false;
    }
  }
  return true;
}

/// Exact-query equivalence (ED 1-NN; kNN every other query on MESSI).
bool SameAnswers(Engine* want, Engine* got, const Dataset& queries,
                 Algorithm algorithm, size_t knn_k) {
  bool equal = true;
  for (SeriesId q = 0; q < queries.count(); ++q) {
    SearchRequest request;
    if (algorithm == Algorithm::kMessi && q % 2 == 1) request.k = knn_k;
    auto w = want->Search(queries.series(q), request);
    auto g = got->Search(queries.series(q), request);
    if (!w.ok()) Die("query (reference)", w.status());
    if (!g.ok()) Die("query (appended)", g.status());
    if (!SameNeighbors(*w, *g)) equal = false;
  }
  return equal;
}

Row RunIngest(Algorithm algorithm, const Dataset& full, size_t base_count,
              const Dataset& queries, int threads, size_t knn_k,
              uint64_t seed) {
  Row row;
  row.algorithm = AlgorithmName(algorithm);
  const size_t tail_count = full.count() - base_count;
  row.appended = tail_count;

  EngineOptions eopts;
  eopts.algorithm = algorithm;
  eopts.num_threads = threads;
  // The paper's 16 segments: the full root fan-out is what gives an
  // append batch subtree locality (few touched roots per batch).
  eopts.tree.segments = 16;

  // Reference: from-scratch build over the combined collection.
  Dataset combined(full.count(), full.length());
  std::copy(full.raw(), full.raw() + full.TotalValues(),
            combined.mutable_raw());
  WallTimer rebuild_timer;
  auto scratch =
      Engine::Build(SourceSpec::InMemory(std::move(combined)), eopts);
  if (!scratch.ok()) Die("build (scratch)", scratch.status());
  row.rebuild_seconds = rebuild_timer.ElapsedSeconds();

  // Serving path: mmap-build over the base file, full save, append the
  // tail, then persist the change both ways.
  const std::string data_path =
      BenchDataDir() + "/append_ingest_" + row.algorithm + "_" +
      std::to_string(full.count()) + "x" +
      std::to_string(full.length()) + "_" + std::to_string(seed) +
      ".psax";
  {
    Dataset base(base_count, full.length());
    std::copy(full.raw(), full.raw() + base_count * full.length(),
              base.mutable_raw());
    const Status written = WriteDataset(base, data_path);
    if (!written.ok()) Die("write base dataset", written);
  }
  auto grown = Engine::Build(SourceSpec::Mmap(data_path), eopts);
  if (!grown.ok()) Die("build (base)", grown.status());

  const std::string base_snap = data_path + ".base.snap";
  const std::string delta_snap = data_path + ".delta.snap";
  const std::string full_snap = data_path + ".full.snap";
  const Status base_saved = (*grown)->Save(base_snap);
  if (!base_saved.ok()) Die("save base", base_saved);

  WallTimer append_timer;
  auto report = (*grown)->Append(full.raw() + base_count * full.length(),
                                 tail_count);
  if (!report.ok()) Die("append", report.status());
  row.append_seconds = append_timer.ElapsedSeconds();
  row.touched_subtrees = report->touched_subtrees;

  WallTimer delta_timer;
  const Status delta_saved = (*grown)->Save(delta_snap);
  if (!delta_saved.ok()) Die("save delta", delta_saved);
  row.delta_save_seconds = delta_timer.ElapsedSeconds();
  row.delta_bytes = FileBytes(delta_snap);

  WallTimer full_timer;
  const Status compacted = (*grown)->Compact(full_snap);
  if (!compacted.ok()) Die("compact", compacted);
  row.full_save_seconds = full_timer.ElapsedSeconds();
  row.full_bytes = FileBytes(full_snap);

  // Equivalence: the appended engine AND the replayed base+delta chain
  // must both answer exactly like the from-scratch build.
  row.results_equal =
      SameAnswers(scratch->get(), grown->get(), queries, algorithm,
                  knn_k);
  auto replayed = Engine::Open(delta_snap, data_path);
  if (!replayed.ok()) Die("open chain", replayed.status());
  row.results_equal =
      row.results_equal && SameAnswers(scratch->get(), replayed->get(),
                                       queries, algorithm, knn_k);

  for (const std::string& p : {base_snap, delta_snap, full_snap,
                               data_path}) {
    std::remove(p.c_str());
  }
  return row;
}

void WriteJson(size_t series, size_t base, size_t length, size_t queries,
               int threads, const std::vector<Row>& rows,
               std::ostream& out) {
  out << "{\n"
      << "  \"bench\": \"append_ingest\",\n"
      << "  " << JsonMetaFields() << ",\n"
      << "  \"series\": " << series << ",\n"
      << "  \"base\": " << base << ",\n"
      << "  \"length\": " << length << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"algorithm\": \"" << r.algorithm
        << "\", \"rebuild_seconds\": " << r.rebuild_seconds
        << ", \"append_seconds\": " << r.append_seconds
        << ", \"appended\": " << r.appended
        << ", \"append_series_per_sec\": " << r.AppendSeriesPerSec()
        << ", \"touched_subtrees\": " << r.touched_subtrees
        << ", \"delta_save_seconds\": " << r.delta_save_seconds
        << ", \"full_save_seconds\": " << r.full_save_seconds
        << ", \"delta_bytes\": " << r.delta_bytes
        << ", \"full_bytes\": " << r.full_bytes
        << ", \"delta_speedup\": " << r.DeltaSpeedup()
        << ", \"results_equal\": " << (r.results_equal ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const size_t series = SeriesOrDefault(args, 50000, 10000);
  const size_t queries_count = QueriesOrDefault(args, 16, 8);
  const size_t length = args.length != 0 ? args.length : 128;
  const std::vector<int> thread_list = ThreadsOrDefault(args, {4});
  const int threads = thread_list.front();
  constexpr size_t kKnn = 8;
  // A serving-shaped tail: a few percent of the collection per ingest
  // round, so touched subtrees stay a small fraction of the tree.
  const size_t tail = std::max<size_t>(series / 32, 128);
  const size_t base = series - tail;

  PrintFigureHeader("append_ingest",
                    "incremental ingest: Engine::Append throughput and "
                    "delta-save vs full-save (append-only snapshots)");
  std::cout << series << " x " << length << " random-walk series ("
            << base << " base + " << tail << " appended), "
            << queries_count << " queries, " << threads << " threads\n\n";

  const Dataset full =
      MakeDataset(DatasetKind::kRandomWalk, series, length, args.seed);
  const Dataset queries = MakeQueryWorkload(
      DatasetKind::kRandomWalk, queries_count, length, args.seed, series);

  std::vector<Row> rows;
  for (const Algorithm algorithm :
       {Algorithm::kMessi, Algorithm::kParisPlus}) {
    rows.push_back(RunIngest(algorithm, full, base, queries, threads,
                             kKnn, args.seed));
  }

  Table table({"engine", "rebuild", "append", "series/s", "touched",
               "delta save", "full save", "speedup", "delta KiB",
               "queries equal"});
  for (const Row& r : rows) {
    table.AddRow({r.algorithm, FmtSeconds(r.rebuild_seconds),
                  FmtSeconds(r.append_seconds),
                  FmtCount(static_cast<uint64_t>(r.AppendSeriesPerSec())),
                  std::to_string(r.touched_subtrees),
                  FmtSeconds(r.delta_save_seconds),
                  FmtSeconds(r.full_save_seconds),
                  FmtRatio(r.DeltaSpeedup()),
                  std::to_string(r.delta_bytes / 1024),
                  r.results_equal ? "yes" : "NO"});
  }
  table.Print();

  double min_speedup = 1e300;
  bool all_equal = true;
  for (const Row& r : rows) {
    min_speedup = std::min(min_speedup, r.DeltaSpeedup());
    all_equal = all_equal && r.results_equal;
  }
  const bool claim_holds = all_equal && min_speedup >= kMinDeltaSpeedup;
  PrintPaperShape(
      "appending indexes only the new series, and persisting the append "
      "as a delta is measurably cheaper than re-serializing the index",
      "min delta-save speedup " + FmtRatio(min_speedup) +
          ", append+replay results " +
          (all_equal ? "identical to a from-scratch build" : "DIFFER") +
          " (" + (claim_holds ? "holds" : "DOES NOT HOLD") + ")");

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::cerr << "cannot write " << args.json_path << "\n";
      return 1;
    }
    WriteJson(series, base, length, queries_count, threads, rows, out);
    std::cout << "wrote " << args.json_path << "\n";
  }
  if (args.check && !claim_holds) {
    std::cerr << "check failed: append-ingest claim does not hold\n";
    return 1;
  }
  return 0;
}
