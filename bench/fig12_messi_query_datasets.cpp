// Figure 12: in-memory exact query answering across datasets -- UCR
// Suite-p vs (in-memory) ParIS vs MESSI.
//
// Paper claims: "MESSI is 55x faster than UCR Suite[-p] and 6.4x faster
// than ParIS [Synthetic]; 60x/8.4x on SALD; 80x/~11x on Seismic", driven
// by tree pruning during lower-bound computation plus the priority
// queues' ordering, which also cut real distance calculations.
#include "bench_common.h"

#include "messi/messi_index.h"
#include "paris/paris_index.h"
#include "scan/ucr_scan.h"
#include "util/threading.h"
#include "util/timer.h"

namespace parisax {
namespace bench {
namespace {

constexpr size_t kDefaultSeries = 100000;
constexpr size_t kQuickSeries = 8000;

int Run(const BenchArgs& args) {
  const size_t series = SeriesOrDefault(args, kDefaultSeries, kQuickSeries);
  const size_t queries_n = QueriesOrDefault(args, 15, 4);
  const int workers = args.threads.empty() ? 4 : args.threads.back();

  PrintFigureHeader("Fig. 12",
                    "In-memory exact query answering across datasets: "
                    "UCR-p vs ParIS vs MESSI");
  PrintHardwareNote();
  std::cout << "workload: " << series << " series per dataset, "
            << queries_n << " queries each, " << workers << " workers\n";

  Table table({"dataset", "ucr-p", "paris", "messi", "messi vs ucr-p",
               "messi vs paris", "paper"});
  std::string summary;
  const struct {
    DatasetKind kind;
    const char* paper;
  } rows[] = {
      {DatasetKind::kRandomWalk, "55x / 6.4x"},
      {DatasetKind::kSaldEeg, "60x / 8.4x"},
      {DatasetKind::kSeismicBurst, "80x / 11x"},
  };
  for (const auto& row : rows) {
    const size_t length = DefaultSeriesLength(row.kind);
    const Dataset data = MakeDataset(row.kind, series, length, args.seed);
    const Dataset queries = MakeQueryWorkload(row.kind, queries_n, length,
                                              args.seed, series);

    SaxTreeOptions tree;
    // scale-consistent mapping of the paper's w=16 (see EXPERIMENTS.md)
    tree.segments = 8;
    tree.leaf_capacity = 128;
    tree.series_length = length;

    ThreadPool pool(workers);

    WallTimer ucr_timer;
    for (SeriesId q = 0; q < queries.count(); ++q) {
      UcrScanParallel(InMemorySource(&data), queries.series(q), &pool);
    }
    const double ucr = ucr_timer.ElapsedSeconds() / queries.count();

    ParisBuildOptions paris_build;
    paris_build.num_workers = workers;
    paris_build.tree = tree;
    auto paris = ParisIndex::Build(MemSource(data), paris_build);
    if (!paris.ok()) {
      std::cerr << paris.status().ToString() << "\n";
      return 1;
    }
    ParisQueryOptions paris_qopts;
    paris_qopts.num_workers = workers;
    WallTimer paris_timer;
    for (SeriesId q = 0; q < queries.count(); ++q) {
      auto nn = (*paris)->SearchExact(queries.series(q), paris_qopts,
                                      &pool);
      if (!nn.ok()) {
        std::cerr << nn.status().ToString() << "\n";
        return 1;
      }
    }
    const double paris_mean = paris_timer.ElapsedSeconds() /
                              queries.count();

    MessiBuildOptions messi_build;
    messi_build.num_workers = workers;
    messi_build.tree = tree;
    auto messi = MessiIndex::Build(MemSource(data), messi_build, &pool);
    if (!messi.ok()) {
      std::cerr << messi.status().ToString() << "\n";
      return 1;
    }
    MessiQueryOptions messi_qopts;
    messi_qopts.num_workers = workers;
    WallTimer messi_timer;
    for (SeriesId q = 0; q < queries.count(); ++q) {
      auto nn = (*messi)->SearchExact(queries.series(q), messi_qopts,
                                      &pool);
      if (!nn.ok()) {
        std::cerr << nn.status().ToString() << "\n";
        return 1;
      }
    }
    const double messi_mean = messi_timer.ElapsedSeconds() /
                              queries.count();

    table.AddRow({DatasetKindName(row.kind), FmtMillis(ucr),
                  FmtMillis(paris_mean), FmtMillis(messi_mean),
                  FmtRatio(ucr / std::max(1e-9, messi_mean)),
                  FmtRatio(paris_mean / std::max(1e-9, messi_mean)),
                  row.paper});
    summary += std::string(DatasetKindName(row.kind)) + " " +
               FmtRatio(ucr / std::max(1e-9, messi_mean)) + "/" +
               FmtRatio(paris_mean / std::max(1e-9, messi_mean)) + "  ";
  }
  table.Print();

  PrintPaperShape(
      "MESSI beats UCR-p by 55x-80x and ParIS by 6.4x-11x across "
      "datasets; real data prunes worse than random walks, so UCR "
      "ratios grow on SALD/Seismic",
      "MESSI speedup vs ucr-p/paris: " + summary);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace parisax

int main(int argc, char** argv) {
  return parisax::bench::Run(parisax::bench::ParseArgs(argc, argv));
}
