// Figure 6: on-disk index creation time across datasets (Synthetic,
// SALD-like, Seismic-like) for ADS+, ParIS and ParIS+.
//
// Paper claim: "ParIS+ is 2.6x faster than ADS+ for Synthetic, 3.2x
// faster for SALD, and 2.3x faster for Seismic."
#include "bench_common.h"

#include "index/ads_index.h"
#include "paris/paris_index.h"

namespace parisax {
namespace bench {
namespace {

constexpr size_t kDefaultSeries = 40000;
constexpr size_t kQuickSeries = 3000;

int Run(const BenchArgs& args) {
  const size_t series = SeriesOrDefault(args, kDefaultSeries, kQuickSeries);
  const int workers = args.threads.empty() ? 4 : args.threads.back();

  PrintFigureHeader("Fig. 6",
                    "On-disk index creation across datasets: ADS+ vs "
                    "ParIS vs ParIS+ (simulated HDD)");
  PrintHardwareNote();

  Table table({"dataset", "ads+", "paris", "paris+", "paris+/ads+ speedup",
               "paper speedup"});
  const struct {
    DatasetKind kind;
    const char* paper_ratio;
  } rows[] = {
      {DatasetKind::kRandomWalk, "2.6x"},
      {DatasetKind::kSaldEeg, "3.2x"},
      {DatasetKind::kSeismicBurst, "2.3x"},
  };

  std::string measured_summary;
  for (const auto& row : rows) {
    const size_t length = DefaultSeriesLength(row.kind);
    auto path = EnsureDatasetFile(row.kind, series, length, args.seed);
    if (!path.ok()) {
      std::cerr << path.status().ToString() << "\n";
      return 1;
    }
    SaxTreeOptions tree;
    // scale-consistent mapping of the paper's w=16 (see EXPERIMENTS.md)
    tree.segments = 8;
    tree.leaf_capacity = 128;
    tree.series_length = length;

    double ads_time = 0.0;
    {
      AdsBuildOptions build;
      build.tree = tree;
      build.leaf_storage_path = BenchDataDir() + "/fig06_ads.leaves";
      build.leaf_write_mbps = DiskProfile::Hdd().seq_read_mbps;
      auto index = AdsIndex::Build(
          MustOpenFileSource(*path, DiskProfile::Instant(),
                             DiskProfile::Hdd()),
          build);
      if (!index.ok()) {
        std::cerr << index.status().ToString() << "\n";
        return 1;
      }
      ads_time = (*index)->build_stats().wall_seconds;
    }

    double paris_time[2] = {0.0, 0.0};
    for (const bool plus : {false, true}) {
      ParisBuildOptions build;
      build.num_workers = workers;
      build.plus_mode = plus;
      build.batch_series = 4096;
      build.tree = tree;
      build.leaf_storage_path = BenchDataDir() + "/fig06_paris.leaves";
      build.leaf_write_mbps = DiskProfile::Hdd().seq_read_mbps;
      auto index = ParisIndex::Build(
          MustOpenFileSource(*path, DiskProfile::Instant(),
                             DiskProfile::Hdd()),
          build);
      if (!index.ok()) {
        std::cerr << index.status().ToString() << "\n";
        return 1;
      }
      paris_time[plus ? 1 : 0] = (*index)->build_stats().wall_seconds;
    }

    const double speedup = ads_time / std::max(1e-9, paris_time[1]);
    table.AddRow({DatasetKindName(row.kind), FmtSeconds(ads_time),
                  FmtSeconds(paris_time[0]), FmtSeconds(paris_time[1]),
                  FmtRatio(speedup), row.paper_ratio});
    measured_summary += std::string(DatasetKindName(row.kind)) + " " +
                        FmtRatio(speedup) + "  ";
  }
  table.Print();

  PrintPaperShape(
      "ParIS+ builds 2.3x-3.2x faster than ADS+ on every dataset (the "
      "gain is parallel+overlapped CPU; on 1 core only the overlap with "
      "simulated I/O stalls remains)",
      "ParIS+/ADS+ creation speedup: " + measured_summary);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace parisax

int main(int argc, char** argv) {
  return parisax::bench::Run(parisax::bench::ParseArgs(argc, argv));
}
