// Figure 11: exact query answering across datasets on SSD for UCR Suite,
// ADS+ and ParIS+. Shares its implementation with Fig. 10.
//
// Paper claims: "ParIS+ is 15x faster than ADS+, and 2000x faster than
// UCR Suite" (both ADS+ and ParIS+ benefit from the low SSD random
// access latency; the scan still reads everything).
#include "bench/query_datasets_common.h"

int main(int argc, char** argv) {
  return parisax::bench::RunQueryDatasets(
      parisax::bench::ParseArgs(argc, argv), parisax::DiskProfile::Ssd(),
      "Fig. 11",
      "ParIS+ 15x faster than ADS+ and ~2000x faster than UCR Suite on "
      "SSD (indexes exploit cheap random reads; the scan reads 100% of "
      "the data)");
}
