// Figures 10 and 11 share one implementation: exact query answering
// across datasets for UCR Suite (on-disk scan), ADS+ and ParIS+, on a
// given storage profile. This binary runs the HDD profile (Fig. 10);
// fig11_query_ssd_datasets runs the SSD profile.
//
// Paper claims (Fig. 10, HDD): "ParIS+ is up to one order of magnitude
// faster than ADS+ in query answering, and more than two orders of
// magnitude faster than UCR Suite."
#include "bench/query_datasets_common.h"

int main(int argc, char** argv) {
  return parisax::bench::RunQueryDatasets(
      parisax::bench::ParseArgs(argc, argv), parisax::DiskProfile::Hdd(),
      "Fig. 10",
      "ParIS+ ~10x faster than ADS+ and >100x faster than UCR Suite on "
      "HDD (parallel CPU + overlapped candidate reads; the CPU part of "
      "the gap needs real cores)");
}
