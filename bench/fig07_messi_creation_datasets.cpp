// Figure 7: in-memory index creation across datasets: MESSI vs an
// in-memory ParIS (and ParIS+, which the paper discusses: it is *slower*
// than ParIS in memory because it re-traverses root subtrees per batch
// with no disk I/O left to overlap).
//
// Paper claims: "MESSI performs 3.6x faster than an in-memory
// implementation of ParIS [Synthetic] ... 3.6x on SALD, 3.7x on Seismic"
// and "ParIS is faster than ParIS+ for in-memory index creation".
#include "bench_common.h"

#include "messi/messi_index.h"
#include "paris/paris_index.h"
#include "util/threading.h"

namespace parisax {
namespace bench {
namespace {

constexpr size_t kDefaultSeries = 100000;
constexpr size_t kQuickSeries = 8000;

int Run(const BenchArgs& args) {
  const size_t series = SeriesOrDefault(args, kDefaultSeries, kQuickSeries);
  const int workers = args.threads.empty() ? 4 : args.threads.back();

  PrintFigureHeader("Fig. 7",
                    "In-memory index creation across datasets: ParIS vs "
                    "ParIS+ vs MESSI");
  PrintHardwareNote();

  Table table({"dataset", "paris", "paris+", "messi", "paris/messi",
               "paper paris/messi"});
  std::string summary, plus_summary;
  for (const DatasetKind kind :
       {DatasetKind::kRandomWalk, DatasetKind::kSaldEeg,
        DatasetKind::kSeismicBurst}) {
    const size_t length = DefaultSeriesLength(kind);
    const Dataset data = MakeDataset(kind, series, length, args.seed);

    SaxTreeOptions tree;
    // scale-consistent mapping of the paper's w=16 (see EXPERIMENTS.md)
    tree.segments = 8;
    tree.leaf_capacity = 128;
    tree.series_length = length;

    double paris_time[2] = {0.0, 0.0};
    for (const bool plus : {false, true}) {
      ParisBuildOptions build;
      build.num_workers = workers;
      build.plus_mode = plus;
      build.batch_series = 4096;
      build.batches_per_round = 4;
      build.tree = tree;
      auto index = ParisIndex::Build(MemSource(data), build);
      if (!index.ok()) {
        std::cerr << index.status().ToString() << "\n";
        return 1;
      }
      paris_time[plus ? 1 : 0] = (*index)->build_stats().wall_seconds;
    }

    double messi_time = 0.0;
    {
      ThreadPool pool(workers);
      MessiBuildOptions build;
      build.num_workers = workers;
      build.chunk_series = 4096;
      build.tree = tree;
      auto index = MessiIndex::Build(MemSource(data), build, &pool);
      if (!index.ok()) {
        std::cerr << index.status().ToString() << "\n";
        return 1;
      }
      messi_time = (*index)->build_stats().wall_seconds;
    }

    const double ratio = paris_time[0] / std::max(1e-9, messi_time);
    const char* paper = kind == DatasetKind::kSeismicBurst ? "3.7x" : "3.6x";
    table.AddRow({DatasetKindName(kind), FmtSeconds(paris_time[0]),
                  FmtSeconds(paris_time[1]), FmtSeconds(messi_time),
                  FmtRatio(ratio), paper});
    summary += std::string(DatasetKindName(kind)) + " " + FmtRatio(ratio) +
               "  ";
    plus_summary += std::string(DatasetKindName(kind)) + " " +
                    FmtRatio(paris_time[1] /
                             std::max(1e-9, paris_time[0])) + "  ";
  }
  table.Print();

  PrintPaperShape(
      "MESSI builds 3.6x-3.7x faster than in-memory ParIS (no RecBuf "
      "locks, no coordinator); most of that gap needs real cores",
      "ParIS/MESSI creation ratio: " + summary);
  PrintPaperShape(
      "ParIS is faster than ParIS+ in memory (ParIS+ re-traverses root "
      "subtrees every batch with no I/O to overlap)",
      "ParIS+/ParIS creation ratio (>1 confirms): " + plus_summary);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace parisax

int main(int argc, char** argv) {
  return parisax::bench::Run(parisax::bench::ParseArgs(argc, argv));
}
