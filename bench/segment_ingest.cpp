// Segment-based ingest: append latency under concurrent query load,
// for MESSI and ParIS+.
//
// The workload models a serving process that never stops answering:
// build over a base collection, run a query loop continuously, and —
// while it runs — Engine::Append a stream of small batches. Appends
// publish immutable delta segments with an atomic snapshot swap
// (docs/architecture.md), so queries in flight keep the snapshot they
// captured and new queries start immediately: an append should never
// stall the query path the way an exclusive index lock would. The
// background compactor folds segments into the base off the serving
// thread as the stream grows.
// --check gates on (a) queries continuing to complete while appends
// are in flight, (b) the slowest storm-time query staying within a
// generous multiple of the quiet-time worst case (the no-stall claim;
// the bound is loose because CI machines are noisy), and (c) the
// fully-appended engine answering byte-identically to a from-scratch
// build over the combined collection.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/timer.h"

namespace {

using namespace parisax;
using namespace parisax::bench;

/// No-stall gate: the slowest query issued during the append storm may
/// be at most this many times the slowest quiet-time query...
constexpr double kMaxStallRatio = 10.0;
/// ...or this many seconds, whichever is larger (absolute floor so
/// micro-second quiet baselines do not make the ratio gate flaky).
constexpr double kStallFloorSeconds = 0.05;

struct Row {
  std::string algorithm;
  size_t appended = 0;
  size_t batches = 0;
  double append_mean_seconds = 0.0;
  double append_max_seconds = 0.0;
  double quiet_query_mean = 0.0;
  double quiet_query_max = 0.0;
  double storm_query_mean = 0.0;
  double storm_query_max = 0.0;
  size_t storm_queries = 0;  // queries completed while appending
  bool results_equal = false;

  double StallRatio() const {
    return quiet_query_max > 0.0 ? storm_query_max / quiet_query_max
                                 : 0.0;
  }
  bool NoStall() const {
    return storm_queries > 0 &&
           storm_query_max <=
               std::max(kStallFloorSeconds,
                        quiet_query_max * kMaxStallRatio);
  }
};

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::cerr << what << ": " << status.ToString() << "\n";
  std::exit(1);
}

bool SameNeighbors(const SearchResponse& a, const SearchResponse& b) {
  if (a.neighbors.size() != b.neighbors.size()) return false;
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    if (a.neighbors[i].id != b.neighbors[i].id ||
        a.neighbors[i].distance_sq != b.neighbors[i].distance_sq) {
      return false;
    }
  }
  return true;
}

/// Exact-query equivalence (ED 1-NN; kNN every other query on MESSI).
bool SameAnswers(Engine* want, Engine* got, const Dataset& queries,
                 Algorithm algorithm, size_t knn_k) {
  bool equal = true;
  for (SeriesId q = 0; q < queries.count(); ++q) {
    SearchRequest request;
    if (algorithm == Algorithm::kMessi && q % 2 == 1) request.k = knn_k;
    auto w = want->Search(queries.series(q), request);
    auto g = got->Search(queries.series(q), request);
    if (!w.ok()) Die("query (reference)", w.status());
    if (!g.ok()) Die("query (appended)", g.status());
    if (!SameNeighbors(*w, *g)) equal = false;
  }
  return equal;
}

Row RunStorm(Algorithm algorithm, const Dataset& full, size_t base_count,
             size_t batch, const Dataset& queries, int threads,
             size_t knn_k) {
  Row row;
  row.algorithm = AlgorithmName(algorithm);

  EngineOptions eopts;
  eopts.algorithm = algorithm;
  eopts.num_threads = threads;
  eopts.tree.segments = 16;

  // Reference: from-scratch build over the combined collection.
  Dataset combined(full.count(), full.length());
  std::copy(full.raw(), full.raw() + full.TotalValues(),
            combined.mutable_raw());
  auto scratch =
      Engine::Build(SourceSpec::InMemory(std::move(combined)), eopts);
  if (!scratch.ok()) Die("build (scratch)", scratch.status());

  Dataset base(base_count, full.length());
  std::copy(full.raw(), full.raw() + base_count * full.length(),
            base.mutable_raw());
  auto grown = Engine::Build(SourceSpec::InMemory(std::move(base)), eopts);
  if (!grown.ok()) Die("build (base)", grown.status());
  Engine* engine = grown->get();

  // Quiet baseline: the query loop alone, one pass over the workload.
  std::vector<double> quiet;
  for (SeriesId q = 0; q < queries.count(); ++q) {
    WallTimer t;
    auto r = engine->Search(queries.series(q), SearchRequest{});
    if (!r.ok()) Die("query (quiet)", r.status());
    quiet.push_back(t.ElapsedSeconds());
  }

  // The storm: a dedicated thread keeps querying while the main thread
  // streams append batches in as fast as they are accepted. Only the
  // latencies of queries that overlap an in-flight append count toward
  // the stall gate.
  std::atomic<bool> stop{false};
  std::atomic<bool> appending{false};
  std::vector<double> storm;
  std::thread querier([&] {
    SeriesId q = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const bool overlapped = appending.load(std::memory_order_acquire);
      WallTimer t;
      auto r = engine->Search(queries.series(q % queries.count()),
                              SearchRequest{});
      if (!r.ok()) Die("query (storm)", r.status());
      if (overlapped || appending.load(std::memory_order_acquire)) {
        storm.push_back(t.ElapsedSeconds());
      }
      ++q;
    }
  });

  std::vector<double> append_times;
  appending.store(true, std::memory_order_release);
  for (size_t offset = base_count; offset < full.count();
       offset += batch) {
    const size_t count = std::min(batch, full.count() - offset);
    WallTimer t;
    auto report =
        engine->Append(full.raw() + offset * full.length(), count);
    if (!report.ok()) Die("append", report.status());
    append_times.push_back(t.ElapsedSeconds());
    row.appended += count;
  }
  appending.store(false, std::memory_order_release);
  // Let a few post-append queries finish so the querier observes the
  // final epoch, then stop it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true, std::memory_order_release);
  querier.join();

  row.batches = append_times.size();
  for (double s : append_times) {
    row.append_mean_seconds += s;
    row.append_max_seconds = std::max(row.append_max_seconds, s);
  }
  if (!append_times.empty()) row.append_mean_seconds /= append_times.size();
  for (double s : quiet) {
    row.quiet_query_mean += s;
    row.quiet_query_max = std::max(row.quiet_query_max, s);
  }
  if (!quiet.empty()) row.quiet_query_mean /= quiet.size();
  row.storm_queries = storm.size();
  for (double s : storm) {
    row.storm_query_mean += s;
    row.storm_query_max = std::max(row.storm_query_max, s);
  }
  if (!storm.empty()) row.storm_query_mean /= storm.size();

  // Compare answers against the from-scratch build: exact results must
  // not depend on how much of the stream the compactor has folded.
  row.results_equal =
      SameAnswers(scratch->get(), engine, queries, algorithm, knn_k);
  return row;
}

void WriteJson(size_t series, size_t base, size_t batch, size_t length,
               size_t queries, int threads, const std::vector<Row>& rows,
               std::ostream& out) {
  out << "{\n"
      << "  \"bench\": \"segment_ingest\",\n"
      << "  " << JsonMetaFields() << ",\n"
      << "  \"series\": " << series << ",\n"
      << "  \"base\": " << base << ",\n"
      << "  \"batch\": " << batch << ",\n"
      << "  \"length\": " << length << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"algorithm\": \"" << r.algorithm
        << "\", \"appended\": " << r.appended
        << ", \"batches\": " << r.batches
        << ", \"append_mean_seconds\": " << r.append_mean_seconds
        << ", \"append_max_seconds\": " << r.append_max_seconds
        << ", \"quiet_query_mean\": " << r.quiet_query_mean
        << ", \"quiet_query_max\": " << r.quiet_query_max
        << ", \"storm_query_mean\": " << r.storm_query_mean
        << ", \"storm_query_max\": " << r.storm_query_max
        << ", \"storm_queries\": " << r.storm_queries
        << ", \"stall_ratio\": " << r.StallRatio()
        << ", \"no_stall\": " << (r.NoStall() ? "true" : "false")
        << ", \"results_equal\": " << (r.results_equal ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const size_t series = SeriesOrDefault(args, 50000, 10000);
  const size_t queries_count = QueriesOrDefault(args, 16, 8);
  const size_t length = args.length != 0 ? args.length : 128;
  const std::vector<int> thread_list = ThreadsOrDefault(args, {4});
  const int threads = thread_list.front();
  constexpr size_t kKnn = 8;
  // A stream of small serving-sized batches: enough of them to push the
  // live segment count past the compaction trigger several times over.
  const size_t tail = std::max<size_t>(series / 16, 256);
  const size_t base = series - tail;
  const size_t batch = std::max<size_t>(tail / 32, 8);

  PrintFigureHeader("segment_ingest",
                    "segment-based ingest: append latency under "
                    "concurrent query load (atomic snapshot publication, "
                    "background compaction)");
  std::cout << series << " x " << length << " random-walk series (" << base
            << " base + " << tail << " streamed in batches of " << batch
            << "), " << queries_count << " queries, " << threads
            << " threads\n\n";

  const Dataset full =
      MakeDataset(DatasetKind::kRandomWalk, series, length, args.seed);
  const Dataset queries = MakeQueryWorkload(
      DatasetKind::kRandomWalk, queries_count, length, args.seed, series);

  std::vector<Row> rows;
  for (const Algorithm algorithm :
       {Algorithm::kMessi, Algorithm::kParisPlus}) {
    rows.push_back(
        RunStorm(algorithm, full, base, batch, queries, threads, kKnn));
  }

  Table table({"engine", "appended", "batches", "append mean",
               "append max", "quiet max", "storm max", "storm queries",
               "stall", "queries equal"});
  for (const Row& r : rows) {
    table.AddRow({r.algorithm, FmtCount(r.appended),
                  std::to_string(r.batches),
                  FmtMillis(r.append_mean_seconds),
                  FmtMillis(r.append_max_seconds),
                  FmtMillis(r.quiet_query_max),
                  FmtMillis(r.storm_query_max),
                  std::to_string(r.storm_queries),
                  FmtRatio(r.StallRatio()),
                  r.results_equal ? "yes" : "NO"});
  }
  table.Print();

  bool all_equal = true;
  bool no_stall = true;
  double worst_ratio = 0.0;
  for (const Row& r : rows) {
    all_equal = all_equal && r.results_equal;
    no_stall = no_stall && r.NoStall();
    worst_ratio = std::max(worst_ratio, r.StallRatio());
  }
  const bool claim_holds = all_equal && no_stall;
  PrintPaperShape(
      "appends publish immutable segments without excluding queries, so "
      "query latency under an append storm stays at its quiet-time level",
      "worst storm/quiet latency ratio " + FmtRatio(worst_ratio) +
          ", storm results " +
          (all_equal ? "identical to a from-scratch build" : "DIFFER") +
          " (" + (claim_holds ? "holds" : "DOES NOT HOLD") + ")");

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::cerr << "cannot write " << args.json_path << "\n";
      return 1;
    }
    WriteJson(series, base, batch, length, queries_count, threads, rows,
              out);
    std::cout << "wrote " << args.json_path << "\n";
  }
  if (args.check && !claim_holds) {
    std::cerr << "check failed: segment-ingest no-stall claim does not "
                 "hold\n";
    return 1;
  }
  return 0;
}
