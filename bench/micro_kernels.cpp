// Ablation D4 and kernel microbenchmarks (google-benchmark): the SIMD vs
// scalar distance kernels the paper credits for part of its speedup,
// plus the other per-series primitives (PAA, SAX conversion, mindist,
// early abandoning, DTW, LB_Keogh).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "dist/dtw.h"
#include "dist/euclidean.h"
#include "dist/znorm.h"
#include "io/generator.h"
#include "sax/mindist.h"
#include "sax/paa.h"
#include "sax/word.h"

namespace parisax {
namespace {

constexpr size_t kLength = 256;
constexpr int kSegments = 16;

struct KernelFixture {
  KernelFixture() {
    GeneratorOptions gen;
    gen.count = 1024;
    gen.length = kLength;
    gen.seed = 7;
    data = GenerateDataset(gen);
    query = GenerateQueries(DatasetKind::kRandomWalk, 1, kLength, 7);
    ComputePaa(query.series(0), kSegments, query_paa);
    sax_rows.resize(data.count());
    float paa[kMaxSegments];
    for (SeriesId i = 0; i < data.count(); ++i) {
      ComputePaa(data.series(i), kSegments, paa);
      SymbolsFromPaa(paa, kSegments, &sax_rows[i]);
    }
    ComputeEnvelope(query.series(0), 12, &env_lower, &env_upper);
  }

  Dataset data;
  Dataset query;
  float query_paa[kMaxSegments];
  std::vector<SaxSymbols> sax_rows;
  std::vector<Value> env_lower, env_upper;
};

KernelFixture& Fixture() {
  static KernelFixture fixture;
  return fixture;
}

void BM_EuclideanScalar(benchmark::State& state) {
  KernelFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredEuclideanScalar(
        f.query.series(0).data(), f.data.series(i).data(), kLength));
    i = (i + 1) % f.data.count();
  }
  state.SetBytesProcessed(state.iterations() * kLength * sizeof(float));
}
BENCHMARK(BM_EuclideanScalar);

#ifdef PARISAX_HAVE_AVX2
void BM_EuclideanAvx2(benchmark::State& state) {
  KernelFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredEuclideanAvx2(
        f.query.series(0).data(), f.data.series(i).data(), kLength));
    i = (i + 1) % f.data.count();
  }
  state.SetBytesProcessed(state.iterations() * kLength * sizeof(float));
}
BENCHMARK(BM_EuclideanAvx2);
#endif

void BM_EuclideanEarlyAbandonTightBound(benchmark::State& state) {
  KernelFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    // A tight bound (32.0f over z-normalized 256-pt series) abandons
    // almost every candidate after the first blocks.
    benchmark::DoNotOptimize(SquaredEuclideanEarlyAbandon(
        f.query.series(0).data(), f.data.series(i).data(), kLength, 32.0f));
    i = (i + 1) % f.data.count();
  }
}
BENCHMARK(BM_EuclideanEarlyAbandonTightBound);

void BM_Paa(benchmark::State& state) {
  KernelFixture& f = Fixture();
  float paa[kMaxSegments];
  size_t i = 0;
  for (auto _ : state) {
    ComputePaa(f.data.series(i), kSegments, paa);
    benchmark::DoNotOptimize(paa[0]);
    i = (i + 1) % f.data.count();
  }
}
BENCHMARK(BM_Paa);

void BM_SymbolsFromPaa(benchmark::State& state) {
  KernelFixture& f = Fixture();
  SaxSymbols sax;
  for (auto _ : state) {
    SymbolsFromPaa(f.query_paa, kSegments, &sax);
    benchmark::DoNotOptimize(sax.symbols[0]);
  }
}
BENCHMARK(BM_SymbolsFromPaa);

void BM_MinDistPaaToSymbols(benchmark::State& state) {
  KernelFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinDistPaaToSymbolsSq(
        f.query_paa, f.sax_rows[i], kSegments, kLength));
    i = (i + 1) % f.sax_rows.size();
  }
}
BENCHMARK(BM_MinDistPaaToSymbols);

void BM_ZNormalize(benchmark::State& state) {
  std::vector<float> buffer(kLength);
  KernelFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    const SeriesView src = f.data.series(i);
    std::copy(src.begin(), src.end(), buffer.begin());
    ZNormalize(MutableSeriesView(buffer.data(), kLength));
    benchmark::DoNotOptimize(buffer[0]);
    i = (i + 1) % f.data.count();
  }
}
BENCHMARK(BM_ZNormalize);

void BM_DtwBand(benchmark::State& state) {
  KernelFixture& f = Fixture();
  const size_t band = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DtwBand(f.query.series(0), f.data.series(i), band, 1e30f));
    i = (i + 1) % f.data.count();
  }
}
BENCHMARK(BM_DtwBand)->Arg(4)->Arg(12)->Arg(25);

void BM_LbKeogh(benchmark::State& state) {
  KernelFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LbKeoghSq(f.env_lower, f.env_upper, f.data.series(i), 1e30f));
    i = (i + 1) % f.data.count();
  }
}
BENCHMARK(BM_LbKeogh);

void BM_ComputeEnvelope(benchmark::State& state) {
  KernelFixture& f = Fixture();
  std::vector<Value> lower, upper;
  for (auto _ : state) {
    ComputeEnvelope(f.query.series(0), 12, &lower, &upper);
    benchmark::DoNotOptimize(lower[0]);
  }
}
BENCHMARK(BM_ComputeEnvelope);

}  // namespace
}  // namespace parisax

// BENCHMARK_MAIN plus attribution context: the JSON "context" block then
// carries git_sha/build_type, which the CI bench-regression comparison
// requires of every baseline artifact.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("git_sha", parisax::bench::GitSha());
  benchmark::AddCustomContext("build_type", parisax::bench::BuildTypeName());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
