// Figure 9: in-memory exact query answering vs cores -- UCR Suite-p vs
// (in-memory) ParIS vs MESSI (log-scale y in the paper).
//
// Paper claim: "MESSI significantly outperforms ParIS and (an in-memory,
// parallel implementation of) UCR Suite" at every core count.
#include "bench_common.h"

#include "messi/messi_index.h"
#include "paris/paris_index.h"
#include "scan/ucr_scan.h"
#include "util/threading.h"
#include "util/timer.h"

namespace parisax {
namespace bench {
namespace {

constexpr size_t kDefaultSeries = 100000;
constexpr size_t kQuickSeries = 8000;
constexpr size_t kLength = 256;

int Run(const BenchArgs& args) {
  const size_t series = SeriesOrDefault(args, kDefaultSeries, kQuickSeries);
  const size_t queries_n = QueriesOrDefault(args, 20, 5);
  const size_t length = args.length != 0 ? args.length : kLength;
  const std::vector<int> threads = ThreadsOrDefault(args, {1, 2, 4, 8});

  PrintFigureHeader("Fig. 9",
                    "In-memory exact query answering vs cores: UCR-p vs "
                    "ParIS vs MESSI");
  PrintHardwareNote();
  std::cout << "workload: " << series << " random-walk series x " << length
            << ", " << queries_n << " queries\n";

  const Dataset data =
      MakeDataset(DatasetKind::kRandomWalk, series, length, args.seed);
  const Dataset queries = GenerateQueries(DatasetKind::kRandomWalk,
                                          queries_n, length, args.seed);

  SaxTreeOptions tree;
  // scale-consistent mapping of the paper's w=16 (see EXPERIMENTS.md)
  tree.segments = 8;
  tree.leaf_capacity = 128;
  tree.series_length = length;

  // Build the two indexes once with 4 workers (creation is Figs. 5/7).
  ParisBuildOptions paris_build;
  paris_build.num_workers = 4;
  paris_build.plus_mode = false;
  paris_build.tree = tree;
  auto paris = ParisIndex::Build(MemSource(data), paris_build);
  if (!paris.ok()) {
    std::cerr << paris.status().ToString() << "\n";
    return 1;
  }

  double messi_best = 1e30, paris_best = 1e30, ucr_best = 1e30;
  Table table({"threads", "ucr-p", "paris", "messi", "messi speedup vs "
               "ucr-p"});
  for (const int t : threads) {
    ThreadPool pool(t);

    MessiBuildOptions messi_build;
    messi_build.num_workers = t;
    messi_build.tree = tree;
    auto messi = MessiIndex::Build(MemSource(data), messi_build, &pool);
    if (!messi.ok()) {
      std::cerr << messi.status().ToString() << "\n";
      return 1;
    }

    WallTimer ucr_timer;
    for (SeriesId q = 0; q < queries.count(); ++q) {
      UcrScanParallel(InMemorySource(&data), queries.series(q), &pool);
    }
    const double ucr = ucr_timer.ElapsedSeconds() / queries.count();

    ParisQueryOptions paris_qopts;
    paris_qopts.num_workers = t;
    WallTimer paris_timer;
    for (SeriesId q = 0; q < queries.count(); ++q) {
      auto nn = (*paris)->SearchExact(queries.series(q), paris_qopts,
                                      &pool);
      if (!nn.ok()) {
        std::cerr << nn.status().ToString() << "\n";
        return 1;
      }
    }
    const double paris_mean = paris_timer.ElapsedSeconds() /
                              queries.count();

    MessiQueryOptions messi_qopts;
    messi_qopts.num_workers = t;
    WallTimer messi_timer;
    for (SeriesId q = 0; q < queries.count(); ++q) {
      auto nn = (*messi)->SearchExact(queries.series(q), messi_qopts,
                                      &pool);
      if (!nn.ok()) {
        std::cerr << nn.status().ToString() << "\n";
        return 1;
      }
    }
    const double messi_mean = messi_timer.ElapsedSeconds() /
                              queries.count();

    table.AddRow({std::to_string(t), FmtMillis(ucr), FmtMillis(paris_mean),
                  FmtMillis(messi_mean),
                  FmtRatio(ucr / std::max(1e-9, messi_mean))});
    ucr_best = std::min(ucr_best, ucr);
    paris_best = std::min(paris_best, paris_mean);
    messi_best = std::min(messi_best, messi_mean);
  }
  table.Print();

  PrintPaperShape(
      "MESSI < ParIS < UCR-p at every core count (tree pruning does the "
      "least work; the full scan does the most)",
      "best means: MESSI " + FmtMillis(messi_best) + ", ParIS " +
          FmtMillis(paris_best) + ", UCR-p " + FmtMillis(ucr_best));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace parisax

int main(int argc, char** argv) {
  return parisax::bench::Run(parisax::bench::ParseArgs(argc, argv));
}
