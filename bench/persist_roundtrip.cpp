// Snapshot persistence: save/load time vs. rebuilding the index from raw
// data, for MESSI and ParIS+.
//
// The "rebuild" column is what every process start pays without
// persistence: read the raw dataset file into memory and run the full
// parallel index construction. The "load" column is Engine::Open — parse
// and verify the snapshot, reconstruct the tree in parallel, and mmap
// the raw file instead of copying it. Query results must be identical
// either way; --check gates on that equivalence and on load being >= 5x
// faster than rebuild (the persistence acceptance criterion).
#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "io/format.h"
#include "persist/snapshot.h"
#include "util/timer.h"

namespace {

using namespace parisax;
using namespace parisax::bench;

struct Row {
  std::string algorithm;
  double rebuild_seconds = 0.0;
  double save_seconds = 0.0;
  double load_seconds = 0.0;
  uint64_t snapshot_bytes = 0;
  double query_seconds = 0.0;  // over the whole workload, restored engine
  bool results_equal = false;

  double Speedup() const {
    return load_seconds > 0.0 ? rebuild_seconds / load_seconds : 0.0;
  }
};

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::cerr << what << ": " << status.ToString() << "\n";
  std::exit(1);
}

bool SameNeighbors(const SearchResponse& a, const SearchResponse& b) {
  if (a.neighbors.size() != b.neighbors.size()) return false;
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    if (a.neighbors[i].id != b.neighbors[i].id ||
        a.neighbors[i].distance_sq != b.neighbors[i].distance_sq) {
      return false;
    }
  }
  return true;
}

Row RunRoundtrip(Algorithm algorithm, const std::string& data_path,
                 const Dataset& queries, int threads, size_t knn_k) {
  Row row;
  row.algorithm = AlgorithmName(algorithm);

  EngineOptions eopts;
  eopts.algorithm = algorithm;
  eopts.num_threads = threads;
  eopts.tree.segments = 8;

  // Rebuild path: raw file -> RAM -> full parallel construction. The
  // engine adopts the loaded dataset (owned SeriesSource).
  WallTimer rebuild_timer;
  auto dataset = LoadDataset(data_path);
  if (!dataset.ok()) Die("load dataset", dataset.status());
  auto built = Engine::Build(
      SourceSpec::InMemory(std::move(dataset.value())), eopts);
  if (!built.ok()) Die("build", built.status());
  row.rebuild_seconds = rebuild_timer.ElapsedSeconds();

  const std::string snapshot_path = data_path + "." +
                                    std::string(AlgorithmName(algorithm)) +
                                    ".snap";
  WallTimer save_timer;
  const Status saved = (*built)->Save(snapshot_path);
  if (!saved.ok()) Die("save", saved);
  row.save_seconds = save_timer.ElapsedSeconds();
  row.snapshot_bytes = FileBytes(snapshot_path);

  // Load path: verify + parallel tree restore + mmap the raw file.
  // Best of three: loads are millisecond-scale, so a single scheduling
  // hiccup on a shared CI runner would otherwise dominate the measured
  // time and flake the >= 5x --check gate.
  Result<std::unique_ptr<Engine>> restored = Status::Internal("unset");
  row.load_seconds = 1e300;
  for (int attempt = 0; attempt < 3; ++attempt) {
    WallTimer load_timer;
    restored = Engine::Open(snapshot_path, data_path, eopts);
    if (!restored.ok()) Die("open", restored.status());
    row.load_seconds = std::min(row.load_seconds,
                                load_timer.ElapsedSeconds());
  }

  // Equivalence: the restored engine must answer exactly like the built
  // one (1-NN for every engine, kNN where supported).
  row.results_equal = true;
  WallTimer query_timer;
  for (SeriesId q = 0; q < queries.count(); ++q) {
    SearchRequest request;
    if (algorithm == Algorithm::kMessi && q % 2 == 1) request.k = knn_k;
    auto want = (*built)->Search(queries.series(q), request);
    auto got = (*restored)->Search(queries.series(q), request);
    if (!want.ok()) Die("query (built)", want.status());
    if (!got.ok()) Die("query (restored)", got.status());
    if (!SameNeighbors(*want, *got)) row.results_equal = false;
  }
  row.query_seconds = query_timer.ElapsedSeconds();
  std::remove(snapshot_path.c_str());
  return row;
}

void WriteJson(size_t series, size_t length, size_t queries, int threads,
               const std::vector<Row>& rows, std::ostream& out) {
  out << "{\n"
      << "  \"bench\": \"persist_roundtrip\",\n"
      << "  " << JsonMetaFields() << ",\n"
      << "  \"series\": " << series << ",\n"
      << "  \"length\": " << length << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"algorithm\": \"" << r.algorithm
        << "\", \"rebuild_seconds\": " << r.rebuild_seconds
        << ", \"save_seconds\": " << r.save_seconds
        << ", \"load_seconds\": " << r.load_seconds
        << ", \"snapshot_bytes\": " << r.snapshot_bytes
        << ", \"load_speedup\": " << r.Speedup()
        << ", \"results_equal\": " << (r.results_equal ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const size_t series = SeriesOrDefault(args, 50000, 10000);
  const size_t queries_count = QueriesOrDefault(args, 16, 8);
  const size_t length = args.length != 0 ? args.length : 128;
  const std::vector<int> thread_list = ThreadsOrDefault(args, {4});
  const int threads = thread_list.front();
  constexpr size_t kKnn = 8;

  PrintFigureHeader("persist_roundtrip",
                    "snapshot save/load vs full index rebuild "
                    "(Engine::Save / Engine::Open, mmap raw data)");
  std::cout << series << " x " << length << " random-walk series, "
            << queries_count << " queries, " << threads << " threads\n\n";

  auto data_path = EnsureDatasetFile(DatasetKind::kRandomWalk, series,
                                     length, args.seed);
  if (!data_path.ok()) Die("dataset file", data_path.status());
  const Dataset queries = MakeQueryWorkload(
      DatasetKind::kRandomWalk, queries_count, length, args.seed, series);

  std::vector<Row> rows;
  for (const Algorithm algorithm :
       {Algorithm::kMessi, Algorithm::kParisPlus}) {
    rows.push_back(
        RunRoundtrip(algorithm, *data_path, queries, threads, kKnn));
  }

  Table table({"engine", "rebuild", "save", "load", "speedup", "snapshot",
               "queries equal"});
  for (const Row& r : rows) {
    table.AddRow({r.algorithm, FmtSeconds(r.rebuild_seconds),
                  FmtSeconds(r.save_seconds), FmtSeconds(r.load_seconds),
                  FmtRatio(r.Speedup()),
                  std::to_string(r.snapshot_bytes / 1024) + "KiB",
                  r.results_equal ? "yes" : "NO"});
  }
  table.Print();

  double min_speedup = 1e300;
  bool all_equal = true;
  for (const Row& r : rows) {
    min_speedup = std::min(min_speedup, r.Speedup());
    all_equal = all_equal && r.results_equal;
  }
  const bool claim_holds = all_equal && min_speedup >= 5.0;
  PrintPaperShape(
      "restoring a snapshot amortizes construction: load is >= 5x faster "
      "than rebuilding and answers queries identically",
      "min load speedup " + FmtRatio(min_speedup) + ", results " +
          (all_equal ? "identical" : "DIFFER") + " (" +
          (claim_holds ? "holds" : "DOES NOT HOLD") + ")");

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::cerr << "cannot write " << args.json_path << "\n";
      return 1;
    }
    WriteJson(series, length, queries_count, threads, rows, out);
    std::cout << "wrote " << args.json_path << "\n";
  }
  if (args.check && !claim_holds) {
    std::cerr << "check failed: snapshot roundtrip claim does not hold\n";
    return 1;
  }
  return 0;
}
