// Figure 8: ParIS+ exact query answering time vs cores, on HDD and SSD.
//
// Paper claims: "In both cases performance improves as we increase the
// number of cores, with the SSD being > 1 order of magnitude faster."
// The SSD advantage comes from cheap random access to candidate raw
// data, which the simulated device reproduces (60us/8-deep vs 8ms/1-deep
// random reads).
#include "bench_common.h"

#include "paris/paris_index.h"
#include "util/threading.h"
#include "util/timer.h"

namespace parisax {
namespace bench {
namespace {

constexpr size_t kDefaultSeries = 60000;
constexpr size_t kQuickSeries = 4000;
constexpr size_t kLength = 256;

int Run(const BenchArgs& args) {
  const size_t series = SeriesOrDefault(args, kDefaultSeries, kQuickSeries);
  const size_t queries_n = QueriesOrDefault(args, 5, 2);
  const size_t length = args.length != 0 ? args.length : kLength;
  const std::vector<int> threads = ThreadsOrDefault(args, {1, 2, 4, 8});

  PrintFigureHeader("Fig. 8",
                    "ParIS+ exact query answering vs cores, HDD vs SSD");
  PrintHardwareNote();
  std::cout << "workload: " << series << " random-walk series x " << length
            << ", " << queries_n << " queries\n";

  auto path = EnsureDatasetFile(DatasetKind::kRandomWalk, series, length,
                                args.seed);
  if (!path.ok()) {
    std::cerr << path.status().ToString() << "\n";
    return 1;
  }
  const Dataset queries = GenerateQueries(DatasetKind::kRandomWalk,
                                          queries_n, length, args.seed);

  Table table({"storage", "threads", "mean_query", "candidates/query",
               "disk_seeks/query"});
  double hdd_best = 1e30, ssd_best = 1e30;
  for (const DiskProfile& profile :
       {DiskProfile::Hdd(), DiskProfile::Ssd()}) {
    // Build once per storage type (instant build profile: Fig. 8 measures
    // query answering, not creation).
    ParisBuildOptions build;
    build.num_workers = 4;
    build.plus_mode = true;
    build.batch_series = 4096;
    // scale-consistent mapping of the paper's w=16 (see EXPERIMENTS.md)
    build.tree.segments = 8;
    build.tree.leaf_capacity = 128;
    build.tree.series_length = length;
    build.leaf_storage_path =
        BenchDataDir() + "/fig08_" + profile.name + ".leaves";
    auto index = ParisIndex::Build(
        MustOpenFileSource(*path, profile, DiskProfile::Instant()),
        build);
    if (!index.ok()) {
      std::cerr << index.status().ToString() << "\n";
      return 1;
    }

    for (const int t : threads) {
      ThreadPool pool(t);
      ParisQueryOptions qopts;
      qopts.num_workers = t;
      QueryStats stats;
      WallTimer timer;
      for (SeriesId q = 0; q < queries.count(); ++q) {
        auto nn = (*index)->SearchExact(queries.series(q), qopts, &pool,
                                        &stats);
        if (!nn.ok()) {
          std::cerr << nn.status().ToString() << "\n";
          return 1;
        }
      }
      const double mean = timer.ElapsedSeconds() /
                          static_cast<double>(queries.count());
      table.AddRow({profile.name, std::to_string(t), FmtSeconds(mean),
                    FmtCount(stats.candidates / queries.count()), "-"});
      if (profile.name == "hdd") hdd_best = std::min(hdd_best, mean);
      if (profile.name == "ssd") ssd_best = std::min(ssd_best, mean);
    }
  }
  table.Print();

  PrintPaperShape(
      "query answering on SSD is >1 order of magnitude faster than on "
      "HDD (cheap random candidate reads); both improve with cores",
      "best HDD query " + FmtSeconds(hdd_best) + " vs best SSD " +
          FmtSeconds(ssd_best) + " => SSD " +
          FmtRatio(hdd_best / std::max(1e-9, ssd_best)) + " faster");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace parisax

int main(int argc, char** argv) {
  return parisax::bench::Run(parisax::bench::ParseArgs(argc, argv));
}
