// Ablation D1 (paper footnote 2): MESSI's per-thread iSAX buffer parts
// vs the rejected lock-per-buffer alternative.
//
// Paper: "We also tried an alternative technique: each buffer was
// protected by a lock and many threads were accessing each buffer.
// However, this resulted in worse performance due to contention in
// accessing the iSAX buffers."  True contention needs real cores; this
// bench still isolates the locking overhead on the Stage-1 hot path.
#include "bench_common.h"

#include "messi/messi_index.h"
#include "util/threading.h"

namespace parisax {
namespace bench {
namespace {

constexpr size_t kDefaultSeries = 150000;
constexpr size_t kQuickSeries = 10000;
constexpr size_t kLength = 256;

int Run(const BenchArgs& args) {
  const size_t series = SeriesOrDefault(args, kDefaultSeries, kQuickSeries);
  const size_t length = args.length != 0 ? args.length : kLength;
  const std::vector<int> threads = ThreadsOrDefault(args, {2, 4, 8});

  PrintFigureHeader("Ablation D1",
                    "MESSI iSAX buffers: per-thread parts vs one lock per "
                    "buffer (footnote 2)");
  PrintHardwareNote();
  std::cout << "workload: " << series << " random-walk series x " << length
            << "\n";

  const Dataset data =
      MakeDataset(DatasetKind::kRandomWalk, series, length, args.seed);

  Table table({"threads", "partitioned_total", "partitioned_stage1",
               "locked_total", "locked_stage1", "locked/partitioned"});
  double sum_ratio = 0.0;
  for (const int t : threads) {
    double totals[2], stage1[2];
    for (const bool locked : {false, true}) {
      ThreadPool pool(t);
      MessiBuildOptions build;
      build.num_workers = t;
      build.locked_buffers = locked;
      // scale-consistent mapping of the paper's w=16 (see EXPERIMENTS.md)
      build.tree.segments = 8;
      build.tree.leaf_capacity = 128;
      build.tree.series_length = length;
      auto index = MessiIndex::Build(MemSource(data), build, &pool);
      if (!index.ok()) {
        std::cerr << index.status().ToString() << "\n";
        return 1;
      }
      totals[locked] = (*index)->build_stats().wall_seconds;
      stage1[locked] = (*index)->build_stats().summarize_wall_seconds;
    }
    const double ratio = totals[1] / std::max(1e-9, totals[0]);
    sum_ratio += ratio;
    table.AddRow({std::to_string(t), FmtSeconds(totals[0]),
                  FmtSeconds(stage1[0]), FmtSeconds(totals[1]),
                  FmtSeconds(stage1[1]), FmtRatio(ratio)});
  }
  table.Print();

  PrintPaperShape(
      "locked buffers are slower than per-thread buffer parts (the paper "
      "rejected them for contention; on one core the remaining gap is "
      "lock/unlock overhead)",
      "mean locked/partitioned build-time ratio " +
          FmtRatio(sum_ratio / threads.size()));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace parisax

int main(int argc, char** argv) {
  return parisax::bench::Run(parisax::bench::ParseArgs(argc, argv));
}
