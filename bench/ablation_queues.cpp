// Ablation D2: the number of shared priority queues in MESSI's query
// answering. Few queues maximize the precision of the best-first order
// (better pruning) but concentrate lock contention; many queues spread
// contention but weaken the global ordering. The paper uses a queue
// count tied to the worker count.
#include "bench_common.h"

#include "messi/messi_index.h"
#include "util/threading.h"
#include "util/timer.h"

namespace parisax {
namespace bench {
namespace {

constexpr size_t kDefaultSeries = 100000;
constexpr size_t kQuickSeries = 8000;
constexpr size_t kLength = 256;

int Run(const BenchArgs& args) {
  const size_t series = SeriesOrDefault(args, kDefaultSeries, kQuickSeries);
  const size_t queries_n = QueriesOrDefault(args, 20, 5);
  const size_t length = args.length != 0 ? args.length : kLength;
  const int workers = args.threads.empty() ? 4 : args.threads.back();

  PrintFigureHeader("Ablation D2",
                    "MESSI: number of shared priority queues");
  std::cout << "workload: " << series << " random-walk series x " << length
            << ", " << queries_n << " queries, " << workers
            << " workers\n";

  const Dataset data =
      MakeDataset(DatasetKind::kRandomWalk, series, length, args.seed);
  const Dataset queries = GenerateQueries(DatasetKind::kRandomWalk,
                                          queries_n, length, args.seed);

  ThreadPool pool(workers);
  MessiBuildOptions build;
  build.num_workers = workers;
  // scale-consistent mapping of the paper's w=16 (see EXPERIMENTS.md)
  build.tree.segments = 8;
  build.tree.leaf_capacity = 128;
  build.tree.series_length = length;
  auto index = MessiIndex::Build(MemSource(data), build, &pool);
  if (!index.ok()) {
    std::cerr << index.status().ToString() << "\n";
    return 1;
  }

  Table table({"queues", "mean_query", "real_dists/query",
               "lb_checks/query", "abandons/query"});
  for (const int queues : {1, 2, 4, 8, 16}) {
    MessiQueryOptions qopts;
    qopts.num_workers = workers;
    qopts.num_queues = queues;
    QueryStats stats;
    WallTimer timer;
    for (SeriesId q = 0; q < queries.count(); ++q) {
      auto nn = (*index)->SearchExact(queries.series(q), qopts, &pool,
                                      &stats);
      if (!nn.ok()) {
        std::cerr << nn.status().ToString() << "\n";
        return 1;
      }
    }
    const double mean = timer.ElapsedSeconds() / queries.count();
    table.AddRow({std::to_string(queues), FmtMillis(mean),
                  FmtCount(stats.real_dist_calcs / queries.count()),
                  FmtCount(stats.lb_checks / queries.count()),
                  FmtCount(stats.queue_abandons / queries.count())});
  }
  table.Print();

  PrintPaperShape(
      "queue count trades best-first precision against queue contention; "
      "pruning work (real distances) grows as the global order degrades "
      "with more queues",
      "see real_dists/query trend in the table above");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace parisax

int main(int argc, char** argv) {
  return parisax::bench::Run(parisax::bench::ParseArgs(argc, argv));
}
