#include "bench/query_datasets_common.h"

#include <iomanip>
#include <sstream>

#include "index/ads_index.h"
#include "paris/paris_index.h"
#include "scan/ucr_scan.h"
#include "util/threading.h"
#include "util/timer.h"

namespace parisax {
namespace bench {

namespace {
constexpr size_t kDefaultSeries = 80000;
constexpr size_t kQuickSeries = 3000;
}  // namespace

int RunQueryDatasets(const BenchArgs& args, const DiskProfile& profile,
                     const std::string& figure_id,
                     const std::string& paper_claim) {
  const size_t series = SeriesOrDefault(args, kDefaultSeries, kQuickSeries);
  const size_t queries_n = QueriesOrDefault(args, 3, 1);
  const int workers = args.threads.empty() ? 4 : args.threads.back();

  PrintFigureHeader(figure_id,
                    "Exact query answering across datasets on " +
                        profile.name + ": UCR Suite vs ADS+ vs ParIS+");
  PrintHardwareNote();
  std::cout << "workload: " << series << " series per dataset, "
            << queries_n << " queries each\n";

  Table table({"dataset", "ucr", "ads+", "paris+", "paris+/ads+",
               "paris+/ucr", "pruned%"});
  std::string ads_summary, ucr_summary;
  for (const DatasetKind kind :
       {DatasetKind::kRandomWalk, DatasetKind::kSaldEeg,
        DatasetKind::kSeismicBurst}) {
    const size_t length = DefaultSeriesLength(kind);
    auto path = EnsureDatasetFile(kind, series, length, args.seed);
    if (!path.ok()) {
      std::cerr << path.status().ToString() << "\n";
      return 1;
    }
    const Dataset queries =
        MakeQueryWorkload(kind, queries_n, length, args.seed, series);

    // UCR Suite: streams the raw file for every query.
    double ucr_mean = 0.0;
    {
      const auto ucr_source =
          MustOpenFileSource(*path, profile, profile);
      WallTimer timer;
      for (SeriesId q = 0; q < queries.count(); ++q) {
        auto nn = UcrScanStream(*ucr_source, queries.series(q), 4096);
        if (!nn.ok()) {
          std::cerr << nn.status().ToString() << "\n";
          return 1;
        }
      }
      ucr_mean = timer.ElapsedSeconds() / queries.count();
    }

    SaxTreeOptions tree;
    // scale-consistent mapping of the paper's w=16 (see EXPERIMENTS.md)
    tree.segments = 8;
    tree.leaf_capacity = 128;
    tree.series_length = length;

    // ADS+: serial SIMS over the same storage profile.
    double ads_mean = 0.0;
    QueryStats ads_stats;
    {
      AdsBuildOptions build;
      build.tree = tree;
      build.leaf_storage_path = BenchDataDir() + "/figq_ads.leaves";
      auto index = AdsIndex::Build(
          MustOpenFileSource(*path, profile, DiskProfile::Instant()),
          build);
      if (!index.ok()) {
        std::cerr << index.status().ToString() << "\n";
        return 1;
      }
      WallTimer timer;
      for (SeriesId q = 0; q < queries.count(); ++q) {
        auto nn = (*index)->SearchExact(queries.series(q), {}, &ads_stats);
        if (!nn.ok()) {
          std::cerr << nn.status().ToString() << "\n";
          return 1;
        }
      }
      ads_mean = timer.ElapsedSeconds() / queries.count();
    }

    // ParIS+: parallel filter + parallel candidate refinement.
    double paris_mean = 0.0;
    {
      ParisBuildOptions build;
      build.num_workers = workers;
      build.plus_mode = true;
      build.tree = tree;
      build.leaf_storage_path = BenchDataDir() + "/figq_paris.leaves";
      auto index = ParisIndex::Build(
          MustOpenFileSource(*path, profile, DiskProfile::Instant()),
          build);
      if (!index.ok()) {
        std::cerr << index.status().ToString() << "\n";
        return 1;
      }
      ThreadPool pool(workers);
      ParisQueryOptions qopts;
      qopts.num_workers = workers;
      WallTimer timer;
      for (SeriesId q = 0; q < queries.count(); ++q) {
        auto nn = (*index)->SearchExact(queries.series(q), qopts, &pool);
        if (!nn.ok()) {
          std::cerr << nn.status().ToString() << "\n";
          return 1;
        }
      }
      paris_mean = timer.ElapsedSeconds() / queries.count();
    }

    const double pruned =
        100.0 * (1.0 - static_cast<double>(ads_stats.candidates) /
                           std::max<double>(1.0, ads_stats.lb_checks));
    std::ostringstream pruned_str;
    pruned_str << std::fixed << std::setprecision(1) << pruned << "%";
    table.AddRow({DatasetKindName(kind), FmtSeconds(ucr_mean),
                  FmtSeconds(ads_mean), FmtSeconds(paris_mean),
                  FmtRatio(ads_mean / std::max(1e-9, paris_mean)),
                  FmtRatio(ucr_mean / std::max(1e-9, paris_mean)),
                  pruned_str.str()});
    ads_summary += std::string(DatasetKindName(kind)) + " " +
                   FmtRatio(ads_mean / std::max(1e-9, paris_mean)) + "  ";
    ucr_summary += std::string(DatasetKindName(kind)) + " " +
                   FmtRatio(ucr_mean / std::max(1e-9, paris_mean)) + "  ";
  }
  table.Print();

  PrintPaperShape(paper_claim,
                  "ParIS+ speedup vs ADS+: " + ads_summary +
                      "| vs UCR Suite: " + ucr_summary);
  return 0;
}

}  // namespace bench
}  // namespace parisax
