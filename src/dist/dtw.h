// Dynamic Time Warping under a Sakoe-Chiba band, with the envelope and
// LB_Keogh machinery of the UCR Suite. This is the "current work" DTW
// extension of the paper's engines: banded DTW refinement guarded by a
// cascade of envelope-based lower bounds.
//
// Costs are *squared* point differences, so DTW values here are directly
// comparable to the squared Euclidean distances used everywhere else
// (with any band, the diagonal alignment is feasible: DTW <= ED^2).
#ifndef PARISAX_DIST_DTW_H_
#define PARISAX_DIST_DTW_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace parisax {

/// Unconstrained DTW by the full O(n*m) dynamic program. The reference
/// implementation the banded kernel is tested against; not for hot paths.
float DtwNaive(SeriesView a, SeriesView b);

/// Reusable DP-row scratch for DtwBand. Callers that run many DTW
/// refinements concurrently (the serve layer's per-query workers) own
/// one arena per worker per query instead of sharing mutable
/// thread_local state; the capacity sticks across calls so the allocator
/// stays out of the refinement loop.
struct DtwScratch {
  std::vector<float> prev, cur;
};

/// DTW restricted to the Sakoe-Chiba band |i - j| <= band, with
/// cumulative-bound early abandoning: when every reachable cell of a DP
/// row already costs >= `bound`, returns that row minimum (>= bound).
/// Otherwise returns the exact banded-DTW value.
///
/// band == 0 degenerates to squared Euclidean (diagonal-only alignment);
/// band >= max(len) is unconstrained DTW.
float DtwBand(SeriesView a, SeriesView b, size_t band, float bound,
              DtwScratch* scratch);

/// Convenience overload backed by a thread_local scratch arena.
float DtwBand(SeriesView a, SeriesView b, size_t band, float bound);

/// Keogh envelope of `series` for a Sakoe-Chiba radius `band`:
/// (*lower)[i] = min(series[i-band .. i+band]) clamped to the series,
/// (*upper)[i] = max(series[i-band .. i+band]). O(n) via monotonic deques.
void ComputeEnvelope(SeriesView series, size_t band,
                     std::vector<Value>* lower, std::vector<Value>* upper);

/// Per-PAA-segment min of the lower envelope and max of the upper
/// envelope (segments as in sax/paa.h). This is the envelope summary the
/// iSAX DTW lower bounds (sax/mindist.h) take as input.
void ComputeEnvelopePaaMinMax(SeriesView lower, SeriesView upper, int w,
                              float* lower_paa, float* upper_paa);

/// LB_Keogh (squared): sum of squared exceedances of `candidate` outside
/// the [lower, upper] envelope. Lower-bounds DtwBand for the envelope's
/// band. Early-abandons once the partial sum reaches `bound` (the
/// returned value is then >= bound but not the exact LB).
float LbKeoghSq(SeriesView lower, SeriesView upper, SeriesView candidate,
                float bound);

}  // namespace parisax

#endif  // PARISAX_DIST_DTW_H_
