#include "dist/znorm.h"

#include <cmath>

namespace parisax {

namespace {

/// Below this stddev a series is treated as constant: dividing by it
/// would amplify rounding noise into meaningless shapes.
constexpr double kConstantStddev = 1e-8;

}  // namespace

SeriesMoments ComputeMoments(SeriesView series) {
  SeriesMoments m;
  const size_t n = series.size();
  if (n == 0) return m;
  double sum = 0.0, sum_sq = 0.0;
  for (const float x : series) {
    sum += x;
    sum_sq += static_cast<double>(x) * x;
  }
  m.mean = sum / static_cast<double>(n);
  const double var = sum_sq / static_cast<double>(n) - m.mean * m.mean;
  m.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  return m;
}

void ZNormalize(MutableSeriesView series) {
  if (series.empty()) return;
  const SeriesMoments m = ComputeMoments(series);
  if (m.stddev < kConstantStddev) {
    for (float& x : series) x = 0.0f;
    return;
  }
  const float mean = static_cast<float>(m.mean);
  const float inv = static_cast<float>(1.0 / m.stddev);
  for (float& x : series) x = (x - mean) * inv;
}

bool IsZNormalized(SeriesView series, double tolerance) {
  if (series.empty()) return true;
  const SeriesMoments m = ComputeMoments(series);
  if (std::abs(m.mean) > tolerance) return false;
  // Constant-zero series (ZNormalize's image of constant input) pass.
  return std::abs(m.stddev - 1.0) <= tolerance || m.stddev <= tolerance;
}

}  // namespace parisax
