// Z-normalization: the preprocessing step every similarity-search system
// in this repository assumes. A z-normalized series has mean 0 and
// standard deviation 1, which makes Euclidean distance shift/scale
// invariant and is what the iSAX breakpoint table is calibrated for.
#ifndef PARISAX_DIST_ZNORM_H_
#define PARISAX_DIST_ZNORM_H_

#include "core/types.h"

namespace parisax {

/// Mean and (population) standard deviation of a series. Accumulated in
/// double so that long series do not lose precision in float sums.
struct SeriesMoments {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Computes mean and population stddev. Empty series: both are 0.
SeriesMoments ComputeMoments(SeriesView series);

/// Z-normalizes `series` in place: x -> (x - mean) / stddev.
/// Degenerate cases: an empty series is left untouched; a (numerically)
/// constant series becomes all zeros, the convention used by the iSAX
/// literature so that constant series map to the middle SAX region.
void ZNormalize(MutableSeriesView series);

/// True if the series already has mean ~0 and stddev ~1 within
/// `tolerance`. All-zero (and empty) series count as z-normalized —
/// they are the fixed point of ZNormalize on constant input.
bool IsZNormalized(SeriesView series, double tolerance = 1e-3);

}  // namespace parisax

#endif  // PARISAX_DIST_ZNORM_H_
