// Squared-Euclidean distance kernels: the refinement hot path of every
// engine in this repository. ParIS+/MESSI credit a large part of their
// query speedup to SIMD early-abandoning ED, reproduced here as an AVX2
// kernel behind a runtime-dispatched policy.
//
// All distances are *squared* Euclidean (see core/types.h); callers
// compare against squared bounds and take sqrt only at API boundaries.
#ifndef PARISAX_DIST_EUCLIDEAN_H_
#define PARISAX_DIST_EUCLIDEAN_H_

#include <cstddef>

#include "core/types.h"

namespace parisax {

/// Distance-kernel selection (the paper's D4 "SIMD vs no SIMD" ablation).
///  - kAuto:   AVX2 when compiled in and supported by the CPU, else scalar.
///  - kScalar: always the portable scalar kernel.
///  - kAvx2:   the AVX2 kernel when compiled in and supported by the CPU;
///             falls back to scalar otherwise (never faults).
enum class KernelPolicy { kAuto, kScalar, kAvx2 };

/// True if the AVX2 kernel is compiled in (PARISAX_HAVE_AVX2) and the
/// running CPU supports AVX2.
bool SimdAvailable();

/// Early-abandon checkpoint granularity shared by every abandoning
/// kernel (scalar ED, AVX2 ED, LB_Keogh): one bound comparison per this
/// many accumulated points.
inline constexpr size_t kEarlyAbandonBlock = 16;

/// Portable scalar kernel: sum of squared differences over n points.
float SquaredEuclideanScalar(const float* a, const float* b, size_t n);

#ifdef PARISAX_HAVE_AVX2
/// AVX2 kernel (8-lane FP32). Handles any n, including tails that are
/// not multiples of 8. Caller must ensure SimdAvailable() or know the
/// CPU supports AVX2.
float SquaredEuclideanAvx2(const float* a, const float* b, size_t n);

/// AVX2 early-abandoning kernel: keeps the vector accumulator live
/// across blocks and only reduces it horizontally at the abandon
/// checkpoints. Same contract as SquaredEuclideanEarlyAbandon.
float SquaredEuclideanEarlyAbandonAvx2(const float* a, const float* b,
                                       size_t n, float bound);
#endif

/// Full squared-ED through the selected kernel policy.
float SquaredEuclidean(const float* a, const float* b, size_t n,
                       KernelPolicy policy = KernelPolicy::kAuto);

inline float SquaredEuclidean(SeriesView a, SeriesView b,
                              KernelPolicy policy = KernelPolicy::kAuto) {
  return SquaredEuclidean(a.data(), b.data(), a.size(), policy);
}

/// Early-abandoning squared-ED: accumulates blockwise and stops as soon
/// as the partial sum reaches `bound`.
///
/// Contract: if the exact distance is < bound, returns the exact value;
/// otherwise returns some partial sum >= bound (callers only ever compare
/// the result against `bound`, so the inflated value is never observed as
/// a distance). A bound <= 0 abandons immediately.
float SquaredEuclideanEarlyAbandon(const float* a, const float* b, size_t n,
                                   float bound,
                                   KernelPolicy policy = KernelPolicy::kAuto);

inline float SquaredEuclideanEarlyAbandon(
    SeriesView a, SeriesView b, float bound,
    KernelPolicy policy = KernelPolicy::kAuto) {
  return SquaredEuclideanEarlyAbandon(a.data(), b.data(), a.size(), bound,
                                      policy);
}

}  // namespace parisax

#endif  // PARISAX_DIST_EUCLIDEAN_H_
