// Scalar kernel and policy dispatch. This translation unit is compiled
// WITHOUT -mavx2 so that scalar code never emits AVX2 instructions and
// the kAuto/kScalar paths stay safe on CPUs without AVX2; the AVX2
// kernel lives in euclidean_avx2.cpp.
#include "dist/euclidean.h"

#include <algorithm>

namespace parisax {

namespace {

inline bool UseAvx2(KernelPolicy policy) {
  switch (policy) {
    case KernelPolicy::kScalar:
      return false;
    case KernelPolicy::kAuto:
    case KernelPolicy::kAvx2:
      return SimdAvailable();
  }
  return false;
}

inline float KernelRun(const float* a, const float* b, size_t n,
                       bool use_avx2) {
#ifdef PARISAX_HAVE_AVX2
  if (use_avx2) return SquaredEuclideanAvx2(a, b, n);
#else
  (void)use_avx2;
#endif
  return SquaredEuclideanScalar(a, b, n);
}

}  // namespace

bool SimdAvailable() {
#ifdef PARISAX_HAVE_AVX2
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
#else
  return false;
#endif
}

float SquaredEuclideanScalar(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float SquaredEuclidean(const float* a, const float* b, size_t n,
                       KernelPolicy policy) {
  return KernelRun(a, b, n, UseAvx2(policy));
}

float SquaredEuclideanEarlyAbandon(const float* a, const float* b, size_t n,
                                   float bound, KernelPolicy policy) {
#ifdef PARISAX_HAVE_AVX2
  if (UseAvx2(policy)) {
    return SquaredEuclideanEarlyAbandonAvx2(a, b, n, bound);
  }
#else
  (void)policy;
#endif
  float sum = 0.0f;
  size_t i = 0;
  while (i < n) {
    if (sum >= bound) return sum;  // abandoned: result is >= bound
    const size_t len = std::min(kEarlyAbandonBlock, n - i);
    sum += SquaredEuclideanScalar(a + i, b + i, len);
    i += len;
  }
  return sum;
}

}  // namespace parisax
