#include "dist/dtw.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

#include "dist/euclidean.h"  // kEarlyAbandonBlock
#include "sax/paa.h"

namespace parisax {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

inline float SqDiff(float x, float y) {
  const float d = x - y;
  return d * d;
}

}  // namespace

float DtwNaive(SeriesView a, SeriesView b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 0.0f;
  std::vector<float> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0.0f;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = kInf;
    for (size_t j = 1; j <= m; ++j) {
      const float step = std::min({prev[j], cur[j - 1], prev[j - 1]});
      cur[j] = SqDiff(a[i - 1], b[j - 1]) + step;
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

float DtwBand(SeriesView a, SeriesView b, size_t band, float bound) {
  // Per-thread fallback arena for callers without per-query scratch:
  // this runs once per surviving candidate in the DTW refinement loops,
  // and a per-call allocation would put the allocator in that hot path.
  static thread_local DtwScratch scratch;
  return DtwBand(a, b, band, bound, &scratch);
}

float DtwBand(SeriesView a, SeriesView b, size_t band, float bound,
              DtwScratch* scratch) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 0.0f;
  // Rows are 1-based over `a`, columns over `b`; cell (i, j) is reachable
  // iff |i - j| <= band. Cells outside the band stay +inf so the generic
  // three-way min needs no special-casing at the window edges.
  std::vector<float>& prev = scratch->prev;
  std::vector<float>& cur = scratch->cur;
  prev.assign(m + 1, kInf);
  cur.assign(m + 1, kInf);
  prev[0] = 0.0f;
  for (size_t i = 1; i <= n; ++i) {
    const size_t lo = i > band ? i - band : 1;
    const size_t hi = std::min(m, i + band);
    if (lo > hi) return kInf;  // band cannot reach column range (n >> m)
    // Reset only the cells this row can read or expose to the next row:
    // this iteration reads cur[lo-1 .. hi-1], the next one (window
    // shifted by at most one column) reads this row at [lo-1 .. hi+1].
    // Clearing the whole row would cost O(m) per row and erase the
    // O(n*band) complexity the band buys.
    std::fill(cur.begin() + (lo - 1),
              cur.begin() + (std::min(m, hi + 1) + 1), kInf);
    float row_min = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      const float step = std::min({prev[j], cur[j - 1], prev[j - 1]});
      const float c = SqDiff(a[i - 1], b[j - 1]) + step;
      cur[j] = c;
      row_min = std::min(row_min, c);
    }
    // Cumulative early abandon: every continuation of this row can only
    // grow, so once the cheapest reachable cell is >= bound, so is the
    // final alignment cost.
    if (row_min >= bound) return row_min;
    std::swap(prev, cur);
  }
  return prev[m];
}

void ComputeEnvelope(SeriesView series, size_t band,
                     std::vector<Value>* lower, std::vector<Value>* upper) {
  const size_t n = series.size();
  lower->assign(n, 0.0f);
  upper->assign(n, 0.0f);
  if (n == 0) return;
  // Monotonic deques of indices (Lemire's streaming min/max): front is
  // the min/max of the current window [i - band, i + band] ∩ [0, n).
  std::deque<size_t> min_q, max_q;
  const auto push = [&](size_t j) {
    while (!min_q.empty() && series[min_q.back()] >= series[j]) {
      min_q.pop_back();
    }
    min_q.push_back(j);
    while (!max_q.empty() && series[max_q.back()] <= series[j]) {
      max_q.pop_back();
    }
    max_q.push_back(j);
  };
  for (size_t j = 0; j < n && j <= band; ++j) push(j);
  for (size_t i = 0; i < n; ++i) {
    (*lower)[i] = series[min_q.front()];
    (*upper)[i] = series[max_q.front()];
    if (i + band + 1 < n) push(i + band + 1);
    if (i >= band) {  // index i - band leaves the window of i + 1
      if (min_q.front() == i - band) min_q.pop_front();
      if (max_q.front() == i - band) max_q.pop_front();
    }
  }
}

void ComputeEnvelopePaaMinMax(SeriesView lower, SeriesView upper, int w,
                              float* lower_paa, float* upper_paa) {
  const size_t n = lower.size();
  // Same segment math as ComputePaa, same precondition: w > n would
  // produce empty segments and out-of-bounds reads below.
  assert(w >= 1 && static_cast<size_t>(w) <= n);
  for (int s = 0; s < w; ++s) {
    const size_t begin = PaaSegmentBegin(n, w, s);
    const size_t end = PaaSegmentBegin(n, w, s + 1);
    float lo = lower[begin], hi = upper[begin];
    for (size_t j = begin + 1; j < end; ++j) {
      lo = std::min(lo, lower[j]);
      hi = std::max(hi, upper[j]);
    }
    lower_paa[s] = lo;
    upper_paa[s] = hi;
  }
}

float LbKeoghSq(SeriesView lower, SeriesView upper, SeriesView candidate,
                float bound) {
  const size_t n = candidate.size();
  float sum = 0.0f;
  size_t i = 0;
  while (i < n) {
    if (sum >= bound) return sum;  // abandoned: result is >= bound
    const size_t end = std::min(n, i + kEarlyAbandonBlock);
    for (; i < end; ++i) {
      const float x = candidate[i];
      if (x > upper[i]) {
        sum += SqDiff(x, upper[i]);
      } else if (x < lower[i]) {
        sum += SqDiff(x, lower[i]);
      }
    }
  }
  return sum;
}

}  // namespace parisax
