// AVX2 squared-Euclidean kernel. This is the only translation unit in
// the library compiled with -mavx2 (see CMakeLists.txt), so AVX2
// instructions cannot leak into code paths that run on non-AVX2 CPUs.
// We deliberately avoid FMA intrinsics: -mavx2 does not imply FMA, and
// the runtime dispatch in euclidean.cpp only checks for AVX2.
#include "dist/euclidean.h"

#if defined(PARISAX_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace parisax {

namespace {

inline float HorizontalSum(__m256 acc) {
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_hadd_ps(s, s);
  s = _mm_hadd_ps(s, s);
  return _mm_cvtss_f32(s);
}

}  // namespace

float SquaredEuclideanAvx2(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256 d = _mm256_sub_ps(va, vb);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
  }
  float sum = HorizontalSum(acc);
  for (; i < n; ++i) {  // tail: n not a multiple of 8
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float SquaredEuclideanEarlyAbandonAvx2(const float* a, const float* b,
                                       size_t n, float bound) {
  if (bound <= 0.0f) return 0.0f;  // every partial sum already >= bound
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  // Two vectors per abandon checkpoint; the accumulator stays in
  // registers and is only reduced horizontally for the bound comparison.
  static_assert(kEarlyAbandonBlock == 16,
                "the unrolled pair below assumes 16-point checkpoints");
  for (; i + kEarlyAbandonBlock <= n; i += kEarlyAbandonBlock) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                    _mm256_loadu_ps(b + i));
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                                    _mm256_loadu_ps(b + i + 8));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d0, d0));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d1, d1));
    const float partial = HorizontalSum(acc);
    if (partial >= bound) return partial;  // abandoned: >= bound
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                   _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
  }
  float sum = HorizontalSum(acc);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace parisax

#endif  // PARISAX_HAVE_AVX2 && __AVX2__
