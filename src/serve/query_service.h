// Concurrent query service: batched / streamed multi-query execution
// over an already-built search backend (a single Engine or a
// ShardedEngine — the service only speaks SearchBackend).
//
// ParIS+/MESSI parallelize *one* query at a time (intra-query worker
// fan-out); a system serving heavy traffic also needs inter-query
// concurrency. QueryService schedules many in-flight queries over one
// set of serve workers with a work-stealing per-query task model:
//
//   kThroughput  every query runs whole-query-per-worker on a per-query
//                InlineExecutor -- N workers answer N queries at once
//                with zero cross-query synchronization. Maximizes
//                queries/sec under load.
//   kLatency     every query takes the paper's intra-query parallel
//                path over the engine's full thread pool; queries
//                serialize on the pool. Minimizes single-query latency.
//   kAuto        per-query choice: a query whose estimated cost clears
//                `parallel_cost_threshold` runs the parallel path when
//                the service is otherwise idle; everything else runs
//                whole-query-per-worker.
//
// Submitted tasks land in per-worker deques; an idle worker first drains
// its own deque, then steals from its siblings, so bursty clients cannot
// strand work behind a slow queue. A thread blocked in SearchBatch helps
// execute its own batch instead of just waiting.
#ifndef PARISAX_SERVE_QUERY_SERVICE_H_
#define PARISAX_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/search_backend.h"
#include "core/types.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

struct QueryServiceOptions {
  /// Serve workers (concurrent whole-query lanes). The engine's own
  /// pool additionally provides intra-query parallelism for the
  /// kLatency path.
  int num_threads = 4;
  /// Default scheduling policy; Submit can override per query.
  SchedulingPolicy policy = SchedulingPolicy::kAuto;
  /// kAuto: a query whose estimated cost (point-pair kernel
  /// evaluations) reaches this takes the intra-query parallel path when
  /// the service is otherwise idle. The default (64M point pairs, ~a
  /// 256K x 256 collection) keeps small queries in throughput mode.
  double parallel_cost_threshold = 64.0 * 1024.0 * 1024.0;
  /// Admission control: the most queries TrySubmit accepts before
  /// completing some (queued + executing). Further TrySubmits are
  /// rejected with kOverloaded — typed backpressure instead of an
  /// unbounded queue. 0: no cap. Plain Submit never rejects.
  size_t max_inflight = 0;
};

/// Dequeue order within a worker's deque. High-priority tasks jump the
/// line; admission control and deadlines apply to both alike.
enum class QueryPriority {
  kNormal,  ///< FIFO service order
  kHigh,    ///< served before queued normal tasks
};

/// Per-submission controls for TrySubmit (and the Submit overload).
struct SubmitOptions {
  /// Overrides the service's default scheduling policy for this query.
  std::optional<SchedulingPolicy> policy;
  QueryPriority priority = QueryPriority::kNormal;
  /// Relative deadline: the service wraps the query in a
  /// CancellationToken expiring `timeout` after submission. A task
  /// whose deadline passes while queued completes with
  /// kDeadlineExceeded at dequeue without running; one that expires
  /// mid-search is cancelled at leaf/batch granularity by the index
  /// engines. Zero: no deadline. Ignored when the request already
  /// carries a caller-owned `cancel` token (that token governs).
  std::chrono::nanoseconds timeout{0};
};

/// Service counters, published as one coherent snapshot: stats() reads
/// every field under the same lock the submit/complete paths update
/// them under, so cross-field invariants hold in any snapshot
/// (submitted == completed + inflight; peak_inflight never exceeds the
/// admission cap). `queued` alone is sampled from the scheduler's
/// wake counter at snapshot time.
struct ServeStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  /// Queries answered whole-query-per-worker (throughput path).
  uint64_t ran_inline = 0;
  /// Queries answered via the intra-query parallel path.
  uint64_t ran_parallel = 0;
  /// Tasks executed by a worker other than the one they were queued on.
  uint64_t steals = 0;
  /// TrySubmit rejections: the in-flight cap was reached (kOverloaded).
  uint64_t rejected_overload = 0;
  /// Tasks whose deadline passed while queued: completed with
  /// kDeadlineExceeded at dequeue, without touching the engine.
  uint64_t expired_in_queue = 0;
  /// Queries accepted but not yet completed, at snapshot time.
  uint64_t inflight = 0;
  /// Highest `inflight` ever observed.
  uint64_t peak_inflight = 0;
  /// Tasks sitting in deques (accepted, not yet picked up), at
  /// snapshot time.
  uint64_t queued = 0;
};

class QueryService {
 public:
  /// Starts `options.num_threads` serve workers over `backend`, which
  /// must outlive the service. While a service is attached, route
  /// queries through it (or through the backend's thread-safe Search,
  /// which serializes on the same pool the kLatency path uses).
  static Result<std::unique_ptr<QueryService>> Create(
      SearchBackend* backend, const QueryServiceOptions& options);

  /// Finishes every accepted query, then stops the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues one query; the returned future yields its response. The
  /// query values are copied, so the view only needs to live until
  /// Submit returns. `policy` overrides the service default for this
  /// query.
  std::future<Result<SearchResponse>> Submit(
      SeriesView query, const SearchRequest& request = {},
      std::optional<SchedulingPolicy> policy = std::nullopt);

  /// As Submit with per-query priority and deadline, and subject to
  /// admission control: when `options().max_inflight` queries are
  /// already in flight the submission is rejected with kOverloaded
  /// (nothing is enqueued; the caller should shed or retry later).
  Result<std::future<Result<SearchResponse>>> TrySubmit(
      SeriesView query, const SearchRequest& request = {},
      const SubmitOptions& submit = {});

  /// Answers a batch of queries concurrently; responses are in query
  /// order. The calling thread helps execute pending tasks instead of
  /// blocking. Fails on the first failing query.
  Result<std::vector<SearchResponse>> SearchBatch(
      const std::vector<SeriesView>& queries,
      const SearchRequest& request = {},
      std::optional<SchedulingPolicy> policy = std::nullopt);

  /// Blocks until every query submitted so far has completed.
  void Drain();

  ServeStats stats() const;
  const QueryServiceOptions& options() const { return options_; }

 private:
  struct Task {
    std::vector<Value> query;
    SearchRequest request;
    SchedulingPolicy policy = SchedulingPolicy::kAuto;
    QueryPriority priority = QueryPriority::kNormal;
    /// Deadline token the service created for this task (request.cancel
    /// points at it); heap-allocated so moves keep the pointer valid.
    std::shared_ptr<CancellationToken> cancel;
    std::promise<Result<SearchResponse>> promise;
  };

  /// One worker's deque; siblings steal from the back under `mu`.
  struct Shard {
    Mutex mu{"QueryService::Shard::mu", LockRank::kServeDeque};
    std::deque<Task> tasks PARISAX_GUARDED_BY(mu);
  };

  QueryService(SearchBackend* backend, const QueryServiceOptions& options);

  /// Shared Submit/TrySubmit body; `enforce_cap` selects admission
  /// control. Returns kOverloaded only when it is enforced.
  Result<std::future<Result<SearchResponse>>> SubmitInternal(
      SeriesView query, const SearchRequest& request,
      const SubmitOptions& submit, bool enforce_cap);

  void WorkerLoop(int worker);
  /// Pops from shard `worker` or steals from a sibling; false when every
  /// deque is empty.
  bool TryAcquire(int worker, Task* task);
  void Execute(Task task);
  /// The kAuto cost heuristic: estimated point-pair kernel evaluations
  /// for one query against the whole collection.
  double EstimateCost(const SearchRequest& request) const;

  SearchBackend* const backend_;
  const QueryServiceOptions options_;

  std::vector<Shard> shards_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> next_shard_{0};

  /// Tasks sitting in deques (not yet acquired). Guards the sleep/wake
  /// protocol together with wake_mu_.
  std::atomic<size_t> queued_{0};
  Mutex wake_mu_{"QueryService::wake_mu_", LockRank::kServeWake};
  CondVar wake_cv_;
  bool stopping_ PARISAX_GUARDED_BY(wake_mu_) = false;

  TaskGroup inflight_;  // submitted but not yet completed

  /// The one coherent counter block: every submit/steal/complete
  /// transition updates it under stats_mu_ (innermost lock, never held
  /// across engine calls), and stats() copies it whole — no
  /// mid-update cross-field tearing. Admission control piggybacks on
  /// the same lock, so `inflight` can never overshoot the cap.
  mutable Mutex stats_mu_{"QueryService::stats_mu_", LockRank::kServeStats};
  ServeStats stats_ PARISAX_GUARDED_BY(stats_mu_);
};

}  // namespace parisax

#endif  // PARISAX_SERVE_QUERY_SERVICE_H_
