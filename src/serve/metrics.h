// Serving metrics: counters, gauges and histograms in a registry that
// renders the Prometheus text exposition format.
//
// The server answers a STATS frame with RenderPrometheusText() output,
// so any Prometheus-compatible scraper (or a human with netcat) can
// watch admission rejections, queue depths, append epochs and latency
// distributions live. The registry is also introspectable
// (MetricsRegistry::List), which is what tools/dump_metrics uses to
// generate docs/metrics.md — the metric reference cannot drift from the
// code because CI diffs the committed doc against the binary's output,
// mirroring the capabilities-doc gate.
//
// Concurrency: instrument updates are lock-free atomics; registration
// and rendering take the registry mutex. Families hand out one child
// instrument per label-value tuple; children live as long as the
// registry and are safe to cache and update from any thread.
#ifndef PARISAX_SERVE_METRICS_H_
#define PARISAX_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace parisax {

class QueryService;
class SearchBackend;

/// A monotonically increasing count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Monotonic set: raises the stored value to `v` (used when mirroring
  /// an external monotonic counter like ServeStats into the registry at
  /// scrape time). Never lowers it.
  void UpdateTo(uint64_t v) {
    uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (sampled state: queue depth, open
/// connections).
class Gauge {
 public:
  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }
  void Add(double delta) {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    for (;;) {
      const uint64_t next = Encode(Decode(cur) + delta);
      if (bits_.compare_exchange_weak(cur, next,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }
  double Value() const {
    return Decode(bits_.load(std::memory_order_relaxed));
  }

 private:
  static uint64_t Encode(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double Decode(uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::atomic<uint64_t> bits_{0};  // IEEE-754 bits of 0.0
};

/// A distribution over fixed upper-bound buckets (Prometheus histogram
/// semantics: cumulative `le` buckets plus sum and count).
class Histogram {
 public:
  /// `upper_bounds` must be ascending; an implicit +Inf bucket is
  /// appended.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket (non-cumulative) counts, one per upper bound plus the
  /// +Inf bucket.
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // one per bound + Inf
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // IEEE-754 bits, CAS-accumulated

  friend class MetricsRegistry;
};

/// Default latency buckets (seconds): 100us .. ~100s, ~x3 steps.
std::vector<double> DefaultLatencySecondsBuckets();

enum class MetricType { kCounter, kGauge, kHistogram };

/// Returns "counter", "gauge" or "histogram".
const char* MetricTypeName(MetricType type);

/// One registered metric family: a name, help text, a label schema, and
/// one child instrument per label-value tuple. Untyped base; the
/// registry returns the typed wrappers below.
struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<std::string> label_names;
  /// Histogram bucket bounds (empty for counters/gauges).
  std::vector<double> buckets;

  /// Children keyed by label values (one entry with the empty key for
  /// an unlabeled family). Guarded by the registry mutex on insert;
  /// the instruments themselves are thread-safe.
  std::map<std::vector<std::string>, std::unique_ptr<Counter>> counters;
  std::map<std::vector<std::string>, std::unique_ptr<Gauge>> gauges;
  std::map<std::vector<std::string>, std::unique_ptr<Histogram>> histograms;
};

/// Owns every metric family of one server. Registration is idempotent
/// by name (same name returns the same family).
class MetricsRegistry {
 public:
  /// Registers (or returns) a counter family. `label_names` empty: the
  /// family is a single unlabeled counter, returned by WithLabels({}).
  Counter* AddCounter(const std::string& name, const std::string& help);
  /// Labeled variant: call CounterWithLabels to get per-tuple children.
  MetricFamily* AddCounterFamily(const std::string& name,
                                 const std::string& help,
                                 std::vector<std::string> label_names);
  Gauge* AddGauge(const std::string& name, const std::string& help);
  Histogram* AddHistogram(const std::string& name, const std::string& help,
                          std::vector<double> upper_bounds);
  MetricFamily* AddHistogramFamily(const std::string& name,
                                   const std::string& help,
                                   std::vector<std::string> label_names,
                                   std::vector<double> upper_bounds);

  /// The child counter/histogram for one label-value tuple (created on
  /// first use; `values` must match the family's label_names length).
  Counter* CounterWithLabels(MetricFamily* family,
                             std::vector<std::string> values);
  Histogram* HistogramWithLabels(MetricFamily* family,
                                 std::vector<std::string> values);

  /// The full Prometheus text exposition (HELP/TYPE headers, one line
  /// per child sample, histograms as cumulative le-buckets + sum +
  /// count).
  std::string RenderPrometheusText() const;

  /// Introspection for the generated metric reference: every family in
  /// registration order.
  struct MetricInfo {
    std::string name;
    MetricType type;
    std::vector<std::string> label_names;
    std::string help;
  };
  std::vector<MetricInfo> List() const;

 private:
  MetricFamily* AddFamily(const std::string& name, const std::string& help,
                          MetricType type,
                          std::vector<std::string> label_names,
                          std::vector<double> buckets);

  mutable Mutex mu_{"MetricsRegistry::mu_", LockRank::kMetrics};
  /// Registration order preserved for rendering and List().
  std::vector<std::unique_ptr<MetricFamily>> families_
      PARISAX_GUARDED_BY(mu_);
};

/// The standard parisax_server metric set, registered against one
/// registry. Construction registers every family (this is what
/// tools/dump_metrics dumps); the server increments the request-path
/// instruments inline and mirrors engine/service state via Update()
/// right before each scrape.
struct ServerMetrics {
  explicit ServerMetrics(MetricsRegistry* registry);

  /// Mirrors backend + service state into the registered gauges and
  /// counters (ServeStats arrives as one coherent snapshot). Call
  /// before rendering; either pointer may be null.
  void Update(const SearchBackend* backend, QueryService* service);

  MetricsRegistry* registry;

  // Request path (incremented inline by the server).
  MetricFamily* requests_total;       ///< label: type (query|knn|...)
  MetricFamily* responses_total;      ///< label: code (ok|overloaded|...)
  Counter* frame_errors_total;
  Counter* bytes_read_total;
  Counter* bytes_written_total;
  Gauge* connections_open;
  MetricFamily* request_seconds;      ///< label: type; accepted requests

  // Query service (mirrored from the coherent ServeStats snapshot).
  Counter* queries_submitted_total;
  Counter* queries_completed_total;
  Counter* queries_rejected_overload_total;
  Counter* queries_expired_in_queue_total;
  Counter* query_steals_total;
  Counter* queries_ran_inline_total;
  Counter* queries_ran_parallel_total;
  Gauge* queries_inflight;
  Gauge* queries_inflight_peak;
  Gauge* queue_depth;

  // Engine state.
  Gauge* series_count;
  Gauge* series_length;
  Counter* append_epoch_total;
  Counter* compactions_total;
};

}  // namespace parisax

#endif  // PARISAX_SERVE_METRICS_H_
