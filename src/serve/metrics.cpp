#include "serve/metrics.h"

#include <cassert>
#include <cstdio>
#include <utility>

#include "core/search_backend.h"
#include "serve/query_service.h"

namespace parisax {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// One sample line: `name{k1="v1",k2="v2"} value`.
void AppendSample(std::string* out, const std::string& name,
                  const std::vector<std::string>& label_names,
                  const std::vector<std::string>& label_values,
                  const std::string& extra_label_name,
                  const std::string& extra_label_value,
                  const std::string& value) {
  *out += name;
  const bool has_labels =
      !label_names.empty() || !extra_label_name.empty();
  if (has_labels) {
    *out += '{';
    bool first = true;
    for (size_t i = 0; i < label_names.size(); ++i) {
      if (!first) *out += ',';
      first = false;
      *out += label_names[i];
      *out += "=\"";
      *out += label_values[i];
      *out += '"';
    }
    if (!extra_label_name.empty()) {
      if (!first) *out += ',';
      *out += extra_label_name;
      *out += "=\"";
      *out += extra_label_value;
      *out += '"';
    }
    *out += '}';
  }
  *out += ' ';
  *out += value;
  *out += '\n';
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1) {}

void Histogram::Observe(double v) {
  size_t bucket = upper_bounds_.size();  // +Inf by default
  for (size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (v <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double sum;
    __builtin_memcpy(&sum, &cur, sizeof(sum));
    sum += v;
    uint64_t next;
    __builtin_memcpy(&next, &sum, sizeof(next));
    if (sum_bits_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Sum() const {
  const uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double sum;
  __builtin_memcpy(&sum, &bits, sizeof(sum));
  return sum;
}

std::vector<double> DefaultLatencySecondsBuckets() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
          30.0, 100.0};
}

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricFamily* MetricsRegistry::AddFamily(
    const std::string& name, const std::string& help, MetricType type,
    std::vector<std::string> label_names, std::vector<double> buckets) {
  MutexLock lock(&mu_);
  for (const auto& family : families_) {
    if (family->name == name) {
      assert(family->type == type);
      return family.get();
    }
  }
  auto family = std::make_unique<MetricFamily>();
  family->name = name;
  family->help = help;
  family->type = type;
  family->label_names = std::move(label_names);
  family->buckets = std::move(buckets);
  families_.push_back(std::move(family));
  return families_.back().get();
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help) {
  MetricFamily* family =
      AddFamily(name, help, MetricType::kCounter, {}, {});
  return CounterWithLabels(family, {});
}

MetricFamily* MetricsRegistry::AddCounterFamily(
    const std::string& name, const std::string& help,
    std::vector<std::string> label_names) {
  return AddFamily(name, help, MetricType::kCounter,
                   std::move(label_names), {});
}

Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help) {
  MetricFamily* family = AddFamily(name, help, MetricType::kGauge, {}, {});
  MutexLock lock(&mu_);
  auto& slot = family->gauges[{}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> upper_bounds) {
  MetricFamily* family = AddFamily(name, help, MetricType::kHistogram, {},
                                   upper_bounds);
  MutexLock lock(&mu_);
  auto& slot = family->histograms[{}];
  if (slot == nullptr) slot = std::make_unique<Histogram>(upper_bounds);
  return slot.get();
}

MetricFamily* MetricsRegistry::AddHistogramFamily(
    const std::string& name, const std::string& help,
    std::vector<std::string> label_names,
    std::vector<double> upper_bounds) {
  return AddFamily(name, help, MetricType::kHistogram,
                   std::move(label_names), std::move(upper_bounds));
}

Counter* MetricsRegistry::CounterWithLabels(
    MetricFamily* family, std::vector<std::string> values) {
  assert(family->type == MetricType::kCounter);
  assert(values.size() == family->label_names.size());
  MutexLock lock(&mu_);
  auto& slot = family->counters[std::move(values)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::HistogramWithLabels(
    MetricFamily* family, std::vector<std::string> values) {
  assert(family->type == MetricType::kHistogram);
  assert(values.size() == family->label_names.size());
  MutexLock lock(&mu_);
  auto& slot = family->histograms[std::move(values)];
  if (slot == nullptr) slot = std::make_unique<Histogram>(family->buckets);
  return slot.get();
}

std::string MetricsRegistry::RenderPrometheusText() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& family : families_) {
    out += "# HELP " + family->name + " " + family->help + "\n";
    out += "# TYPE " + family->name + " " +
           MetricTypeName(family->type) + "\n";
    switch (family->type) {
      case MetricType::kCounter:
        for (const auto& [values, counter] : family->counters) {
          AppendSample(&out, family->name, family->label_names, values,
                       "", "", std::to_string(counter->Value()));
        }
        break;
      case MetricType::kGauge:
        for (const auto& [values, gauge] : family->gauges) {
          AppendSample(&out, family->name, family->label_names, values,
                       "", "", FormatDouble(gauge->Value()));
        }
        break;
      case MetricType::kHistogram:
        for (const auto& [values, histogram] : family->histograms) {
          const std::vector<uint64_t> counts = histogram->BucketCounts();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < counts.size(); ++i) {
            cumulative += counts[i];
            const std::string le =
                i < histogram->upper_bounds().size()
                    ? FormatDouble(histogram->upper_bounds()[i])
                    : "+Inf";
            AppendSample(&out, family->name + "_bucket",
                         family->label_names, values, "le", le,
                         std::to_string(cumulative));
          }
          AppendSample(&out, family->name + "_sum", family->label_names,
                       values, "", "", FormatDouble(histogram->Sum()));
          AppendSample(&out, family->name + "_count",
                       family->label_names, values, "", "",
                       std::to_string(histogram->Count()));
        }
        break;
    }
  }
  return out;
}

std::vector<MetricsRegistry::MetricInfo> MetricsRegistry::List() const {
  MutexLock lock(&mu_);
  std::vector<MetricInfo> infos;
  infos.reserve(families_.size());
  for (const auto& family : families_) {
    infos.push_back(MetricInfo{family->name, family->type,
                               family->label_names, family->help});
  }
  return infos;
}

ServerMetrics::ServerMetrics(MetricsRegistry* registry)
    : registry(registry) {
  requests_total = registry->AddCounterFamily(
      "parisax_requests_total",
      "Frames received, by request type "
      "(query|knn|dtw|append|stats|health).",
      {"type"});
  responses_total = registry->AddCounterFamily(
      "parisax_responses_total",
      "Responses sent, by outcome code (ok plus every Status code name, "
      "lowercased, e.g. overloaded|deadline_exceeded|invalid_argument).",
      {"code"});
  frame_errors_total = registry->AddCounter(
      "parisax_frame_errors_total",
      "Malformed frames (bad magic, bad version, oversized or truncated "
      "bodies); each also closes or errors its connection.");
  bytes_read_total = registry->AddCounter(
      "parisax_bytes_read_total", "Bytes read from client connections.");
  bytes_written_total = registry->AddCounter(
      "parisax_bytes_written_total",
      "Bytes written to client connections.");
  connections_open = registry->AddGauge(
      "parisax_connections_open", "Client connections currently open.");
  request_seconds = registry->AddHistogramFamily(
      "parisax_request_seconds",
      "End-to-end server-side latency of accepted requests (decode to "
      "response write), by request type.",
      {"type"}, DefaultLatencySecondsBuckets());

  queries_submitted_total = registry->AddCounter(
      "parisax_queries_submitted_total",
      "Queries accepted into the query service.");
  queries_completed_total = registry->AddCounter(
      "parisax_queries_completed_total",
      "Queries completed (successes and typed failures).");
  queries_rejected_overload_total = registry->AddCounter(
      "parisax_queries_rejected_overload_total",
      "Admission-control rejections: the in-flight cap was reached "
      "(kOverloaded).");
  queries_expired_in_queue_total = registry->AddCounter(
      "parisax_queries_expired_in_queue_total",
      "Queries whose deadline passed while queued; completed with "
      "kDeadlineExceeded at dequeue without running.");
  query_steals_total = registry->AddCounter(
      "parisax_query_steals_total",
      "Tasks executed by a worker other than the one they were queued "
      "on (work stealing).");
  queries_ran_inline_total = registry->AddCounter(
      "parisax_queries_ran_inline_total",
      "Queries answered whole-query-per-worker (throughput path).");
  queries_ran_parallel_total = registry->AddCounter(
      "parisax_queries_ran_parallel_total",
      "Queries answered via the intra-query parallel path.");
  queries_inflight = registry->AddGauge(
      "parisax_queries_inflight",
      "Queries accepted but not yet completed.");
  queries_inflight_peak = registry->AddGauge(
      "parisax_queries_inflight_peak",
      "Highest in-flight query count observed (bounded by the admission "
      "cap when one is set).");
  queue_depth = registry->AddGauge(
      "parisax_queue_depth",
      "Tasks sitting in serve-worker deques, not yet picked up.");

  series_count = registry->AddGauge(
      "parisax_series_count", "Series in the indexed collection.");
  series_length = registry->AddGauge(
      "parisax_series_length", "Points per series.");
  append_epoch_total = registry->AddCounter(
      "parisax_append_epoch_total",
      "Completed Engine::Append calls; each published a new index epoch "
      "to queries atomically.");
  compactions_total = registry->AddCounter(
      "parisax_compactions_total",
      "Compaction actions (background passes and synchronous folds) "
      "that published a merged or folded snapshot.");
}

void ServerMetrics::Update(const SearchBackend* backend,
                           QueryService* service) {
  if (backend != nullptr) {
    series_count->Set(static_cast<double>(backend->series_count()));
    series_length->Set(static_cast<double>(backend->series_length()));
    append_epoch_total->UpdateTo(backend->append_epoch());
    compactions_total->UpdateTo(backend->compaction_count());
  }
  if (service != nullptr) {
    const ServeStats s = service->stats();
    queries_submitted_total->UpdateTo(s.submitted);
    queries_completed_total->UpdateTo(s.completed);
    queries_rejected_overload_total->UpdateTo(s.rejected_overload);
    queries_expired_in_queue_total->UpdateTo(s.expired_in_queue);
    query_steals_total->UpdateTo(s.steals);
    queries_ran_inline_total->UpdateTo(s.ran_inline);
    queries_ran_parallel_total->UpdateTo(s.ran_parallel);
    queries_inflight->Set(static_cast<double>(s.inflight));
    queries_inflight_peak->Set(static_cast<double>(s.peak_inflight));
    queue_depth->Set(static_cast<double>(s.queued));
  }
}

}  // namespace parisax
