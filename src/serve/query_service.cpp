#include "serve/query_service.h"

#include <algorithm>
#include <string>
#include <utility>

namespace parisax {

Result<std::unique_ptr<QueryService>> QueryService::Create(
    SearchBackend* backend, const QueryServiceOptions& options) {
  if (backend == nullptr) {
    return Status::InvalidArgument("backend must not be null");
  }
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (options.parallel_cost_threshold <= 0.0) {
    return Status::InvalidArgument(
        "parallel_cost_threshold must be positive");
  }
  return std::unique_ptr<QueryService>(new QueryService(backend, options));
}

QueryService::QueryService(SearchBackend* backend,
                           const QueryServiceOptions& options)
    : backend_(backend), options_(options), shards_(options.num_threads) {
  workers_.reserve(options_.num_threads);
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryService::~QueryService() {
  // Finish accepted work first so no promise is left unfulfilled.
  Drain();
  {
    MutexLock lock(&wake_mu_);
    stopping_ = true;
  }
  wake_cv_.NotifyAll();
  for (auto& t : workers_) t.join();
}

std::future<Result<SearchResponse>> QueryService::Submit(
    SeriesView query, const SearchRequest& request,
    std::optional<SchedulingPolicy> policy) {
  SubmitOptions submit;
  submit.policy = policy;
  // Without the cap enforced SubmitInternal cannot fail.
  return std::move(
             SubmitInternal(query, request, submit, /*enforce_cap=*/false))
      .value();
}

Result<std::future<Result<SearchResponse>>> QueryService::TrySubmit(
    SeriesView query, const SearchRequest& request,
    const SubmitOptions& submit) {
  return SubmitInternal(query, request, submit, /*enforce_cap=*/true);
}

Result<std::future<Result<SearchResponse>>> QueryService::SubmitInternal(
    SeriesView query, const SearchRequest& request,
    const SubmitOptions& submit, bool enforce_cap) {
  Task task;
  task.query.assign(query.begin(), query.end());
  task.request = request;
  task.policy = submit.policy.value_or(options_.policy);
  task.priority = submit.priority;
  if (submit.timeout.count() > 0 && request.cancel == nullptr) {
    task.cancel = std::make_shared<CancellationToken>(
        CancellationToken::Clock::now() + submit.timeout);
    task.request.cancel = task.cancel.get();
  }
  std::future<Result<SearchResponse>> future = task.promise.get_future();

  {
    MutexLock lock(&wake_mu_);
    if (stopping_) {
      task.promise.set_value(
          Status::Internal("query service is shutting down"));
      return future;
    }
    {
      // Admission and the submitted/inflight counters move together
      // under stats_mu_, so the cap is exact: no interleaving of two
      // TrySubmits can admit past max_inflight.
      MutexLock stats_lock(&stats_mu_);
      if (enforce_cap && options_.max_inflight > 0 &&
          stats_.inflight >= options_.max_inflight) {
        stats_.rejected_overload++;
        return Status::Overloaded(
            "in-flight query cap reached (max_inflight=" +
            std::to_string(options_.max_inflight) + ")");
      }
      stats_.submitted++;
      stats_.inflight++;
      if (stats_.inflight > stats_.peak_inflight) {
        stats_.peak_inflight = stats_.inflight;
      }
    }
    // Registering inside the lock orders this submission before the
    // destructor's Drain/stop sequence.
    inflight_.Add();
    // The count rises *before* the task becomes acquirable: a worker
    // can only fetch_sub after popping the task, and the shard mutex
    // orders that pop after this increment, so queued_ never wraps
    // below zero. (Incrementing under wake_mu_ also means a worker
    // between its wait predicate and its wait cannot miss this task.)
    // The cost is a tiny window where a woken worker finds the deque
    // still empty and re-checks.
    queued_.fetch_add(1, std::memory_order_relaxed);
  }

  const size_t shard =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  {
    MutexLock lock(&shards_[shard].mu);
    // High priority jumps the owner's line (the owner pops the front);
    // a stealing sibling still takes the back first, which only helps.
    if (task.priority == QueryPriority::kHigh) {
      shards_[shard].tasks.push_front(std::move(task));
    } else {
      shards_[shard].tasks.push_back(std::move(task));
    }
  }
  wake_cv_.NotifyOne();
  return future;
}

Result<std::vector<SearchResponse>> QueryService::SearchBatch(
    const std::vector<SeriesView>& queries, const SearchRequest& request,
    std::optional<SchedulingPolicy> policy) {
  std::vector<std::future<Result<SearchResponse>>> futures;
  futures.reserve(queries.size());
  for (const SeriesView& query : queries) {
    futures.push_back(Submit(query, request, policy));
  }
  // Help drain instead of blocking: the calling thread is one more
  // serve lane while its batch is pending. It may also pick up other
  // clients' tasks, which only speeds the service up.
  Task task;
  while (TryAcquire(0, &task)) Execute(std::move(task));

  std::vector<SearchResponse> responses;
  responses.reserve(queries.size());
  for (auto& future : futures) {
    Result<SearchResponse> response = future.get();
    if (!response.ok()) return response.status();
    responses.push_back(std::move(response).value());
  }
  return responses;
}

void QueryService::Drain() { inflight_.Wait(); }

ServeStats QueryService::stats() const {
  MutexLock lock(&stats_mu_);
  ServeStats s = stats_;
  s.queued = queued_.load(std::memory_order_relaxed);
  return s;
}

void QueryService::WorkerLoop(int worker) {
  for (;;) {
    Task task;
    if (TryAcquire(worker, &task)) {
      Execute(std::move(task));
      continue;
    }
    MutexLock lock(&wake_mu_);
    while (!stopping_ && queued_.load(std::memory_order_relaxed) == 0) {
      wake_cv_.Wait(wake_mu_);
    }
    if (stopping_ && queued_.load(std::memory_order_relaxed) == 0) return;
  }
}

bool QueryService::TryAcquire(int worker, Task* task) {
  const int n = static_cast<int>(shards_.size());
  // Own deque first (front: oldest, FIFO service order) ...
  {
    Shard& own = shards_[worker];
    MutexLock lock(&own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.front());
      own.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // ... then steal from a sibling's back, keeping contention off the
  // owner's end of the deque.
  for (int offset = 1; offset < n; ++offset) {
    Shard& victim = shards_[(worker + offset) % n];
    MutexLock lock(&victim.mu);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      {
        MutexLock stats_lock(&stats_mu_);
        stats_.steals++;
      }
      return true;
    }
  }
  return false;
}

double QueryService::EstimateCost(const SearchRequest& request) const {
  if (request.approximate) return 0.0;  // one leaf probe, always cheap
  const double count = static_cast<double>(backend_->series_count());
  const double length = static_cast<double>(backend_->series_length());
  double per_candidate = length;
  if (request.dtw) {
    // Banded DTW costs ~ (2*band+1) cells per point instead of 1.
    const double band_width = std::min(
        length, static_cast<double>(2 * request.dtw_band + 1));
    per_candidate *= band_width;
  }
  return count * per_candidate;
}

void QueryService::Execute(Task task) {
  // Deadline enforcement at dequeue: a task that expired while queued
  // completes with kDeadlineExceeded without touching the engine, so a
  // backlog of dead work drains at queue-pop speed instead of
  // occupying serve lanes.
  if (Expired(task.request.cancel)) {
    {
      MutexLock lock(&stats_mu_);
      stats_.expired_in_queue++;
      stats_.completed++;
      stats_.inflight--;
    }
    task.promise.set_value(
        Status::DeadlineExceeded("query deadline expired while queued"));
    inflight_.Done();
    return;
  }

  bool parallel = false;
  switch (task.policy) {
    case SchedulingPolicy::kThroughput:
      parallel = false;
      break;
    case SchedulingPolicy::kLatency:
      parallel = true;
      break;
    case SchedulingPolicy::kAuto:
      // Take the intra-query parallel path only for expensive queries
      // when no other work is waiting: under load, whole-query-per-
      // worker wins on throughput; idle, fan-out wins on latency.
      parallel =
          EstimateCost(task.request) >= options_.parallel_cost_threshold &&
          queued_.load(std::memory_order_relaxed) == 0;
      break;
  }

  const SeriesView view(task.query.data(), task.query.size());
  // Exceptions must not escape: the promise and the inflight counter
  // have to resolve even if the engine throws (e.g. bad_alloc), or the
  // submitter's future breaks and Drain blocks forever.
  Result<SearchResponse> response = [&]() -> Result<SearchResponse> {
    try {
      if (parallel) return backend_->Search(view, task.request);
      InlineExecutor inline_exec;
      return backend_->Search(view, task.request, &inline_exec);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("query threw: ") + e.what());
    } catch (...) {
      return Status::Internal("query threw an unknown exception");
    }
  }();
  {
    MutexLock lock(&stats_mu_);
    (parallel ? stats_.ran_parallel : stats_.ran_inline)++;
    stats_.completed++;
    stats_.inflight--;
  }
  task.promise.set_value(std::move(response));
  inflight_.Done();
}

}  // namespace parisax
