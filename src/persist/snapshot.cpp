#include "persist/snapshot.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "index/leaf_storage.h"
#include "io/mmap_file.h"
#include "persist/checksum.h"
#include "sax/word.h"
#include "util/mutex.h"

namespace parisax {

namespace {

// The format serializes SaxSymbols and header integers by memcpy; both
// assume the usual packed little-endian layout.
static_assert(sizeof(SaxSymbols) == 16, "snapshot layout change");
static_assert(std::endian::native == std::endian::little,
              "snapshot format is little-endian");

constexpr char kSnapshotMagic[8] = {'P', 'S', 'A', 'X', 'S', 'N', '0', '1'};

/// Bytes per serialized leaf entry: 16-byte SAX symbols + 8-byte id.
constexpr uint64_t kEntryBytes = 24;
/// Bytes per subtree directory record.
constexpr uint64_t kDirRecordBytes = 40;
/// Trailing body-CRC bytes.
constexpr uint64_t kTrailerBytes = 4;
/// Topology node tags.
constexpr uint8_t kTagInner = 0;
constexpr uint8_t kTagLeaf = 1;

// --- little helpers ---------------------------------------------------

template <typename T>
void AppendPod(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T LoadPod(const uint8_t* p) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

/// Bounds-checked forward reader over a byte range.
struct Cursor {
  const uint8_t* p;
  const uint8_t* end;

  size_t remaining() const { return static_cast<size_t>(end - p); }

  template <typename T>
  bool Read(T* out) {
    if (remaining() < sizeof(T)) return false;
    std::memcpy(out, p, sizeof(T));
    p += sizeof(T);
    return true;
  }
};

/// Delta chain links must fit a path; anything longer is hostile input.
constexpr uint64_t kMaxLinkPathBytes = 4096;
/// Fixed part of the chain-link section: prev_series_count (8) +
/// base_header_crc (4) + chain_depth (4) + base_path_len (4).
constexpr uint64_t kLinkFixedBytes = 20;

/// One subtree directory record.
struct DirRecord {
  uint32_t key = 0;
  uint64_t entry_count = 0;
  uint64_t topo_offset = 0;
  uint64_t topo_bytes = 0;
  uint64_t payload_offset = 0;
};

void AppendDirRecord(std::string* out, const DirRecord& r) {
  AppendPod(out, r.key);
  AppendPod(out, uint32_t{0});  // reserved
  AppendPod(out, r.entry_count);
  AppendPod(out, r.topo_offset);
  AppendPod(out, r.topo_bytes);
  AppendPod(out, r.payload_offset);
}

DirRecord LoadDirRecord(const uint8_t* p) {
  DirRecord r;
  r.key = LoadPod<uint32_t>(p);
  r.entry_count = LoadPod<uint64_t>(p + 8);
  r.topo_offset = LoadPod<uint64_t>(p + 16);
  r.topo_bytes = LoadPod<uint64_t>(p + 24);
  r.payload_offset = LoadPod<uint64_t>(p + 32);
  return r;
}

// --- header -----------------------------------------------------------

std::string EncodeHeader(const SnapshotInfo& info) {
  std::string h;
  h.reserve(kSnapshotHeaderBytes);
  h.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendPod(&h, info.version);
  AppendPod(&h, static_cast<uint8_t>(info.kind));
  AppendPod(&h, info.algorithm);
  AppendPod(&h, static_cast<uint16_t>(info.tree.segments));
  AppendPod(&h, static_cast<uint32_t>(info.tree.series_length));
  AppendPod(&h, static_cast<uint64_t>(info.tree.leaf_capacity));
  AppendPod(&h, info.series_count);
  AppendPod(&h, info.subtree_count);
  AppendPod(&h, info.total_entries);
  AppendPod(&h, info.file_bytes);
  AppendPod(&h, Crc32(h.data(), h.size()));
  return h;
}

Status DecodeHeader(const uint8_t* bytes, size_t size,
                    const std::string& path, SnapshotInfo* info) {
  if (size < kSnapshotHeaderBytes) {
    return Status::Corruption("snapshot file too short for header: " + path);
  }
  if (std::memcmp(bytes, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::Corruption("bad magic in snapshot file: " + path);
  }
  const uint32_t stored_crc = LoadPod<uint32_t>(bytes + 60);
  if (Crc32(bytes, 60) != stored_crc) {
    return Status::Corruption("snapshot header checksum mismatch: " + path);
  }
  info->header_crc = stored_crc;
  info->version = LoadPod<uint32_t>(bytes + 8);
  if (info->version != kSnapshotVersion &&
      info->version != kSnapshotVersionDelta) {
    return Status::NotSupported(
        "snapshot version " + std::to_string(info->version) +
        " is not supported (reader versions " +
        std::to_string(kSnapshotVersion) + "/" +
        std::to_string(kSnapshotVersionDelta) + "): " + path);
  }
  info->is_delta = info->version == kSnapshotVersionDelta;
  const uint8_t kind = bytes[12];
  if (kind != static_cast<uint8_t>(SnapshotKind::kMessi) &&
      kind != static_cast<uint8_t>(SnapshotKind::kParis)) {
    return Status::Corruption("unknown snapshot kind: " + path);
  }
  info->kind = static_cast<SnapshotKind>(kind);
  info->algorithm = bytes[13];
  info->tree.segments = LoadPod<uint16_t>(bytes + 14);
  info->tree.series_length = LoadPod<uint32_t>(bytes + 16);
  info->tree.leaf_capacity =
      static_cast<size_t>(LoadPod<uint64_t>(bytes + 20));
  info->series_count = LoadPod<uint64_t>(bytes + 28);
  info->subtree_count = LoadPod<uint64_t>(bytes + 36);
  info->total_entries = LoadPod<uint64_t>(bytes + 44);
  info->file_bytes = LoadPod<uint64_t>(bytes + 52);
  if (info->tree.segments < 1 || info->tree.segments > kMaxSegments) {
    return Status::Corruption("snapshot declares invalid segments: " + path);
  }
  if (info->tree.series_length == 0 || info->tree.leaf_capacity == 0) {
    return Status::Corruption("snapshot declares empty tree shape: " + path);
  }
  if (info->subtree_count > (uint64_t{1} << info->tree.segments)) {
    return Status::Corruption("snapshot declares too many subtrees: " + path);
  }
  if (info->file_bytes < kSnapshotHeaderBytes + kTrailerBytes) {
    return Status::Corruption("snapshot declares impossible size: " + path);
  }
  return Status::OK();
}

// --- delta chain links ------------------------------------------------

std::string EncodeDeltaLink(const SnapshotDeltaSaveOptions& options) {
  std::string link;
  AppendPod(&link, options.prev_series_count);
  AppendPod(&link, options.base_header_crc);
  AppendPod(&link, options.chain_depth);
  AppendPod(&link, static_cast<uint32_t>(options.base_path.size()));
  link.append(options.base_path);
  return link;
}

/// Parses the chain-link section of a delta snapshot into `info` (which
/// must already hold the decoded header). Sets *link_bytes to the
/// section's encoded size.
Status ParseDeltaLink(const uint8_t* begin, const uint8_t* end,
                      const std::string& path, SnapshotInfo* info,
                      uint64_t* link_bytes) {
  Cursor cursor{begin, end};
  uint32_t path_len = 0;
  if (!cursor.Read(&info->prev_series_count) ||
      !cursor.Read(&info->base_header_crc) ||
      !cursor.Read(&info->chain_depth) || !cursor.Read(&path_len)) {
    return Status::Corruption("snapshot chain link truncated: " + path);
  }
  if (path_len == 0 || path_len > kMaxLinkPathBytes ||
      cursor.remaining() < path_len) {
    return Status::Corruption("snapshot chain link path invalid: " + path);
  }
  info->base_path.assign(reinterpret_cast<const char*>(cursor.p),
                         path_len);
  if (info->chain_depth == 0 || info->chain_depth > kMaxSnapshotChain) {
    return Status::Corruption("snapshot chain depth invalid: " + path);
  }
  if (info->prev_series_count > info->series_count) {
    return Status::Corruption(
        "snapshot delta shrinks the collection: " + path);
  }
  *link_bytes = kLinkFixedBytes + path_len;
  return Status::OK();
}

/// dirname(reference) + "/" + the last component of `target`: the
/// fallback used when a chain's recorded base path does not resolve
/// (e.g. the snapshot directory was moved wholesale).
std::string SiblingPath(const std::string& reference,
                        const std::string& target) {
  const size_t ref_slash = reference.find_last_of('/');
  const size_t tgt_slash = target.find_last_of('/');
  const std::string base_name =
      tgt_slash == std::string::npos ? target : target.substr(tgt_slash + 1);
  if (ref_slash == std::string::npos) return base_name;
  return reference.substr(0, ref_slash + 1) + base_name;
}

// --- save -------------------------------------------------------------

/// One serialized root subtree: a pre-order topology stream plus this
/// subtree's slice of the leaf payload. Built independently per worker.
struct SubtreeBlob {
  uint32_t key = 0;
  std::string topo;
  std::string payload;
  uint64_t entries = 0;
  Status status;
};

Status SerializeNode(const Node& node, LeafStorage* storage,
                     SubtreeBlob* out, std::vector<LeafEntry>* scratch) {
  if (node.IsLeaf()) {
    AppendPod(&out->topo, kTagLeaf);
    scratch->clear();
    PARISAX_RETURN_IF_ERROR(CollectLeafEntries(node, storage, scratch));
    AppendPod(&out->topo, out->entries);  // first entry in subtree slice
    AppendPod(&out->topo, static_cast<uint64_t>(scratch->size()));
    for (const LeafEntry& e : *scratch) {
      out->payload.append(reinterpret_cast<const char*>(e.sax.symbols),
                          sizeof(e.sax.symbols));
      AppendPod(&out->payload, static_cast<uint64_t>(e.id));
    }
    out->entries += scratch->size();
    return Status::OK();
  }
  AppendPod(&out->topo, kTagInner);
  AppendPod(&out->topo, static_cast<uint8_t>(node.split_segment()));
  PARISAX_RETURN_IF_ERROR(
      SerializeNode(*node.child(0), storage, out, scratch));
  return SerializeNode(*node.child(1), storage, out, scratch);
}

/// Appends `bytes` to the file, folding them into the running body CRC.
struct CrcFileWriter {
  std::FILE* f = nullptr;
  uint32_t crc = 0;

  Status Write(const void* bytes, size_t size, const std::string& path) {
    if (std::fwrite(bytes, 1, size, f) != size) {
      return Status::IOError("short write of snapshot: " + path);
    }
    crc = Crc32(bytes, size, crc);
    return Status::OK();
  }
};

Status WriteSnapshotFile(const SnapshotInfo& info, const std::string& link,
                         const SaxSymbols* sax, uint64_t sax_rows,
                         const std::vector<SubtreeBlob>& blobs,
                         const std::string& path) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create snapshot file: " + tmp_path);
  }
  const auto fail = [&](Status status) {
    std::fclose(f);
    std::remove(tmp_path.c_str());
    return status;
  };

  const std::string header = EncodeHeader(info);
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    return fail(Status::IOError("short write of snapshot header: " + path));
  }

  CrcFileWriter body{f, 0};
  if (!link.empty()) {
    const Status st = body.Write(link.data(), link.size(), path);
    if (!st.ok()) return fail(st);
  }
  if (sax_rows > 0) {
    const Status st =
        body.Write(sax, sax_rows * sizeof(SaxSymbols), path);
    if (!st.ok()) return fail(st);
  }

  // Directory, then the topology and payload blobs in the same order.
  uint64_t offset = kSnapshotHeaderBytes + link.size() +
                    sax_rows * sizeof(SaxSymbols) +
                    blobs.size() * kDirRecordBytes;
  std::string directory;
  directory.reserve(blobs.size() * kDirRecordBytes);
  std::vector<uint64_t> topo_offsets(blobs.size());
  for (size_t i = 0; i < blobs.size(); ++i) {
    topo_offsets[i] = offset;
    offset += blobs[i].topo.size();
  }
  for (size_t i = 0; i < blobs.size(); ++i) {
    DirRecord r;
    r.key = blobs[i].key;
    r.entry_count = blobs[i].entries;
    r.topo_offset = topo_offsets[i];
    r.topo_bytes = blobs[i].topo.size();
    r.payload_offset = offset;
    offset += blobs[i].payload.size();
    AppendDirRecord(&directory, r);
  }
  {
    const Status st = body.Write(directory.data(), directory.size(), path);
    if (!st.ok()) return fail(st);
  }
  for (const SubtreeBlob& blob : blobs) {
    const Status st = body.Write(blob.topo.data(), blob.topo.size(), path);
    if (!st.ok()) return fail(st);
  }
  for (const SubtreeBlob& blob : blobs) {
    const Status st =
        body.Write(blob.payload.data(), blob.payload.size(), path);
    if (!st.ok()) return fail(st);
  }
  const uint32_t body_crc = body.crc;
  if (std::fwrite(&body_crc, 1, sizeof(body_crc), f) != sizeof(body_crc)) {
    return fail(Status::IOError("short write of snapshot trailer: " + path));
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("close failed: " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename snapshot into place: " + path);
  }
  return Status::OK();
}

/// Serializes the subtrees under `keys` (ascending, with live roots)
/// plus `sax_row_count` flat-SAX rows and writes a snapshot file: a
/// version-1 full snapshot when `link` is empty, a version-3 delta
/// otherwise. For kParis the caller supplies exactly the rows the
/// reader will expect: all of them for a full snapshot, the segment's
/// own rows for a delta.
Status SaveSnapshot(SnapshotKind kind, uint8_t algorithm,
                    const SaxTree& tree, const SaxSymbols* sax_rows,
                    uint64_t sax_row_count, LeafStorage* storage,
                    uint64_t series_count,
                    const std::vector<uint32_t>& keys,
                    const std::string& link, const std::string& path,
                    Executor* exec) {
  for (const uint32_t key : keys) {
    if (key >= tree.root_slots() || tree.RootAt(key) == nullptr) {
      return Status::InvalidArgument(
          "cannot snapshot subtree " + std::to_string(key) +
          ": no such root in the index");
    }
  }
  // Serialize each root subtree independently (the same per-subtree
  // parallelism the builders use; no synchronization inside a subtree).
  std::vector<SubtreeBlob> blobs(keys.size());
  WorkCounter counter(keys.size());
  exec->Run([&](int) {
    std::vector<LeafEntry> scratch;
    size_t i;
    while (counter.NextItem(&i)) {
      blobs[i].key = keys[i];
      blobs[i].status = SerializeNode(*tree.RootAt(keys[i]), storage,
                                      &blobs[i], &scratch);
    }
  });
  uint64_t total_entries = 0;
  uint64_t topo_bytes = 0;
  uint64_t payload_bytes = 0;
  for (const SubtreeBlob& blob : blobs) {
    PARISAX_RETURN_IF_ERROR(blob.status);
    total_entries += blob.entries;
    topo_bytes += blob.topo.size();
    payload_bytes += blob.payload.size();
  }

  SnapshotInfo info;
  info.version = link.empty() ? kSnapshotVersion : kSnapshotVersionDelta;
  info.kind = kind;
  info.algorithm = algorithm;
  info.tree = tree.options();
  info.series_count = series_count;
  info.subtree_count = keys.size();
  info.total_entries = total_entries;
  info.file_bytes = kSnapshotHeaderBytes + link.size() +
                    sax_row_count * sizeof(SaxSymbols) +
                    keys.size() * kDirRecordBytes + topo_bytes +
                    payload_bytes + kTrailerBytes;
  return WriteSnapshotFile(info, link, sax_rows, sax_row_count, blobs,
                           path);
}

// --- load -------------------------------------------------------------

/// A verified snapshot: mapped file, parsed header, section pointers.
struct VerifiedSnapshot {
  std::unique_ptr<MmapFile> file;
  SnapshotInfo info;
  /// kParis only: full snapshot — every row; delta — the rows of
  /// [prev_series_count, series_count).
  const uint8_t* sax = nullptr;
  uint64_t sax_rows = 0;
  const uint8_t* directory = nullptr;  // subtree_count records
};

Result<VerifiedSnapshot> OpenAndVerify(const std::string& path) {
  VerifiedSnapshot snap;
  PARISAX_ASSIGN_OR_RETURN(snap.file, MmapFile::Open(path));
  const uint8_t* data = snap.file->data();
  const uint64_t size = snap.file->size();
  PARISAX_RETURN_IF_ERROR(DecodeHeader(data, size, path, &snap.info));
  if (snap.info.file_bytes != size) {
    return Status::Corruption("snapshot truncated or oversized: " + path +
                              " (header declares " +
                              std::to_string(snap.info.file_bytes) +
                              " bytes, file has " + std::to_string(size) +
                              ")");
  }
  const uint64_t body_begin = kSnapshotHeaderBytes;
  const uint64_t body_end = size - kTrailerBytes;  // size >= 68 by header
  const uint32_t stored_crc = LoadPod<uint32_t>(data + body_end);
  if (Crc32(data + body_begin, body_end - body_begin) != stored_crc) {
    return Status::Corruption("snapshot body checksum mismatch: " + path);
  }

  // Section bounds (every arithmetic step guarded against overflow).
  uint64_t offset = body_begin;
  if (snap.info.is_delta) {
    uint64_t link_bytes = 0;
    PARISAX_RETURN_IF_ERROR(ParseDeltaLink(data + offset, data + body_end,
                                           path, &snap.info, &link_bytes));
    offset += link_bytes;
  }
  if (snap.info.kind == SnapshotKind::kParis) {
    // Full snapshots store every flat-SAX row; deltas only the rows of
    // the series appended since the predecessor.
    snap.sax_rows = snap.info.series_count - snap.info.prev_series_count;
    if (snap.sax_rows > (body_end - offset) / sizeof(SaxSymbols)) {
      return Status::Corruption("snapshot SAX section out of bounds: " +
                                path);
    }
    snap.sax = data + offset;
    offset += snap.sax_rows * sizeof(SaxSymbols);
  }
  if (snap.info.subtree_count > (body_end - offset) / kDirRecordBytes) {
    return Status::Corruption("snapshot directory out of bounds: " + path);
  }
  snap.directory = data + offset;
  offset += snap.info.subtree_count * kDirRecordBytes;

  // Directory sanity: keys valid and strictly ascending (distinct keys
  // are what make the parallel restore race-free), blob ranges inside
  // the body.
  const uint64_t max_key = uint64_t{1} << snap.info.tree.segments;
  uint64_t prev_key = 0;
  for (uint64_t i = 0; i < snap.info.subtree_count; ++i) {
    const DirRecord r = LoadDirRecord(snap.directory + i * kDirRecordBytes);
    if (r.key >= max_key || (i > 0 && r.key <= prev_key)) {
      return Status::Corruption("snapshot directory keys invalid: " + path);
    }
    prev_key = r.key;
    if (r.topo_offset < offset || r.topo_offset > body_end ||
        r.topo_bytes > body_end - r.topo_offset) {
      return Status::Corruption("snapshot topology out of bounds: " + path);
    }
    if (r.payload_offset < offset || r.payload_offset > body_end ||
        r.entry_count > (body_end - r.payload_offset) / kEntryBytes) {
      return Status::Corruption("snapshot payload out of bounds: " + path);
    }
  }
  return snap;
}

Status ParseNode(Node* node, Cursor* cursor, const uint8_t* payload,
                 uint64_t payload_entries, int segments, uint64_t min_id,
                 uint64_t series_count, const std::string& path) {
  uint8_t tag;
  if (!cursor->Read(&tag)) {
    return Status::Corruption("snapshot topology truncated: " + path);
  }
  if (tag == kTagInner) {
    uint8_t segment;
    if (!cursor->Read(&segment)) {
      return Status::Corruption("snapshot topology truncated: " + path);
    }
    if (static_cast<int>(segment) >= segments) {
      return Status::Corruption("snapshot split segment out of range: " +
                                path);
    }
    if (node->word().bits[segment] >= kMaxCardBits) {
      return Status::Corruption(
          "snapshot split exceeds maximum cardinality: " + path);
    }
    node->MakeInner(segment);
    PARISAX_RETURN_IF_ERROR(ParseNode(node->child(0), cursor, payload,
                                      payload_entries, segments, min_id,
                                      series_count, path));
    return ParseNode(node->child(1), cursor, payload, payload_entries,
                     segments, min_id, series_count, path);
  }
  if (tag != kTagLeaf) {
    return Status::Corruption("snapshot topology has unknown node tag: " +
                              path);
  }
  uint64_t first, count;
  if (!cursor->Read(&first) || !cursor->Read(&count)) {
    return Status::Corruption("snapshot topology truncated: " + path);
  }
  if (first > payload_entries || count > payload_entries - first) {
    return Status::Corruption("snapshot leaf range out of bounds: " + path);
  }
  std::vector<LeafEntry>& entries = node->entries();
  entries.resize(count);
  const uint8_t* p = payload + first * kEntryBytes;
  for (uint64_t i = 0; i < count; ++i, p += kEntryBytes) {
    LeafEntry& e = entries[i];
    std::memcpy(e.sax.symbols, p, sizeof(e.sax.symbols));
    e.id = LoadPod<uint64_t>(p + sizeof(e.sax.symbols));
    // Deltas may only hold the ids of their own segment range: a stray
    // base id would corrupt the restored segment's id-range invariant
    // (ParIS resolves segment SAX rows by `id - segment.first`).
    if (e.id < min_id || e.id >= series_count) {
      return Status::Corruption("snapshot entry id out of range: " + path);
    }
    if (!WordContains(node->word(), e.sax, segments)) {
      return Status::Corruption(
          "snapshot entry does not belong to its leaf: " + path);
    }
  }
  return Status::OK();
}

Status RestoreTree(const VerifiedSnapshot& snap, SaxTree* tree,
                   Executor* exec) {
  const uint8_t* data = snap.file->data();
  const std::string& path = snap.file->path();
  const int segments = snap.info.tree.segments;

  Mutex error_mu{"error_mu", LockRank::kFirstError};
  Status first_error;
  WorkCounter counter(snap.info.subtree_count);
  exec->Run([&](int) {
    size_t i;
    while (counter.NextItem(&i)) {
      {
        MutexLock lock(&error_mu);
        if (!first_error.ok()) return;
      }
      const DirRecord r =
          LoadDirRecord(snap.directory + i * kDirRecordBytes);
      // Keys are validated distinct, so each worker owns its root.
      // Each file restores into its own fresh tree (the base's, or a
      // rehydrated segment's), so roots never collide across files.
      Node* root = tree->RecreateRoot(r.key);
      Cursor cursor{data + r.topo_offset, data + r.topo_offset +
                                              r.topo_bytes};
      Status st = ParseNode(root, &cursor, data + r.payload_offset,
                            r.entry_count, segments,
                            snap.info.prev_series_count,
                            snap.info.series_count, path);
      if (st.ok() && cursor.remaining() != 0) {
        st = Status::Corruption(
            "snapshot topology has trailing garbage: " + path);
      }
      if (!st.ok()) {
        MutexLock lock(&error_mu);
        if (first_error.ok()) first_error = st;
        return;
      }
    }
  });
  PARISAX_RETURN_IF_ERROR(first_error);
  tree->SealRoots();
  return Status::OK();
}

Status CheckSourceShape(const SnapshotInfo& info,
                        const RawSeriesSource& source) {
  if (source.count() != info.series_count ||
      source.length() != info.tree.series_length) {
    return Status::InvalidArgument(
        "raw source does not match the snapshot (snapshot indexes " +
        std::to_string(info.series_count) + " x " +
        std::to_string(info.tree.series_length) + ", source holds " +
        std::to_string(source.count()) + " x " +
        std::to_string(source.length()) + ")");
  }
  return Status::OK();
}

}  // namespace

/// Grants src/persist access to the private constructors and members of
/// the index classes; all restore logic funnels through here.
class SnapshotReader {
 public:
  /// Restores the chain into a serving snapshot: the base file becomes
  /// the base tree (and flat-SAX cache for ParIS), each delta a
  /// rehydrated immutable Segment — deltas are never replayed into the
  /// base, the serving-side merge covers them. Per-file entry counts
  /// are verified against the id ranges the chain links declare.
  static Status RestoreChain(const std::vector<SnapshotChainEntry>& chain,
                             Executor* exec, ServingState* state,
                             TreeStats* stats) {
    const SnapshotInfo& base_info = chain.front().info;
    const bool paris = base_info.kind == SnapshotKind::kParis;
    {
      VerifiedSnapshot snap;
      PARISAX_ASSIGN_OR_RETURN(snap, OpenAndVerify(chain.front().path));
      auto base = std::make_shared<SaxTree>(base_info.tree);
      PARISAX_RETURN_IF_ERROR(RestoreTree(snap, base.get(), exec));
      *stats = base->Collect();
      if (stats->total_entries != base_info.series_count) {
        return Status::Corruption("restored base tree lost entries: " +
                                  chain.front().path);
      }
      if (paris) {
        auto cache =
            std::make_shared<FlatSaxCache>(base_info.series_count);
        if (snap.sax_rows > 0) {
          std::memcpy(cache->MutableAt(0), snap.sax,
                      snap.sax_rows * sizeof(SaxSymbols));
        }
        state->cache = std::move(cache);
      }
      state->base = std::move(base);
      state->base_count = base_info.series_count;
    }
    for (size_t i = 1; i < chain.size(); ++i) {
      const SnapshotInfo& info = chain[i].info;
      VerifiedSnapshot snap;
      PARISAX_ASSIGN_OR_RETURN(snap, OpenAndVerify(chain[i].path));
      auto segment = std::make_shared<Segment>(info.tree);
      segment->first = info.prev_series_count;
      segment->count = info.series_count - info.prev_series_count;
      PARISAX_RETURN_IF_ERROR(
          RestoreTree(snap, &segment->tree, exec));
      const TreeStats segment_stats = segment->tree.Collect();
      if (segment_stats.total_entries != segment->count) {
        return Status::Corruption(
            "restored delta segment lost entries: " + chain[i].path);
      }
      if (paris) {
        // OpenAndVerify bounds the SAX section to exactly the segment's
        // rows (series_count - prev_series_count).
        segment->sax_rows.resize(segment->count);
        if (snap.sax_rows > 0) {
          std::memcpy(segment->sax_rows.data(), snap.sax,
                      snap.sax_rows * sizeof(SaxSymbols));
        }
      }
      stats->total_entries += segment_stats.total_entries;
      state->segments.push_back(std::move(segment));
    }
    state->count = chain.back().info.series_count;
    return Status::OK();
  }

  static Result<std::unique_ptr<MessiIndex>> LoadMessi(
      const std::string& path, std::unique_ptr<RawSeriesSource> source,
      Executor* exec) {
    std::vector<SnapshotChainEntry> chain;
    PARISAX_ASSIGN_OR_RETURN(chain, ReadSnapshotChain(path));
    const SnapshotInfo& head = chain.back().info;
    if (head.kind != SnapshotKind::kMessi) {
      return Status::InvalidArgument(
          "snapshot does not hold a MESSI index: " + path);
    }
    PARISAX_RETURN_IF_ERROR(CheckSourceShape(head, *source));
    auto index = std::unique_ptr<MessiIndex>(new MessiIndex(head.tree));
    PARISAX_RETURN_IF_ERROR(index->AttachSource(std::move(source)));
    auto state = std::make_shared<ServingState>();
    PARISAX_RETURN_IF_ERROR(RestoreChain(
        chain, exec, state.get(), &index->build_stats_.tree));
    state->raw = RawDataView{index->source_->ContiguousData(),
                             head.tree.series_length};
    index->dock_.Publish(std::move(state));
    return index;
  }

  static Result<std::unique_ptr<ParisIndex>> LoadParis(
      const std::string& path, std::unique_ptr<RawSeriesSource> source,
      Executor* exec) {
    std::vector<SnapshotChainEntry> chain;
    PARISAX_ASSIGN_OR_RETURN(chain, ReadSnapshotChain(path));
    const SnapshotInfo& head = chain.back().info;
    if (head.kind != SnapshotKind::kParis) {
      return Status::InvalidArgument(
          "snapshot does not hold a ParIS index: " + path);
    }
    PARISAX_RETURN_IF_ERROR(CheckSourceShape(head, *source));
    auto index = std::unique_ptr<ParisIndex>(new ParisIndex(head.tree));
    index->source_ = std::move(source);
    // Leaves were inlined at save time; the restored index never needs a
    // LeafStorage.
    auto state = std::make_shared<ServingState>();
    PARISAX_RETURN_IF_ERROR(RestoreChain(
        chain, exec, state.get(), &index->build_stats_.tree));
    // Streamed sources have no contiguous block; raw.base stays null and
    // queries fetch through the source, exactly as after a build.
    state->raw = RawDataView{index->source_->ContiguousData(),
                             head.tree.series_length};
    index->dock_.Publish(std::move(state));
    return index;
  }
};

Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open snapshot file: " + path);
  }
  // Enough for the header plus, for deltas, the chain-link section.
  std::vector<uint8_t> buffer(kSnapshotHeaderBytes + kLinkFixedBytes +
                              kMaxLinkPathBytes);
  const size_t got = std::fread(buffer.data(), 1, buffer.size(), f);
  std::fclose(f);
  SnapshotInfo info;
  PARISAX_RETURN_IF_ERROR(DecodeHeader(buffer.data(), got, path, &info));
  if (info.is_delta) {
    uint64_t link_bytes = 0;
    PARISAX_RETURN_IF_ERROR(
        ParseDeltaLink(buffer.data() + kSnapshotHeaderBytes,
                       buffer.data() + got, path, &info, &link_bytes));
  }
  return info;
}

Result<std::vector<SnapshotChainEntry>> ReadSnapshotChain(
    const std::string& head_path) {
  std::vector<SnapshotChainEntry> reversed;  // head first
  std::string current = head_path;
  for (;;) {
    if (reversed.size() > kMaxSnapshotChain) {
      return Status::Corruption(
          "snapshot chain from " + head_path + " exceeds " +
          std::to_string(kMaxSnapshotChain) +
          " links (cycle or runaway chain)");
    }
    SnapshotInfo info;
    PARISAX_ASSIGN_OR_RETURN(info, ReadSnapshotInfo(current));
    reversed.push_back(SnapshotChainEntry{current, std::move(info)});
    const SnapshotInfo& tail = reversed.back().info;
    if (!tail.is_delta) break;
    // Resolve the back-reference: as recorded, else next to the file
    // that recorded it (relocated snapshot directories).
    std::string base = tail.base_path;
    std::FILE* probe = std::fopen(base.c_str(), "rb");
    if (probe == nullptr) {
      base = SiblingPath(current, tail.base_path);
    } else {
      std::fclose(probe);
    }
    current = std::move(base);
  }

  std::vector<SnapshotChainEntry> chain(reversed.rbegin(),
                                        reversed.rend());
  // Link integrity: every delta must extend exactly the file before it.
  for (size_t i = 1; i < chain.size(); ++i) {
    const SnapshotInfo& prev = chain[i - 1].info;
    const SnapshotInfo& cur = chain[i].info;
    if (cur.base_header_crc != prev.header_crc) {
      return Status::Corruption(
          "snapshot chain broken: " + chain[i].path +
          " back-references a different file than " + chain[i - 1].path +
          " (header CRC mismatch)");
    }
    if (cur.prev_series_count != prev.series_count ||
        cur.series_count < prev.series_count) {
      return Status::Corruption(
          "snapshot chain series counts do not line up: " +
          chain[i].path);
    }
    if (cur.kind != prev.kind ||
        cur.tree.segments != prev.tree.segments ||
        cur.tree.leaf_capacity != prev.tree.leaf_capacity ||
        cur.tree.series_length != prev.tree.series_length) {
      return Status::Corruption(
          "snapshot chain mixes incompatible indexes: " + chain[i].path);
    }
    if (cur.chain_depth != prev.chain_depth + 1) {
      return Status::Corruption(
          "snapshot chain depth does not line up: " + chain[i].path);
    }
  }
  if (chain.front().info.is_delta || chain.front().info.chain_depth != 0) {
    return Status::Corruption(
        "snapshot chain does not start at a full snapshot: " +
        chain.front().path);
  }
  return chain;
}

namespace {

Status ValidateDeltaOptions(const SnapshotDeltaSaveOptions& options,
                            uint64_t series_count) {
  if (options.base_path.empty()) {
    return Status::InvalidArgument(
        "delta snapshot requires a base_path to chain to");
  }
  if (options.base_path.size() > kMaxLinkPathBytes) {
    return Status::InvalidArgument("delta base_path too long");
  }
  if (options.prev_series_count > series_count) {
    return Status::InvalidArgument(
        "delta prev_series_count exceeds the index's series count");
  }
  if (options.chain_depth == 0 ||
      options.chain_depth > kMaxSnapshotChain) {
    return Status::InvalidArgument(
        "delta chain_depth must be in [1, " +
        std::to_string(kMaxSnapshotChain) + "]; Compact() the chain");
  }
  return Status::OK();
}

}  // namespace

Status SaveIndex(const MessiIndex& index, const std::string& path,
                 Executor* exec, const SnapshotSaveOptions& options) {
  // One coherent snapshot for the whole save (the Engine additionally
  // holds its append mutex, so nothing publishes meanwhile).
  const auto snap = index.serving();
  if (!snap->segments.empty()) {
    return Status::InvalidArgument(
        "full snapshot requires a fully folded index: fold the live "
        "segments first");
  }
  return SaveSnapshot(SnapshotKind::kMessi, options.algorithm,
                      *snap->base, /*sax_rows=*/nullptr,
                      /*sax_row_count=*/0, /*storage=*/nullptr,
                      snap->count, snap->base->PresentRoots(),
                      /*link=*/"", path, exec);
}

Status SaveIndex(const ParisIndex& index, const std::string& path,
                 Executor* exec, const SnapshotSaveOptions& options) {
  const auto snap = index.serving();
  if (!snap->segments.empty()) {
    return Status::InvalidArgument(
        "full snapshot requires a fully folded index: fold the live "
        "segments first");
  }
  return SaveSnapshot(SnapshotKind::kParis, options.algorithm,
                      *snap->base,
                      snap->cache->count() > 0 ? &snap->cache->At(0)
                                               : nullptr,
                      snap->cache->count(), index.leaf_storage(),
                      snap->count, snap->base->PresentRoots(),
                      /*link=*/"", path, exec);
}

Status SaveSegmentDelta(SnapshotKind kind, const Segment& segment,
                        const std::string& path, Executor* exec,
                        const SnapshotDeltaSaveOptions& options) {
  const uint64_t series_count = segment.first + segment.count;
  PARISAX_RETURN_IF_ERROR(ValidateDeltaOptions(options, series_count));
  if (options.prev_series_count != segment.first) {
    return Status::InvalidArgument(
        "delta segment does not start at the predecessor's series "
        "count");
  }
  const bool paris = kind == SnapshotKind::kParis;
  if (paris && segment.sax_rows.size() != segment.count) {
    return Status::InvalidArgument(
        "ParIS delta segment is missing its flat-SAX rows");
  }
  return SaveSnapshot(kind, options.algorithm, segment.tree,
                      paris && segment.count > 0 ? segment.sax_rows.data()
                                                 : nullptr,
                      paris ? segment.count : 0, /*storage=*/nullptr,
                      series_count, segment.tree.PresentRoots(),
                      EncodeDeltaLink(options), path, exec);
}

Result<std::unique_ptr<MessiIndex>> LoadMessiIndex(
    const std::string& path, std::unique_ptr<RawSeriesSource> source,
    Executor* exec) {
  return SnapshotReader::LoadMessi(path, std::move(source), exec);
}

Result<std::unique_ptr<ParisIndex>> LoadParisIndex(
    const std::string& path, std::unique_ptr<RawSeriesSource> source,
    Executor* exec) {
  return SnapshotReader::LoadParis(path, std::move(source), exec);
}

}  // namespace parisax
