// Versioned, checksummed binary snapshots of the iSAX indexes.
//
// The paper's systems amortize index construction over many queries;
// snapshots extend that across process lifetimes: build once, SaveIndex,
// then LoadIndex at startup and serve immediately (typically against an
// MmapSource over the raw dataset file, so nothing is recomputed and the
// raw values need no in-RAM copy).
//
// Two file kinds share one header layout (full spec: see
// docs/snapshot-format.md):
//
//   version 1 — full snapshot: flat SAX (ParIS only), a directory of
//     every root subtree, per-subtree pre-order topology streams, leaf
//     payload, body CRC-32 trailer.
//   version 3 — delta snapshot (segment-based ingest): a chain-link
//     section back-referencing the predecessor file (path + its stored
//     header CRC + the predecessor's series count), then exactly one
//     serialized *segment* (src/index/segment.h) covering the series
//     appended since the predecessor — its flat SAX rows (ParIS only)
//     and the directory/topology/payload of the segment's own
//     mini-tree. Deltas map 1:1 onto in-memory segments: loading a
//     chain restores the version-1 base, rehydrates each delta as an
//     immutable segment on the serving snapshot, and serves — queries
//     merge base and segments, so no replay into the base is needed.
//     (Version 2 — subtree-replacement deltas — is no longer written;
//     readers reject it with kNotSupported.)
//
// Save and load both fan out per root subtree over an Executor (the same
// no-synchronization-inside-a-subtree discipline the builders use).
// Corrupted, truncated or version-mismatched files fail with typed
// Status errors (kCorruption / kNotSupported); every offset is bounds-
// checked before it is dereferenced, so hostile input cannot fault.
#ifndef PARISAX_PERSIST_SNAPSHOT_H_
#define PARISAX_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/raw_source.h"
#include "index/segment.h"
#include "index/tree.h"
#include "messi/messi_index.h"
#include "paris/paris_index.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

/// Full-snapshot format version. Readers reject unknown versions with
/// kNotSupported (the versioning policy is: bump on any layout change,
/// no in-place migration).
inline constexpr uint32_t kSnapshotVersion = 1;

/// Delta-snapshot format version (append-only chain links, one segment
/// per file; see docs/snapshot-format.md). Version 2 — the former
/// subtree-replacement delta — is retired and rejected.
inline constexpr uint32_t kSnapshotVersionDelta = 3;

/// Largest accepted delta depth behind one base: a chain holds at most
/// 1 + kMaxSnapshotChain files. Bounds replay work and makes
/// back-reference cycles a typed error; Engine::Save auto-compacts (a
/// full snapshot) once the cap is reached.
inline constexpr size_t kMaxSnapshotChain = 64;

/// Fixed header size in bytes; sections start immediately after.
inline constexpr uint64_t kSnapshotHeaderBytes = 64;

/// Index family stored in a snapshot.
enum class SnapshotKind : uint8_t {
  kMessi = 1,
  kParis = 2,
};

/// Parsed, validated snapshot header.
struct SnapshotInfo {
  uint32_t version = 0;
  SnapshotKind kind = SnapshotKind::kMessi;
  /// The Algorithm enum value recorded by the saver (Engine::Save stores
  /// its own algorithm so Engine::Open can restore kParis vs kParisPlus);
  /// purely informational at this layer.
  uint8_t algorithm = 0;
  SaxTreeOptions tree;
  /// Indexed series count *after* this file (for a delta: including the
  /// series it appends).
  uint64_t series_count = 0;
  uint64_t subtree_count = 0;
  uint64_t total_entries = 0;
  uint64_t file_bytes = 0;
  /// CRC-32 stored in the header (identifies the file in chain links).
  uint32_t header_crc = 0;

  /// True for a version-3 delta snapshot; the link fields below are
  /// then populated by ReadSnapshotInfo.
  bool is_delta = false;
  /// Chain link (deltas only): the predecessor file this delta extends.
  std::string base_path;
  /// The predecessor's stored header CRC; must match at load time.
  uint32_t base_header_crc = 0;
  /// The predecessor's series count: the delta's segment covers ids
  /// [prev_series_count, series_count).
  uint64_t prev_series_count = 0;
  /// Links back to the base: 0 for a full snapshot, n for the n-th
  /// delta.
  uint32_t chain_depth = 0;
};

struct SnapshotSaveOptions {
  /// Recorded verbatim in the header (see SnapshotInfo::algorithm).
  uint8_t algorithm = 0;
};

struct SnapshotDeltaSaveOptions {
  /// Recorded verbatim in the header (see SnapshotInfo::algorithm).
  uint8_t algorithm = 0;
  /// Chain predecessor (the current head: the base full snapshot or the
  /// previous delta).
  std::string base_path;
  /// The predecessor's stored header CRC (SnapshotInfo::header_crc).
  uint32_t base_header_crc = 0;
  /// Series count recorded by the predecessor.
  uint64_t prev_series_count = 0;
  /// 1 + the predecessor's chain depth.
  uint32_t chain_depth = 1;
};

/// Validates and parses a snapshot header (magic, version, header CRC,
/// field sanity) plus, for deltas, the chain-link section. Does not
/// verify the body checksum.
Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

/// One file of a snapshot chain, base first.
struct SnapshotChainEntry {
  std::string path;
  SnapshotInfo info;
};

/// Walks the back-references from `head_path` to the full base snapshot
/// and returns the chain in replay order [base, delta1, ..., head].
/// Verifies link integrity (CRC back-references, series-count and shape
/// continuity, depth monotonicity, chain length). A relative base path
/// that does not resolve as given is retried next to the referencing
/// delta, so relocated snapshot directories keep working.
Result<std::vector<SnapshotChainEntry>> ReadSnapshotChain(
    const std::string& head_path);

/// Serializes a MESSI index to `path`, replacing any existing file.
/// The serving snapshot must be fully folded (no live segments — the
/// Engine folds before a full save); subtrees are serialized in
/// parallel on `exec`.
Status SaveIndex(const MessiIndex& index, const std::string& path,
                 Executor* exec, const SnapshotSaveOptions& options = {});

/// Serializes a ParIS/ParIS+ index (tree + flat SAX array); requires a
/// fully folded serving snapshot, like the MESSI overload. Leaves with
/// chunks materialized in LeafStorage are inlined, so the snapshot is
/// self-contained and the restored index never touches the .leaves file.
Status SaveIndex(const ParisIndex& index, const std::string& path,
                 Executor* exec, const SnapshotSaveOptions& options = {});

/// Writes a version-3 delta snapshot holding exactly `segment` — the
/// series appended since options.base_path was written — chained to the
/// predecessor by header back-reference. `segment.first` must equal
/// options.prev_series_count; for kParis the segment must carry its
/// flat-SAX rows.
Status SaveSegmentDelta(SnapshotKind kind, const Segment& segment,
                        const std::string& path, Executor* exec,
                        const SnapshotDeltaSaveOptions& options);

/// Restores a MESSI index from `path` — a full snapshot, or a delta
/// chain head whose base is restored and whose deltas are rehydrated
/// as serving segments, in chain order. `source`
/// supplies the raw series (it must match the head's collection shape
/// and be directly addressable — an InMemorySource or MmapSource); the
/// index takes ownership. Subtrees are deserialized in parallel on
/// `exec`.
Result<std::unique_ptr<MessiIndex>> LoadMessiIndex(
    const std::string& path, std::unique_ptr<RawSeriesSource> source,
    Executor* exec);

/// Restores a ParIS/ParIS+ index from `path` (full snapshot or delta
/// chain head). Any RawSeriesSource works (mmap, in-memory, or a
/// simulated disk); the index takes ownership.
Result<std::unique_ptr<ParisIndex>> LoadParisIndex(
    const std::string& path, std::unique_ptr<RawSeriesSource> source,
    Executor* exec);

}  // namespace parisax

#endif  // PARISAX_PERSIST_SNAPSHOT_H_
