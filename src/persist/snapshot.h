// Versioned, checksummed binary snapshots of the iSAX indexes.
//
// The paper's systems amortize index construction over many queries;
// snapshots extend that across process lifetimes: build once, SaveIndex,
// then LoadIndex at startup and serve immediately (typically against an
// MmapSource over the raw dataset file, so nothing is recomputed and the
// raw values need no in-RAM copy).
//
// File layout (little-endian; see README.md for the diagram):
//
//   header       64 bytes: magic "PSAXSN01", version, kind, saved
//                algorithm, tree shape, collection shape, subtree count,
//                total entries, total file size, header CRC-32
//   flat SAX     (ParIS only) series_count x 16-byte SaxSymbols, the
//                query-time filter array
//   directory    one 40-byte record per root subtree: root key, entry
//                count, topology offset/bytes, payload offset
//   topology     per-subtree node streams (pre-order). Nodes carry only
//                their split segment; words are re-derived on load from
//                the root word plus the split chain, which is exact
//                because MakeInner extends words deterministically.
//   payload      per-subtree leaf-entry arrays (24 bytes per entry:
//                16-byte SAX symbols + 8-byte series id). Leaves in the
//                topology stream reference [first_entry, count) ranges of
//                their subtree's slice.
//   trailer      CRC-32 of everything between header and trailer
//
// Save and load both fan out per root subtree over an Executor (the same
// no-synchronization-inside-a-subtree discipline the builders use).
// Corrupted, truncated or version-mismatched files fail with typed
// Status errors (kCorruption / kNotSupported); every offset is bounds-
// checked before it is dereferenced, so hostile input cannot fault.
#ifndef PARISAX_PERSIST_SNAPSHOT_H_
#define PARISAX_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "index/raw_source.h"
#include "index/tree.h"
#include "messi/messi_index.h"
#include "paris/paris_index.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

/// Current snapshot format version. Readers reject other versions with
/// kNotSupported (the versioning policy is: bump on any layout change,
/// no in-place migration).
inline constexpr uint32_t kSnapshotVersion = 1;

/// Fixed header size in bytes; sections start immediately after.
inline constexpr uint64_t kSnapshotHeaderBytes = 64;

/// Index family stored in a snapshot.
enum class SnapshotKind : uint8_t {
  kMessi = 1,
  kParis = 2,
};

/// Parsed, validated snapshot header.
struct SnapshotInfo {
  uint32_t version = 0;
  SnapshotKind kind = SnapshotKind::kMessi;
  /// The Algorithm enum value recorded by the saver (Engine::Save stores
  /// its own algorithm so Engine::Open can restore kParis vs kParisPlus);
  /// purely informational at this layer.
  uint8_t algorithm = 0;
  SaxTreeOptions tree;
  uint64_t series_count = 0;
  uint64_t subtree_count = 0;
  uint64_t total_entries = 0;
  uint64_t file_bytes = 0;
};

struct SnapshotSaveOptions {
  /// Recorded verbatim in the header (see SnapshotInfo::algorithm).
  uint8_t algorithm = 0;
};

/// Validates and parses a snapshot header (magic, version, header CRC,
/// field sanity). Does not verify the body checksum.
Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

/// Serializes a MESSI index to `path`, replacing any existing file.
/// Subtrees are serialized in parallel on `exec`.
Status SaveIndex(const MessiIndex& index, const std::string& path,
                 Executor* exec, const SnapshotSaveOptions& options = {});

/// Serializes a ParIS/ParIS+ index (tree + flat SAX array). Leaves with
/// chunks materialized in LeafStorage are inlined, so the snapshot is
/// self-contained and the restored index never touches the .leaves file.
Status SaveIndex(const ParisIndex& index, const std::string& path,
                 Executor* exec, const SnapshotSaveOptions& options = {});

/// Restores a MESSI index from `path`. `source` supplies the raw series
/// (it must match the snapshot's collection shape and be directly
/// addressable — an InMemorySource or MmapSource); the index takes
/// ownership. Subtrees are deserialized in parallel on `exec`.
Result<std::unique_ptr<MessiIndex>> LoadMessiIndex(
    const std::string& path, std::unique_ptr<RawSeriesSource> source,
    Executor* exec);

/// Restores a ParIS/ParIS+ index from `path`. Any RawSeriesSource works
/// (mmap, in-memory, or a simulated disk); the index takes ownership.
Result<std::unique_ptr<ParisIndex>> LoadParisIndex(
    const std::string& path, std::unique_ptr<RawSeriesSource> source,
    Executor* exec);

}  // namespace parisax

#endif  // PARISAX_PERSIST_SNAPSHOT_H_
