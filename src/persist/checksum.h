// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to checksum snapshot
// headers and bodies. Table-driven, no hardware requirements; snapshots
// are dominated by memcpy anyway, so a few hundred MB/s of CRC never
// shows up next to index reconstruction.
#ifndef PARISAX_PERSIST_CHECKSUM_H_
#define PARISAX_PERSIST_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace parisax {

/// CRC-32 of `bytes[0, size)`. Pass a previous result as `seed` to
/// checksum a byte stream incrementally:
///   crc = Crc32(a, na);
///   crc = Crc32(b, nb, crc);  // == Crc32(a+b)
uint32_t Crc32(const void* bytes, size_t size, uint32_t seed = 0);

}  // namespace parisax

#endif  // PARISAX_PERSIST_CHECKSUM_H_
