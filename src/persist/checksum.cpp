#include "persist/checksum.h"

#include <array>

namespace parisax {

namespace {

/// Standard CRC-32 lookup table, built once at static-init time.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32(const void* bytes, size_t size, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(bytes);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace parisax
