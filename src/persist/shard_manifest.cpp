#include "persist/shard_manifest.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "persist/checksum.h"

namespace parisax {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'A', 'X', 'S', 'H', 'M', '1'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kMaxNameBytes = 4096;

void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, sizeof(v));
  out->append(bytes, sizeof(bytes));
}

void PutU64(std::string* out, uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, sizeof(v));
  out->append(bytes, sizeof(bytes));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked little-endian reader over the loaded manifest bytes.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len) || len > kMaxNameBytes || size_ - pos_ < len) {
      return false;
    }
    s->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Status WriteShardManifest(const ShardManifest& manifest,
                          const std::string& path) {
  if (manifest.shards.empty()) {
    return Status::InvalidArgument("manifest must describe at least one shard");
  }
  uint64_t sum = 0;
  for (const ShardManifest::Shard& shard : manifest.shards) {
    if (shard.snapshot_file.empty() || shard.data_file.empty()) {
      return Status::InvalidArgument("manifest shard file names must be set");
    }
    sum += shard.count;
  }
  if (sum != manifest.total_count) {
    return Status::InvalidArgument(
        "manifest shard counts do not sum to total_count");
  }

  std::string bytes;
  bytes.append(kMagic, sizeof(kMagic));
  PutU32(&bytes, kVersion);
  PutU32(&bytes, static_cast<uint32_t>(manifest.shards.size()));
  PutString(&bytes, manifest.algorithm);
  PutU64(&bytes, manifest.series_length);
  PutU64(&bytes, manifest.total_count);
  for (const ShardManifest::Shard& shard : manifest.shards) {
    PutU64(&bytes, shard.count);
    PutString(&bytes, shard.snapshot_file);
    PutString(&bytes, shard.data_file);
  }
  PutU32(&bytes, Crc32(bytes.data(), bytes.size()));

  const std::string tmp_path = path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create shard manifest: " + tmp_path);
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot write shard manifest: " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename shard manifest into place: " + path);
  }
  return Status::OK();
}

Result<ShardManifest> ReadShardManifest(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("shard manifest not found: " + path);
  }
  std::string bytes;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.append(buffer, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("cannot read shard manifest: " + path);
  }

  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a shard manifest: " + path);
  }
  const size_t body_size = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + body_size, sizeof(stored_crc));
  if (Crc32(bytes.data(), body_size) != stored_crc) {
    return Status::Corruption("shard manifest checksum mismatch: " + path);
  }

  ByteReader reader(bytes.data() + sizeof(kMagic),
                    body_size - sizeof(kMagic));
  uint32_t version = 0;
  uint32_t num_shards = 0;
  ShardManifest manifest;
  if (!reader.ReadU32(&version) || !reader.ReadU32(&num_shards) ||
      !reader.ReadString(&manifest.algorithm) ||
      !reader.ReadU64(&manifest.series_length) ||
      !reader.ReadU64(&manifest.total_count)) {
    return Status::Corruption("truncated shard manifest: " + path);
  }
  if (version != kVersion) {
    return Status::Corruption("unsupported shard manifest version: " + path);
  }
  if (num_shards == 0) {
    return Status::Corruption("shard manifest has no shards: " + path);
  }
  uint64_t sum = 0;
  for (uint32_t i = 0; i < num_shards; ++i) {
    ShardManifest::Shard shard;
    if (!reader.ReadU64(&shard.count) ||
        !reader.ReadString(&shard.snapshot_file) ||
        !reader.ReadString(&shard.data_file)) {
      return Status::Corruption("truncated shard manifest: " + path);
    }
    sum += shard.count;
    manifest.shards.push_back(std::move(shard));
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes in shard manifest: " + path);
  }
  if (sum != manifest.total_count) {
    return Status::Corruption(
        "shard manifest counts do not sum to the total: " + path);
  }
  return manifest;
}

}  // namespace parisax
