// On-disk manifest of one ShardedEngine checkpoint.
//
// A sharded save produces one small manifest plus, per shard, the
// shard's own snapshot file (persist/snapshot.h format, delta chains
// included) and a dataset file with the shard's raw series — so each
// shard restores independently, exactly as a standalone Engine would.
// The manifest records which files belong to which shard and the shape
// the restored collection must have; every field is covered by a
// trailing CRC-32, and a manifest is written to a temp file renamed
// into place, so a torn write can never be mistaken for a checkpoint.
//
// Layout (little-endian):
//   [0..7]  magic "PSAXSHM1"
//   uint32  format version (1)
//   uint32  shard count
//   uint32  algorithm name length, then that many bytes
//   uint64  series length (points per series)
//   uint64  total series count (sum of the shard counts)
//   per shard:
//     uint64  series count
//     uint32  snapshot file-name length, then that many bytes
//     uint32  data file-name length, then that many bytes
//   uint32  CRC-32 of every preceding byte
//
// File names are stored relative to the manifest's directory, so a
// checkpoint directory can be moved or renamed wholesale.
#ifndef PARISAX_PERSIST_SHARD_MANIFEST_H_
#define PARISAX_PERSIST_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace parisax {

struct ShardManifest {
  /// AlgorithmName() of the shards' common algorithm.
  std::string algorithm;
  /// Points per series in every shard.
  uint64_t series_length = 0;
  /// Series across all shards.
  uint64_t total_count = 0;

  struct Shard {
    /// Series this shard holds.
    uint64_t count = 0;
    /// Shard snapshot file (persist/snapshot.h), relative to the
    /// manifest's directory.
    std::string snapshot_file;
    /// Shard raw-series file (io/format.h), relative to the manifest's
    /// directory.
    std::string data_file;
  };
  std::vector<Shard> shards;
};

/// Writes `manifest` to `path` atomically (temp file + rename).
Status WriteShardManifest(const ShardManifest& manifest,
                          const std::string& path);

/// Reads and validates a manifest: magic, version, CRC, and that the
/// per-shard counts sum to total_count. Returns kNotFound when the file
/// does not exist and kCorruption on any validation failure.
Result<ShardManifest> ReadShardManifest(const std::string& path);

}  // namespace parisax

#endif  // PARISAX_PERSIST_SHARD_MANIFEST_H_
