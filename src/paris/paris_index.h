// ParIS and ParIS+: the first data series indices designed for multi-core
// architectures (on-disk), reproduced from
//   Peng, Palpanas, Fatourou. "ParIS: The Next Destination for Fast Data
//   Series Indexing and Query Answering" (IEEE BigData 2018) and
//   "ParIS+: Data Series Indexing on Multi-core Architectures" (TKDE 2020)
// as summarized in the thesis paper this repository reproduces.
//
// Index creation pipeline (Fig. 2 of the paper):
//   Stage 1  a Coordinator worker reads raw series from disk into the raw
//            data buffer (double-buffered here);
//   Stage 2  IndexBulkLoading workers summarize the buffered series,
//            filling the flat SAX array and the per-root-subtree RecBufs;
//   Stage 3  when "main memory is full" (every batches_per_round batches
//            here), IndexConstruction workers drain RecBufs, grow the
//            corresponding subtrees, and flush leaves to LeafStorage.
//
// ParIS: stage 3 does not overlap stage 1 -- the coordinator pauses, so
// tree-construction CPU time is visible in the creation time.
// ParIS+: the bulk-loading workers themselves grow the subtrees after
// every batch (overlapped with the coordinator's next read), and leaf
// flushing happens along the way; only a small tail flush remains visible.
// For in-memory datasets the same machinery runs without a coordinator
// read phase or leaf materialization (used by Figs. 7/9/12).
//
// Incremental ingest (beyond the paper): the index serves an immutable
// snapshot — the bulk-built base (tree + flat SAX array) plus an ordered
// list of delta segments that carry their own SAX rows
// (src/index/segment.h). Append builds a new segment and publishes it;
// queries capture one snapshot at entry, filter the base's SAX array and
// every segment's rows under one shared bound, and refine against the
// pinned raw view — so appends over addressable sources never exclude
// queries.
//
// Query answering (both variants): seed the BSF from the approximate-
// match leaf, filter the flat SAX array in parallel with SIMD mindist,
// then compute real distances of surviving candidates in parallel with a
// shared atomic BSF.
#ifndef PARISAX_PARIS_PARIS_INDEX_H_
#define PARISAX_PARIS_PARIS_INDEX_H_

#include <memory>
#include <string>

#include "dist/euclidean.h"
#include "index/flat_sax.h"
#include "index/leaf_storage.h"
#include "index/query_stats.h"
#include "index/raw_source.h"
#include "index/segment.h"
#include "index/tree.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

class SnapshotReader;

struct ParisBuildOptions {
  /// IndexBulkLoading (and construction) worker count.
  int num_workers = 4;
  /// ParIS+ behaviour: grow subtrees inside the bulk-loading workers,
  /// overlapped with the coordinator's reads.
  bool plus_mode = false;
  /// Raw-data-buffer capacity: series per read batch.
  size_t batch_series = 8192;
  /// "Main memory full" trigger: ParIS runs stage 3 after this many
  /// batches.
  size_t batches_per_round = 4;
  SaxTreeOptions tree;
  /// Leaf materialization path. Non-empty enables leaf flushing to
  /// LeafStorage; required when the source is not addressable (the
  /// paper's on-disk pipeline). The build-time device model lives in the
  /// source (FileSource's stream profile), not here.
  std::string leaf_storage_path;
  /// Metered leaf-write throughput; <= 0 disables metering.
  double leaf_write_mbps = 0.0;
  /// ParIS+ flushes a leaf once it holds at least this fraction of
  /// leaf_capacity in memory (lower = more eager flushing).
  double flush_fill_fraction = 0.5;
};

struct ParisBuildStats {
  double wall_seconds = 0.0;
  /// Coordinator wall time blocked on the raw-data device.
  double read_wall_seconds = 0.0;
  /// Wall time of ParIS stage-3 rounds (reading paused): the "visible
  /// CPU" of the paper's Fig. 4.
  double stage3_wall_seconds = 0.0;
  /// Wall time of the final (non-overlapped) flush: visible "Write".
  double final_flush_wall_seconds = 0.0;
  /// Accumulated per-worker busy time (informational, not wall time).
  double summarize_cpu_seconds = 0.0;
  double tree_cpu_seconds = 0.0;
  uint64_t leaf_chunks_flushed = 0;
  uint64_t leaf_chunk_readbacks = 0;
  TreeStats tree;
};

struct ParisQueryOptions {
  int num_workers = 4;
  /// SAX-array block size per Fetch&Inc claim in the filtering phase.
  size_t filter_grain = 4096;
  /// Candidates per Fetch&Inc claim in the refinement phase.
  size_t refine_grain = 4;
  KernelPolicy kernel = KernelPolicy::kAuto;
  /// Cancel/deadline token polled per claimed batch in the filter and
  /// refine phases; an expired search returns kDeadlineExceeded instead
  /// of a partial answer. The caller keeps the token alive; null never
  /// expires.
  const CancellationToken* cancel = nullptr;
  /// Optional cross-search pruning bound (the shard router's shared
  /// BSF): folded into the frozen filter bound and the refine-phase BSF
  /// with min(), and improved through UpdateMin whenever this search
  /// tightens its own bound. The caller keeps the cell alive and
  /// guarantees its value never drops below the query's true global
  /// answer, so pruning on it stays exact. Null: only the local bound
  /// prunes.
  AtomicMinFloat* shared_bound = nullptr;
};

class ParisIndex {
 public:
  /// Builds over an owned raw-series source; the index takes ownership
  /// and answers query-time raw fetches through it. An addressable
  /// source (InMemorySource, MmapSource) feeds the pipeline zero-copy
  /// batches — no coordinator read phase, and mmap-backed builds never
  /// copy the collection into RAM. A streamed source (FileSource) runs
  /// the paper's full pipeline: the coordinator pays the device model's
  /// sequential cost per batch, and `options.leaf_storage_path` (then
  /// required) materializes leaves.
  static Result<std::unique_ptr<ParisIndex>> Build(
      std::unique_ptr<RawSeriesSource> source,
      const ParisBuildOptions& options);

  /// Incremental ingest: appends `count` series (count * length values,
  /// row-major, already z-normalized) to the owned source, then builds
  /// an immutable delta segment (tree + SAX rows) over just the new ids
  /// and publishes it onto the serving snapshot. `touched_roots`
  /// (optional) receives the ascending root keys the segment populated.
  /// Over an addressable source, queries proceed concurrently (they
  /// keep the snapshot they captured at entry); callers serialize
  /// appends with each other (the Engine append mutex does). Requires
  /// raw_source()->appendable().
  Status Append(const Value* values, size_t count, Executor* exec,
                std::vector<uint32_t>* touched_roots = nullptr);

  /// Exact 1-NN (squared ED), parallel. `Neighbor{0, +inf}` if empty.
  /// `exec` supplies the query's parallelism: a ThreadPool fans the
  /// filter/refine phases out over every core, an InlineExecutor runs
  /// the whole query on the calling thread so many queries can run
  /// concurrently. All mutable state is per-call (including the serving
  /// snapshot captured at entry).
  Result<Neighbor> SearchExact(SeriesView query,
                               const ParisQueryOptions& options,
                               Executor* exec,
                               QueryStats* stats = nullptr) const;

  /// Approximate 1-NN: best real distance within the matching leaf of
  /// the base and of every segment.
  Result<Neighbor> SearchApproximate(SeriesView query,
                                     QueryStats* stats = nullptr) const;

  /// Current serving snapshot (base + segments). Cheap: copies one
  /// shared_ptr under a brief lock.
  std::shared_ptr<const ServingState> serving() const { return dock_.get(); }

  /// Folds the first `folded` segments of `snap` into a fresh base
  /// (tree + flat SAX array) and splices it in. Runs entirely off the
  /// serving path; the splice is discarded (returns false) if the
  /// serving state's base or folded segments changed since `snap` was
  /// captured. Safe to run concurrently with queries and appends.
  Result<bool> FoldSegments(const std::shared_ptr<const ServingState>& snap,
                            size_t folded, Executor* exec);

  /// Minor compaction: merges the first `folded` segments of `snap` into
  /// one segment (same discard semantics as FoldSegments).
  Result<bool> MergeSegmentRun(
      const std::shared_ptr<const ServingState>& snap, size_t folded,
      Executor* exec);

  // Base tree / SAX array of the current snapshot. For quiescent
  // callers (tests, persistence): the references are only stable while
  // nothing publishes a new snapshot.
  const SaxTree& tree() const { return *dock_.get()->base; }
  const FlatSaxCache& cache() const { return *dock_.get()->cache; }
  const SaxTreeOptions& tree_options() const { return tree_options_; }
  const ParisBuildStats& build_stats() const { return build_stats_; }
  RawSeriesSource* raw_source() const { return source_.get(); }
  LeafStorage* leaf_storage() const { return leaf_storage_.get(); }
  /// Series in the indexed collection (as of the current snapshot).
  size_t series_count() const { return dock_.get()->count; }

 private:
  explicit ParisIndex(const SaxTreeOptions& tree_options)
      : tree_options_(tree_options) {}

  friend class ParisBuilder;
  /// Snapshot restore (src/persist/) reconstructs the serving state.
  friend class SnapshotReader;

  SaxTreeOptions tree_options_;
  std::unique_ptr<RawSeriesSource> source_;
  std::unique_ptr<LeafStorage> leaf_storage_;
  /// The serving snapshot publication point (see segment.h).
  ServingDock dock_;
  ParisBuildStats build_stats_;
};

}  // namespace parisax

#endif  // PARISAX_PARIS_PARIS_INDEX_H_
