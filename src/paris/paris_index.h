// ParIS and ParIS+: the first data series indices designed for multi-core
// architectures (on-disk), reproduced from
//   Peng, Palpanas, Fatourou. "ParIS: The Next Destination for Fast Data
//   Series Indexing and Query Answering" (IEEE BigData 2018) and
//   "ParIS+: Data Series Indexing on Multi-core Architectures" (TKDE 2020)
// as summarized in the thesis paper this repository reproduces.
//
// Index creation pipeline (Fig. 2 of the paper):
//   Stage 1  a Coordinator worker reads raw series from disk into the raw
//            data buffer (double-buffered here);
//   Stage 2  IndexBulkLoading workers summarize the buffered series,
//            filling the flat SAX array and the per-root-subtree RecBufs;
//   Stage 3  when "main memory is full" (every batches_per_round batches
//            here), IndexConstruction workers drain RecBufs, grow the
//            corresponding subtrees, and flush leaves to LeafStorage.
//
// ParIS: stage 3 does not overlap stage 1 -- the coordinator pauses, so
// tree-construction CPU time is visible in the creation time.
// ParIS+: the bulk-loading workers themselves grow the subtrees after
// every batch (overlapped with the coordinator's next read), and leaf
// flushing happens along the way; only a small tail flush remains visible.
// For in-memory datasets the same machinery runs without a coordinator
// read phase or leaf materialization (used by Figs. 7/9/12).
//
// Query answering (both variants): seed the BSF from the approximate-
// match leaf, filter the flat SAX array in parallel with SIMD mindist,
// then compute real distances of surviving candidates in parallel with a
// shared atomic BSF.
#ifndef PARISAX_PARIS_PARIS_INDEX_H_
#define PARISAX_PARIS_PARIS_INDEX_H_

#include <memory>
#include <string>

#include "dist/euclidean.h"
#include "index/flat_sax.h"
#include "index/leaf_storage.h"
#include "index/query_stats.h"
#include "index/raw_source.h"
#include "index/tree.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

class SnapshotReader;

struct ParisBuildOptions {
  /// IndexBulkLoading (and construction) worker count.
  int num_workers = 4;
  /// ParIS+ behaviour: grow subtrees inside the bulk-loading workers,
  /// overlapped with the coordinator's reads.
  bool plus_mode = false;
  /// Raw-data-buffer capacity: series per read batch.
  size_t batch_series = 8192;
  /// "Main memory full" trigger: ParIS runs stage 3 after this many
  /// batches.
  size_t batches_per_round = 4;
  SaxTreeOptions tree;
  /// Leaf materialization path. Non-empty enables leaf flushing to
  /// LeafStorage; required when the source is not addressable (the
  /// paper's on-disk pipeline). The build-time device model lives in the
  /// source (FileSource's stream profile), not here.
  std::string leaf_storage_path;
  /// Metered leaf-write throughput; <= 0 disables metering.
  double leaf_write_mbps = 0.0;
  /// ParIS+ flushes a leaf once it holds at least this fraction of
  /// leaf_capacity in memory (lower = more eager flushing).
  double flush_fill_fraction = 0.5;
};

struct ParisBuildStats {
  double wall_seconds = 0.0;
  /// Coordinator wall time blocked on the raw-data device.
  double read_wall_seconds = 0.0;
  /// Wall time of ParIS stage-3 rounds (reading paused): the "visible
  /// CPU" of the paper's Fig. 4.
  double stage3_wall_seconds = 0.0;
  /// Wall time of the final (non-overlapped) flush: visible "Write".
  double final_flush_wall_seconds = 0.0;
  /// Accumulated per-worker busy time (informational, not wall time).
  double summarize_cpu_seconds = 0.0;
  double tree_cpu_seconds = 0.0;
  uint64_t leaf_chunks_flushed = 0;
  uint64_t leaf_chunk_readbacks = 0;
  TreeStats tree;
};

struct ParisQueryOptions {
  int num_workers = 4;
  /// SAX-array block size per Fetch&Inc claim in the filtering phase.
  size_t filter_grain = 4096;
  /// Candidates per Fetch&Inc claim in the refinement phase.
  size_t refine_grain = 4;
  KernelPolicy kernel = KernelPolicy::kAuto;
};

class ParisIndex {
 public:
  /// Builds over an owned raw-series source; the index takes ownership
  /// and answers query-time raw fetches through it. An addressable
  /// source (InMemorySource, MmapSource) feeds the pipeline zero-copy
  /// batches — no coordinator read phase, and mmap-backed builds never
  /// copy the collection into RAM. A streamed source (FileSource) runs
  /// the paper's full pipeline: the coordinator pays the device model's
  /// sequential cost per batch, and `options.leaf_storage_path` (then
  /// required) materializes leaves.
  static Result<std::unique_ptr<ParisIndex>> Build(
      std::unique_ptr<RawSeriesSource> source,
      const ParisBuildOptions& options);

  /// Incremental ingest: appends `count` series (count * length values,
  /// row-major, already z-normalized) to the owned source, grows the
  /// flat SAX array, and inserts just the new ids into their subtrees
  /// (in parallel on `exec`, one worker per touched root). New entries
  /// stay in memory; existing flushed chunks are untouched.
  /// `touched_roots` (optional) receives the ascending keys of the
  /// subtrees that received entries — the delta-snapshot dirty set.
  /// Callers must exclude concurrent queries for the duration (the
  /// Engine append gate does); requires raw_source()->appendable().
  Status Append(const Value* values, size_t count, Executor* exec,
                std::vector<uint32_t>* touched_roots = nullptr);

  /// Exact 1-NN (squared ED), parallel. `Neighbor{0, +inf}` if empty.
  /// `exec` supplies the query's parallelism: a ThreadPool fans the
  /// filter/refine phases out over every core, an InlineExecutor runs
  /// the whole query on the calling thread so many queries can run
  /// concurrently. All mutable state is per-call.
  Result<Neighbor> SearchExact(SeriesView query,
                               const ParisQueryOptions& options,
                               Executor* exec,
                               QueryStats* stats = nullptr) const;

  /// Approximate 1-NN: real distances within the approximate leaf only.
  Result<Neighbor> SearchApproximate(SeriesView query,
                                     QueryStats* stats = nullptr) const;

  const SaxTree& tree() const { return tree_; }
  const FlatSaxCache& cache() const { return cache_; }
  const ParisBuildStats& build_stats() const { return build_stats_; }
  RawSeriesSource* raw_source() const { return source_.get(); }
  LeafStorage* leaf_storage() const { return leaf_storage_.get(); }

 private:
  explicit ParisIndex(const SaxTreeOptions& tree_options)
      : tree_(tree_options) {}

  friend class ParisBuilder;
  /// Snapshot restore (src/persist/) rebuilds tree_/cache_/source_ in
  /// place.
  friend class SnapshotReader;

  SaxTree tree_;
  FlatSaxCache cache_;
  std::unique_ptr<RawSeriesSource> source_;
  std::unique_ptr<LeafStorage> leaf_storage_;
  ParisBuildStats build_stats_;
};

}  // namespace parisax

#endif  // PARISAX_PARIS_PARIS_INDEX_H_
