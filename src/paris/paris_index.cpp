#include "paris/paris_index.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "index/approx_search.h"
#include "index/ingest.h"
#include "paris/recbuf.h"
#include "sax/mindist.h"
#include "sax/paa.h"
#include "util/timer.h"

namespace parisax {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// One half of the double-buffered raw data buffer (Stage 1 <-> Stage 2).
struct BatchSlot {
  std::mutex mu;
  std::condition_variable cv;

  // Buffer contents. `storage` backs streamed builds; addressable
  // sources point `values` straight into the contiguous block.
  AlignedBuffer<Value> storage;
  const Value* values = nullptr;
  SeriesId first_id = 0;
  size_t count = 0;

  // Protocol state (guarded by mu unless noted).
  int64_t published = -1;    ///< batch index currently in the buffer
  bool free = true;          ///< coordinator may refill
  int arrived = 0;           ///< workers done summarizing `published`
  int64_t drain_ready = -1;  ///< batch whose drain work list is ready

  WorkCounter summarize{0};          // claims over [0, count)
  std::vector<uint32_t> drain_list;  // ParIS+: keys to drain this batch
  WorkCounter drain{0};              // claims over drain_list
};

}  // namespace

/// Orchestrates one index build. Owns the transient pipeline state; the
/// durable result lands in the ParisIndex.
class ParisBuilder {
 public:
  ParisBuilder(ParisIndex* index, const ParisBuildOptions& options,
               size_t total_series)
      : index_(index),
        options_(options),
        total_series_(total_series),
        recbufs_(options.tree.segments),
        flush_threshold_(std::max<size_t>(
            1, static_cast<size_t>(options.flush_fill_fraction *
                                   static_cast<double>(
                                       options.tree.leaf_capacity)))) {
    total_batches_ =
        static_cast<int64_t>((total_series_ + options_.batch_series - 1) /
                             options_.batch_series);
  }

  /// Runs the pipeline over `source`: zero-copy batches when the source
  /// is addressable, metered sequential streaming otherwise.
  Status Run(const RawSeriesSource& source);

 private:
  Status CoordinatorLoop(SeriesStream* stream, const Value* base);
  void WorkerLoop(int worker_id);

  /// Drains RecBuf `key` into its subtree; flushes leaves holding at
  /// least `flush_threshold` entries when `flush` is set.
  Status DrainKey(uint32_t key, bool flush, size_t flush_threshold,
                  std::vector<LeafEntry>* scratch);

  /// ParIS stage 3: construction workers drain all touched RecBufs while
  /// the coordinator is paused.
  Status Stage3Round();

  /// Flushes every leaf still holding in-memory entries (build tail).
  Status FinalFlush();

  void RecordError(const Status& status) {
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (first_error_.ok()) first_error_ = status;
      failed_.store(true, std::memory_order_release);
    }
    // Wake anyone blocked on a slot so the pipeline can unwind.
    for (BatchSlot& s : slots_) s.cv.notify_all();
  }

  bool materialize_leaves() const {
    return index_->leaf_storage_ != nullptr;
  }

  ParisIndex* index_;
  const ParisBuildOptions& options_;
  const size_t total_series_;
  int64_t total_batches_ = 0;

  RecBufSet recbufs_;
  const size_t flush_threshold_;
  BatchSlot slots_[2];

  std::unique_ptr<ThreadPool> construction_pool_;  // ParIS stage 3

  StageAccumulator summarize_cpu_;
  StageAccumulator tree_cpu_;

  std::mutex error_mu_;
  Status first_error_;
  std::atomic<bool> failed_{false};
};

Status ParisBuilder::Run(const RawSeriesSource& source) {
  if (source.length() != options_.tree.series_length) {
    return Status::InvalidArgument(
        "tree.series_length does not match the source");
  }
  const Value* base = source.ContiguousData();
  if (base != nullptr) {
    // Addressable source: slots point straight into the block (zero
    // copy, no coordinator read phase).
    return CoordinatorLoop(nullptr, base);
  }
  // Streamed source: the coordinator copies batches into slot-owned
  // buffers, paying the device model's sequential cost per batch.
  std::unique_ptr<SeriesStream> stream;
  PARISAX_ASSIGN_OR_RETURN(stream,
                           source.OpenStream(options_.batch_series));
  for (BatchSlot& slot : slots_) {
    slot.storage.Allocate(options_.batch_series *
                          options_.tree.series_length);
    slot.values = slot.storage.data();
  }
  return CoordinatorLoop(stream.get(), nullptr);
}

Status ParisBuilder::CoordinatorLoop(SeriesStream* stream,
                                     const Value* base) {
  WallTimer wall;
  ParisBuildStats& stats = index_->build_stats_;

  if (!options_.plus_mode) {
    construction_pool_ =
        std::make_unique<ThreadPool>(options_.num_workers);
  }
  ThreadPool bulk_pool(options_.num_workers);

  // The bulk-loading workers run as one long parallel region; the
  // coordinator (this thread) feeds them batches. Run() blocks, so the
  // coordinator logic itself executes on a dedicated thread.
  Status coord_status;
  std::thread coordinator([&] {
    for (int64_t b = 0; b < total_batches_; ++b) {
      if (failed_.load(std::memory_order_acquire)) break;
      BatchSlot& slot = slots_[b % 2];
      {
        std::unique_lock<std::mutex> lock(slot.mu);
        slot.cv.wait(lock, [&] {
          return slot.free || failed_.load(std::memory_order_acquire);
        });
      }
      if (failed_.load(std::memory_order_acquire)) break;
      // Exclusive buffer access between `free` and re-publication.
      const SeriesId first = static_cast<SeriesId>(b) *
                             options_.batch_series;
      size_t count;
      if (stream != nullptr) {
        SeriesBatch batch;
        WallTimer read;
        const Status st = stream->NextBatch(&batch);
        stats.read_wall_seconds += read.ElapsedSeconds();
        if (!st.ok()) {
          coord_status = st;
          RecordError(st);
          break;
        }
        count = batch.count;
        std::copy(batch.values,
                  batch.values + count * options_.tree.series_length,
                  slot.storage.data());
      } else {
        count = std::min(options_.batch_series,
                         total_series_ - static_cast<size_t>(first));
        slot.values = base + static_cast<size_t>(first) *
                                 options_.tree.series_length;
      }
      {
        std::lock_guard<std::mutex> lock(slot.mu);
        slot.first_id = first;
        slot.count = count;
        slot.free = false;
        slot.arrived = 0;
        slot.summarize.Reset(count);
        slot.published = b;
      }
      slot.cv.notify_all();

      // ParIS: "main memory full" -> pause reading, run stage 3.
      if (!options_.plus_mode &&
          ((b + 1) % static_cast<int64_t>(options_.batches_per_round) == 0 ||
           b + 1 == total_batches_)) {
        for (BatchSlot& s : slots_) {
          std::unique_lock<std::mutex> lock(s.mu);
          s.cv.wait(lock, [&] {
            return s.free || failed_.load(std::memory_order_acquire);
          });
        }
        if (failed_.load(std::memory_order_acquire)) break;
        WallTimer stage3;
        const Status st = Stage3Round();
        stats.stage3_wall_seconds += stage3.ElapsedSeconds();
        if (!st.ok()) {
          coord_status = st;
          RecordError(st);
          break;
        }
      }
    }
    // Ensure workers blocked on publication observe the end state.
    for (BatchSlot& s : slots_) s.cv.notify_all();
  });

  bulk_pool.Run([&](int worker) { WorkerLoop(worker); });
  coordinator.join();

  PARISAX_RETURN_IF_ERROR(coord_status);
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    PARISAX_RETURN_IF_ERROR(first_error_);
  }

  // Tail: ParIS+ drains whatever the last batches re-listed; ParIS's
  // final stage-3 round already ran. Then materialize remaining leaves.
  if (recbufs_.HasTouched()) {
    WallTimer stage3;
    PARISAX_RETURN_IF_ERROR(Stage3Round());
    stats.stage3_wall_seconds += stage3.ElapsedSeconds();
  }
  if (materialize_leaves()) {
    WallTimer flush;
    PARISAX_RETURN_IF_ERROR(FinalFlush());
    stats.final_flush_wall_seconds = flush.ElapsedSeconds();
  }

  index_->tree_.SealRoots();
  stats.tree = index_->tree_.Collect();
  stats.summarize_cpu_seconds = summarize_cpu_.TotalSeconds();
  stats.tree_cpu_seconds = tree_cpu_.TotalSeconds();
  if (index_->leaf_storage_ != nullptr) {
    stats.leaf_chunks_flushed = index_->leaf_storage_->chunks_appended();
    stats.leaf_chunk_readbacks = index_->leaf_storage_->chunks_read();
  }
  stats.wall_seconds = wall.ElapsedSeconds();

  if (stats.tree.total_entries != total_series_) {
    return Status::Internal("index lost series during the build");
  }
  return Status::OK();
}

void ParisBuilder::WorkerLoop(int worker_id) {
  (void)worker_id;
  const int w = options_.tree.segments;
  std::vector<LeafEntry> scratch;

  for (int64_t b = 0; b < total_batches_; ++b) {
    BatchSlot& slot = slots_[b % 2];
    {
      std::unique_lock<std::mutex> lock(slot.mu);
      slot.cv.wait(lock, [&] {
        return slot.published >= b ||
               failed_.load(std::memory_order_acquire);
      });
    }
    if (failed_.load(std::memory_order_acquire)) return;

    // Stage 2: summarize claimed ranges of the raw data buffer.
    {
      StageAccumulator::Scope timed(&summarize_cpu_);
      float paa[kMaxSegments];
      size_t begin, end;
      while (slot.summarize.NextBatch(64, &begin, &end)) {
        for (size_t i = begin; i < end; ++i) {
          const SeriesView series(
              slot.values + i * options_.tree.series_length,
              options_.tree.series_length);
          ComputePaa(series, w, paa);
          LeafEntry entry;
          entry.id = slot.first_id + i;
          SymbolsFromPaa(paa, w, &entry.sax);
          *index_->cache_.MutableAt(entry.id) = entry.sax;
          recbufs_.Append(RootKey(entry.sax, w), entry);
        }
      }
    }

    // Per-batch barrier; the last arriver frees the buffer for the
    // coordinator and, in ParIS+ mode, snapshots the drain work list.
    {
      std::unique_lock<std::mutex> lock(slot.mu);
      if (++slot.arrived == options_.num_workers) {
        slot.free = true;
        if (options_.plus_mode) {
          slot.drain_list = recbufs_.TakeTouched();
          slot.drain.Reset(slot.drain_list.size());
        }
        slot.drain_ready = b;
        slot.cv.notify_all();
      } else {
        slot.cv.wait(lock, [&] {
          return slot.drain_ready >= b ||
                 failed_.load(std::memory_order_acquire);
        });
        if (failed_.load(std::memory_order_acquire)) return;
      }
    }

    // ParIS+ tree growth, overlapped with the coordinator's next read.
    if (options_.plus_mode) {
      StageAccumulator::Scope timed(&tree_cpu_);
      size_t item;
      while (slot.drain.NextItem(&item)) {
        const Status st = DrainKey(slot.drain_list[item],
                                   materialize_leaves(), flush_threshold_,
                                   &scratch);
        if (!st.ok()) {
          RecordError(st);
          return;
        }
      }
    }
  }
}

Status ParisBuilder::DrainKey(uint32_t key, bool flush,
                              size_t flush_threshold,
                              std::vector<LeafEntry>* scratch) {
  recbufs_.Drain(key, scratch);
  if (scratch->empty()) return Status::OK();
  Node* root = index_->tree_.GetOrCreateRoot(key);
  LeafStorage* storage = index_->leaf_storage_.get();
  for (const LeafEntry& e : *scratch) {
    PARISAX_RETURN_IF_ERROR(
        index_->tree_.InsertIntoSubtree(root, e, storage));
  }
  if (!flush) return Status::OK();

  Status flush_status;
  index_->tree_.VisitLeaves(root, [&](Node* leaf) {
    if (!flush_status.ok()) return;
    if (leaf->entries().size() < flush_threshold) return;
    auto ref = storage->AppendChunk(leaf->entries());
    if (!ref.ok()) {
      flush_status = ref.status();
      return;
    }
    leaf->flushed_chunks().push_back(*ref);
    leaf->entries().clear();
  });
  return flush_status;
}

Status ParisBuilder::Stage3Round() {
  const std::vector<uint32_t> keys = recbufs_.TakeTouched();
  if (keys.empty()) return Status::OK();
  WorkCounter counter(keys.size());
  const bool flush = materialize_leaves();

  const auto drain_all = [&](int) {
    StageAccumulator::Scope timed(&tree_cpu_);
    std::vector<LeafEntry> scratch;
    size_t item;
    while (counter.NextItem(&item)) {
      // ParIS flushes every leaf it grew in this round ("flush subtree
      // leaves to disk"), hence threshold 1.
      const Status st = DrainKey(keys[item], flush, 1, &scratch);
      if (!st.ok()) {
        RecordError(st);
        return;
      }
    }
  };

  if (construction_pool_ != nullptr) {
    construction_pool_->Run(drain_all);
  } else {
    drain_all(0);
  }
  std::lock_guard<std::mutex> lock(error_mu_);
  return first_error_;
}

Status ParisBuilder::FinalFlush() {
  LeafStorage* storage = index_->leaf_storage_.get();
  Status flush_status;
  index_->tree_.VisitLeaves(nullptr, [&](Node* leaf) {
    if (!flush_status.ok() || leaf->entries().empty()) return;
    auto ref = storage->AppendChunk(leaf->entries());
    if (!ref.ok()) {
      flush_status = ref.status();
      return;
    }
    leaf->flushed_chunks().push_back(*ref);
    leaf->entries().clear();
    leaf->entries().shrink_to_fit();
  });
  return flush_status;
}

Result<std::unique_ptr<ParisIndex>> ParisIndex::Build(
    std::unique_ptr<RawSeriesSource> source,
    const ParisBuildOptions& options) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must not be null");
  }
  if (!source->addressable() && options.leaf_storage_path.empty()) {
    return Status::InvalidArgument(
        "streamed (on-disk) ParIS build requires leaf_storage_path");
  }
  auto index = std::unique_ptr<ParisIndex>(new ParisIndex(options.tree));
  index->cache_ = FlatSaxCache(source->count());
  if (!options.leaf_storage_path.empty()) {
    PARISAX_ASSIGN_OR_RETURN(
        index->leaf_storage_,
        LeafStorage::Create(options.leaf_storage_path,
                            options.leaf_write_mbps));
  }

  ParisBuilder builder(index.get(), options, source->count());
  PARISAX_RETURN_IF_ERROR(builder.Run(*source));
  index->source_ = std::move(source);
  return index;
}

Status ParisIndex::Append(const Value* values, size_t count,
                          Executor* exec,
                          std::vector<uint32_t>* touched_roots) {
  if (touched_roots != nullptr) touched_roots->clear();
  if (count == 0) return Status::OK();
  const SeriesId first = source_->count();

  PARISAX_RETURN_IF_ERROR(source_->AppendSeries(values, count));
  cache_.Grow(first + count);

  PARISAX_RETURN_IF_ERROR(
      AppendTailToTree(&tree_, values, count, first, exec,
                       leaf_storage_.get(), &cache_, touched_roots));
  // O(batch) bookkeeping: a full tree_.Collect() walk per append would
  // make ingest O(index size) while queries are gated out. Only
  // total_entries is maintained incrementally; the other shape stats
  // reflect the last full build (debug builds still verify the count
  // against a real walk).
  build_stats_.tree.total_entries += count;
  assert(tree_.Collect().total_entries == source_->count());
  return Status::OK();
}

Result<Neighbor> ParisIndex::SearchApproximate(SeriesView query,
                                               QueryStats* stats) const {
  if (query.size() != tree_.options().series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  WallTimer timer;
  const int w = tree_.options().segments;
  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);
  auto result =
      ApproximateLeafSearch(tree_, leaf_storage_.get(), *source_, query, paa,
                            sax, KernelPolicy::kAuto, stats);
  if (stats != nullptr) stats->total_seconds = timer.ElapsedSeconds();
  return result;
}

Result<Neighbor> ParisIndex::SearchExact(SeriesView query,
                                         const ParisQueryOptions& options,
                                         Executor* exec,
                                         QueryStats* stats) const {
  if (query.size() != tree_.options().series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  WallTimer total;
  const int w = tree_.options().segments;
  const size_t n = tree_.options().series_length;
  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);

  // Phase 1: BSF from the approximate-match leaf.
  WallTimer approx_timer;
  Neighbor best;
  PARISAX_ASSIGN_OR_RETURN(
      best, ApproximateLeafSearch(tree_, leaf_storage_.get(), *source_,
                                  query, paa, sax, options.kernel, stats));
  if (stats != nullptr) {
    stats->approx_phase_seconds = approx_timer.ElapsedSeconds();
  }

  // Phase 2: lower-bound workers filter the flat SAX array in parallel.
  WallTimer filter_timer;
  const float bsf0 = best.distance_sq;
  std::vector<SeriesId> candidates(cache_.count());
  std::atomic<size_t> tail{0};
  {
    WorkCounter counter(cache_.count());
    exec->Run([&](int) {
      size_t begin, end;
      while (counter.NextBatch(options.filter_grain, &begin, &end)) {
        for (SeriesId i = begin; i < end; ++i) {
          const float lb = MinDistPaaToSymbolsSq(paa, cache_.At(i), w, n);
          if (lb < bsf0) {
            candidates[tail.fetch_add(1, std::memory_order_relaxed)] = i;
          }
        }
      }
    });
  }
  const size_t num_candidates = tail.load();
  // Skip-sequential order for the raw-data reads.
  std::sort(candidates.begin(), candidates.begin() + num_candidates);
  if (stats != nullptr) {
    stats->lb_checks += cache_.count();
    stats->candidates += num_candidates;
    stats->filter_phase_seconds = filter_timer.ElapsedSeconds();
  }

  // Phase 3: real-distance workers refine candidates in parallel.
  WallTimer refine_timer;
  AtomicMinFloat bsf(bsf0);
  std::mutex best_mu;
  std::atomic<bool> failed{false};
  Status worker_status;
  if (source_->PrefersSequentialAccess()) {
    // Spinning disk: racing workers would destroy the skip-sequential
    // order and pay a seek per candidate. One I/O stream reads the
    // sorted candidates in chunks; the pool computes distances per
    // chunk.
    constexpr size_t kChunk = 256;
    std::vector<Value> chunk_values(kChunk * n);
    for (size_t base = 0; base < num_candidates; base += kChunk) {
      const size_t count = std::min(kChunk, num_candidates - base);
      for (size_t c = 0; c < count; ++c) {
        PARISAX_RETURN_IF_ERROR(source_->GetSeries(
            candidates[base + c], chunk_values.data() + c * n));
      }
      WorkCounter counter(count);
      exec->Run([&](int) {
        size_t c;
        while (counter.NextItem(&c)) {
          const float bound = bsf.Load();
          const float d = SquaredEuclideanEarlyAbandon(
              query.data(), chunk_values.data() + c * n, n, bound,
              options.kernel);
          if (d < bound) {
            bsf.UpdateMin(d);
            const SeriesId id = candidates[base + c];
            std::lock_guard<std::mutex> lock(best_mu);
            if (d < best.distance_sq ||
                (d == best.distance_sq && id < best.id)) {
              best = Neighbor{id, d};
            }
          }
        }
      });
    }
  } else {
    WorkCounter counter(num_candidates);
    exec->Run([&](int) {
      std::vector<Value> buffer(source_->length());
      size_t begin, end;
      while (counter.NextBatch(options.refine_grain, &begin, &end)) {
        if (failed.load(std::memory_order_acquire)) return;
        for (size_t c = begin; c < end; ++c) {
          const SeriesId id = candidates[c];
          SeriesView view = source_->TryView(id);
          if (view.empty()) {
            const Status st = source_->GetSeries(id, buffer.data());
            if (!st.ok()) {
              std::lock_guard<std::mutex> lock(best_mu);
              if (worker_status.ok()) worker_status = st;
              failed.store(true, std::memory_order_release);
              return;
            }
            view = SeriesView(buffer.data(), buffer.size());
          }
          const float bound = bsf.Load();
          const float d =
              SquaredEuclideanEarlyAbandon(query, view, bound,
                                           options.kernel);
          if (d < bound) {
            bsf.UpdateMin(d);
            std::lock_guard<std::mutex> lock(best_mu);
            if (d < best.distance_sq ||
                (d == best.distance_sq && id < best.id)) {
              best = Neighbor{id, d};
            }
          }
        }
      }
    });
  }
  PARISAX_RETURN_IF_ERROR(worker_status);
  if (stats != nullptr) {
    stats->real_dist_calcs += num_candidates;
    stats->refine_phase_seconds = refine_timer.ElapsedSeconds();
    stats->total_seconds = total.ElapsedSeconds();
  }
  return best;
}

}  // namespace parisax
