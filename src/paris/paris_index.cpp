#include "paris/paris_index.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include "index/approx_search.h"
#include "index/ingest.h"
#include "paris/recbuf.h"
#include "sax/mindist.h"
#include "sax/paa.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace parisax {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// One half of the double-buffered raw data buffer (Stage 1 <-> Stage 2).
struct BatchSlot {
  Mutex mu{"ParisBuilder::BatchSlot::mu", LockRank::kBuildSlot};
  CondVar cv;

  // Buffer contents. `storage` backs streamed builds; addressable
  // sources point `values` straight into the contiguous block.
  AlignedBuffer<Value> storage;
  const Value* values = nullptr;
  SeriesId first_id = 0;
  size_t count = 0;

  // Protocol state. The remaining fields (buffer contents, work
  // counters, drain list) are handed off by the protocol itself: the
  // coordinator writes them while it holds exclusive buffer access
  // (between observing `free` and re-publishing) and workers read them
  // only after the publication / barrier edges below.
  int64_t published PARISAX_GUARDED_BY(mu) = -1;  ///< batch in the buffer
  bool free PARISAX_GUARDED_BY(mu) = true;   ///< coordinator may refill
  int arrived PARISAX_GUARDED_BY(mu) = 0;    ///< workers done summarizing
  int64_t drain_ready PARISAX_GUARDED_BY(mu) = -1;  ///< drain list ready

  WorkCounter summarize{0};          // claims over [0, count)
  std::vector<uint32_t> drain_list;  // ParIS+: keys to drain this batch
  WorkCounter drain{0};              // claims over drain_list
};

/// Best (distance, id) across `a` and `b`.
Neighbor BetterNeighbor(const Neighbor& a, const Neighbor& b) {
  if (b.distance_sq < a.distance_sq ||
      (b.distance_sq == a.distance_sq && b.id < a.id)) {
    return b;
  }
  return a;
}

/// Approximate probe merged across the snapshot's base and segments:
/// the BSF seed for the exact search. Addressable snapshots read
/// through the pinned raw view (gate-free); streamed ones go through
/// the source.
Result<Neighbor> ProbeAllTrees(const ServingState& snap,
                               const RawSeriesSource& source,
                               LeafStorage* storage, SeriesView query,
                               const float* paa, const SaxSymbols& sax,
                               KernelPolicy kernel, QueryStats* stats) {
  const bool addressable = snap.raw.base != nullptr;
  Neighbor best{0, kInf};
  Neighbor cand;
  if (addressable) {
    PARISAX_ASSIGN_OR_RETURN(
        cand, ApproximateLeafSearch(*snap.base, storage, snap.raw, query,
                                    paa, sax, kernel, stats));
  } else {
    PARISAX_ASSIGN_OR_RETURN(
        cand, ApproximateLeafSearch(*snap.base, storage, source, query,
                                    paa, sax, kernel, stats));
  }
  best = BetterNeighbor(best, cand);
  for (const auto& seg : snap.segments) {
    // Segment leaves are always fully in memory (no flushed chunks).
    if (addressable) {
      PARISAX_ASSIGN_OR_RETURN(
          cand, ApproximateLeafSearch(seg->tree, /*storage=*/nullptr,
                                      snap.raw, query, paa, sax, kernel,
                                      stats));
    } else {
      PARISAX_ASSIGN_OR_RETURN(
          cand, ApproximateLeafSearch(seg->tree, /*storage=*/nullptr,
                                      source, query, paa, sax, kernel,
                                      stats));
    }
    best = BetterNeighbor(best, cand);
  }
  return best;
}

}  // namespace

/// Orchestrates one index build. Owns the transient pipeline state; the
/// durable result lands in the tree/cache the caller will publish.
class ParisBuilder {
 public:
  ParisBuilder(ParisIndex* index, SaxTree* tree, FlatSaxCache* cache,
               const ParisBuildOptions& options, size_t total_series)
      : index_(index),
        tree_(tree),
        cache_(cache),
        options_(options),
        total_series_(total_series),
        recbufs_(options.tree.segments),
        flush_threshold_(std::max<size_t>(
            1, static_cast<size_t>(options.flush_fill_fraction *
                                   static_cast<double>(
                                       options.tree.leaf_capacity)))) {
    total_batches_ =
        static_cast<int64_t>((total_series_ + options_.batch_series - 1) /
                             options_.batch_series);
  }

  /// Runs the pipeline over `source`: zero-copy batches when the source
  /// is addressable, metered sequential streaming otherwise.
  Status Run(const RawSeriesSource& source);

 private:
  Status CoordinatorLoop(SeriesStream* stream, const Value* base);
  void WorkerLoop(int worker_id);

  /// Drains RecBuf `key` into its subtree; flushes leaves holding at
  /// least `flush_threshold` entries when `flush` is set.
  Status DrainKey(uint32_t key, bool flush, size_t flush_threshold,
                  std::vector<LeafEntry>* scratch);

  /// ParIS stage 3: construction workers drain all touched RecBufs while
  /// the coordinator is paused.
  Status Stage3Round();

  /// Flushes every leaf still holding in-memory entries (build tail).
  Status FinalFlush();

  void RecordError(const Status& status) {
    {
      MutexLock lock(&error_mu_);
      if (first_error_.ok()) first_error_ = status;
      failed_.store(true, std::memory_order_release);
    }
    // Wake anyone blocked on a slot so the pipeline can unwind.
    for (BatchSlot& s : slots_) s.cv.NotifyAll();
  }

  bool materialize_leaves() const {
    return index_->leaf_storage_ != nullptr;
  }

  ParisIndex* index_;
  SaxTree* tree_;
  FlatSaxCache* cache_;
  const ParisBuildOptions& options_;
  const size_t total_series_;
  int64_t total_batches_ = 0;

  RecBufSet recbufs_;
  const size_t flush_threshold_;
  BatchSlot slots_[2];

  std::unique_ptr<ThreadPool> construction_pool_;  // ParIS stage 3

  StageAccumulator summarize_cpu_;
  StageAccumulator tree_cpu_;

  Mutex error_mu_{"ParisBuilder::error_mu_", LockRank::kFirstError};
  Status first_error_ PARISAX_GUARDED_BY(error_mu_);
  std::atomic<bool> failed_{false};
};

Status ParisBuilder::Run(const RawSeriesSource& source) {
  if (source.length() != options_.tree.series_length) {
    return Status::InvalidArgument(
        "tree.series_length does not match the source");
  }
  const Value* base = source.ContiguousData();
  if (base != nullptr) {
    // Addressable source: slots point straight into the block (zero
    // copy, no coordinator read phase).
    return CoordinatorLoop(nullptr, base);
  }
  // Streamed source: the coordinator copies batches into slot-owned
  // buffers, paying the device model's sequential cost per batch.
  std::unique_ptr<SeriesStream> stream;
  PARISAX_ASSIGN_OR_RETURN(stream,
                           source.OpenStream(options_.batch_series));
  for (BatchSlot& slot : slots_) {
    slot.storage.Allocate(options_.batch_series *
                          options_.tree.series_length);
    slot.values = slot.storage.data();
  }
  return CoordinatorLoop(stream.get(), nullptr);
}

Status ParisBuilder::CoordinatorLoop(SeriesStream* stream,
                                     const Value* base) {
  WallTimer wall;
  ParisBuildStats& stats = index_->build_stats_;

  if (!options_.plus_mode) {
    construction_pool_ =
        std::make_unique<ThreadPool>(options_.num_workers);
  }
  ThreadPool bulk_pool(options_.num_workers);

  // The bulk-loading workers run as one long parallel region; the
  // coordinator (this thread) feeds them batches. Run() blocks, so the
  // coordinator logic itself executes on a dedicated thread.
  Status coord_status;
  std::thread coordinator([&] {
    for (int64_t b = 0; b < total_batches_; ++b) {
      if (failed_.load(std::memory_order_acquire)) break;
      BatchSlot& slot = slots_[b % 2];
      {
        MutexLock lock(&slot.mu);
        while (!slot.free && !failed_.load(std::memory_order_acquire)) {
          slot.cv.Wait(slot.mu);
        }
      }
      if (failed_.load(std::memory_order_acquire)) break;
      // Exclusive buffer access between `free` and re-publication.
      const SeriesId first = static_cast<SeriesId>(b) *
                             options_.batch_series;
      size_t count;
      if (stream != nullptr) {
        SeriesBatch batch;
        WallTimer read;
        const Status st = stream->NextBatch(&batch);
        stats.read_wall_seconds += read.ElapsedSeconds();
        if (!st.ok()) {
          coord_status = st;
          RecordError(st);
          break;
        }
        count = batch.count;
        std::copy(batch.values,
                  batch.values + count * options_.tree.series_length,
                  slot.storage.data());
      } else {
        count = std::min(options_.batch_series,
                         total_series_ - static_cast<size_t>(first));
        slot.values = base + static_cast<size_t>(first) *
                                 options_.tree.series_length;
      }
      {
        MutexLock lock(&slot.mu);
        slot.first_id = first;
        slot.count = count;
        slot.free = false;
        slot.arrived = 0;
        slot.summarize.Reset(count);
        slot.published = b;
      }
      slot.cv.NotifyAll();

      // ParIS: "main memory full" -> pause reading, run stage 3.
      if (!options_.plus_mode &&
          ((b + 1) % static_cast<int64_t>(options_.batches_per_round) == 0 ||
           b + 1 == total_batches_)) {
        for (BatchSlot& s : slots_) {
          MutexLock lock(&s.mu);
          while (!s.free && !failed_.load(std::memory_order_acquire)) {
            s.cv.Wait(s.mu);
          }
        }
        if (failed_.load(std::memory_order_acquire)) break;
        WallTimer stage3;
        const Status st = Stage3Round();
        stats.stage3_wall_seconds += stage3.ElapsedSeconds();
        if (!st.ok()) {
          coord_status = st;
          RecordError(st);
          break;
        }
      }
    }
    // Ensure workers blocked on publication observe the end state.
    for (BatchSlot& s : slots_) s.cv.NotifyAll();
  });

  bulk_pool.Run([&](int worker) { WorkerLoop(worker); });
  coordinator.join();

  PARISAX_RETURN_IF_ERROR(coord_status);
  {
    MutexLock lock(&error_mu_);
    PARISAX_RETURN_IF_ERROR(first_error_);
  }

  // Tail: ParIS+ drains whatever the last batches re-listed; ParIS's
  // final stage-3 round already ran. Then materialize remaining leaves.
  if (recbufs_.HasTouched()) {
    WallTimer stage3;
    PARISAX_RETURN_IF_ERROR(Stage3Round());
    stats.stage3_wall_seconds += stage3.ElapsedSeconds();
  }
  if (materialize_leaves()) {
    WallTimer flush;
    PARISAX_RETURN_IF_ERROR(FinalFlush());
    stats.final_flush_wall_seconds = flush.ElapsedSeconds();
  }

  tree_->SealRoots();
  stats.tree = tree_->Collect();
  stats.summarize_cpu_seconds = summarize_cpu_.TotalSeconds();
  stats.tree_cpu_seconds = tree_cpu_.TotalSeconds();
  if (index_->leaf_storage_ != nullptr) {
    stats.leaf_chunks_flushed = index_->leaf_storage_->chunks_appended();
    stats.leaf_chunk_readbacks = index_->leaf_storage_->chunks_read();
  }
  stats.wall_seconds = wall.ElapsedSeconds();

  if (stats.tree.total_entries != total_series_) {
    return Status::Internal("index lost series during the build");
  }
  return Status::OK();
}

void ParisBuilder::WorkerLoop(int worker_id) {
  (void)worker_id;
  const int w = options_.tree.segments;
  std::vector<LeafEntry> scratch;

  for (int64_t b = 0; b < total_batches_; ++b) {
    BatchSlot& slot = slots_[b % 2];
    {
      MutexLock lock(&slot.mu);
      while (slot.published < b &&
             !failed_.load(std::memory_order_acquire)) {
        slot.cv.Wait(slot.mu);
      }
    }
    if (failed_.load(std::memory_order_acquire)) return;

    // Stage 2: summarize claimed ranges of the raw data buffer.
    {
      StageAccumulator::Scope timed(&summarize_cpu_);
      float paa[kMaxSegments];
      size_t begin, end;
      while (slot.summarize.NextBatch(64, &begin, &end)) {
        for (size_t i = begin; i < end; ++i) {
          const SeriesView series(
              slot.values + i * options_.tree.series_length,
              options_.tree.series_length);
          ComputePaa(series, w, paa);
          LeafEntry entry;
          entry.id = slot.first_id + i;
          SymbolsFromPaa(paa, w, &entry.sax);
          *cache_->MutableAt(entry.id) = entry.sax;
          recbufs_.Append(RootKey(entry.sax, w), entry);
        }
      }
    }

    // Per-batch barrier; the last arriver frees the buffer for the
    // coordinator and, in ParIS+ mode, snapshots the drain work list.
    {
      MutexLock lock(&slot.mu);
      if (++slot.arrived == options_.num_workers) {
        slot.free = true;
        if (options_.plus_mode) {
          slot.drain_list = recbufs_.TakeTouched();
          slot.drain.Reset(slot.drain_list.size());
        }
        slot.drain_ready = b;
        slot.cv.NotifyAll();
      } else {
        while (slot.drain_ready < b &&
               !failed_.load(std::memory_order_acquire)) {
          slot.cv.Wait(slot.mu);
        }
        if (failed_.load(std::memory_order_acquire)) return;
      }
    }

    // ParIS+ tree growth, overlapped with the coordinator's next read.
    if (options_.plus_mode) {
      StageAccumulator::Scope timed(&tree_cpu_);
      size_t item;
      while (slot.drain.NextItem(&item)) {
        const Status st = DrainKey(slot.drain_list[item],
                                   materialize_leaves(), flush_threshold_,
                                   &scratch);
        if (!st.ok()) {
          RecordError(st);
          return;
        }
      }
    }
  }
}

Status ParisBuilder::DrainKey(uint32_t key, bool flush,
                              size_t flush_threshold,
                              std::vector<LeafEntry>* scratch) {
  recbufs_.Drain(key, scratch);
  if (scratch->empty()) return Status::OK();
  Node* root = tree_->GetOrCreateRoot(key);
  LeafStorage* storage = index_->leaf_storage_.get();
  for (const LeafEntry& e : *scratch) {
    PARISAX_RETURN_IF_ERROR(tree_->InsertIntoSubtree(root, e, storage));
  }
  if (!flush) return Status::OK();

  Status flush_status;
  tree_->VisitLeaves(root, [&](Node* leaf) {
    if (!flush_status.ok()) return;
    if (leaf->entries().size() < flush_threshold) return;
    auto ref = storage->AppendChunk(leaf->entries());
    if (!ref.ok()) {
      flush_status = ref.status();
      return;
    }
    leaf->flushed_chunks().push_back(*ref);
    leaf->entries().clear();
  });
  return flush_status;
}

Status ParisBuilder::Stage3Round() {
  const std::vector<uint32_t> keys = recbufs_.TakeTouched();
  if (keys.empty()) return Status::OK();
  WorkCounter counter(keys.size());
  const bool flush = materialize_leaves();

  const auto drain_all = [&](int) {
    StageAccumulator::Scope timed(&tree_cpu_);
    std::vector<LeafEntry> scratch;
    size_t item;
    while (counter.NextItem(&item)) {
      // ParIS flushes every leaf it grew in this round ("flush subtree
      // leaves to disk"), hence threshold 1.
      const Status st = DrainKey(keys[item], flush, 1, &scratch);
      if (!st.ok()) {
        RecordError(st);
        return;
      }
    }
  };

  if (construction_pool_ != nullptr) {
    construction_pool_->Run(drain_all);
  } else {
    drain_all(0);
  }
  MutexLock lock(&error_mu_);
  return first_error_;
}

Status ParisBuilder::FinalFlush() {
  LeafStorage* storage = index_->leaf_storage_.get();
  Status flush_status;
  tree_->VisitLeaves(nullptr, [&](Node* leaf) {
    if (!flush_status.ok() || leaf->entries().empty()) return;
    auto ref = storage->AppendChunk(leaf->entries());
    if (!ref.ok()) {
      flush_status = ref.status();
      return;
    }
    leaf->flushed_chunks().push_back(*ref);
    leaf->entries().clear();
    leaf->entries().shrink_to_fit();
  });
  return flush_status;
}

Result<std::unique_ptr<ParisIndex>> ParisIndex::Build(
    std::unique_ptr<RawSeriesSource> source,
    const ParisBuildOptions& options) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must not be null");
  }
  if (!source->addressable() && options.leaf_storage_path.empty()) {
    return Status::InvalidArgument(
        "streamed (on-disk) ParIS build requires leaf_storage_path");
  }
  auto index = std::unique_ptr<ParisIndex>(new ParisIndex(options.tree));
  const size_t total_series = source->count();
  auto base = std::make_shared<SaxTree>(options.tree);
  auto cache = std::make_shared<FlatSaxCache>(total_series);
  if (!options.leaf_storage_path.empty()) {
    PARISAX_ASSIGN_OR_RETURN(
        index->leaf_storage_,
        LeafStorage::Create(options.leaf_storage_path,
                            options.leaf_write_mbps));
  }

  ParisBuilder builder(index.get(), base.get(), cache.get(), options,
                       total_series);
  PARISAX_RETURN_IF_ERROR(builder.Run(*source));
  index->source_ = std::move(source);

  auto state = std::make_shared<ServingState>();
  state->base = std::move(base);
  state->base_count = total_series;
  state->cache = std::move(cache);
  state->raw = RawDataView{index->source_->ContiguousData(),
                           options.tree.series_length};
  state->count = total_series;
  index->dock_.Publish(std::move(state));
  return index;
}

Status ParisIndex::Append(const Value* values, size_t count,
                          Executor* exec,
                          std::vector<uint32_t>* touched_roots) {
  if (touched_roots != nullptr) touched_roots->clear();
  if (count == 0) return Status::OK();
  const SeriesId first = dock_.get()->count;

  // Grow the source first (the source retires — never frees — the
  // buffers behind published raw views), then build the segment from
  // the caller's values and publish both in one atomic step.
  PARISAX_RETURN_IF_ERROR(source_->AppendSeries(values, count));
  std::shared_ptr<const Segment> segment;
  PARISAX_ASSIGN_OR_RETURN(
      segment, BuildSegment(values, count, first, tree_options_,
                            /*with_sax_rows=*/true, exec));
  if (touched_roots != nullptr) {
    *touched_roots = segment->tree.PresentRoots();
  }
  dock_.PublishAppend(std::move(segment),
                      RawDataView{source_->ContiguousData(),
                                  tree_options_.series_length},
                      source_->count());
  // O(batch) bookkeeping: only total_entries is maintained
  // incrementally; the other shape stats reflect the last full build.
  build_stats_.tree.total_entries += count;
#ifndef NDEBUG
  {
    const auto snap = dock_.get();
    size_t total = snap->base->Collect().total_entries;
    for (const auto& seg : snap->segments) {
      total += seg->tree.Collect().total_entries;
    }
    assert(total == snap->count);
  }
#endif
  return Status::OK();
}

Result<bool> ParisIndex::FoldSegments(
    const std::shared_ptr<const ServingState>& snap, size_t folded,
    Executor* exec) {
  if (folded == 0) return true;
  if (folded > snap->segments.size()) {
    return Status::InvalidArgument("fold count exceeds the segment list");
  }
  // Collect the base's entries (reading back any flushed chunks) plus
  // the folded segments'.
  std::vector<LeafEntry> entries;
  PARISAX_RETURN_IF_ERROR(
      CollectTreeEntries(*snap->base, leaf_storage_.get(), &entries));
  size_t new_base_count = snap->base_count;
  for (size_t i = 0; i < folded; ++i) {
    PARISAX_RETURN_IF_ERROR(CollectTreeEntries(snap->segments[i]->tree,
                                               /*storage=*/nullptr,
                                               &entries));
    new_base_count += snap->segments[i]->count;
  }
  auto base = std::make_shared<SaxTree>(tree_options_);
  PARISAX_RETURN_IF_ERROR(BuildTreeFromEntries(base.get(), entries, exec));
  if (base->Collect().total_entries != new_base_count) {
    return Status::Internal("ParIS fold lost series");
  }
  auto cache = std::make_shared<FlatSaxCache>(new_base_count);
  for (const LeafEntry& e : entries) *cache->MutableAt(e.id) = e.sax;
  return dock_.TryFold(snap, folded, std::move(base), std::move(cache),
                       new_base_count);
}

Result<bool> ParisIndex::MergeSegmentRun(
    const std::shared_ptr<const ServingState>& snap, size_t folded,
    Executor* exec) {
  if (folded < 2 || folded > snap->segments.size()) {
    return Status::InvalidArgument("merge run out of range");
  }
  const std::vector<std::shared_ptr<const Segment>> parts(
      snap->segments.begin(), snap->segments.begin() + folded);
  std::shared_ptr<const Segment> merged;
  PARISAX_ASSIGN_OR_RETURN(merged,
                           MergeSegments(parts, tree_options_, exec));
  return dock_.TryMergeSegments(snap, folded, std::move(merged));
}

Result<Neighbor> ParisIndex::SearchApproximate(SeriesView query,
                                               QueryStats* stats) const {
  if (query.size() != tree_options_.series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  WallTimer timer;
  const auto snap = dock_.get();
  const int w = tree_options_.segments;
  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);
  auto result = ProbeAllTrees(*snap, *source_, leaf_storage_.get(), query,
                              paa, sax, KernelPolicy::kAuto, stats);
  if (stats != nullptr) stats->total_seconds = timer.ElapsedSeconds();
  return result;
}

Result<Neighbor> ParisIndex::SearchExact(SeriesView query,
                                         const ParisQueryOptions& options,
                                         Executor* exec,
                                         QueryStats* stats) const {
  if (query.size() != tree_options_.series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  WallTimer total;
  const auto snap = dock_.get();
  const int w = tree_options_.segments;
  const size_t n = tree_options_.series_length;
  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);

  // Phase 1: BSF from the approximate-match leaves (base + segments).
  WallTimer approx_timer;
  Neighbor best;
  PARISAX_ASSIGN_OR_RETURN(
      best, ProbeAllTrees(*snap, *source_, leaf_storage_.get(), query, paa,
                          sax, options.kernel, stats));
  if (stats != nullptr) {
    stats->approx_phase_seconds = approx_timer.ElapsedSeconds();
  }

  // SAX summary of series `id` within the snapshot: the base's flat
  // array, or the owning segment's rows.
  const auto sax_at = [&snap](SeriesId id) -> const SaxSymbols* {
    if (id < snap->base_count) return &snap->cache->At(id);
    for (const auto& seg : snap->segments) {
      if (id - seg->first < seg->count) {
        return &seg->sax_rows[id - seg->first];
      }
    }
    return nullptr;  // unreachable for id < snap->count
  };

  // Phase 2: lower-bound workers filter the SAX summaries in parallel.
  // A shared cross-search bound (the shard router's BSF) tightens the
  // frozen filter bound: it can never drop below the query's true
  // global answer, so candidates it prunes can never win.
  WallTimer filter_timer;
  AtomicMinFloat* const shared = options.shared_bound;
  if (shared != nullptr) shared->UpdateMin(best.distance_sq);
  const float bsf0 = shared != nullptr
                         ? std::min(best.distance_sq, shared->Load())
                         : best.distance_sq;
  std::vector<SeriesId> candidates(snap->count);
  std::atomic<size_t> tail{0};
  {
    WorkCounter counter(snap->count);
    exec->Run([&](int) {
      size_t begin, end;
      while (counter.NextBatch(options.filter_grain, &begin, &end)) {
        if (Expired(options.cancel)) return;
        for (SeriesId i = begin; i < end; ++i) {
          const float lb = MinDistPaaToSymbolsSq(paa, *sax_at(i), w, n);
          if (lb < bsf0) {
            candidates[tail.fetch_add(1, std::memory_order_relaxed)] = i;
          }
        }
      }
    });
  }
  const size_t num_candidates = tail.load();
  if (Expired(options.cancel)) {
    return Status::DeadlineExceeded("query deadline expired mid-search");
  }
  // Skip-sequential order for the raw-data reads.
  std::sort(candidates.begin(), candidates.begin() + num_candidates);
  if (stats != nullptr) {
    stats->lb_checks += snap->count;
    stats->candidates += num_candidates;
    stats->filter_phase_seconds = filter_timer.ElapsedSeconds();
  }

  // Phase 3: real-distance workers refine candidates in parallel.
  WallTimer refine_timer;
  AtomicMinFloat bsf(bsf0);
  const auto load_bound = [&bsf, shared] {
    const float local = bsf.Load();
    return shared != nullptr ? std::min(local, shared->Load()) : local;
  };
  Mutex best_mu{"best_mu", LockRank::kResultMerge};
  std::atomic<bool> failed{false};
  Status worker_status;
  if (snap->raw.base != nullptr) {
    // Addressable snapshot: refine straight off the pinned raw view —
    // no source virtuals, so a concurrent append can't interfere.
    WorkCounter counter(num_candidates);
    exec->Run([&](int) {
      size_t begin, end;
      while (counter.NextBatch(options.refine_grain, &begin, &end)) {
        if (Expired(options.cancel)) return;
        for (size_t c = begin; c < end; ++c) {
          const SeriesId id = candidates[c];
          const float bound = load_bound();
          const float d = SquaredEuclideanEarlyAbandon(
              query, snap->raw.series(id), bound, options.kernel);
          if (d < bound) {
            bsf.UpdateMin(d);
            if (shared != nullptr) shared->UpdateMin(d);
            MutexLock lock(&best_mu);
            if (d < best.distance_sq ||
                (d == best.distance_sq && id < best.id)) {
              best = Neighbor{id, d};
            }
          }
        }
      }
    });
  } else if (source_->PrefersSequentialAccess()) {
    // Spinning disk: racing workers would destroy the skip-sequential
    // order and pay a seek per candidate. One I/O stream reads the
    // sorted candidates in chunks; the pool computes distances per
    // chunk.
    constexpr size_t kChunk = 256;
    std::vector<Value> chunk_values(kChunk * n);
    for (size_t base = 0; base < num_candidates; base += kChunk) {
      if (Expired(options.cancel)) break;
      const size_t count = std::min(kChunk, num_candidates - base);
      for (size_t c = 0; c < count; ++c) {
        PARISAX_RETURN_IF_ERROR(source_->GetSeries(
            candidates[base + c], chunk_values.data() + c * n));
      }
      WorkCounter counter(count);
      exec->Run([&](int) {
        size_t c;
        while (counter.NextItem(&c)) {
          const float bound = load_bound();
          const float d = SquaredEuclideanEarlyAbandon(
              query.data(), chunk_values.data() + c * n, n, bound,
              options.kernel);
          if (d < bound) {
            bsf.UpdateMin(d);
            if (shared != nullptr) shared->UpdateMin(d);
            const SeriesId id = candidates[base + c];
            MutexLock lock(&best_mu);
            if (d < best.distance_sq ||
                (d == best.distance_sq && id < best.id)) {
              best = Neighbor{id, d};
            }
          }
        }
      });
    }
  } else {
    WorkCounter counter(num_candidates);
    exec->Run([&](int) {
      std::vector<Value> buffer(source_->length());
      size_t begin, end;
      while (counter.NextBatch(options.refine_grain, &begin, &end)) {
        if (failed.load(std::memory_order_acquire)) return;
        if (Expired(options.cancel)) return;
        for (size_t c = begin; c < end; ++c) {
          const SeriesId id = candidates[c];
          SeriesView view = source_->TryView(id);
          if (view.empty()) {
            const Status st = source_->GetSeries(id, buffer.data());
            if (!st.ok()) {
              MutexLock lock(&best_mu);
              if (worker_status.ok()) worker_status = st;
              failed.store(true, std::memory_order_release);
              return;
            }
            view = SeriesView(buffer.data(), buffer.size());
          }
          const float bound = load_bound();
          const float d =
              SquaredEuclideanEarlyAbandon(query, view, bound,
                                           options.kernel);
          if (d < bound) {
            bsf.UpdateMin(d);
            if (shared != nullptr) shared->UpdateMin(d);
            MutexLock lock(&best_mu);
            if (d < best.distance_sq ||
                (d == best.distance_sq && id < best.id)) {
              best = Neighbor{id, d};
            }
          }
        }
      }
    });
  }
  PARISAX_RETURN_IF_ERROR(worker_status);
  if (stats != nullptr) {
    stats->real_dist_calcs += num_candidates;
    stats->refine_phase_seconds = refine_timer.ElapsedSeconds();
    stats->total_seconds = total.ElapsedSeconds();
  }
  if (Expired(options.cancel)) {
    return Status::DeadlineExceeded("query deadline expired mid-search");
  }
  return best;
}

}  // namespace parisax
