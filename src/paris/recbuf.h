// Receiving buffers (RecBufs): per-root-subtree staging of iSAX summaries
// between ParIS's bulk-loading stage and its tree-construction stage.
//
// Each RecBuf is protected by its own mutex (this is ParIS's design; the
// contention it causes is exactly what MESSI's per-thread buffer parts
// remove -- see messi/isax_buffers.h and the D1 ablation bench). A shared
// "touched list" tracks which keys currently hold entries so draining
// never scans all 2^w buffers.
#ifndef PARISAX_PARIS_RECBUF_H_
#define PARISAX_PARIS_RECBUF_H_

#include <cstdint>
#include <vector>

#include "index/node.h"
#include "util/mutex.h"

namespace parisax {

class RecBufSet {
 public:
  explicit RecBufSet(int segments)
      : bufs_(static_cast<size_t>(1) << segments) {}

  /// Appends an entry to buffer `key`, registering the key in the touched
  /// list if it was not already listed. Thread-safe.
  void Append(uint32_t key, const LeafEntry& entry) {
    RecBuf& rb = bufs_[key];
    bool newly_listed = false;
    {
      MutexLock lock(&rb.mu);
      rb.entries.push_back(entry);
      if (!rb.listed) {
        rb.listed = true;
        newly_listed = true;
      }
    }
    if (newly_listed) {
      MutexLock lock(&touched_mu_);
      touched_.push_back(key);
    }
  }

  /// Moves buffer `key`'s entries into `*out` (overwriting it) and
  /// unlists the key. Entries appended concurrently after the drain will
  /// re-register the key. Thread-safe.
  void Drain(uint32_t key, std::vector<LeafEntry>* out) {
    RecBuf& rb = bufs_[key];
    out->clear();
    MutexLock lock(&rb.mu);
    out->swap(rb.entries);
    rb.listed = false;
  }

  /// Atomically takes the current touched-key list (the drain work list
  /// for one construction round).
  std::vector<uint32_t> TakeTouched() {
    MutexLock lock(&touched_mu_);
    return std::move(touched_);
  }

  bool HasTouched() {
    MutexLock lock(&touched_mu_);
    return !touched_.empty();
  }

 private:
  struct RecBuf {
    Mutex mu{"RecBufSet::RecBuf::mu", LockRank::kBuildBuffer};
    std::vector<LeafEntry> entries PARISAX_GUARDED_BY(mu);
    bool listed PARISAX_GUARDED_BY(mu) = false;
  };

  std::vector<RecBuf> bufs_;
  Mutex touched_mu_{"RecBufSet::touched_mu_", LockRank::kBuildBufferSet};
  std::vector<uint32_t> touched_ PARISAX_GUARDED_BY(touched_mu_);
};

}  // namespace parisax

#endif  // PARISAX_PARIS_RECBUF_H_
