#include "sax/breakpoints.h"

#include <algorithm>
#include <cmath>

namespace parisax {

double InverseNormalCdf(double p) {
  // Acklam's rational approximation with one Halley refinement step.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;

  double x;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - kLow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley step against erfc for ~1e-15 accuracy.
  const double e =
      0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

BreakpointTable::BreakpointTable() {
  for (int bits = 1; bits <= kMaxCardBits; ++bits) {
    const int cardinality = 1 << bits;
    auto& level = levels_[bits];
    level.resize(cardinality - 1);
    for (int i = 1; i < cardinality; ++i) {
      level[i - 1] = InverseNormalCdf(static_cast<double>(i) /
                                      static_cast<double>(cardinality));
    }
    auto& lows = region_low_[bits];
    auto& highs = region_high_[bits];
    lows.resize(cardinality);
    highs.resize(cardinality);
    for (int sym = 0; sym < cardinality; ++sym) {
      lows[sym] = sym == 0 ? -std::numeric_limits<float>::infinity()
                           : static_cast<float>(level[sym - 1]);
      highs[sym] = sym == cardinality - 1
                       ? std::numeric_limits<float>::infinity()
                       : static_cast<float>(level[sym]);
    }
  }
}

const BreakpointTable& BreakpointTable::Get() {
  static const BreakpointTable table;
  return table;
}

uint8_t BreakpointTable::FullSymbol(float value) const {
  const auto& level = levels_[kMaxCardBits];
  // Region index = number of breakpoints strictly below or equal to value.
  // upper_bound gives the first breakpoint > value; its index is the
  // number of breakpoints <= value, i.e. the region index.
  const auto it = std::upper_bound(level.begin(), level.end(),
                                   static_cast<double>(value));
  return static_cast<uint8_t>(it - level.begin());
}

}  // namespace parisax
