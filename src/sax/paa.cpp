#include "sax/paa.h"

#include <cassert>

namespace parisax {

void ComputePaa(SeriesView series, size_t w, float* out) {
  const size_t n = series.size();
  assert(w >= 1 && w <= n);
  for (size_t seg = 0; seg < w; ++seg) {
    const size_t begin = PaaSegmentBegin(n, w, seg);
    const size_t end = PaaSegmentBegin(n, w, seg + 1);
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += series[i];
    out[seg] = static_cast<float>(sum / static_cast<double>(end - begin));
  }
}

}  // namespace parisax
