// Piecewise Aggregate Approximation.
#ifndef PARISAX_SAX_PAA_H_
#define PARISAX_SAX_PAA_H_

#include <cstddef>

#include "core/types.h"

namespace parisax {

/// First point (inclusive) of PAA segment `seg` of `w` segments over a
/// series of n points. Segments are as equal as integer division allows:
/// segment s covers [s*n/w, (s+1)*n/w).
inline size_t PaaSegmentBegin(size_t n, size_t w, size_t seg) {
  return seg * n / w;
}

/// Computes the w-segment PAA of `series` into `out` (out has w entries).
/// Each output value is the mean of the points in its segment.
void ComputePaa(SeriesView series, size_t w, float* out);

}  // namespace parisax

#endif  // PARISAX_SAX_PAA_H_
