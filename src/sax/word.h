// iSAX words: per-segment symbols at per-segment (variable) cardinality.
#ifndef PARISAX_SAX_WORD_H_
#define PARISAX_SAX_WORD_H_

#include <cstdint>
#include <string>

#include "sax/breakpoints.h"

namespace parisax {

/// Maximum number of PAA segments supported (the paper fixes w = 16).
inline constexpr int kMaxSegments = 16;

/// Full-cardinality (8-bit) symbols of one series: what the SAX array
/// (FlatSaxCache) and leaf entries store. symbols[s] is the region index
/// of PAA segment s at cardinality 256.
struct SaxSymbols {
  uint8_t symbols[kMaxSegments] = {};
};

/// A variable-cardinality iSAX word: segment s carries `bits[s]` bits of
/// its symbol. Index tree nodes are labeled with SaxWords; the root's
/// children have 1 bit per segment, and each split adds one bit to one
/// segment.
struct SaxWord {
  uint8_t symbols[kMaxSegments] = {};
  uint8_t bits[kMaxSegments] = {};

  /// Readable form like "1^2 01^3 ..." where ^b is the bit count; used in
  /// logs and test failures.
  std::string ToString(int w) const;
};

/// The b-bit prefix of an 8-bit symbol: the symbol of the same value at
/// cardinality 2^b (valid because iSAX breakpoints are nested).
inline uint8_t TruncateSymbol(uint8_t full_symbol, int bits) {
  return static_cast<uint8_t>(full_symbol >> (kMaxCardBits - bits));
}

/// True if `full` falls inside the region `word` describes, i.e. every
/// segment's truncated symbol matches. This is the "series belongs to this
/// node's subtree" predicate.
bool WordContains(const SaxWord& word, const SaxSymbols& full, int w);

/// Root-subtree key of a series: the top bit of each of the w segments,
/// packed with segment 0 as the most significant bit. In [0, 2^w).
uint32_t RootKey(const SaxSymbols& full, int w);

/// The 1-bit-per-segment word describing root child `key`.
SaxWord RootWord(uint32_t key, int w);

/// Computes full-cardinality symbols from a PAA vector.
void SymbolsFromPaa(const float* paa, int w, SaxSymbols* out);

}  // namespace parisax

#endif  // PARISAX_SAX_WORD_H_
