// iSAX breakpoint tables.
//
// SAX discretizes the value axis into regions that are equiprobable under
// N(0,1) (series are z-normalized, so segment means are approximately
// standard normal). iSAX uses *nested* binary cardinalities: the regions at
// cardinality 2^b are refined by splitting each region in two at
// cardinality 2^(b+1). Because the quantile grid {i/2^b} is a subset of
// {i/2^(b+1)}, a symbol at b bits is exactly the b-bit prefix of the same
// value's symbol at b+1 bits -- the property the whole index relies on.
//
// Symbols are numbered from the lowest region (0) upward, so symbol
// comparisons follow value order.
#ifndef PARISAX_SAX_BREAKPOINTS_H_
#define PARISAX_SAX_BREAKPOINTS_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace parisax {

/// Maximum per-segment cardinality is 2^8: symbols fit one byte.
inline constexpr int kMaxCardBits = 8;
inline constexpr int kMaxCardinality = 1 << kMaxCardBits;

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |relative error| < 1.2e-9). Defined for p in (0, 1).
double InverseNormalCdf(double p);

/// Precomputed N(0,1) quantile breakpoints for all cardinalities 2^1..2^8.
///
/// For `bits` b, Breakpoints(b) has 2^b - 1 ascending values; region
/// `sym` (0-based from the bottom) spans
///   [RegionLow(b, sym), RegionHigh(b, sym)]
/// with -inf / +inf at the extremes.
class BreakpointTable {
 public:
  /// The process-wide table (built once, immutable afterwards).
  static const BreakpointTable& Get();

  /// Ascending breakpoints for cardinality 2^bits (size 2^bits - 1).
  const std::vector<double>& Breakpoints(int bits) const {
    return levels_[bits];
  }

  /// Lower edge of region `sym` at cardinality 2^bits (-inf for sym 0).
  float RegionLow(int bits, uint32_t sym) const {
    return region_low_[bits][sym];
  }

  /// Upper edge of region `sym` at cardinality 2^bits (+inf for the top).
  float RegionHigh(int bits, uint32_t sym) const {
    return region_high_[bits][sym];
  }

  /// Symbol of `value` at full (8-bit) cardinality: the index of the
  /// region containing value, counted from the bottom.
  uint8_t FullSymbol(float value) const;

 private:
  BreakpointTable();

  // levels_[b] for b in 1..8; index 0 unused.
  std::vector<double> levels_[kMaxCardBits + 1];
  // region_low_[b][sym] / region_high_[b][sym], sym < 2^b.
  std::vector<float> region_low_[kMaxCardBits + 1];
  std::vector<float> region_high_[kMaxCardBits + 1];
};

}  // namespace parisax

#endif  // PARISAX_SAX_BREAKPOINTS_H_
