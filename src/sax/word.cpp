#include "sax/word.h"

namespace parisax {

std::string SaxWord::ToString(int w) const {
  std::string out;
  for (int s = 0; s < w; ++s) {
    if (s > 0) out += ' ';
    for (int b = bits[s] - 1; b >= 0; --b) {
      out += ((symbols[s] >> b) & 1) != 0 ? '1' : '0';
    }
    out += "^";
    out += std::to_string(static_cast<int>(bits[s]));
  }
  return out;
}

bool WordContains(const SaxWord& word, const SaxSymbols& full, int w) {
  for (int s = 0; s < w; ++s) {
    if (TruncateSymbol(full.symbols[s], word.bits[s]) != word.symbols[s]) {
      return false;
    }
  }
  return true;
}

uint32_t RootKey(const SaxSymbols& full, int w) {
  uint32_t key = 0;
  for (int s = 0; s < w; ++s) {
    key = (key << 1) | TruncateSymbol(full.symbols[s], 1);
  }
  return key;
}

SaxWord RootWord(uint32_t key, int w) {
  SaxWord word;
  for (int s = 0; s < w; ++s) {
    word.symbols[s] = static_cast<uint8_t>((key >> (w - 1 - s)) & 1u);
    word.bits[s] = 1;
  }
  return word;
}

void SymbolsFromPaa(const float* paa, int w, SaxSymbols* out) {
  const BreakpointTable& table = BreakpointTable::Get();
  for (int s = 0; s < w; ++s) {
    out->symbols[s] = table.FullSymbol(paa[s]);
  }
}

}  // namespace parisax
