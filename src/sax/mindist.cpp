#include "sax/mindist.h"

#include "sax/breakpoints.h"

namespace parisax {

namespace {

/// Squared distance from point `p` to interval [lo, hi] (0 if inside).
inline float GapSq(float p, float lo, float hi) {
  if (p < lo) {
    const float d = lo - p;
    return d * d;
  }
  if (p > hi) {
    const float d = p - hi;
    return d * d;
  }
  return 0.0f;
}

/// Squared distance between interval [alo, ahi] and interval [blo, bhi].
inline float IntervalGapSq(float alo, float ahi, float blo, float bhi) {
  if (blo > ahi) {
    const float d = blo - ahi;
    return d * d;
  }
  if (bhi < alo) {
    const float d = alo - bhi;
    return d * d;
  }
  return 0.0f;
}

}  // namespace

float MinDistPaaToWordSq(const float* query_paa, const SaxWord& word, int w,
                         size_t n) {
  const BreakpointTable& table = BreakpointTable::Get();
  float sum = 0.0f;
  for (int s = 0; s < w; ++s) {
    const int bits = word.bits[s];
    const uint32_t sym = word.symbols[s];
    sum += GapSq(query_paa[s], table.RegionLow(bits, sym),
                 table.RegionHigh(bits, sym));
  }
  return sum * (static_cast<float>(n) / static_cast<float>(w));
}

float MinDistPaaToSymbolsSq(const float* query_paa, const SaxSymbols& sax,
                            int w, size_t n) {
  const BreakpointTable& table = BreakpointTable::Get();
  float sum = 0.0f;
  for (int s = 0; s < w; ++s) {
    const uint32_t sym = sax.symbols[s];
    sum += GapSq(query_paa[s], table.RegionLow(kMaxCardBits, sym),
                 table.RegionHigh(kMaxCardBits, sym));
  }
  return sum * (static_cast<float>(n) / static_cast<float>(w));
}

float MinDistEnvelopePaaToWordSq(const float* env_lower_paa,
                                 const float* env_upper_paa,
                                 const SaxWord& word, int w, size_t n) {
  const BreakpointTable& table = BreakpointTable::Get();
  float sum = 0.0f;
  for (int s = 0; s < w; ++s) {
    const int bits = word.bits[s];
    const uint32_t sym = word.symbols[s];
    sum += IntervalGapSq(env_lower_paa[s], env_upper_paa[s],
                         table.RegionLow(bits, sym),
                         table.RegionHigh(bits, sym));
  }
  return sum * (static_cast<float>(n) / static_cast<float>(w));
}

float MinDistEnvelopePaaToSymbolsSq(const float* env_lower_paa,
                                    const float* env_upper_paa,
                                    const SaxSymbols& sax, int w, size_t n) {
  const BreakpointTable& table = BreakpointTable::Get();
  float sum = 0.0f;
  for (int s = 0; s < w; ++s) {
    const uint32_t sym = sax.symbols[s];
    sum += IntervalGapSq(env_lower_paa[s], env_upper_paa[s],
                         table.RegionLow(kMaxCardBits, sym),
                         table.RegionHigh(kMaxCardBits, sym));
  }
  return sum * (static_cast<float>(n) / static_cast<float>(w));
}

}  // namespace parisax
