// Lower-bounding distances between a query and iSAX summaries.
//
// All functions return *squared* distances (compare against squared ED /
// squared-cost DTW) and are guaranteed lower bounds of the corresponding
// true distance -- the correctness foundation of every pruning step in
// ADS+/ParIS/MESSI. The scaling factor n/w comes from the PAA
// lower-bounding lemma (Keogh et al.), carried through to iSAX regions.
#ifndef PARISAX_SAX_MINDIST_H_
#define PARISAX_SAX_MINDIST_H_

#include <cstddef>

#include "sax/word.h"

namespace parisax {

/// mindist(PAA(query), iSAX word)^2: lower bound on ED(query, any series
/// whose summary lies in `word`'s region)^2. Used to prune tree nodes.
float MinDistPaaToWordSq(const float* query_paa, const SaxWord& word, int w,
                         size_t n);

/// mindist(PAA(query), full-cardinality symbols)^2: the hot path used to
/// filter the flat SAX array (ParIS/ADS+) and leaf entries (MESSI).
float MinDistPaaToSymbolsSq(const float* query_paa, const SaxSymbols& sax,
                            int w, size_t n);

/// DTW variant against an iSAX word: lower-bounds DTW(query, series)^2
/// for every series in the region, given the PAA of the query's
/// lower/upper Sakoe-Chiba envelopes (see dist/dtw.h). Analogue of
/// LB_PAA from Keogh's exact DTW indexing.
float MinDistEnvelopePaaToWordSq(const float* env_lower_paa,
                                 const float* env_upper_paa,
                                 const SaxWord& word, int w, size_t n);

/// DTW variant against full-cardinality symbols.
float MinDistEnvelopePaaToSymbolsSq(const float* env_lower_paa,
                                    const float* env_upper_paa,
                                    const SaxSymbols& sax, int w, size_t n);

}  // namespace parisax

#endif  // PARISAX_SAX_MINDIST_H_
