// Horizontal scale: N single-algorithm Engines behind one query router.
//
// A ShardedEngine hash-partitions series ids over its shards with plain
// modulo arithmetic — global id g lives on shard g % N as local id
// g / N, so the mapping is O(1), needs no stored table, and stays
// consistent under appends (batch rows are dealt to shards in id
// order). Every SearchBackend operation fans out shard-parallel:
//
//   Build    each shard indexes its partition on its own thread pool,
//            all shards at once — build wall-clock scales with N.
//   Search   the router fans one ED / kNN / DTW request across the
//            shards, threads ONE shared AtomicMinFloat bound through
//            every per-shard search (MESSI's shared-BSF pruning lifted
//            across shards: a tight bound found anywhere prunes
//            everywhere), and merges the per-shard answers into an
//            exact global result with the established (distance, id)
//            tie-break. Results are byte-identical to a single Engine
//            over the same data.
//   Append   rows are dealt to their shards and appended in parallel;
//            one router mutex serializes global id assignment.
//   Save     one CRC-checked manifest (persist/shard_manifest.h) plus
//   Open     per-shard snapshot and data files, written and restored
//   Compact  shard-parallel — each shard restores independently.
//
// The serve layer (QueryService, src/net/Server) drives a ShardedEngine
// through the SearchBackend interface exactly as it drives an Engine;
// `parisax_server --shards=N` is the wire-level switch.
//
// Lock order: the router's append_mu_ is taken before any shard lock
// (each shard then applies Engine's own append_mu_ -> pool_mu_ ->
// index_gate_ order); queries take no router lock at all.
#ifndef PARISAX_SHARD_SHARDED_ENGINE_H_
#define PARISAX_SHARD_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/search_backend.h"
#include "io/dataset.h"
#include "util/mutex.h"
#include "util/status.h"

namespace parisax {

class ShardedEngine : public SearchBackend {
 public:
  /// Partitions `dataset` over `num_shards` shards (global id g to
  /// shard g % num_shards) and builds the per-shard engines in
  /// parallel, each with its own copy of `options` (so total build
  /// threads are num_shards * options.num_threads). Requires
  /// dataset.count() >= num_shards so no shard starts empty.
  static Result<std::unique_ptr<ShardedEngine>> Build(
      Dataset dataset, size_t num_shards, const EngineOptions& options);

  /// Restores a sharded engine from a manifest written by Save; the
  /// shards open in parallel, each from its own snapshot + data file.
  /// A missing shard snapshot yields kNotFound naming the shard.
  static Result<std::unique_ptr<ShardedEngine>> Open(
      const std::string& manifest_path);

  /// As above with explicit per-shard engine options;
  /// `options.algorithm` is binding, as with Engine::Open.
  static Result<std::unique_ptr<ShardedEngine>> Open(
      const std::string& manifest_path, const EngineOptions& options);

  ~ShardedEngine() override;

  /// Routes one query across every shard in parallel (each shard on its
  /// own pool), sharing one atomic best-so-far bound, and merges the
  /// per-shard answers into the exact global result. Thread-safe.
  Result<SearchResponse> Search(SeriesView query,
                                const SearchRequest& request = {}) override;

  /// As above on the caller's executor: the shards are searched
  /// sequentially (the executor is one lane), still sharing the bound,
  /// so later shards prune on earlier shards' answers. Re-entrant under
  /// the same rules as Engine::Search.
  Result<SearchResponse> Search(SeriesView query, const SearchRequest& request,
                                Executor* exec) override;

  /// The router's query service, created on first use
  /// (options.num_threads serve workers, kAuto scheduling). Never null.
  QueryService* query_service() override;

  /// Deals the batch's rows to their shards (row i is global id
  /// old_count + i, so it lands on shard (old_count + i) % N) and
  /// appends shard-parallel. Requires capabilities().append.
  Result<AppendReport> Append(const Value* values, size_t count) override;
  using SearchBackend::Append;

  /// Writes the manifest to `manifest_path` and, next to it, one
  /// snapshot file and one data file per shard
  /// ("<manifest>.shard<i>" / "<manifest>.shard<i>.data"),
  /// shard-parallel. Requires capabilities().snapshot. Shard snapshots
  /// follow Engine::Save's delta-chain rules.
  Status Save(const std::string& manifest_path) override;

  /// Folds every shard's segments into its base (Engine::Compact),
  /// then rewrites the manifest and per-shard files at `manifest_path`.
  Status Compact(const std::string& manifest_path) override;

  /// The intersection of the shard capabilities: min over max_k, AND
  /// over every flag — the router can only promise what every shard
  /// delivers.
  EngineCapabilities capabilities() const override;

  /// The shards' common algorithm.
  Algorithm algorithm() const { return shards_.front()->algorithm(); }
  const char* algorithm_name() const override {
    return shards_.front()->algorithm_name();
  }

  size_t series_length() const override { return series_length_; }
  /// Total series across all shards. Grows under Append; safe to read
  /// concurrently.
  size_t series_count() const override {
    return series_count_.load(std::memory_order_acquire);
  }
  /// Router-level Append calls completed (monotonic), not the sum of
  /// the shard epochs — one sharded append is one ingest event.
  uint64_t append_epoch() const override {
    return append_epoch_.load(std::memory_order_acquire);
  }
  /// Sum of the shards' compaction counters.
  uint64_t compaction_count() const override;

  size_t num_shards() const { return shards_.size(); }
  /// Read-only shard access (tests, tools). Mutations must go through
  /// the router, which owns global id assignment.
  const Engine& shard(size_t i) const { return *shards_[i]; }

 private:
  explicit ShardedEngine(std::vector<std::unique_ptr<Engine>> shards);

  static Result<std::unique_ptr<ShardedEngine>> OpenInternal(
      const std::string& manifest_path, const EngineOptions& options,
      bool enforce_algorithm);

  /// Shared Save/Compact body; caller must not hold append_mu_.
  Status Checkpoint(const std::string& manifest_path, bool compact);

  EngineOptions options_;
  size_t series_length_ = 0;
  std::atomic<size_t> series_count_{0};
  std::atomic<uint64_t> append_epoch_{0};
  /// Serializes Append, Save and Compact: global id assignment and
  /// checkpoint consistency. Queries never take it. Ranked before any
  /// per-shard Engine lock (kRouterAppend < kEngineAppend): the holder
  /// fans out into Engine::Append/Save, which take the engine chain.
  Mutex append_mu_{"ShardedEngine::append_mu_", LockRank::kRouterAppend};
  Mutex service_mu_{"ShardedEngine::service_mu_", LockRank::kServiceInit};
  std::unique_ptr<QueryService> service_
      PARISAX_GUARDED_BY(service_mu_);  // lazily created
  /// Absolute data-file path backing each shard when this engine was
  /// restored by Open (MmapSource appends keep that file current, so
  /// Checkpoint can skip rewriting it); empty for built engines.
  std::vector<std::string> shard_data_paths_;
  std::vector<std::unique_ptr<Engine>> shards_;
};

}  // namespace parisax

#endif  // PARISAX_SHARD_SHARDED_ENGINE_H_
