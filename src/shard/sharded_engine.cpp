#include "shard/sharded_engine.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <thread>
#include <utility>

#include "io/format.h"
#include "persist/shard_manifest.h"
#include "serve/query_service.h"
#include "util/timer.h"

namespace parisax {

namespace {

/// Directory part of `path` including the trailing separator; empty for
/// a bare file name.
std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string()
                                    : path.substr(0, slash + 1);
}

/// File-name part of `path`.
std::string BaseOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string ShardSnapshotName(const std::string& manifest_base, size_t s) {
  return manifest_base + ".shard" + std::to_string(s);
}

std::string ShardDataName(const std::string& manifest_base, size_t s) {
  return manifest_base + ".shard" + std::to_string(s) + ".data";
}

/// Runs fn(s) for every shard index, shards 1..n-1 each on their own
/// thread and shard 0 on the caller's; returns the first non-OK status
/// in shard order.
template <typename Fn>
Status ParallelOverShards(size_t n, Fn fn) {
  std::vector<Status> statuses(n);
  {
    std::vector<std::thread> threads;
    threads.reserve(n - 1);
    for (size_t s = 1; s < n; ++s) {
      threads.emplace_back([&statuses, &fn, s] { statuses[s] = fn(s); });
    }
    statuses[0] = fn(0);
    for (std::thread& t : threads) t.join();
  }
  for (const Status& st : statuses) PARISAX_RETURN_IF_ERROR(st);
  return Status::OK();
}

/// Translates shard-local ids back to global ids (local l on shard s is
/// global l * n + s) and merges the per-shard answers into one global
/// response with the established (distance, id) order. Exact-search
/// responses stay byte-identical to a single engine's: both sides
/// compute the same full distances over the same series, and the merge
/// applies the same tie-break.
SearchResponse MergeShardResponses(std::vector<SearchResponse> parts,
                                   const SearchRequest& request,
                                   size_t total_series) {
  const size_t num_shards = parts.size();
  SearchResponse merged;
  for (size_t s = 0; s < num_shards; ++s) {
    for (Neighbor& nb : parts[s].neighbors) {
      nb.id = nb.id * num_shards + s;
      merged.neighbors.push_back(nb);
    }
    merged.stats.MergeCounters(parts[s].stats);
    merged.stats.approx_phase_seconds += parts[s].stats.approx_phase_seconds;
    merged.stats.filter_phase_seconds += parts[s].stats.filter_phase_seconds;
    merged.stats.refine_phase_seconds += parts[s].stats.refine_phase_seconds;
  }
  std::sort(merged.neighbors.begin(), merged.neighbors.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance_sq < b.distance_sq ||
                     (a.distance_sq == b.distance_sq && a.id < b.id);
            });
  // An approximate probe answers with one neighbor per backend; exact
  // searches answer min(k, collection size) like a single engine.
  const size_t want =
      request.approximate ? 1 : std::min(request.k, total_series);
  if (merged.neighbors.size() > want) merged.neighbors.resize(want);
  return merged;
}

}  // namespace

ShardedEngine::ShardedEngine(std::vector<std::unique_ptr<Engine>> shards)
    : options_(shards.front()->options()),
      series_length_(shards.front()->series_length()),
      shard_data_paths_(shards.size()),
      shards_(std::move(shards)) {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->series_count();
  series_count_.store(total, std::memory_order_release);
}

ShardedEngine::~ShardedEngine() {
  // The service's workers route queries through the shards; stop them
  // before any shard goes away.
  service_.reset();
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Build(
    Dataset dataset, size_t num_shards, const EngineOptions& options) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (dataset.count() < num_shards) {
    return Status::InvalidArgument(
        "collection must hold at least one series per shard");
  }
  const size_t n = num_shards;
  const size_t count = dataset.count();
  const size_t length = dataset.length();

  // Deal rows to shards: global id g lives on shard g % n as local id
  // g / n, so the mapping needs no stored table and stays consistent
  // under appends.
  std::vector<Dataset> parts;
  parts.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    const size_t shard_count = count / n + (s < count % n ? 1 : 0);
    Dataset part(shard_count, length);
    for (size_t l = 0; l < shard_count; ++l) {
      const SeriesView row = dataset.series(l * n + s);
      std::copy(row.begin(), row.end(), part.mutable_series(l).begin());
    }
    parts.push_back(std::move(part));
  }

  std::vector<std::unique_ptr<Engine>> shards(n);
  PARISAX_RETURN_IF_ERROR(ParallelOverShards(n, [&](size_t s) {
    auto built =
        Engine::Build(SourceSpec::InMemory(std::move(parts[s])), options);
    if (!built.ok()) return built.status();
    shards[s] = std::move(built).value();
    return Status::OK();
  }));
  return std::unique_ptr<ShardedEngine>(new ShardedEngine(std::move(shards)));
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const std::string& manifest_path) {
  return OpenInternal(manifest_path, EngineOptions(), false);
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const std::string& manifest_path, const EngineOptions& options) {
  return OpenInternal(manifest_path, options, true);
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::OpenInternal(
    const std::string& manifest_path, const EngineOptions& options,
    bool enforce_algorithm) {
  ShardManifest manifest;
  PARISAX_ASSIGN_OR_RETURN(manifest, ReadShardManifest(manifest_path));
  const std::string dir = DirOf(manifest_path);
  const size_t n = manifest.shards.size();

  std::vector<std::unique_ptr<Engine>> shards(n);
  std::vector<std::string> data_paths(n);
  PARISAX_RETURN_IF_ERROR(ParallelOverShards(n, [&](size_t s) {
    const ShardManifest::Shard& entry = manifest.shards[s];
    const std::string snapshot_path = dir + entry.snapshot_file;
    const std::string data_path = dir + entry.data_file;
    // A sharded restore needs every shard; name the missing one so an
    // operator knows which file to recover.
    std::FILE* probe = std::fopen(snapshot_path.c_str(), "rb");
    if (probe == nullptr) {
      return Status::NotFound("shard " + std::to_string(s) +
                              " snapshot missing: " + snapshot_path);
    }
    std::fclose(probe);
    auto opened = enforce_algorithm
                      ? Engine::Open(snapshot_path, data_path, options)
                      : Engine::Open(snapshot_path, data_path);
    if (!opened.ok()) return opened.status();
    shards[s] = std::move(opened).value();
    if (shards[s]->series_count() != entry.count) {
      return Status::Corruption(
          "shard " + std::to_string(s) + " restored " +
          std::to_string(shards[s]->series_count()) +
          " series, manifest says " + std::to_string(entry.count));
    }
    if (shards[s]->series_length() != manifest.series_length) {
      return Status::Corruption("shard " + std::to_string(s) +
                                " series length does not match the manifest");
    }
    data_paths[s] = data_path;
    return Status::OK();
  }));
  if (manifest.algorithm != shards.front()->algorithm_name()) {
    return Status::Corruption(
        "shard snapshots hold " +
        std::string(shards.front()->algorithm_name()) +
        ", manifest says " + manifest.algorithm);
  }
  auto engine =
      std::unique_ptr<ShardedEngine>(new ShardedEngine(std::move(shards)));
  engine->shard_data_paths_ = std::move(data_paths);
  return engine;
}

Result<SearchResponse> ShardedEngine::Search(SeriesView query,
                                             const SearchRequest& request) {
  WallTimer timer;
  AtomicMinFloat router_bound(std::numeric_limits<float>::infinity());
  SearchRequest shard_request = request;
  if (shard_request.shared_bound == nullptr) {
    shard_request.shared_bound = &router_bound;
  }
  const size_t n = shards_.size();
  std::vector<SearchResponse> parts(n);
  PARISAX_RETURN_IF_ERROR(ParallelOverShards(n, [&](size_t s) {
    auto result = shards_[s]->Search(query, shard_request);
    if (!result.ok()) return result.status();
    parts[s] = std::move(result).value();
    return Status::OK();
  }));
  SearchResponse response =
      MergeShardResponses(std::move(parts), request, series_count());
  response.stats.total_seconds = timer.ElapsedSeconds();
  return response;
}

Result<SearchResponse> ShardedEngine::Search(SeriesView query,
                                             const SearchRequest& request,
                                             Executor* exec) {
  WallTimer timer;
  AtomicMinFloat router_bound(std::numeric_limits<float>::infinity());
  SearchRequest shard_request = request;
  if (shard_request.shared_bound == nullptr) {
    shard_request.shared_bound = &router_bound;
  }
  const size_t n = shards_.size();
  std::vector<SearchResponse> parts(n);
  for (size_t s = 0; s < n; ++s) {
    auto result = shards_[s]->Search(query, shard_request, exec);
    if (!result.ok()) return result.status();
    parts[s] = std::move(result).value();
  }
  SearchResponse response =
      MergeShardResponses(std::move(parts), request, series_count());
  response.stats.total_seconds = timer.ElapsedSeconds();
  return response;
}

QueryService* ShardedEngine::query_service() {
  MutexLock lock(&service_mu_);
  if (service_ == nullptr) {
    QueryServiceOptions sopts;
    sopts.num_threads = options_.num_threads;
    sopts.policy = SchedulingPolicy::kAuto;
    // Shard options were validated when the shards were built, so
    // Create cannot fail here.
    service_ = std::move(QueryService::Create(this, sopts).value());
  }
  return service_.get();
}

Result<AppendReport> ShardedEngine::Append(const Value* values, size_t count) {
  if (!capabilities().append) {
    return Status::NotSupported(
        std::string(algorithm_name()) +
        " does not support appends over this source "
        "(capabilities().append is false)");
  }
  if (count > 0 && values == nullptr) {
    return Status::InvalidArgument("appended values must not be null");
  }
  WallTimer wall;
  MutexLock lock(&append_mu_);
  const size_t n = shards_.size();
  const size_t length = series_length_;
  const size_t old_count = series_count_.load(std::memory_order_acquire);

  // Deal the batch's rows to their shards in id order: row i is global
  // id old_count + i, which shard (old_count + i) % n stores as its
  // next local id.
  std::vector<std::vector<Value>> parts(n);
  for (std::vector<Value>& part : parts) {
    part.reserve(((count + n - 1) / n) * length);
  }
  for (size_t i = 0; i < count; ++i) {
    std::vector<Value>& part = parts[(old_count + i) % n];
    part.insert(part.end(), values + i * length, values + (i + 1) * length);
  }

  // Shard-parallel appends. On a shard failure nothing below publishes
  // (counters stay put), but sibling shards may already have grown —
  // as with Engine::Append's failure contract, discard the backend.
  std::vector<AppendReport> reports(n);
  PARISAX_RETURN_IF_ERROR(ParallelOverShards(n, [&](size_t s) {
    if (parts[s].empty()) return Status::OK();
    auto appended =
        shards_[s]->Append(parts[s].data(), parts[s].size() / length);
    if (!appended.ok()) return appended.status();
    reports[s] = std::move(appended).value();
    return Status::OK();
  }));
  series_count_.store(old_count + count, std::memory_order_release);
  append_epoch_.fetch_add(1, std::memory_order_acq_rel);

  AppendReport report;
  report.appended = count;
  report.total_series = old_count + count;
  for (const AppendReport& shard_report : reports) {
    report.touched_subtrees += shard_report.touched_subtrees;
  }
  report.wall_seconds = wall.ElapsedSeconds();
  return report;
}

Status ShardedEngine::Save(const std::string& manifest_path) {
  return Checkpoint(manifest_path, /*compact=*/false);
}

Status ShardedEngine::Compact(const std::string& manifest_path) {
  return Checkpoint(manifest_path, /*compact=*/true);
}

Status ShardedEngine::Checkpoint(const std::string& manifest_path,
                                 bool compact) {
  if (!capabilities().snapshot) {
    return Status::NotSupported(
        std::string(algorithm_name()) +
        " does not support snapshots (capabilities().snapshot is false)");
  }
  MutexLock lock(&append_mu_);
  const std::string dir = DirOf(manifest_path);
  const std::string base = BaseOf(manifest_path);
  const size_t n = shards_.size();

  PARISAX_RETURN_IF_ERROR(ParallelOverShards(n, [&](size_t s) {
    Engine& shard = *shards_[s];
    const std::string data_path = dir + ShardDataName(base, s);
    // The data file a restored shard mmaps is kept current by the
    // append path (MmapSource extends it in place); only write one
    // when checkpointing somewhere else. Rewriting the live mapping
    // would pull pages out from under concurrent queries.
    if (shard_data_paths_[s] != data_path) {
      DatasetFileWriter writer;
      PARISAX_RETURN_IF_ERROR(
          writer.Open(data_path, shard.series_count(),
                      static_cast<uint32_t>(series_length_)));
      const RawSeriesSource& source = shard.source();
      std::vector<Value> buffer(series_length_);
      for (SeriesId id = 0; id < shard.series_count(); ++id) {
        SeriesView view = source.TryView(id);
        if (view.empty()) {
          PARISAX_RETURN_IF_ERROR(source.GetSeries(id, buffer.data()));
          view = SeriesView(buffer.data(), buffer.size());
        }
        PARISAX_RETURN_IF_ERROR(writer.Append(view));
      }
      PARISAX_RETURN_IF_ERROR(writer.Close());
    }
    const std::string snapshot_path = dir + ShardSnapshotName(base, s);
    return compact ? shard.Compact(snapshot_path) : shard.Save(snapshot_path);
  }));

  ShardManifest manifest;
  manifest.algorithm = algorithm_name();
  manifest.series_length = series_length_;
  manifest.total_count = series_count_.load(std::memory_order_acquire);
  for (size_t s = 0; s < n; ++s) {
    ShardManifest::Shard entry;
    entry.count = shards_[s]->series_count();
    entry.snapshot_file = ShardSnapshotName(base, s);
    entry.data_file = ShardDataName(base, s);
    manifest.shards.push_back(std::move(entry));
  }
  return WriteShardManifest(manifest, manifest_path);
}

EngineCapabilities ShardedEngine::capabilities() const {
  EngineCapabilities caps = shards_.front()->capabilities();
  for (size_t s = 1; s < shards_.size(); ++s) {
    const EngineCapabilities shard_caps = shards_[s]->capabilities();
    caps.max_k = std::min(caps.max_k, shard_caps.max_k);
    caps.dtw = caps.dtw && shard_caps.dtw;
    caps.dtw_knn = caps.dtw_knn && shard_caps.dtw_knn;
    caps.approximate = caps.approximate && shard_caps.approximate;
    caps.snapshot = caps.snapshot && shard_caps.snapshot;
    caps.streaming_build = caps.streaming_build && shard_caps.streaming_build;
    caps.append = caps.append && shard_caps.append;
    caps.background_compaction =
        caps.background_compaction && shard_caps.background_compaction;
  }
  return caps;
}

uint64_t ShardedEngine::compaction_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->compaction_count();
  return total;
}

}  // namespace parisax
