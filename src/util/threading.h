// Threading substrate: a parallel-region thread pool, spin barrier,
// Fetch&Inc work distribution, and the atomic best-so-far (BSF) cell.
//
// ParIS/ParIS+/MESSI are structured as *parallel regions*: a fixed set of
// worker threads all execute the same phase function and synchronize on
// barriers, distributing work items among themselves with Fetch&Inc
// counters (the primitive the papers call out explicitly). ThreadPool
// models exactly that: Run(f) executes f(worker_id) on every worker and
// returns when all workers finish the phase.
#ifndef PARISAX_UTIL_THREADING_H_
#define PARISAX_UTIL_THREADING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace parisax {

/// Atomic shared upper bound used for pruning: the Best-So-Far distance.
/// Readers may see a slightly stale (larger) value, which only weakens
/// pruning, never correctness.
class AtomicMinFloat {
 public:
  explicit AtomicMinFloat(float initial) : value_(initial) {}

  /// Lowers the stored value to `candidate` if it is smaller.
  /// Returns true if this call lowered the value.
  bool UpdateMin(float candidate) {
    float current = value_.load(std::memory_order_relaxed);
    while (candidate < current) {
      if (value_.compare_exchange_weak(current, candidate,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  float Load() const { return value_.load(std::memory_order_acquire); }

  void Reset(float v) { value_.store(v, std::memory_order_release); }

 private:
  std::atomic<float> value_;
};

/// Fetch&Inc work distribution over a range [0, total). Each call to
/// NextBatch claims the next contiguous batch of up to `grain` items.
class WorkCounter {
 public:
  explicit WorkCounter(size_t total) : total_(total) {}

  /// Claims up to `grain` items. Returns false when the range is
  /// exhausted; otherwise sets [*begin, *end).
  bool NextBatch(size_t grain, size_t* begin, size_t* end) {
    const size_t b = next_.fetch_add(grain, std::memory_order_relaxed);
    if (b >= total_) return false;
    *begin = b;
    *end = b + grain < total_ ? b + grain : total_;
    return true;
  }

  /// Claims a single item; returns false when exhausted.
  bool NextItem(size_t* item) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= total_) return false;
    *item = i;
    return true;
  }

  void Reset(size_t total) {
    total_ = total;
    next_.store(0, std::memory_order_relaxed);
  }

  size_t total() const { return total_; }

 private:
  size_t total_;
  std::atomic<size_t> next_{0};
};

/// Reusable spinning barrier for `parties` threads. Spins with
/// std::this_thread::yield(), which behaves sensibly both on dedicated
/// cores and when oversubscribed.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : parties_(parties) {}

  /// Blocks until all `parties` threads have arrived.
  void ArriveAndWait() {
    const uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      while (generation_.load(std::memory_order_acquire) == gen) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const int parties_;
  std::atomic<int> arrived_{0};
  std::atomic<uint64_t> generation_{0};
};

/// Abstract parallel-region executor: the degree of parallelism a search
/// phase runs with, decoupled from who owns the threads.
///
/// Run(f) executes f(worker_id) for worker ids 0..num_threads()-1 and
/// returns when all of them have finished. Query paths written against
/// Executor run unchanged on a whole ThreadPool (one query fanned out
/// over every core) or on an InlineExecutor (one query confined to the
/// calling thread), which is what lets the serve layer run many queries
/// concurrently: each query borrows an executor instead of owning the
/// machine.
class Executor {
 public:
  virtual ~Executor() = default;

  virtual int num_threads() const = 0;

  /// Executes `fn(worker_id)` on all workers; returns when every worker
  /// has returned from `fn`.
  virtual void Run(const std::function<void(int)>& fn) = 0;

  /// Convenience: splits [0, total) into batches of `grain` items claimed
  /// via Fetch&Inc and calls fn(begin, end, worker_id) for each batch.
  void ParallelFor(size_t total, size_t grain,
                   const std::function<void(size_t, size_t, int)>& fn);
};

/// Runs parallel regions serially on the calling thread (worker id 0).
/// Fully re-entrant and shareable: any number of InlineExecutor regions
/// may execute concurrently on different threads, so a query answered
/// through one is safe to run alongside other queries.
class InlineExecutor : public Executor {
 public:
  int num_threads() const override { return 1; }
  void Run(const std::function<void(int)>& fn) override { fn(0); }
};

/// Completion counter for a group of asynchronous tasks: Add() announces
/// work, Done() retires it, Wait() blocks until the outstanding count
/// reaches zero. Reusable (a later Add() re-arms it).
class TaskGroup {
 public:
  void Add(size_t n = 1) {
    MutexLock lock(&mu_);
    outstanding_ += n;
  }

  void Done() {
    MutexLock lock(&mu_);
    if (--outstanding_ == 0) cv_.NotifyAll();
  }

  /// Blocks until every added task has called Done().
  void Wait() {
    MutexLock lock(&mu_);
    while (outstanding_ != 0) cv_.Wait(mu_);
  }

  size_t outstanding() const {
    MutexLock lock(&mu_);
    return outstanding_;
  }

 private:
  mutable Mutex mu_{"TaskGroup::mu_", LockRank::kTaskGroup};
  CondVar cv_;
  size_t outstanding_ PARISAX_GUARDED_BY(mu_) = 0;
};

/// A pool of `num_threads` persistent workers executing parallel regions.
///
/// Run(f) makes every worker execute f(worker_id) once and returns when all
/// have finished. Workers are identified by 0..num_threads-1 so phases can
/// use per-worker state (e.g. MESSI's per-thread iSAX buffer parts).
class ThreadPool : public Executor {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const override { return num_threads_; }

  /// Executes `fn(worker_id)` on all workers; blocks until every worker
  /// has returned from `fn`. Not reentrant: at most one Run may be active
  /// at a time (see util/threading.cpp), so concurrent queries must
  /// either serialize their regions or use per-query InlineExecutors.
  void Run(const std::function<void(int)>& fn) override;

 private:
  void WorkerLoop(int id);

  const int num_threads_;
  std::vector<std::thread> threads_;

  Mutex mu_{"ThreadPool::mu_", LockRank::kPool};
  CondVar start_cv_;
  CondVar done_cv_;
  const std::function<void(int)>* task_ PARISAX_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ PARISAX_GUARDED_BY(mu_) = 0;
  int active_ PARISAX_GUARDED_BY(mu_) = 0;
  bool shutdown_ PARISAX_GUARDED_BY(mu_) = false;
};

}  // namespace parisax

#endif  // PARISAX_UTIL_THREADING_H_
