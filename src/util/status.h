// Status / Result error-handling primitives.
//
// parisax does not use exceptions on its public API (following the style of
// large database codebases such as RocksDB and Arrow). Fallible operations
// return a `Status`, or a `Result<T>` when they also produce a value.
#ifndef PARISAX_UTIL_STATUS_H_
#define PARISAX_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace parisax {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIoError,
  kCorruption,
  kNotFound,
  kNotSupported,
  kInternal,
  kDeadlineExceeded,
  kOverloaded,
};

/// Returns a short human-readable name for `code` (e.g. "IOError").
const char* StatusCodeName(StatusCode code);

/// The result of an operation that can fail.
///
/// A default-constructed Status is OK. Failed statuses carry a code and a
/// free-form message. Statuses are cheap to move and to copy.
///
/// [[nodiscard]]: a dropped Status is a swallowed error; callers that
/// genuinely cannot act on a failure must say so with a (void) cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a failed Status. Analogous to
/// arrow::Result / absl::StatusOr. [[nodiscard]] for the same reason as
/// Status: discarding one silently drops both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a failed Status. Constructing from an OK status is a
  /// programming error.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The failure, or OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// The value. Must hold a value (checked by assert in debug builds).
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status to the caller.
#define PARISAX_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::parisax::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result<T> expression; on failure returns its Status, on
/// success assigns the value to `lhs`.
#define PARISAX_ASSIGN_OR_RETURN(lhs, expr)    \
  auto PARISAX_CONCAT_(_res, __LINE__) = (expr);              \
  if (!PARISAX_CONCAT_(_res, __LINE__).ok())                  \
    return PARISAX_CONCAT_(_res, __LINE__).status();          \
  lhs = std::move(PARISAX_CONCAT_(_res, __LINE__)).value()

#define PARISAX_CONCAT_IMPL_(a, b) a##b
#define PARISAX_CONCAT_(a, b) PARISAX_CONCAT_IMPL_(a, b)

}  // namespace parisax

#endif  // PARISAX_UTIL_STATUS_H_
