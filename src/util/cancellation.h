// Cooperative cancellation for long-running queries.
//
// A CancellationToken carries an explicit cancel flag and an optional
// absolute deadline. The search hot loops poll `Expired()` at leaf-visit
// (MESSI) or batch (ParIS) granularity and bail out early; the query
// entry points then surface `StatusCode::kDeadlineExceeded` instead of a
// partial answer. Polling is cheap: one relaxed atomic load on the fast
// path, with the clock consulted only until the first expiry (which
// latches into the flag so later polls never touch the clock again).
#ifndef PARISAX_UTIL_CANCELLATION_H_
#define PARISAX_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>

namespace parisax {

/// Shared cancel/deadline state for one query. The owner (caller or
/// QueryService task) must keep the token alive for the whole search;
/// search paths hold only a raw pointer.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that never expires on its own (still cancellable).
  CancellationToken() = default;

  /// A token that expires at `deadline`.
  explicit CancellationToken(Clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  /// A token that expires `timeout` from now.
  static CancellationToken After(Clock::duration timeout) {
    return CancellationToken(Clock::now() + timeout);
  }

  /// Requests cancellation. Safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancelled or past the deadline. The first deadline hit
  /// latches into the cancel flag, so steady-state polling is one
  /// relaxed load.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ && Clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

 private:
  mutable std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

/// Null-safe poll helper for the `const CancellationToken*` threaded
/// through query options (null means "never expires").
inline bool Expired(const CancellationToken* token) {
  return token != nullptr && token->Expired();
}

}  // namespace parisax

#endif  // PARISAX_UTIL_CANCELLATION_H_
