// Cache-line / SIMD-aligned buffer for raw series storage.
#ifndef PARISAX_UTIL_ALIGNED_H_
#define PARISAX_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

namespace parisax {

/// 64 bytes: one cache line, and enough for AVX-512 loads.
inline constexpr size_t kBufferAlignment = 64;

/// A fixed-size heap buffer of trivially-copyable T aligned to
/// kBufferAlignment. Movable, not copyable. Used for the raw data array and
/// the flat SAX cache, where SIMD kernels rely on alignment.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(size_t count) { Allocate(count); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { Free(); }

  /// Grows the buffer to hold at least `count` elements, preserving the
  /// first `preserved` elements (the rest is zero-initialized). The new
  /// capacity is max(count, 2 * preserved), so repeated small growths
  /// cost amortized O(1) copying per element. No-op when `count`
  /// already fits. May reallocate: previously obtained pointers are
  /// invalidated.
  void GrowTo(size_t count, size_t preserved) {
    if (count <= count_) return;
    AlignedBuffer<T> grown(count > 2 * preserved ? count : 2 * preserved);
    if (preserved > 0) {
      std::memcpy(grown.data(), data_, preserved * sizeof(T));
    }
    *this = std::move(grown);
  }

  /// Discards current contents and allocates `count` elements
  /// (zero-initialized).
  void Allocate(size_t count) {
    Free();
    count_ = count;
    if (count == 0) return;
    size_t bytes = count * sizeof(T);
    // std::aligned_alloc requires size to be a multiple of alignment.
    bytes = (bytes + kBufferAlignment - 1) / kBufferAlignment *
            kBufferAlignment;
    data_ = static_cast<T*>(std::aligned_alloc(kBufferAlignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    std::memset(static_cast<void*>(data_), 0, bytes);
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + count_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + count_; }

 private:
  void Free() {
    std::free(data_);
    data_ = nullptr;
    count_ = 0;
  }

  T* data_ = nullptr;
  size_t count_ = 0;
};

}  // namespace parisax

#endif  // PARISAX_UTIL_ALIGNED_H_
