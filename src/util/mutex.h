// Annotated synchronization primitives: the only mutexes the codebase
// uses directly.
//
// Two checkers cross-validate the locking discipline:
//
//  1. Clang Thread Safety Analysis (compile time). The PARISAX_*
//     attribute macros below expand to Clang capability attributes, so a
//     `clang++ -Wthread-safety -Werror` build (CI's static-analysis job)
//     proves that guarded fields are only touched under their lock and
//     that REQUIRES contracts hold on every path. Under gcc the macros
//     expand to nothing and the wrappers behave exactly like
//     std::mutex/std::shared_mutex.
//
//  2. A runtime lock-rank checker (debug builds). Every Mutex carries a
//     LockRank; acquiring a lock whose rank is not strictly greater than
//     every rank already held by the thread aborts, printing both lock
//     names. Running the (debug) test suite therefore validates the
//     whole rank table against real schedules, and the TSan job checks
//     the same schedules for data races.
//
// The global lock hierarchy lives in the LockRank enum; the rationale
// for each rank is documented in docs/concurrency.md. New locks must
// pick a rank there (or kLeaf when nothing is ever acquired under
// them).
#ifndef PARISAX_UTIL_MUTEX_H_
#define PARISAX_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// --- Clang Thread Safety Analysis attribute macros -------------------------
// No-ops under compilers without the capability attribute (gcc), so the
// annotations cost nothing outside the clang static-analysis build.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PARISAX_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PARISAX_THREAD_ANNOTATION
#define PARISAX_THREAD_ANNOTATION(x)
#endif

#define PARISAX_CAPABILITY(x) PARISAX_THREAD_ANNOTATION(capability(x))
#define PARISAX_SCOPED_CAPABILITY PARISAX_THREAD_ANNOTATION(scoped_lockable)
#define PARISAX_GUARDED_BY(x) PARISAX_THREAD_ANNOTATION(guarded_by(x))
#define PARISAX_PT_GUARDED_BY(x) PARISAX_THREAD_ANNOTATION(pt_guarded_by(x))
#define PARISAX_ACQUIRED_BEFORE(...) \
  PARISAX_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PARISAX_ACQUIRED_AFTER(...) \
  PARISAX_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define PARISAX_REQUIRES(...) \
  PARISAX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PARISAX_REQUIRES_SHARED(...) \
  PARISAX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define PARISAX_ACQUIRE(...) \
  PARISAX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PARISAX_ACQUIRE_SHARED(...) \
  PARISAX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PARISAX_RELEASE(...) \
  PARISAX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PARISAX_RELEASE_SHARED(...) \
  PARISAX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define PARISAX_TRY_ACQUIRE(...) \
  PARISAX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PARISAX_EXCLUDES(...) \
  PARISAX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PARISAX_RETURN_CAPABILITY(x) \
  PARISAX_THREAD_ANNOTATION(lock_returned(x))
#define PARISAX_ASSERT_CAPABILITY(x) \
  PARISAX_THREAD_ANNOTATION(assert_capability(x))
#define PARISAX_NO_THREAD_SAFETY_ANALYSIS \
  PARISAX_THREAD_ANNOTATION(no_thread_safety_analysis)

// The runtime rank checker rides on debug builds only; release builds
// compile the bookkeeping out entirely.
#if !defined(NDEBUG) && !defined(PARISAX_NO_LOCK_RANK_CHECKS)
#define PARISAX_LOCK_RANK_CHECKS 1
#else
#define PARISAX_LOCK_RANK_CHECKS 0
#endif

namespace parisax {

/// The global lock hierarchy, one rank per lock (or per family of locks
/// that are never held together). Locks must be acquired in strictly
/// increasing rank order; the debug-build checker aborts on violations.
/// Full table with rationale: docs/concurrency.md.
enum class LockRank : int {
  // --- net layer (outermost: entered straight from sockets) ---
  kNetConnections = 10,  ///< Server::conns_mu_ (connection registry)
  kNetConnection = 20,   ///< Server::Connection::mu (per-connection outbox)
  // --- serve layer ---
  kServiceInit = 30,  ///< Engine/ShardedEngine service_mu_ (lazy service)
  kServeWake = 40,    ///< QueryService::wake_mu_ (sleep/wake protocol)
  kServeDeque = 50,   ///< QueryService::Shard::mu (work-stealing deques)
  // --- shard router ---
  kRouterAppend = 60,  ///< ShardedEngine::append_mu_ (cross-shard writer)
  // --- engine core (the documented append -> pool -> gate chain) ---
  kEngineAppend = 70,  ///< Engine::append_mu_ (writer gate)
  kCompactor = 80,     ///< Engine::compactor_mu_ (kicked under append_mu_)
  kEnginePool = 90,    ///< Engine::pool_mu_ (shared ThreadPool regions)
  kIndexGate = 100,    ///< Engine::index_gate_ (query/structure gate)
  // --- index structures ---
  kServingDock = 110,  ///< ServingDock::mu_ (snapshot publication)
  kBuildSlot = 120,    ///< ParIS BatchSlot::mu (pipeline slots)
  kBuildBuffer = 130,  ///< RecBuf::mu / IsaxBufferSet per-key locks
  kBuildBufferSet = 140,  ///< RecBufSet::touched_mu_ (touched-key list)
  kLeafNode = 150,        ///< Node::leaf_mutex_ (ParIS+ flush vs drain)
  kLeafStorage = 160,     ///< LeafStorage::mu_ (leaf chunk file)
  kQueryQueue = 170,      ///< MESSI SharedQueue::mu (stage-3 queues)
  kResultMerge = 180,     ///< KnnHeap::mu_ / BestNeighbor::mu / best_mu
  // --- leaves (nothing is ever acquired under these) ---
  kFirstError = 190,  ///< builders' first-error latches (error_mu)
  kPool = 200,        ///< ThreadPool::mu_ (phase protocol)
  kTaskGroup = 210,   ///< TaskGroup::mu_ (completion counter)
  kServeStats = 220,  ///< QueryService::stats_mu_ (serve counters)
  kMetrics = 230,     ///< MetricsRegistry::mu_ (family registry)
  kLeaf = 240,        ///< generic leaf locks (tests, tools)
};

namespace lock_rank_internal {
#if PARISAX_LOCK_RANK_CHECKS
/// Aborts (printing both lock names) when `rank` is not strictly greater
/// than every rank currently held by this thread, then records the lock
/// as held. Strictness also catches recursive acquisition.
void CheckAndRecordAcquire(const void* lock, int rank, const char* name);
/// Removes `lock` from this thread's held set.
void RecordRelease(const void* lock);
#else
inline void CheckAndRecordAcquire(const void*, int, const char*) {}
inline void RecordRelease(const void*) {}
#endif
}  // namespace lock_rank_internal

class CondVar;

/// std::mutex carrying a Clang capability, a name and a LockRank.
class PARISAX_CAPABILITY("mutex") Mutex {
 public:
  /// `name` must outlive the mutex (string literals in practice); it is
  /// what the rank checker prints on violation.
  explicit Mutex(const char* name, LockRank rank)
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PARISAX_ACQUIRE() {
    lock_rank_internal::CheckAndRecordAcquire(this, static_cast<int>(rank_),
                                              name_);
    mu_.lock();
  }

  void Unlock() PARISAX_RELEASE() {
    mu_.unlock();
    lock_rank_internal::RecordRelease(this);
  }

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const char* const name_;
  const LockRank rank_;
};

/// std::shared_mutex carrying a Clang capability, a name and a LockRank.
/// Shared (reader) acquisitions obey the same rank order as exclusive
/// ones: the rank checker cannot tell readers apart, and a reader that
/// breaks the order can still deadlock against a queued writer.
class PARISAX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name, LockRank rank)
      : name_(name), rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PARISAX_ACQUIRE() {
    lock_rank_internal::CheckAndRecordAcquire(this, static_cast<int>(rank_),
                                              name_);
    mu_.lock();
  }

  void Unlock() PARISAX_RELEASE() {
    mu_.unlock();
    lock_rank_internal::RecordRelease(this);
  }

  void LockShared() PARISAX_ACQUIRE_SHARED() {
    lock_rank_internal::CheckAndRecordAcquire(this, static_cast<int>(rank_),
                                              name_);
    mu_.lock_shared();
  }

  void UnlockShared() PARISAX_RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_rank_internal::RecordRelease(this);
  }

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const char* const name_;
  const LockRank rank_;
};

/// Scoped exclusive lock on a Mutex (the std::lock_guard replacement).
class PARISAX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PARISAX_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() PARISAX_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class PARISAX_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) PARISAX_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() PARISAX_RELEASE() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class PARISAX_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) PARISAX_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() PARISAX_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable working with Mutex. Waits release and re-acquire
/// through rank-checker bookkeeping so the per-thread held set stays
/// accurate across the block.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified; re-acquires
  /// `mu` before returning. As with std::condition_variable, spurious
  /// wakeups happen: call sites loop on their condition,
  ///   while (!cond) cv.Wait(mu);
  /// (an explicit loop instead of a predicate overload so the condition
  /// reads its guarded fields inside the annotated caller, where the
  /// thread-safety analysis can verify it).
  void Wait(Mutex& mu) PARISAX_REQUIRES(mu) {
    lock_rank_internal::RecordRelease(&mu);
    cv_.wait(mu.mu_);
    lock_rank_internal::CheckAndRecordAcquire(
        &mu, static_cast<int>(mu.rank_), mu.name_);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace parisax

#endif  // PARISAX_UTIL_MUTEX_H_
