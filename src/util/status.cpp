#include "util/status.h"

namespace parisax {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace parisax
