#include "util/threading.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace parisax {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  assert(num_threads >= 1);
  threads_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  start_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Run(const std::function<void(int)>& fn) {
  MutexLock lock(&mu_);
  if (task_ != nullptr) {
    // A Run from inside a parallel region (or a concurrent Run from a
    // second thread) would data-race on task_ and deadlock the phase
    // protocol. An assert would vanish in Release builds and leave a
    // silent race, so fail loudly and unconditionally.
    std::fprintf(stderr,
                 "fatal: ThreadPool::Run is not reentrant (a parallel "
                 "region is already executing)\n");
    std::abort();
  }
  task_ = &fn;
  active_ = num_threads_;
  ++generation_;
  start_cv_.NotifyAll();
  while (active_ != 0) done_cv_.Wait(mu_);
  task_ = nullptr;
}

void Executor::ParallelFor(
    size_t total, size_t grain,
    const std::function<void(size_t, size_t, int)>& fn) {
  WorkCounter counter(total);
  Run([&](int worker) {
    size_t begin, end;
    while (counter.NextBatch(grain, &begin, &end)) {
      fn(begin, end, worker);
    }
  });
}

void ThreadPool::WorkerLoop(int id) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && generation_ == seen_generation) {
        start_cv_.Wait(mu_);
      }
      if (shutdown_) return;
      seen_generation = generation_;
      task = task_;
    }
    (*task)(id);
    {
      MutexLock lock(&mu_);
      if (--active_ == 0) done_cv_.NotifyAll();
    }
  }
}

}  // namespace parisax
