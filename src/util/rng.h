// Deterministic, splittable random number generation.
//
// parisax needs reproducible data generation that is identical whether a
// dataset is produced serially or in parallel. We therefore avoid
// <random>'s distribution objects (whose output is implementation-defined)
// and use our own generators: SplitMix64 for seeding/mixing and
// Xoshiro256** for the main stream, with a Box-Muller Gaussian on top.
#ifndef PARISAX_UTIL_RNG_H_
#define PARISAX_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

namespace parisax {

/// One step of the SplitMix64 mixing function. Useful on its own to derive
/// independent per-item seeds from (dataset_seed, item_index).
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two 64-bit values into one; used to derive the seed of
/// series `index` from a dataset seed so generation order does not matter.
inline uint64_t MixSeed(uint64_t seed, uint64_t index) {
  uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL + index * 0xbf58476d1ce4e5b9ULL);
  SplitMix64(s);
  return SplitMix64(s);
}

/// Xoshiro256** PRNG (Blackman & Vigna). Fast, 2^256-1 period,
/// deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) { return NextU64() % n; }

  /// Standard normal N(0,1) via Box-Muller (deterministic across
  /// platforms, unlike std::normal_distribution).
  double NextGaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    spare_ = mag * std::sin(kTwoPi * u2);
    have_spare_ = true;
    return mag * std::cos(kTwoPi * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace parisax

#endif  // PARISAX_UTIL_RNG_H_
