// Wall-clock timing utilities used by benchmarks and build/query stats.
#ifndef PARISAX_UTIL_TIMER_H_
#define PARISAX_UTIL_TIMER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace parisax {

/// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Thread-safe accumulator of time spent in a named stage, in nanoseconds.
/// Multiple threads may Add() concurrently; the total is the sum of all
/// per-thread contributions (i.e. CPU-style accounting, not wall time).
class StageAccumulator {
 public:
  void Add(int64_t nanos) {
    total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  /// Measures the lifetime of the returned guard into this accumulator.
  class Scope {
   public:
    explicit Scope(StageAccumulator* acc) : acc_(acc) {}
    ~Scope() { acc_->Add(timer_.ElapsedNanos()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StageAccumulator* acc_;
    WallTimer timer_;
  };

  double TotalSeconds() const {
    return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  void Reset() { total_nanos_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> total_nanos_{0};
};

}  // namespace parisax

#endif  // PARISAX_UTIL_TIMER_H_
