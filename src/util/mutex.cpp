#include "util/mutex.h"

#if PARISAX_LOCK_RANK_CHECKS

#include <cstdio>
#include <cstdlib>

namespace parisax {
namespace lock_rank_internal {
namespace {

/// One thread's held locks. Deep enough for several times the worst
/// real chain (net -> serve -> router -> engine -> index internals).
constexpr int kMaxHeldLocks = 32;

struct HeldLock {
  const void* lock;
  int rank;
  const char* name;
};

thread_local HeldLock tls_held[kMaxHeldLocks];
thread_local int tls_depth = 0;

}  // namespace

void CheckAndRecordAcquire(const void* lock, int rank, const char* name) {
  // Locks may be released out of acquisition order, so scan the whole
  // held set (it is tiny) rather than trusting the top of the stack.
  for (int i = 0; i < tls_depth; ++i) {
    if (tls_held[i].rank >= rank) {
      // Strict ordering: equal ranks abort too, which catches both
      // recursive acquisition and two same-rank locks held together.
      std::fprintf(
          stderr,
          "fatal: lock rank violation: acquiring \"%s\" (rank %d) while "
          "holding \"%s\" (rank %d); locks must be acquired in strictly "
          "increasing LockRank order (see docs/concurrency.md)\n",
          name, rank, tls_held[i].name, tls_held[i].rank);
      std::abort();
    }
  }
  if (tls_depth >= kMaxHeldLocks) {
    std::fprintf(stderr,
                 "fatal: lock rank checker overflow: thread holds %d locks "
                 "acquiring \"%s\"\n",
                 tls_depth, name);
    std::abort();
  }
  tls_held[tls_depth++] = HeldLock{lock, rank, name};
}

void RecordRelease(const void* lock) {
  for (int i = tls_depth - 1; i >= 0; --i) {
    if (tls_held[i].lock == lock) {
      tls_held[i] = tls_held[--tls_depth];
      return;
    }
  }
  // Releasing a lock the checker never saw acquired: only reachable
  // through a wrapper bug, so fail loudly rather than drift silently.
  std::fprintf(stderr,
               "fatal: lock rank checker: release of a lock not held by "
               "this thread\n");
  std::abort();
}

}  // namespace lock_rank_internal
}  // namespace parisax

#endif  // PARISAX_LOCK_RANK_CHECKS
