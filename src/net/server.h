// The parisax serving front end: a TCP server speaking the frame
// protocol of net/protocol.h in front of one SearchBackend (a single
// Engine or a ShardedEngine) + QueryService.
//
// Threading model: one acceptor thread; per connection, a reader thread
// (decodes frames, submits queries, answers stats/health/append inline)
// and a writer thread (drains a FIFO of pending responses — ready
// frames and query futures alike — so each connection's responses go
// out in request order even when clients pipeline).
//
// Admission control: queries enter through QueryService::TrySubmit
// under `max_inflight`; a full service yields a typed `overloaded`
// error frame immediately instead of queueing without bound. Per-query
// deadlines (frame `timeout_us`, or the server default) are enforced at
// dequeue and polled inside the index hot loops via the cancellation
// token; expired queries answer `deadline_exceeded`. docs/serving.md is
// the operations guide.
#ifndef PARISAX_NET_SERVER_H_
#define PARISAX_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <span>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/search_backend.h"
#include "net/protocol.h"
#include "serve/metrics.h"
#include "serve/query_service.h"
#include "util/mutex.h"
#include "util/status.h"

namespace parisax {

struct ServerOptions {
  /// Bind address. The default serves loopback only; bind 0.0.0.0
  /// explicitly to expose the port.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Serve workers of the server-owned QueryService.
  int serve_threads = 4;
  /// Scheduling policy of the server-owned QueryService.
  SchedulingPolicy policy = SchedulingPolicy::kAuto;
  /// Admission cap: queries in flight (queued + executing) before
  /// TrySubmit rejects with kOverloaded. 0: unbounded (not recommended
  /// for exposed servers).
  size_t max_inflight = 128;
  /// Deadline applied to queries whose frame carries timeout_us == 0.
  /// 0: no default deadline.
  uint64_t default_timeout_us = 0;
  /// Connections beyond this are accepted and immediately closed.
  int max_connections = 64;
};

class Server {
 public:
  /// Binds, listens and starts serving `backend` (which must outlive
  /// the server). Returns kIoError when the address cannot be bound.
  static Result<std::unique_ptr<Server>> Start(SearchBackend* backend,
                                               const ServerOptions& options);

  /// Stops accepting, closes every connection, finishes in-flight
  /// queries and joins all threads.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void Stop();

  /// The bound port (the chosen one when options.port was 0).
  uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }

  MetricsRegistry* metrics_registry() { return &registry_; }
  ServerMetrics* server_metrics() { return &metrics_; }
  QueryService* query_service() { return service_.get(); }

  /// Mirrors live backend/service state into the registry and renders
  /// the Prometheus text exposition (what a STATS frame answers).
  std::string RenderMetricsText();

 private:
  /// One queued response: either a ready-encoded frame or a pending
  /// query future the writer resolves in FIFO order.
  struct Outgoing {
    std::vector<uint8_t> frame;  // used when `pending` is invalid
    std::future<Result<SearchResponse>> pending;
    bool is_pending = false;
    uint64_t request_id = 0;
    const char* type_label = "";
    std::chrono::steady_clock::time_point start{};
  };

  struct Connection {
    int fd = -1;
    std::thread reader;
    std::thread writer;
    Mutex mu{"Server::Connection::mu", LockRank::kNetConnection};
    CondVar cv;
    std::deque<Outgoing> outbox PARISAX_GUARDED_BY(mu);
    bool reader_done PARISAX_GUARDED_BY(mu) = false;
    bool write_failed PARISAX_GUARDED_BY(mu) = false;
    std::atomic<bool> finished{false};  // both threads exited
  };

  Server(SearchBackend* backend, const ServerOptions& options);

  Status Listen();
  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WriterLoop(Connection* conn);
  /// Decodes and acts on one frame body; appends the response(s) to the
  /// connection's outbox. Returns false when the connection must close
  /// (header-level corruption).
  bool HandleFrame(Connection* conn, const FrameHeader& header,
                   std::span<const uint8_t> body);
  void Enqueue(Connection* conn, Outgoing outgoing);
  void EnqueueError(Connection* conn, uint64_t request_id, WireError code,
                    std::string message, const char* type_label);
  /// Joins and frees connections whose threads have exited.
  void ReapFinished();

  SearchBackend* const backend_;
  const ServerOptions options_;
  MetricsRegistry registry_;
  ServerMetrics metrics_;
  std::unique_ptr<QueryService> service_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};

  Mutex conns_mu_{"Server::conns_mu_", LockRank::kNetConnections};
  std::vector<std::unique_ptr<Connection>> conns_
      PARISAX_GUARDED_BY(conns_mu_);
};

}  // namespace parisax

#endif  // PARISAX_NET_SERVER_H_
