#include "net/protocol.h"

#include <cstring>

namespace parisax {

namespace {

/// Bounds-checked little-endian reader over one frame body. Every Get
/// reports failure instead of reading past the end, so decoders degrade
/// to typed errors on truncated input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  bool GetU8(uint8_t* v) { return GetRaw(v, 1); }
  bool GetU16(uint16_t* v) { return GetRaw(v, 2); }
  bool GetU32(uint32_t* v) { return GetRaw(v, 4); }
  bool GetU64(uint64_t* v) { return GetRaw(v, 8); }
  bool GetF32(float* v) { return GetRaw(v, 4); }

  bool GetBytes(void* out, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  // Serialized layouts are little-endian; so is every platform this
  // builds for (x86-64, AArch64), so moving raw bytes is the format.
  bool GetRaw(void* out, size_t n) { return GetBytes(out, n); }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { PutRaw(&v, 1); }
  void PutU16(uint16_t v) { PutRaw(&v, 2); }
  void PutU32(uint32_t v) { PutRaw(&v, 4); }
  void PutU64(uint64_t v) { PutRaw(&v, 8); }
  void PutF32(float v) { PutRaw(&v, 4); }
  void PutBytes(const void* data, size_t n) { PutRaw(data, n); }

 private:
  void PutRaw(const void* data, size_t n) {
    const auto* bytes = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), bytes, bytes + n);
  }

  std::vector<uint8_t>* out_;
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated ") + what +
                                 " frame body");
}

}  // namespace

WireError WireErrorFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireError::kUnknown;  // not representable; callers gate
    case StatusCode::kInvalidArgument:
      return WireError::kInvalidArgument;
    case StatusCode::kIoError:
      return WireError::kIoError;
    case StatusCode::kCorruption:
      return WireError::kCorruption;
    case StatusCode::kNotFound:
      return WireError::kNotFound;
    case StatusCode::kNotSupported:
      return WireError::kNotSupported;
    case StatusCode::kInternal:
      return WireError::kInternal;
    case StatusCode::kDeadlineExceeded:
      return WireError::kDeadlineExceeded;
    case StatusCode::kOverloaded:
      return WireError::kOverloaded;
  }
  return WireError::kUnknown;
}

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kUnknown:
      return "unknown";
    case WireError::kInvalidArgument:
      return "invalid_argument";
    case WireError::kIoError:
      return "io_error";
    case WireError::kCorruption:
      return "corruption";
    case WireError::kNotFound:
      return "not_found";
    case WireError::kNotSupported:
      return "not_supported";
    case WireError::kInternal:
      return "internal";
    case WireError::kDeadlineExceeded:
      return "deadline_exceeded";
    case WireError::kOverloaded:
      return "overloaded";
    case WireError::kBadFrame:
      return "bad_frame";
    case WireError::kFrameTooLarge:
      return "frame_too_large";
    case WireError::kBadVersion:
      return "bad_version";
  }
  return "unknown";
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* buf) {
  ByteReader reader(std::span<const uint8_t>(buf, kFrameHeaderSize));
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint16_t reserved = 0;
  uint32_t body_len = 0;
  reader.GetU32(&magic);
  reader.GetU8(&version);
  reader.GetU8(&type);
  reader.GetU16(&reserved);
  reader.GetU32(&body_len);
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "bad protocol version " + std::to_string(version) +
        " (expected " + std::to_string(kProtocolVersion) + ")");
  }
  if (body_len > kMaxBodyLen) {
    return Status::InvalidArgument(
        "frame body of " + std::to_string(body_len) +
        " bytes exceeds the " + std::to_string(kMaxBodyLen) +
        "-byte limit");
  }
  FrameHeader header;
  header.version = version;
  header.type = static_cast<FrameType>(type);
  header.body_len = body_len;
  return header;
}

void EncodeFrameHeader(FrameType type, uint32_t body_len, uint8_t* out) {
  std::vector<uint8_t> bytes;
  bytes.reserve(kFrameHeaderSize);
  ByteWriter writer(&bytes);
  writer.PutU32(kFrameMagic);
  writer.PutU8(kProtocolVersion);
  writer.PutU8(static_cast<uint8_t>(type));
  writer.PutU16(0);
  writer.PutU32(body_len);
  std::memcpy(out, bytes.data(), kFrameHeaderSize);
}

namespace {

/// Encodes `body` behind its header in one buffer ready to write.
std::vector<uint8_t> WithHeader(FrameType type,
                                const std::vector<uint8_t>& body) {
  std::vector<uint8_t> frame(kFrameHeaderSize + body.size());
  EncodeFrameHeader(type, static_cast<uint32_t>(body.size()),
                    frame.data());
  std::memcpy(frame.data() + kFrameHeaderSize, body.data(), body.size());
  return frame;
}

constexpr uint8_t kFlagApproximate = 1u << 0;
constexpr uint8_t kFlagHighPriority = 1u << 1;

}  // namespace

std::vector<uint8_t> EncodeQueryFrame(FrameType type,
                                      const QueryFrame& frame) {
  std::vector<uint8_t> body;
  body.reserve(32 + frame.values.size() * sizeof(Value));
  ByteWriter writer(&body);
  writer.PutU64(frame.request_id);
  writer.PutU32(frame.k);
  writer.PutU32(frame.dtw_band);
  uint8_t flags = 0;
  if (frame.approximate) flags |= kFlagApproximate;
  if (frame.high_priority) flags |= kFlagHighPriority;
  writer.PutU8(flags);
  writer.PutU8(0);
  writer.PutU16(0);
  writer.PutU64(frame.timeout_us);
  writer.PutU32(static_cast<uint32_t>(frame.values.size()));
  writer.PutBytes(frame.values.data(),
                  frame.values.size() * sizeof(Value));
  return WithHeader(type, body);
}

Result<QueryFrame> DecodeQueryFrame(std::span<const uint8_t> body) {
  ByteReader reader(body);
  QueryFrame frame;
  uint8_t flags = 0;
  uint8_t reserved8 = 0;
  uint16_t reserved16 = 0;
  uint32_t series_len = 0;
  if (!reader.GetU64(&frame.request_id) || !reader.GetU32(&frame.k) ||
      !reader.GetU32(&frame.dtw_band) || !reader.GetU8(&flags) ||
      !reader.GetU8(&reserved8) || !reader.GetU16(&reserved16) ||
      !reader.GetU64(&frame.timeout_us) || !reader.GetU32(&series_len)) {
    return Truncated("query");
  }
  frame.approximate = (flags & kFlagApproximate) != 0;
  frame.high_priority = (flags & kFlagHighPriority) != 0;
  if (reader.remaining() !=
      static_cast<size_t>(series_len) * sizeof(Value)) {
    return Status::InvalidArgument(
        "query frame announces " + std::to_string(series_len) +
        " values but carries " +
        std::to_string(reader.remaining() / sizeof(Value)));
  }
  frame.values.resize(series_len);
  reader.GetBytes(frame.values.data(), series_len * sizeof(Value));
  return frame;
}

std::vector<uint8_t> EncodeAppendFrame(const AppendFrame& frame) {
  std::vector<uint8_t> body;
  body.reserve(16 + frame.values.size() * sizeof(Value));
  ByteWriter writer(&body);
  writer.PutU64(frame.request_id);
  writer.PutU32(frame.count);
  writer.PutU32(frame.series_len);
  writer.PutBytes(frame.values.data(),
                  frame.values.size() * sizeof(Value));
  return WithHeader(FrameType::kAppend, body);
}

Result<AppendFrame> DecodeAppendFrame(std::span<const uint8_t> body) {
  ByteReader reader(body);
  AppendFrame frame;
  if (!reader.GetU64(&frame.request_id) || !reader.GetU32(&frame.count) ||
      !reader.GetU32(&frame.series_len)) {
    return Truncated("append");
  }
  const uint64_t expected = static_cast<uint64_t>(frame.count) *
                            frame.series_len * sizeof(Value);
  if (reader.remaining() != expected) {
    return Status::InvalidArgument(
        "append frame announces " + std::to_string(frame.count) + " x " +
        std::to_string(frame.series_len) + " values but carries " +
        std::to_string(reader.remaining()) + " bytes");
  }
  frame.values.resize(static_cast<size_t>(frame.count) * frame.series_len);
  reader.GetBytes(frame.values.data(), expected);
  return frame;
}

std::vector<uint8_t> EncodePlainRequest(FrameType type,
                                        uint64_t request_id) {
  std::vector<uint8_t> body;
  ByteWriter writer(&body);
  writer.PutU64(request_id);
  return WithHeader(type, body);
}

Result<uint64_t> DecodePlainRequest(std::span<const uint8_t> body) {
  ByteReader reader(body);
  uint64_t request_id = 0;
  if (!reader.GetU64(&request_id)) return Truncated("stats/health");
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("stats/health frame carries a payload");
  }
  return request_id;
}

std::vector<uint8_t> EncodeResultFrame(const ResultFrame& frame) {
  std::vector<uint8_t> body;
  body.reserve(16 + frame.neighbors.size() * 12);
  ByteWriter writer(&body);
  writer.PutU64(frame.request_id);
  writer.PutU32(static_cast<uint32_t>(frame.neighbors.size()));
  writer.PutU32(0);
  for (const Neighbor& n : frame.neighbors) {
    writer.PutU64(n.id);
    writer.PutF32(n.distance_sq);
  }
  return WithHeader(FrameType::kResult, body);
}

Result<ResultFrame> DecodeResultFrame(std::span<const uint8_t> body) {
  ByteReader reader(body);
  ResultFrame frame;
  uint32_t count = 0;
  uint32_t reserved = 0;
  if (!reader.GetU64(&frame.request_id) || !reader.GetU32(&count) ||
      !reader.GetU32(&reserved)) {
    return Truncated("result");
  }
  if (reader.remaining() != static_cast<size_t>(count) * 12) {
    return Status::InvalidArgument(
        "result frame announces " + std::to_string(count) + " neighbors");
  }
  frame.neighbors.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Neighbor n;
    reader.GetU64(&n.id);
    reader.GetF32(&n.distance_sq);
    frame.neighbors.push_back(n);
  }
  return frame;
}

std::vector<uint8_t> EncodeAppendOkFrame(const AppendOkFrame& frame) {
  std::vector<uint8_t> body;
  ByteWriter writer(&body);
  writer.PutU64(frame.request_id);
  writer.PutU64(frame.total_series);
  writer.PutU64(frame.append_epoch);
  return WithHeader(FrameType::kAppendOk, body);
}

Result<AppendOkFrame> DecodeAppendOkFrame(std::span<const uint8_t> body) {
  ByteReader reader(body);
  AppendOkFrame frame;
  if (!reader.GetU64(&frame.request_id) ||
      !reader.GetU64(&frame.total_series) ||
      !reader.GetU64(&frame.append_epoch) || reader.remaining() != 0) {
    return Truncated("append-ok");
  }
  return frame;
}

std::vector<uint8_t> EncodeStatsTextFrame(const StatsTextFrame& frame) {
  std::vector<uint8_t> body;
  body.reserve(8 + frame.text.size());
  ByteWriter writer(&body);
  writer.PutU64(frame.request_id);
  writer.PutBytes(frame.text.data(), frame.text.size());
  return WithHeader(FrameType::kStatsText, body);
}

Result<StatsTextFrame> DecodeStatsTextFrame(
    std::span<const uint8_t> body) {
  ByteReader reader(body);
  StatsTextFrame frame;
  if (!reader.GetU64(&frame.request_id)) return Truncated("stats-text");
  frame.text.resize(reader.remaining());
  reader.GetBytes(frame.text.data(), frame.text.size());
  return frame;
}

std::vector<uint8_t> EncodeHealthOkFrame(const HealthOkFrame& frame) {
  std::vector<uint8_t> body;
  ByteWriter writer(&body);
  writer.PutU64(frame.request_id);
  writer.PutU64(frame.series_count);
  writer.PutU32(frame.series_length);
  writer.PutU32(static_cast<uint32_t>(frame.algorithm.size()));
  writer.PutBytes(frame.algorithm.data(), frame.algorithm.size());
  return WithHeader(FrameType::kHealthOk, body);
}

Result<HealthOkFrame> DecodeHealthOkFrame(std::span<const uint8_t> body) {
  ByteReader reader(body);
  HealthOkFrame frame;
  uint32_t name_len = 0;
  if (!reader.GetU64(&frame.request_id) ||
      !reader.GetU64(&frame.series_count) ||
      !reader.GetU32(&frame.series_length) || !reader.GetU32(&name_len)) {
    return Truncated("health-ok");
  }
  if (reader.remaining() != name_len) return Truncated("health-ok");
  frame.algorithm.resize(name_len);
  reader.GetBytes(frame.algorithm.data(), name_len);
  return frame;
}

std::vector<uint8_t> EncodeErrorFrame(const ErrorFrame& frame) {
  std::vector<uint8_t> body;
  body.reserve(16 + frame.message.size());
  ByteWriter writer(&body);
  writer.PutU64(frame.request_id);
  writer.PutU16(static_cast<uint16_t>(frame.code));
  writer.PutU16(0);
  writer.PutU32(static_cast<uint32_t>(frame.message.size()));
  writer.PutBytes(frame.message.data(), frame.message.size());
  return WithHeader(FrameType::kError, body);
}

Result<ErrorFrame> DecodeErrorFrame(std::span<const uint8_t> body) {
  ByteReader reader(body);
  ErrorFrame frame;
  uint16_t code = 0;
  uint16_t reserved = 0;
  uint32_t message_len = 0;
  if (!reader.GetU64(&frame.request_id) || !reader.GetU16(&code) ||
      !reader.GetU16(&reserved) || !reader.GetU32(&message_len)) {
    return Truncated("error");
  }
  if (reader.remaining() != message_len) return Truncated("error");
  frame.code = static_cast<WireError>(code);
  frame.message.resize(message_len);
  reader.GetBytes(frame.message.data(), message_len);
  return frame;
}

}  // namespace parisax
