#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace parisax {

namespace {

/// recv() until `n` bytes or EOF/error. Returns n on success, 0 on
/// clean EOF at a frame boundary (nothing read), -1 otherwise.
ssize_t ReadFull(int fd, uint8_t* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return got == 0 ? 0 : -1;  // mid-frame EOF is an error
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  return static_cast<ssize_t>(n);
}

bool WriteFull(int fd, const uint8_t* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

const char* RequestTypeLabel(FrameType type) {
  switch (type) {
    case FrameType::kQuery:
      return "query";
    case FrameType::kKnn:
      return "knn";
    case FrameType::kDtw:
      return "dtw";
    case FrameType::kAppend:
      return "append";
    case FrameType::kStats:
      return "stats";
    case FrameType::kHealth:
      return "health";
    default:
      return "unknown";
  }
}

}  // namespace

Server::Server(SearchBackend* backend, const ServerOptions& options)
    : backend_(backend), options_(options), metrics_(&registry_) {}

Result<std::unique_ptr<Server>> Server::Start(SearchBackend* backend,
                                              const ServerOptions& options) {
  if (backend == nullptr) {
    return Status::InvalidArgument("backend must not be null");
  }
  std::unique_ptr<Server> server(new Server(backend, options));

  QueryServiceOptions sopts;
  sopts.num_threads = options.serve_threads;
  sopts.policy = options.policy;
  sopts.max_inflight = options.max_inflight;
  PARISAX_ASSIGN_OR_RETURN(server->service_,
                           QueryService::Create(backend, sopts));

  PARISAX_RETURN_IF_ERROR(server->Listen());
  server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Status Server::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable bind address: " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) != 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  // Unblock the acceptor, then every connection reader.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  std::vector<std::unique_ptr<Connection>> conns;
  {
    MutexLock lock(&conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    ::close(conn->fd);
  }
  // The QueryService destructor (member order) then drains any
  // still-executing queries; their promise consumers are gone with the
  // connections, which is fine — promises resolve into dropped futures.
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or fatal
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    ReapFinished();
    {
      MutexLock lock(&conns_mu_);
      if (conns_.size() >= static_cast<size_t>(options_.max_connections)) {
        // Over the connection cap: refuse with a typed error so the
        // client can tell backpressure from a network failure.
        const auto frame = EncodeErrorFrame(
            ErrorFrame{0, WireError::kOverloaded,
                       "connection limit reached"});
        WriteFull(fd, frame.data(), frame.size());
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      Connection* raw = conn.get();
      conn->reader = std::thread([this, raw] { ReaderLoop(raw); });
      conn->writer = std::thread([this, raw] { WriterLoop(raw); });
      conns_.push_back(std::move(conn));
    }
    metrics_.connections_open->Add(1.0);
  }
}

void Server::ReapFinished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    MutexLock lock(&conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    ::close(conn->fd);
  }
}

void Server::ReaderLoop(Connection* conn) {
  std::vector<uint8_t> body;
  for (;;) {
    uint8_t header_buf[kFrameHeaderSize];
    const ssize_t r = ReadFull(conn->fd, header_buf, kFrameHeaderSize);
    if (r <= 0) break;  // clean EOF, connection reset, or shutdown
    metrics_.bytes_read_total->Increment(kFrameHeaderSize);

    auto header = DecodeFrameHeader(header_buf);
    if (!header.ok()) {
      // Header-level corruption: there is no way to find the next frame
      // boundary in the stream, so answer once and close.
      metrics_.frame_errors_total->Increment();
      const std::string msg = header.status().message();
      WireError code = WireError::kBadFrame;
      if (msg.find("version") != std::string::npos) {
        code = WireError::kBadVersion;
      } else if (msg.find("exceeds") != std::string::npos) {
        code = WireError::kFrameTooLarge;
      }
      EnqueueError(conn, 0, code, msg, "unknown");
      break;
    }

    body.resize(header->body_len);
    if (header->body_len > 0) {
      if (ReadFull(conn->fd, body.data(), body.size()) !=
          static_cast<ssize_t>(body.size())) {
        break;  // truncated mid-body: peer is gone
      }
      metrics_.bytes_read_total->Increment(body.size());
    }

    if (!HandleFrame(conn, *header,
                     std::span<const uint8_t>(body.data(), body.size()))) {
      break;
    }
  }
  MutexLock lock(&conn->mu);
  conn->reader_done = true;
  conn->cv.NotifyAll();
}

bool Server::HandleFrame(Connection* conn, const FrameHeader& header,
                         std::span<const uint8_t> body) {
  const char* label = RequestTypeLabel(header.type);
  const auto start = std::chrono::steady_clock::now();
  metrics_.registry->CounterWithLabels(metrics_.requests_total, {label})
      ->Increment();

  // Every body leads with the request id; echo it in body-level error
  // frames whenever that prefix survived, so pipelined clients can
  // correlate the failure (0 only when even the id is missing).
  uint64_t body_request_id = 0;
  if (body.size() >= sizeof(uint64_t)) {
    std::memcpy(&body_request_id, body.data(), sizeof(uint64_t));
  }

  switch (header.type) {
    case FrameType::kQuery:
    case FrameType::kKnn:
    case FrameType::kDtw: {
      auto decoded = DecodeQueryFrame(body);
      if (!decoded.ok()) {
        metrics_.frame_errors_total->Increment();
        EnqueueError(conn, body_request_id, WireError::kBadFrame,
                     decoded.status().message(), label);
        return true;  // framing was intact; the connection survives
      }
      const QueryFrame& q = *decoded;

      SearchRequest request;
      request.k = header.type == FrameType::kKnn ? q.k : 1;
      request.approximate = q.approximate;
      request.dtw = header.type == FrameType::kDtw;
      request.dtw_band = q.dtw_band;

      SubmitOptions submit;
      submit.priority = q.high_priority ? QueryPriority::kHigh
                                        : QueryPriority::kNormal;
      const uint64_t timeout_us =
          q.timeout_us > 0 ? q.timeout_us : options_.default_timeout_us;
      if (timeout_us > 0) {
        submit.timeout = std::chrono::microseconds(timeout_us);
      }

      auto future = service_->TrySubmit(
          SeriesView(q.values.data(), q.values.size()), request, submit);
      if (!future.ok()) {
        EnqueueError(conn, q.request_id,
                     WireErrorFromStatus(future.status()),
                     future.status().message(), label);
        return true;
      }
      Outgoing out;
      out.pending = std::move(future).value();
      out.is_pending = true;
      out.request_id = q.request_id;
      out.type_label = label;
      out.start = start;
      Enqueue(conn, std::move(out));
      return true;
    }

    case FrameType::kAppend: {
      auto decoded = DecodeAppendFrame(body);
      if (!decoded.ok()) {
        metrics_.frame_errors_total->Increment();
        EnqueueError(conn, body_request_id, WireError::kBadFrame,
                     decoded.status().message(), label);
        return true;
      }
      const AppendFrame& a = *decoded;
      if (a.count > 0 && a.series_len != backend_->series_length()) {
        EnqueueError(conn, a.request_id, WireError::kInvalidArgument,
                     "appended series length does not match the "
                     "collection",
                     label);
        return true;
      }
      // Appends run inline on the reader thread: the backend's Append
      // serializes on its append mutex anyway, and back-to-back frames
      // on one connection should apply in order.
      auto report = backend_->Append(a.values.data(), a.count);
      if (!report.ok()) {
        EnqueueError(conn, a.request_id,
                     WireErrorFromStatus(report.status()),
                     report.status().message(), label);
        return true;
      }
      Outgoing out;
      out.frame = EncodeAppendOkFrame(AppendOkFrame{
          a.request_id, report->total_series, backend_->append_epoch()});
      out.request_id = a.request_id;
      out.type_label = label;
      out.start = start;
      Enqueue(conn, std::move(out));
      return true;
    }

    case FrameType::kStats: {
      auto request_id = DecodePlainRequest(body);
      if (!request_id.ok()) {
        metrics_.frame_errors_total->Increment();
        EnqueueError(conn, body_request_id, WireError::kBadFrame,
                     request_id.status().message(), label);
        return true;
      }
      Outgoing out;
      out.frame = EncodeStatsTextFrame(
          StatsTextFrame{*request_id, RenderMetricsText()});
      out.request_id = *request_id;
      out.type_label = label;
      out.start = start;
      Enqueue(conn, std::move(out));
      return true;
    }

    case FrameType::kHealth: {
      auto request_id = DecodePlainRequest(body);
      if (!request_id.ok()) {
        metrics_.frame_errors_total->Increment();
        EnqueueError(conn, body_request_id, WireError::kBadFrame,
                     request_id.status().message(), label);
        return true;
      }
      Outgoing out;
      out.frame = EncodeHealthOkFrame(HealthOkFrame{
          *request_id, backend_->series_count(),
          static_cast<uint32_t>(backend_->series_length()),
          backend_->algorithm_name()});
      out.request_id = *request_id;
      out.type_label = label;
      out.start = start;
      Enqueue(conn, std::move(out));
      return true;
    }

    default:
      metrics_.frame_errors_total->Increment();
      EnqueueError(conn, body_request_id, WireError::kBadFrame,
                   "unknown request type " +
                       std::to_string(static_cast<unsigned>(header.type)),
                   label);
      return true;
  }
}

void Server::Enqueue(Connection* conn, Outgoing outgoing) {
  {
    MutexLock lock(&conn->mu);
    conn->outbox.push_back(std::move(outgoing));
  }
  conn->cv.NotifyOne();
}

void Server::EnqueueError(Connection* conn, uint64_t request_id,
                          WireError code, std::string message,
                          const char* type_label) {
  Outgoing out;
  out.frame = EncodeErrorFrame(
      ErrorFrame{request_id, code, std::move(message)});
  out.request_id = request_id;
  out.type_label = type_label;
  out.start = std::chrono::steady_clock::now();
  Enqueue(conn, std::move(out));
}

void Server::WriterLoop(Connection* conn) {
  for (;;) {
    Outgoing out;
    {
      MutexLock lock(&conn->mu);
      while (conn->outbox.empty() && !conn->reader_done) {
        conn->cv.Wait(conn->mu);
      }
      if (conn->outbox.empty()) break;  // reader done and outbox drained
      out = std::move(conn->outbox.front());
      conn->outbox.pop_front();
    }

    const char* code_label = "ok";
    if (out.is_pending) {
      // FIFO resolution keeps responses in request order per
      // connection; the query service may complete them in any order.
      Result<SearchResponse> response = out.pending.get();
      if (response.ok()) {
        out.frame = EncodeResultFrame(
            ResultFrame{out.request_id, std::move(response->neighbors)});
      } else {
        out.frame = EncodeErrorFrame(
            ErrorFrame{out.request_id,
                       WireErrorFromStatus(response.status()),
                       response.status().message()});
        code_label = WireErrorName(WireErrorFromStatus(response.status()));
      }
    } else if (!out.frame.empty() &&
               static_cast<FrameType>(out.frame[5]) == FrameType::kError) {
      // Byte 5 of the encoded frame is the header's type field.
      auto decoded = DecodeErrorFrame(std::span<const uint8_t>(
          out.frame.data() + kFrameHeaderSize,
          out.frame.size() - kFrameHeaderSize));
      if (decoded.ok()) code_label = WireErrorName(decoded->code);
    }

    metrics_.registry
        ->CounterWithLabels(metrics_.responses_total, {code_label})
        ->Increment();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      out.start)
            .count();
    metrics_.registry
        ->HistogramWithLabels(metrics_.request_seconds, {out.type_label})
        ->Observe(seconds);

    bool failed;
    {
      MutexLock lock(&conn->mu);
      failed = conn->write_failed;
    }
    if (!failed) {
      if (WriteFull(conn->fd, out.frame.data(), out.frame.size())) {
        metrics_.bytes_written_total->Increment(out.frame.size());
      } else {
        // Keep draining futures (their queries must still complete) but
        // stop writing to the dead socket.
        MutexLock lock(&conn->mu);
        conn->write_failed = true;
      }
    }
  }
  // The reader is done and every response is out (or the write side
  // failed): send FIN now so clients see EOF promptly — the fd itself
  // is reclaimed by ReapFinished or Stop.
  ::shutdown(conn->fd, SHUT_RDWR);
  metrics_.connections_open->Add(-1.0);
  conn->finished.store(true, std::memory_order_release);
}

std::string Server::RenderMetricsText() {
  metrics_.Update(backend_, service_.get());
  return registry_.RenderPrometheusText();
}

}  // namespace parisax
