// parisax_server: serves a collection over the net/protocol.h frame
// protocol. docs/serving.md documents the protocol and operations.
//
// Examples:
//   parisax_server --port 7687 --synthetic 100000 --length 256
//   parisax_server --port 7687 --data vectors.bin --algorithm messi
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <semaphore>
#include <string>

#include "core/engine.h"
#include "io/format.h"
#include "io/generator.h"
#include "net/server.h"
#include "shard/sharded_engine.h"

namespace {

// Released by the signal handler; Main waits on it.
std::binary_semaphore g_shutdown{0};

void HandleSignal(int) { g_shutdown.release(); }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host ADDR            bind address (default 127.0.0.1)\n"
      "  --port N               TCP port; 0 picks one (default 7687)\n"
      "  --data PATH            dataset file (io/format.h layout), mmapped\n"
      "  --synthetic N          serve N generated random-walk series\n"
      "                         (default 10000 when --data is absent)\n"
      "  --length N             series length for --synthetic (default 256)\n"
      "  --seed N               generator seed (default 42)\n"
      "  --algorithm NAME       messi|paris|paris+|ads+|brute|ucr|ucr-p\n"
      "                         (default messi)\n"
      "  --build-threads N      index construction threads (default 4;\n"
      "                         per shard when --shards > 1)\n"
      "  --shards N             partition the collection over N engine\n"
      "                         shards behind one query router "
      "(default 1)\n"
      "  --serve-threads N      query service workers (default 4)\n"
      "  --max-inflight N       admission cap, 0 = unbounded (default 128)\n"
      "  --default-timeout-us N deadline for frames without one (default 0)\n"
      "  --max-connections N    concurrent connection cap (default 64)\n",
      argv0);
}

int Main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7687;
  std::string data_path;
  size_t synthetic = 0;
  size_t length = 256;
  uint64_t seed = 42;
  std::string algorithm = "messi";
  int build_threads = 4;
  size_t num_shards = 1;
  parisax::ServerOptions sopts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--data") {
      data_path = next();
    } else if (arg == "--synthetic") {
      synthetic = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--length") {
      length = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--algorithm") {
      algorithm = next();
    } else if (arg == "--build-threads") {
      build_threads = std::atoi(next());
    } else if (arg == "--shards") {
      num_shards = std::strtoull(next(), nullptr, 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      num_shards = std::strtoull(arg.c_str() + strlen("--shards="), nullptr,
                                 10);
    } else if (arg == "--serve-threads") {
      sopts.serve_threads = std::atoi(next());
    } else if (arg == "--max-inflight") {
      sopts.max_inflight = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--default-timeout-us") {
      sopts.default_timeout_us = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-connections") {
      sopts.max_connections = std::atoi(next());
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  sopts.host = host;
  sopts.port = static_cast<uint16_t>(port);

  auto parsed = parisax::ParseAlgorithm(algorithm);
  if (!parsed.ok()) {
    std::fprintf(stderr, "--algorithm: %s\n",
                 parsed.status().message().c_str());
    return 2;
  }
  parisax::EngineOptions eopts;
  eopts.algorithm = *parsed;
  eopts.num_threads = build_threads;
  if (num_shards == 0) {
    std::fprintf(stderr, "--shards must be positive\n");
    return 2;
  }

  // The server only speaks SearchBackend, so a single engine and a
  // sharded one plug in identically; the wire protocol cannot tell.
  std::unique_ptr<parisax::Engine> engine;
  std::unique_ptr<parisax::ShardedEngine> sharded;
  parisax::SearchBackend* backend = nullptr;
  if (num_shards > 1) {
    parisax::Dataset dataset;
    if (!data_path.empty()) {
      std::fprintf(stderr, "loading %s into memory for sharding...\n",
                   data_path.c_str());
      auto loaded = parisax::LoadDataset(data_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "dataset load failed: %s\n",
                     loaded.status().message().c_str());
        return 1;
      }
      dataset = std::move(loaded).value();
    } else {
      if (synthetic == 0) synthetic = 10000;
      parisax::GeneratorOptions gopts;
      gopts.count = synthetic;
      gopts.length = length;
      gopts.seed = seed;
      dataset = parisax::GenerateDataset(gopts);
    }
    std::fprintf(stderr,
                 "building %s index over %zu series, %zu shards...\n",
                 parisax::AlgorithmName(eopts.algorithm), dataset.count(),
                 num_shards);
    auto built =
        parisax::ShardedEngine::Build(std::move(dataset), num_shards, eopts);
    if (!built.ok()) {
      std::fprintf(stderr, "engine build failed: %s\n",
                   built.status().message().c_str());
      return 1;
    }
    sharded = std::move(built).value();
    backend = sharded.get();
  } else {
    parisax::Result<std::unique_ptr<parisax::Engine>> built =
        parisax::Status::InvalidArgument("unbuilt");
    if (!data_path.empty()) {
      std::fprintf(stderr, "building %s index over %s (mmap)...\n",
                   parisax::AlgorithmName(eopts.algorithm),
                   data_path.c_str());
      built = parisax::Engine::Build(parisax::SourceSpec::Mmap(data_path),
                                     eopts);
    } else {
      if (synthetic == 0) synthetic = 10000;
      std::fprintf(stderr,
                   "building %s index over %zu synthetic series of length "
                   "%zu...\n",
                   parisax::AlgorithmName(eopts.algorithm), synthetic,
                   length);
      parisax::GeneratorOptions gopts;
      gopts.count = synthetic;
      gopts.length = length;
      gopts.seed = seed;
      built = parisax::Engine::Build(
          parisax::SourceSpec::InMemory(parisax::GenerateDataset(gopts)),
          eopts);
    }
    if (!built.ok()) {
      std::fprintf(stderr, "engine build failed: %s\n",
                   built.status().message().c_str());
      return 1;
    }
    engine = std::move(built).value();
    backend = engine.get();
  }

  auto server = parisax::Server::Start(backend, sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().message().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "parisax_server listening on %s:%u (%zu series x %zu, "
               "algorithm %s, %zu shard%s, max_inflight %zu)\n",
               sopts.host.c_str(), (*server)->port(), backend->series_count(),
               backend->series_length(), backend->algorithm_name(),
               num_shards, num_shards == 1 ? "" : "s", sopts.max_inflight);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  g_shutdown.acquire();
  std::fprintf(stderr, "shutting down...\n");
  (*server)->Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
