// The parisax wire protocol: length-prefixed binary frames over TCP.
//
// Every frame is a fixed 12-byte little-endian header followed by
// `body_len` body bytes:
//
//   offset  size  field
//   0       4     magic     "PSAX" (0x50 0x53 0x41 0x58 on the wire)
//   4       1     version   kProtocolVersion (currently 1)
//   5       1     type      FrameType
//   6       2     reserved  must be 0
//   8       4     body_len  body bytes to follow (<= kMaxBodyLen)
//
// Every body begins with a u64 request id the response echoes back, so
// clients may pipeline; the server answers each connection's requests
// in arrival order. Multi-byte integers are little-endian; series
// values are IEEE-754 binary32. Decoders are bounds-checked and return
// typed Status errors (never crash) on truncated, oversized or
// otherwise malformed input; tests/net_test.cpp fuzzes them.
//
// Versioning: a header with an unknown version is rejected with
// kBadVersion before the body is interpreted. Adding request or
// response types to an existing version is allowed (old peers reject
// unknown types with kBadFrame); changing the layout of an existing
// body requires a version bump. docs/serving.md is the normative spec
// and must be updated with any change here.
#ifndef PARISAX_NET_PROTOCOL_H_
#define PARISAX_NET_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace parisax {

/// "PSAX" as on-the-wire bytes (little-endian u32).
inline constexpr uint32_t kFrameMagic = 0x58415350u;
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 12;
/// Largest accepted body; bigger announcements are rejected with
/// kFrameTooLarge before any allocation (64 MiB covers ~16M-point
/// queries and multi-thousand-series appends).
inline constexpr uint32_t kMaxBodyLen = 64u * 1024u * 1024u;

/// Frame types. Requests have the high bit clear, responses set.
enum class FrameType : uint8_t {
  // Requests.
  kQuery = 0x01,   ///< exact 1-NN (or approximate with the flag)
  kKnn = 0x02,     ///< exact k-NN
  kDtw = 0x03,     ///< exact 1-NN under banded DTW
  kAppend = 0x04,  ///< incremental ingest
  kStats = 0x05,   ///< Prometheus text metrics
  kHealth = 0x06,  ///< liveness + collection shape
  // Responses.
  kResult = 0x81,     ///< neighbors, for kQuery/kKnn/kDtw
  kAppendOk = 0x82,   ///< append accepted
  kStatsText = 0x83,  ///< metrics payload
  kHealthOk = 0x84,   ///< health payload
  kError = 0xFF,      ///< typed failure, for any request
};

/// Wire error codes carried by kError frames: the StatusCode names plus
/// protocol-level framing errors. Stable on the wire — append only.
enum class WireError : uint16_t {
  kUnknown = 0,
  kInvalidArgument = 1,
  kIoError = 2,
  kCorruption = 3,
  kNotFound = 4,
  kNotSupported = 5,
  kInternal = 6,
  kDeadlineExceeded = 7,
  kOverloaded = 8,
  /// Malformed frame: bad magic, unknown type, or a body that does not
  /// match its type's layout.
  kBadFrame = 9,
  /// body_len exceeds kMaxBodyLen.
  kFrameTooLarge = 10,
  /// Unknown protocol version.
  kBadVersion = 11,
};

/// Maps an engine/service failure to its wire code.
WireError WireErrorFromStatus(const Status& status);
/// Short lowercase name ("overloaded", "bad_frame", ...).
const char* WireErrorName(WireError error);

struct FrameHeader {
  uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kError;
  uint32_t body_len = 0;
};

/// Validates magic, version and body_len bound. `buf` must hold
/// kFrameHeaderSize bytes. The Status message distinguishes bad magic /
/// bad version / oversized bodies (the server maps them to WireError
/// codes and, for header-level garbage, closes the connection — there
/// is no way to resynchronize a corrupt stream).
Result<FrameHeader> DecodeFrameHeader(const uint8_t* buf);
void EncodeFrameHeader(FrameType type, uint32_t body_len, uint8_t* out);

/// kQuery / kKnn / kDtw body:
///   u64 request_id, u32 k, u32 dtw_band, u8 flags (bit0: approximate,
///   bit1: high priority), u8 reserved, u16 reserved, u64 timeout_us
///   (0: none), u32 series_len, f32 values[series_len].
struct QueryFrame {
  uint64_t request_id = 0;
  uint32_t k = 1;
  uint32_t dtw_band = 12;
  bool approximate = false;
  bool high_priority = false;
  uint64_t timeout_us = 0;
  std::vector<Value> values;
};

std::vector<uint8_t> EncodeQueryFrame(FrameType type,
                                      const QueryFrame& frame);
Result<QueryFrame> DecodeQueryFrame(std::span<const uint8_t> body);

/// kAppend body:
///   u64 request_id, u32 count, u32 series_len,
///   f32 values[count * series_len].
struct AppendFrame {
  uint64_t request_id = 0;
  uint32_t count = 0;
  uint32_t series_len = 0;
  std::vector<Value> values;  // count * series_len, row-major
};

std::vector<uint8_t> EncodeAppendFrame(const AppendFrame& frame);
Result<AppendFrame> DecodeAppendFrame(std::span<const uint8_t> body);

/// kStats / kHealth body: u64 request_id.
std::vector<uint8_t> EncodePlainRequest(FrameType type,
                                        uint64_t request_id);
Result<uint64_t> DecodePlainRequest(std::span<const uint8_t> body);

/// kResult body:
///   u64 request_id, u32 neighbor_count, u32 reserved,
///   { u64 id, f32 distance_sq } per neighbor.
struct ResultFrame {
  uint64_t request_id = 0;
  std::vector<Neighbor> neighbors;
};

std::vector<uint8_t> EncodeResultFrame(const ResultFrame& frame);
Result<ResultFrame> DecodeResultFrame(std::span<const uint8_t> body);

/// kAppendOk body: u64 request_id, u64 total_series, u64 append_epoch.
struct AppendOkFrame {
  uint64_t request_id = 0;
  uint64_t total_series = 0;
  uint64_t append_epoch = 0;
};

std::vector<uint8_t> EncodeAppendOkFrame(const AppendOkFrame& frame);
Result<AppendOkFrame> DecodeAppendOkFrame(std::span<const uint8_t> body);

/// kStatsText body: u64 request_id, UTF-8 Prometheus text to the end.
struct StatsTextFrame {
  uint64_t request_id = 0;
  std::string text;
};

std::vector<uint8_t> EncodeStatsTextFrame(const StatsTextFrame& frame);
Result<StatsTextFrame> DecodeStatsTextFrame(std::span<const uint8_t> body);

/// kHealthOk body:
///   u64 request_id, u64 series_count, u32 series_length,
///   u32 algorithm_len, bytes algorithm name.
struct HealthOkFrame {
  uint64_t request_id = 0;
  uint64_t series_count = 0;
  uint32_t series_length = 0;
  std::string algorithm;
};

std::vector<uint8_t> EncodeHealthOkFrame(const HealthOkFrame& frame);
Result<HealthOkFrame> DecodeHealthOkFrame(std::span<const uint8_t> body);

/// kError body:
///   u64 request_id (0 when the request id could not be decoded),
///   u16 code, u16 reserved, u32 message_len, bytes message.
struct ErrorFrame {
  uint64_t request_id = 0;
  WireError code = WireError::kUnknown;
  std::string message;
};

std::vector<uint8_t> EncodeErrorFrame(const ErrorFrame& frame);
Result<ErrorFrame> DecodeErrorFrame(std::span<const uint8_t> body);

}  // namespace parisax

#endif  // PARISAX_NET_PROTOCOL_H_
