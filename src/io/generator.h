// Synthetic data series generators.
//
// The paper evaluates on three collections:
//   * Synthetic — random walks (the standard benchmark for this line of
//     work; 100M series x 256 points in the paper),
//   * SALD      — EEG recordings (200M x 128),
//   * Seismic   — seismic activity records (100M x 256).
// The two real datasets are not redistributable, so this module provides
// synthetic stand-ins whose *statistical character* matches what drives
// the paper's results: random walks have near-independent PAA segments
// (best pruning), EEG-like band-limited oscillations make series resemble
// one another (worse pruning), and burst-dominated seismic-like records
// concentrate energy in a few segments (worst pruning). See DESIGN.md §1.
//
// Generation is deterministic per (seed, series index) and therefore
// identical whether produced serially or in parallel, and independent of
// generation order.
#ifndef PARISAX_IO_GENERATOR_H_
#define PARISAX_IO_GENERATOR_H_

#include <cstdint>
#include <string>

#include "io/dataset.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

/// Which synthetic collection to generate.
enum class DatasetKind {
  kRandomWalk,    ///< "Synthetic" in the paper: cumulative N(0,1) steps.
  kSaldEeg,       ///< SALD stand-in: band-limited sinusoid mixture + noise.
  kSeismicBurst,  ///< Seismic stand-in: quiet background + decaying bursts.
};

/// Short lowercase name ("randomwalk", "sald", "seismic").
const char* DatasetKindName(DatasetKind kind);

/// Parses a name produced by DatasetKindName.
Result<DatasetKind> ParseDatasetKind(const std::string& name);

/// Series length used for this collection in the paper (256 or 128).
size_t DefaultSeriesLength(DatasetKind kind);

/// Parameters for dataset generation.
struct GeneratorOptions {
  DatasetKind kind = DatasetKind::kRandomWalk;
  size_t count = 1000;
  size_t length = 256;
  uint64_t seed = 42;
  /// Z-normalize every generated series (required for iSAX indexing).
  bool znormalize = true;
};

/// Writes series number `index` of the collection identified by
/// (kind, seed) into `out`. Deterministic and order-independent.
void GenerateSeriesInto(DatasetKind kind, uint64_t seed, uint64_t index,
                        MutableSeriesView out, bool znormalize = true);

/// Generates a whole in-memory dataset; uses `pool` for parallel
/// generation when provided.
Dataset GenerateDataset(const GeneratorOptions& options,
                        ThreadPool* pool = nullptr);

/// Generates a query workload for a dataset produced with `data_seed`:
/// `count` fresh series drawn from the same distribution but a disjoint
/// seed stream. Matches the paper's methodology (queries follow the data
/// distribution but are not dataset members).
Dataset GenerateQueries(DatasetKind kind, size_t count, size_t length,
                        uint64_t data_seed);

/// Generates `count` queries as noise-perturbed copies of random members
/// of the dataset identified by (kind, data_seed, dataset_count):
/// query = znorm(member + noise_stddev * N(0,1)). This models the
/// "find series similar to this one" exploration workload over real
/// collections, where queries have close neighbors (unlike fresh draws
/// from a high-entropy synthetic distribution).
Dataset GeneratePerturbedQueries(DatasetKind kind, size_t count,
                                 size_t length, uint64_t data_seed,
                                 size_t dataset_count,
                                 double noise_stddev = 0.25);

}  // namespace parisax

#endif  // PARISAX_IO_GENERATOR_H_
