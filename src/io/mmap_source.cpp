#include "io/mmap_source.h"

#include <cstring>

namespace parisax {

Result<std::unique_ptr<MmapSource>> MmapSource::Open(
    const std::string& path) {
  // ReadDatasetInfo validates magic, header fields and the exact file
  // size, so the mapping below is known to cover every series.
  DatasetFileInfo info;
  PARISAX_ASSIGN_OR_RETURN(info, ReadDatasetInfo(path));
  std::unique_ptr<MmapFile> file;
  PARISAX_ASSIGN_OR_RETURN(file, MmapFile::Open(path));
  if (file->size() != info.FileBytes()) {
    return Status::Corruption("dataset file changed size during open: " +
                              path);
  }
  return std::unique_ptr<MmapSource>(
      new MmapSource(std::move(file), info));
}

Status MmapSource::GetSeries(SeriesId id, Value* out) const {
  if (id >= info_.count) {
    return Status::InvalidArgument("series id out of range");
  }
  std::memcpy(out, values_ + static_cast<size_t>(id) * info_.length,
              static_cast<size_t>(info_.length) * sizeof(Value));
  return Status::OK();
}

}  // namespace parisax
