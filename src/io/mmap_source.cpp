#include "io/mmap_source.h"

#include <cstring>

namespace parisax {

Result<std::unique_ptr<MmapSource>> MmapSource::Open(
    const std::string& path) {
  // ReadDatasetInfo validates magic, header fields and the exact file
  // size, so the mapping below is known to cover every series.
  DatasetFileInfo info;
  PARISAX_ASSIGN_OR_RETURN(info, ReadDatasetInfo(path));
  std::unique_ptr<MmapFile> file;
  PARISAX_ASSIGN_OR_RETURN(file, MmapFile::Open(path));
  if (file->size() != info.FileBytes()) {
    return Status::Corruption("dataset file changed size during open: " +
                              path);
  }
  return std::unique_ptr<MmapSource>(
      new MmapSource(std::move(file), info));
}

Status MmapSource::GetSeries(SeriesId id, Value* out) const {
  if (id >= info_.count) {
    return Status::InvalidArgument("series id out of range");
  }
  std::memcpy(out, values_ + static_cast<size_t>(id) * info_.length,
              static_cast<size_t>(info_.length) * sizeof(Value));
  return Status::OK();
}

Status MmapSource::AppendSeries(const Value* values, size_t count) {
  // Append-reopen: extend the file on disk, then map the longer file
  // and swap the mapping in. The old mapping is *retired* (kept mapped
  // for the source's lifetime), not unmapped: readers holding views
  // into it stay valid — the appended bytes and the patched header lie
  // outside the data region those views cover — so the engine's
  // gate-free append path never invalidates a pinned raw view. A
  // failed append leaves the source untouched.
  const std::string path = file_->path();
  PARISAX_RETURN_IF_ERROR(AppendToDatasetFile(path, values, count, info_));
  std::unique_ptr<MmapFile> grown;
  PARISAX_ASSIGN_OR_RETURN(grown, MmapFile::Open(path));
  DatasetFileInfo info = info_;
  info.count += count;
  if (grown->size() != info.FileBytes()) {
    return Status::Corruption(
        "dataset file changed size during append: " + path);
  }
  retired_.push_back(std::move(file_));
  file_ = std::move(grown);
  info_ = info;
  values_ =
      reinterpret_cast<const Value*>(file_->data() + kDatasetHeaderBytes);
  return Status::OK();
}

}  // namespace parisax
