#include "io/format.h"

#include <unistd.h>

#include <cstring>
#include <memory>

namespace parisax {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'A', 'X', 'D', 'S', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteHeader(std::FILE* f, uint64_t count, uint32_t length,
                   uint32_t flags) {
  char header[kDatasetHeaderBytes];
  std::memcpy(header, kMagic, 8);
  std::memcpy(header + 8, &count, 8);
  std::memcpy(header + 16, &length, 4);
  std::memcpy(header + 20, &flags, 4);
  if (std::fwrite(header, 1, sizeof(header), f) != sizeof(header)) {
    return Status::IOError("short write of dataset header");
  }
  return Status::OK();
}

}  // namespace

Status WriteDataset(const Dataset& dataset, const std::string& path,
                    uint32_t flags) {
  DatasetFileWriter writer;
  PARISAX_RETURN_IF_ERROR(writer.Open(path, dataset.count(),
                                      static_cast<uint32_t>(dataset.length()),
                                      flags));
  for (SeriesId i = 0; i < dataset.count(); ++i) {
    PARISAX_RETURN_IF_ERROR(writer.Append(dataset.series(i)));
  }
  return writer.Close();
}

Status AppendToDatasetFile(const std::string& path, const Value* values,
                           size_t count, const DatasetFileInfo& info) {
  FilePtr f(std::fopen(path.c_str(), "r+b"));
  if (f == nullptr) {
    return Status::IOError("cannot open dataset file for append: " + path);
  }
  // fseeko: FileBytes() can exceed LONG_MAX on ILP32/LLP64 platforms
  // (a > 2 GiB collection), where a truncated fseek(long) offset would
  // silently overwrite existing series.
  if (fseeko(f.get(), static_cast<off_t>(info.FileBytes()), SEEK_SET) !=
      0) {
    return Status::IOError("seek failed: " + path);
  }
  const size_t new_values = count * info.length;
  if (std::fwrite(values, sizeof(Value), new_values, f.get()) !=
      new_values) {
    return Status::IOError("short write appending series to " + path);
  }
  // Values reach *stable storage* before the count grows: flush the
  // stdio buffer, fsync the appended bytes, then patch the header. A
  // process crash OR power loss mid-append therefore leaves a valid
  // file with the old count — the header never advertises series whose
  // values the kernel might still have reordered behind it.
  if (std::fflush(f.get()) != 0) {
    return Status::IOError("flush failed appending to " + path);
  }
  if (::fsync(fileno(f.get())) != 0) {
    return Status::IOError("fsync failed appending to " + path);
  }
  const uint64_t new_count = info.count + count;
  if (std::fseek(f.get(), 8, SEEK_SET) != 0) {
    return Status::IOError("seek failed: " + path);
  }
  if (std::fwrite(&new_count, sizeof(new_count), 1, f.get()) != 1) {
    return Status::IOError("short write of dataset count: " + path);
  }
  std::FILE* raw = f.release();
  if (std::fclose(raw) != 0) {
    return Status::IOError("close failed appending to " + path);
  }
  return Status::OK();
}

Result<DatasetFileInfo> ReadDatasetInfo(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open dataset file: " + path);
  }
  char header[kDatasetHeaderBytes];
  if (std::fread(header, 1, sizeof(header), f.get()) != sizeof(header)) {
    return Status::Corruption("dataset file too short for header: " + path);
  }
  if (std::memcmp(header, kMagic, 8) != 0) {
    return Status::Corruption("bad magic in dataset file: " + path);
  }
  DatasetFileInfo info;
  std::memcpy(&info.count, header + 8, 8);
  std::memcpy(&info.length, header + 16, 4);
  std::memcpy(&info.flags, header + 20, 4);
  if (info.length == 0) {
    return Status::Corruption("dataset declares zero-length series: " + path);
  }
  // Validate the payload size.
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::IOError("seek failed: " + path);
  }
  const auto size = static_cast<uint64_t>(std::ftell(f.get()));
  if (size != info.FileBytes()) {
    return Status::Corruption("dataset file size mismatch: " + path);
  }
  return info;
}

Result<Dataset> LoadDataset(const std::string& path) {
  DatasetFileInfo info;
  PARISAX_ASSIGN_OR_RETURN(info, ReadDatasetInfo(path));
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open dataset file: " + path);
  }
  if (std::fseek(f.get(), static_cast<long>(kDatasetHeaderBytes), SEEK_SET) !=
      0) {
    return Status::IOError("seek failed: " + path);
  }
  Dataset dataset(info.count, info.length);
  const size_t values = dataset.TotalValues();
  if (std::fread(dataset.mutable_raw(), sizeof(float), values, f.get()) !=
      values) {
    return Status::Corruption("short read of dataset payload: " + path);
  }
  return dataset;
}

DatasetFileWriter::~DatasetFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status DatasetFileWriter::Open(const std::string& path, uint64_t count,
                               uint32_t length, uint32_t flags) {
  if (file_ != nullptr) {
    return Status::InvalidArgument("writer already open");
  }
  if (length == 0) {
    return Status::InvalidArgument("series length must be positive");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot create dataset file: " + path);
  }
  path_ = path;
  declared_count_ = count;
  length_ = length;
  written_ = 0;
  return WriteHeader(file_, count, length, flags);
}

Status DatasetFileWriter::Append(SeriesView series) {
  if (file_ == nullptr) return Status::InvalidArgument("writer not open");
  if (series.size() != length_) {
    return Status::InvalidArgument("series length mismatch on append");
  }
  if (written_ == declared_count_) {
    return Status::InvalidArgument("appending beyond declared series count");
  }
  if (std::fwrite(series.data(), sizeof(float), series.size(), file_) !=
      series.size()) {
    return Status::IOError("short write appending series to " + path_);
  }
  ++written_;
  return Status::OK();
}

Status DatasetFileWriter::Close() {
  if (file_ == nullptr) return Status::InvalidArgument("writer not open");
  const bool complete = written_ == declared_count_;
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (!complete) {
    return Status::InvalidArgument("close before all series were appended");
  }
  if (rc != 0) return Status::IOError("close failed: " + path_);
  return Status::OK();
}

}  // namespace parisax
