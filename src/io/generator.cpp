#include "io/generator.h"

#include <cmath>
#include <cstring>

#include "dist/znorm.h"
#include "util/rng.h"

namespace parisax {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

void FillRandomWalk(Rng& rng, MutableSeriesView out) {
  double level = 0.0;
  for (float& v : out) {
    level += rng.NextGaussian();
    v = static_cast<float>(level);
  }
}

// EEG-like: a mixture of 4 band-limited oscillations (theta..beta bands,
// mapped onto the series as 1..24 cycles) plus correlated noise. Smooth,
// oscillatory series whose PAA segments are strongly correlated, which
// lowers iSAX pruning power relative to random walks -- the property the
// paper's SALD results depend on.
void FillSaldEeg(Rng& rng, MutableSeriesView out) {
  const size_t n = out.size();
  double freq[4], amp[4], phase[4];
  for (int k = 0; k < 4; ++k) {
    freq[k] = rng.NextDouble(1.0, 24.0);
    amp[k] = rng.NextDouble(0.3, 1.0) / (1.0 + 0.15 * freq[k]);
    phase[k] = rng.NextDouble(0.0, kTwoPi);
  }
  double noise = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    double v = 0.0;
    for (int k = 0; k < 4; ++k) {
      v += amp[k] * std::sin(kTwoPi * freq[k] * t + phase[k]);
    }
    // AR(1) noise: smooth, pink-ish.
    noise = 0.9 * noise + 0.1 * rng.NextGaussian();
    out[i] = static_cast<float>(v + 0.6 * noise);
  }
}

// Seismic-like: low-amplitude background noise with a small number of
// high-amplitude exponentially decaying oscillatory bursts (events). After
// z-normalization most of each series is near-constant, so energy (and
// thus PAA variation) concentrates in a few segments: summaries of
// different series look alike and pruning degrades -- matching the paper's
// Seismic results.
void FillSeismicBurst(Rng& rng, MutableSeriesView out) {
  const size_t n = out.size();
  // Continuous microseism background (smoothed noise) ...
  double noise = 0.0;
  for (float& v : out) {
    noise = 0.8 * noise + 0.2 * rng.NextGaussian();
    v = static_cast<float>(0.35 * noise);
  }
  // ... plus a small number of high-amplitude decaying-oscillation
  // events, which dominate the z-normalized shape.
  const int events = 1 + static_cast<int>(rng.NextBelow(3));  // 1..3 events
  for (int e = 0; e < events; ++e) {
    const size_t t0 = rng.NextBelow(n);
    const double amplitude = rng.NextDouble(1.0, 4.0);
    const double decay = rng.NextDouble(0.03, 0.12);
    const double freq = rng.NextDouble(8.0, 40.0);
    const double phase = rng.NextDouble(0.0, kTwoPi);
    for (size_t i = t0; i < n; ++i) {
      const double dt = static_cast<double>(i - t0);
      const double envelope = amplitude * std::exp(-decay * dt);
      if (envelope < 1e-3) break;
      out[i] += static_cast<float>(
          envelope * std::sin(kTwoPi * freq * dt / static_cast<double>(n) +
                              phase));
    }
  }
}

}  // namespace

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kRandomWalk:
      return "randomwalk";
    case DatasetKind::kSaldEeg:
      return "sald";
    case DatasetKind::kSeismicBurst:
      return "seismic";
  }
  return "unknown";
}

Result<DatasetKind> ParseDatasetKind(const std::string& name) {
  if (name == "randomwalk" || name == "synthetic") {
    return DatasetKind::kRandomWalk;
  }
  if (name == "sald") return DatasetKind::kSaldEeg;
  if (name == "seismic") return DatasetKind::kSeismicBurst;
  return Status::InvalidArgument("unknown dataset kind: " + name);
}

size_t DefaultSeriesLength(DatasetKind kind) {
  return kind == DatasetKind::kSaldEeg ? 128 : 256;
}

void GenerateSeriesInto(DatasetKind kind, uint64_t seed, uint64_t index,
                        MutableSeriesView out, bool znormalize) {
  Rng rng(MixSeed(seed, index));
  switch (kind) {
    case DatasetKind::kRandomWalk:
      FillRandomWalk(rng, out);
      break;
    case DatasetKind::kSaldEeg:
      FillSaldEeg(rng, out);
      break;
    case DatasetKind::kSeismicBurst:
      FillSeismicBurst(rng, out);
      break;
  }
  if (znormalize) ZNormalize(out);
}

Dataset GenerateDataset(const GeneratorOptions& options, ThreadPool* pool) {
  Dataset dataset(options.count, options.length);
  const auto generate_range = [&](size_t begin, size_t end, int) {
    for (size_t i = begin; i < end; ++i) {
      GenerateSeriesInto(options.kind, options.seed, i,
                         dataset.mutable_series(i), options.znormalize);
    }
  };
  if (pool != nullptr && options.count >= 256) {
    pool->ParallelFor(options.count, 128, generate_range);
  } else {
    generate_range(0, options.count, 0);
  }
  return dataset;
}

Dataset GenerateQueries(DatasetKind kind, size_t count, size_t length,
                        uint64_t data_seed) {
  GeneratorOptions options;
  options.kind = kind;
  options.count = count;
  options.length = length;
  // Disjoint seed stream from the dataset itself.
  options.seed = data_seed ^ 0x5157455259ULL;  // "QUERY"
  return GenerateDataset(options);
}

Dataset GeneratePerturbedQueries(DatasetKind kind, size_t count,
                                 size_t length, uint64_t data_seed,
                                 size_t dataset_count, double noise_stddev) {
  Dataset queries(count, length);
  Rng picker(data_seed ^ 0x504552545142ULL);  // "PERTQB"
  for (SeriesId q = 0; q < count; ++q) {
    const uint64_t member = picker.NextBelow(dataset_count);
    MutableSeriesView out = queries.mutable_series(q);
    GenerateSeriesInto(kind, data_seed, member, out, /*znormalize=*/true);
    Rng noise(MixSeed(data_seed ^ 0x4e4f495345ULL, q));  // "NOISE"
    for (float& v : out) {
      v += static_cast<float>(noise_stddev * noise.NextGaussian());
    }
    ZNormalize(out);
  }
  return queries;
}

}  // namespace parisax
