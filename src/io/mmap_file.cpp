#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace parisax {

Result<std::unique_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("cannot open for mmap: " + path);
    }
    return Status::IOError("cannot open for mmap: " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status =
        Status::IOError("fstat failed: " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  const uint8_t* data = nullptr;
  if (size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const Status status = Status::IOError("mmap failed: " + path + ": " +
                                            std::strerror(errno));
      ::close(fd);
      return status;
    }
    data = static_cast<const uint8_t*>(mapped);
  }
  // The mapping keeps the file alive; the descriptor is no longer needed.
  ::close(fd);
  return std::unique_ptr<MmapFile>(new MmapFile(data, size, path));
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

}  // namespace parisax
