// Memory-mapped raw series source.
//
// Maps a dataset file (io/format.h layout) and serves series as zero-copy
// views into the mapping. This generalizes MESSI's "raw data resides in
// memory" assumption to larger-than-RAM collections: the kernel pages
// series in on demand and evicts cold ones, while query code sees plain
// contiguous floats. Restored snapshots (src/persist/) answer queries
// against an MmapSource instead of requiring a full in-RAM copy of the
// collection.
#ifndef PARISAX_IO_MMAP_SOURCE_H_
#define PARISAX_IO_MMAP_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "index/raw_source.h"
#include "io/format.h"
#include "io/mmap_file.h"

namespace parisax {

class MmapSource : public RawSeriesSource {
 public:
  /// Validates the dataset header, then maps the whole file.
  static Result<std::unique_ptr<MmapSource>> Open(const std::string& path);

  size_t count() const override { return info_.count; }
  size_t length() const override { return info_.length; }

  Status GetSeries(SeriesId id, Value* out) const override;

  SeriesView TryView(SeriesId id) const override {
    if (id >= info_.count) return SeriesView();
    return SeriesView(values_ + static_cast<size_t>(id) * info_.length,
                      info_.length);
  }

  const Value* ContiguousData() const override { return values_; }

  /// Append-reopen: the new series are written to the dataset file, the
  /// header count is patched, and the file is re-mapped.
  bool appendable() const override { return true; }
  Status AppendSeries(const Value* values, size_t count) override;

  const DatasetFileInfo& info() const { return info_; }
  const std::string& path() const { return file_->path(); }

 private:
  MmapSource(std::unique_ptr<MmapFile> file, DatasetFileInfo info)
      : file_(std::move(file)),
        info_(info),
        values_(reinterpret_cast<const Value*>(file_->data() +
                                               kDatasetHeaderBytes)) {}

  std::unique_ptr<MmapFile> file_;
  /// Superseded mappings, pinned for readers of pre-append views.
  std::vector<std::unique_ptr<MmapFile>> retired_;
  DatasetFileInfo info_;
  const Value* values_;
};

}  // namespace parisax

#endif  // PARISAX_IO_MMAP_SOURCE_H_
