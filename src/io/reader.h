// Batched sequential reading of a dataset file through a SimulatedDisk.
//
// This is the I/O path of ParIS's Stage 1 (the Coordinator worker filling
// the raw data buffer) and of the on-disk UCR Suite scan.
#ifndef PARISAX_IO_READER_H_
#define PARISAX_IO_READER_H_

#include <memory>
#include <string>

#include "io/dataset.h"
#include "io/format.h"
#include "io/sim_disk.h"
#include "util/aligned.h"
#include "util/status.h"

namespace parisax {

/// One batch of consecutive series read from disk. Views into the
/// reader-owned buffer remain valid until the next NextBatch call.
struct SeriesBatch {
  /// Id of the first series in the batch.
  SeriesId first_id = 0;
  /// Number of series in the batch (0 at end of file).
  size_t count = 0;
  /// Points per series.
  size_t length = 0;
  /// Row-major values, count*length entries.
  const Value* values = nullptr;

  SeriesView series(size_t i) const {
    return SeriesView(values + i * length, length);
  }
  bool empty() const { return count == 0; }
};

/// Streams a dataset file in fixed-size batches of series.
class BufferedSeriesReader {
 public:
  /// Opens `path` (a dataset file, see io/format.h) behind `profile`.
  /// `batch_series` is the raw-data-buffer capacity in series.
  static Result<std::unique_ptr<BufferedSeriesReader>> Open(
      const std::string& path, DiskProfile profile, size_t batch_series);

  /// Reads the next batch; `batch->count == 0` signals end of file.
  Status NextBatch(SeriesBatch* batch);

  /// Restarts from the first series.
  void Rewind() { next_series_ = 0; }

  const DatasetFileInfo& info() const { return info_; }
  SimulatedDisk* disk() { return disk_.get(); }

 private:
  BufferedSeriesReader(std::unique_ptr<SimulatedDisk> disk,
                       DatasetFileInfo info, size_t batch_series);

  std::unique_ptr<SimulatedDisk> disk_;
  DatasetFileInfo info_;
  size_t batch_series_;
  uint64_t next_series_ = 0;
  AlignedBuffer<Value> buffer_;
};

}  // namespace parisax

#endif  // PARISAX_IO_READER_H_
