#include "io/sim_disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

namespace parisax {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepUntilNanos(int64_t deadline) {
  int64_t now = NowNanos();
  if (deadline <= now) return;
  // sleep_for() overshoots by ~50us; for short waits spin instead so the
  // simulated device time stays accurate for microsecond-scale costs
  // (SSD accesses). Longer waits sleep to release the CPU like real
  // blocking I/O.
  constexpr int64_t kSpinThresholdNs = 50000;  // 50 us
  while (deadline - now > kSpinThresholdNs) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(deadline - now - kSpinThresholdNs));
    now = NowNanos();
  }
  while (NowNanos() < deadline) {
    std::this_thread::yield();
  }
}

}  // namespace

DiskProfile DiskProfile::Hdd() {
  DiskProfile p;
  p.name = "hdd";
  p.seq_read_mbps = 150.0;
  p.seek_latency_us = 8000.0;
  p.channels = 1;
  // Break-even gap: a seek costs as much head time as reading through
  // ~1.2 MB, so smaller forward gaps are read through, not seeked over.
  p.contiguity_window_bytes = 1200 * 1024;
  return p;
}

DiskProfile DiskProfile::Ssd() {
  DiskProfile p;
  p.name = "ssd";
  p.seq_read_mbps = 2000.0;
  p.seek_latency_us = 60.0;
  p.channels = 8;
  // Forward-sequential streams skip the access latency (flash readahead).
  p.contiguity_window_bytes = 256 * 1024;
  return p;
}

DiskProfile DiskProfile::Instant() { return DiskProfile(); }

SimulatedDisk::SimulatedDisk(int fd, uint64_t file_size, DiskProfile profile)
    : fd_(fd), file_size_(file_size), profile_(std::move(profile)) {
  if (profile_.metered()) {
    ns_per_byte_ = 1e9 / (profile_.seq_read_mbps * 1024.0 * 1024.0);
    seek_ns_ = static_cast<int64_t>(profile_.seek_latency_us * 1000.0);
    const int channels = std::max(1, profile_.channels);
    channel_busy_until_ =
        std::make_unique<std::atomic<int64_t>[]>(channels);
    channel_head_ = std::make_unique<std::atomic<uint64_t>[]>(channels);
    for (int i = 0; i < channels; ++i) {
      channel_busy_until_[i] = 0;
      channel_head_[i] = 0;
    }
  }
}

SimulatedDisk::~SimulatedDisk() { ::close(fd_); }

Result<std::unique_ptr<SimulatedDisk>> SimulatedDisk::Open(
    const std::string& path, DiskProfile profile) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open file for simulated disk: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat failed: " + path);
  }
  return std::unique_ptr<SimulatedDisk>(new SimulatedDisk(
      fd, static_cast<uint64_t>(st.st_size), std::move(profile)));
}

int64_t SimulatedDisk::ChargeAndWait(uint64_t offset, size_t size) {
  // Channel selection is thread-affine so each reader thread's stream
  // keeps its own head position (HDD: 1 channel, one global head).
  const int channels = std::max(1, profile_.channels);
  const int ch = static_cast<int>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      static_cast<size_t>(channels));

  // Seek detection: contiguous (or within the contiguity window, where
  // the device simply reads through the gap) forward accesses are free of
  // seek latency; anything else pays it.
  const uint64_t head = channel_head_[ch].exchange(
      offset + size, std::memory_order_relaxed);
  int64_t cost;
  if (offset == head) {
    cost = static_cast<int64_t>(static_cast<double>(size) * ns_per_byte_);
  } else if (offset > head &&
             offset - head <= profile_.contiguity_window_bytes) {
    const uint64_t swept = (offset - head) + size;
    cost = static_cast<int64_t>(static_cast<double>(swept) * ns_per_byte_);
  } else {
    seeks_.fetch_add(1, std::memory_order_relaxed);
    cost = seek_ns_ +
           static_cast<int64_t>(static_cast<double>(size) * ns_per_byte_);
  }

  std::atomic<int64_t>& busy = channel_busy_until_[ch];
  int64_t observed = busy.load(std::memory_order_relaxed);
  int64_t slot_end;
  for (;;) {
    const int64_t start = std::max(NowNanos(), observed);
    slot_end = start + cost;
    if (busy.compare_exchange_weak(observed, slot_end,
                                   std::memory_order_acq_rel,
                                   std::memory_order_relaxed)) {
      break;
    }
  }
  SleepUntilNanos(slot_end);
  busy_ns_.fetch_add(cost, std::memory_order_relaxed);
  return cost;
}

Status SimulatedDisk::ReadAt(uint64_t offset, void* buffer, size_t size) {
  if (offset + size > file_size_) {
    return Status::InvalidArgument("read past end of simulated disk file");
  }
  read_calls_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(size, std::memory_order_relaxed);
  if (profile_.metered()) ChargeAndWait(offset, size);

  char* out = static_cast<char*>(buffer);
  size_t remaining = size;
  uint64_t pos = offset;
  while (remaining > 0) {
    const ssize_t n = ::pread(fd_, out, remaining, static_cast<off_t>(pos));
    if (n < 0) return Status::IOError("pread failed");
    if (n == 0) return Status::IOError("unexpected EOF in simulated disk");
    out += n;
    pos += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

DiskStats SimulatedDisk::stats() const {
  DiskStats s;
  s.read_calls = read_calls_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.seeks = seeks_.load(std::memory_order_relaxed);
  s.simulated_busy_seconds =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

void SimulatedDisk::ResetStats() {
  read_calls_.store(0, std::memory_order_relaxed);
  bytes_read_.store(0, std::memory_order_relaxed);
  seeks_.store(0, std::memory_order_relaxed);
  busy_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace parisax
