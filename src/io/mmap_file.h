// Read-only memory mapping of a whole file.
//
// MmapFile is the zero-copy substrate under MmapSource (raw data served
// straight from the page cache) and the snapshot loader (parallel
// deserialization reads subtree sections in place instead of copying the
// file into a buffer first).
#ifndef PARISAX_IO_MMAP_FILE_H_
#define PARISAX_IO_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace parisax {

class MmapFile {
 public:
  /// Maps `path` read-only. An empty file maps to {nullptr, 0}.
  static Result<std::unique_ptr<MmapFile>> Open(const std::string& path);

  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MmapFile(const uint8_t* data, size_t size, std::string path)
      : data_(data), size_(size), path_(std::move(path)) {}

  const uint8_t* data_;
  size_t size_;
  std::string path_;
};

}  // namespace parisax

#endif  // PARISAX_IO_MMAP_FILE_H_
