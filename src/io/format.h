// Binary on-disk dataset format.
//
// Layout (little-endian):
//   [0..7]   magic "PSAXDS01"
//   [8..15]  uint64 series count
//   [16..19] uint32 series length (points per series)
//   [20..23] uint32 flags (bit 0: series are z-normalized)
//   [24.. ]  float32 values, row-major, count*length entries
#ifndef PARISAX_IO_FORMAT_H_
#define PARISAX_IO_FORMAT_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "io/dataset.h"
#include "util/status.h"

namespace parisax {

/// Byte offset of the first float value in a dataset file.
inline constexpr uint64_t kDatasetHeaderBytes = 24;

/// Flag bit: the stored series were z-normalized at write time.
inline constexpr uint32_t kDatasetFlagZNormalized = 1u;

/// Parsed dataset file header.
struct DatasetFileInfo {
  uint64_t count = 0;
  uint32_t length = 0;
  uint32_t flags = 0;

  /// Byte offset of series `i` within the file.
  uint64_t SeriesOffset(uint64_t i) const {
    return kDatasetHeaderBytes +
           i * static_cast<uint64_t>(length) * sizeof(float);
  }

  /// Bytes occupied by one series.
  uint64_t SeriesBytes() const {
    return static_cast<uint64_t>(length) * sizeof(float);
  }

  /// Total expected file size in bytes.
  uint64_t FileBytes() const {
    return kDatasetHeaderBytes + count * SeriesBytes();
  }
};

/// Writes `dataset` to `path`, replacing any existing file.
Status WriteDataset(const Dataset& dataset, const std::string& path,
                    uint32_t flags = kDatasetFlagZNormalized);

/// Extends an existing dataset file in place by `count` series
/// (count * info.length values, row-major): values are written at the
/// current end and fsync-ed to stable storage *before* the header count
/// is patched, so a process crash or power loss mid-append leaves a
/// valid file with the old count — the header never advertises series
/// whose values might not have survived. `info` must describe the
/// file's current (pre-append) shape.
Status AppendToDatasetFile(const std::string& path, const Value* values,
                           size_t count, const DatasetFileInfo& info);

/// Reads an entire dataset file into memory.
Result<Dataset> LoadDataset(const std::string& path);

/// Validates and parses the header of a dataset file.
Result<DatasetFileInfo> ReadDatasetInfo(const std::string& path);

/// Streaming writer used to produce dataset files larger than memory.
/// Usage: Open() -> Append() x count -> Close(). The writer verifies at
/// Close() that exactly `count` series were appended.
class DatasetFileWriter {
 public:
  DatasetFileWriter() = default;
  ~DatasetFileWriter();

  DatasetFileWriter(const DatasetFileWriter&) = delete;
  DatasetFileWriter& operator=(const DatasetFileWriter&) = delete;

  Status Open(const std::string& path, uint64_t count, uint32_t length,
              uint32_t flags = kDatasetFlagZNormalized);
  Status Append(SeriesView series);
  Status Close();

 private:
  std::FILE* file_ = nullptr;
  uint64_t declared_count_ = 0;
  uint64_t written_ = 0;
  uint32_t length_ = 0;
  std::string path_;
};

}  // namespace parisax

#endif  // PARISAX_IO_FORMAT_H_
