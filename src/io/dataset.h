// In-memory data series collection.
#ifndef PARISAX_IO_DATASET_H_
#define PARISAX_IO_DATASET_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <vector>

#include "core/types.h"
#include "util/aligned.h"

namespace parisax {

/// A collection of `count` fixed-length series stored contiguously
/// (row-major) in a SIMD-aligned buffer. This is MESSI's RawData array and
/// the in-memory image of an on-disk dataset file.
class Dataset {
 public:
  Dataset() = default;

  /// Allocates storage for `count` series of `length` points each,
  /// zero-initialized.
  Dataset(size_t count, size_t length)
      : count_(count), length_(length), storage_(count * length) {}

  size_t count() const { return count_; }
  size_t length() const { return length_; }

  /// Total number of float values (count * length).
  size_t TotalValues() const { return count_ * length_; }

  /// Read-only view of series `i`.
  SeriesView series(SeriesId i) const {
    assert(i < count_);
    return SeriesView(storage_.data() + i * length_, length_);
  }

  /// Mutable view of series `i`.
  MutableSeriesView mutable_series(SeriesId i) {
    assert(i < count_);
    return MutableSeriesView(storage_.data() + i * length_, length_);
  }

  const Value* raw() const { return storage_.data(); }
  Value* mutable_raw() { return storage_.data(); }

  /// Appends `count` series (count * length() values, row-major). When
  /// the backing buffer must grow, the old buffer is *retired* — kept
  /// alive and unchanged for the Dataset's lifetime — rather than
  /// freed, so raw()/series() pointers obtained before the call remain
  /// valid views of the first count() series. Readers holding such a
  /// pinned view race with nothing (the engine's gate-free append path
  /// relies on this). Capacity grows geometrically, so a long sequence
  /// of small appends costs amortized O(1) copying per appended series.
  void Append(const Value* values, size_t count) {
    assert(length_ > 0);
    const size_t used = count_ * length_;
    const size_t need = used + count * length_;
    if (need > storage_.size()) {
      AlignedBuffer<Value> grown(std::max(need, 2 * used));
      if (used > 0) {
        std::memcpy(grown.data(), storage_.data(), used * sizeof(Value));
      }
      retired_.push_back(std::move(storage_));
      storage_ = std::move(grown);
    }
    std::memcpy(storage_.data() + used, values,
                count * length_ * sizeof(Value));
    count_ += count;
  }

 private:
  size_t count_ = 0;
  size_t length_ = 0;
  AlignedBuffer<Value> storage_;
  /// Superseded buffers, pinned for readers of pre-append views.
  std::vector<AlignedBuffer<Value>> retired_;
};

}  // namespace parisax

#endif  // PARISAX_IO_DATASET_H_
