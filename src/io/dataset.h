// In-memory data series collection.
#ifndef PARISAX_IO_DATASET_H_
#define PARISAX_IO_DATASET_H_

#include <cassert>
#include <cstddef>

#include "core/types.h"
#include "util/aligned.h"

namespace parisax {

/// A collection of `count` fixed-length series stored contiguously
/// (row-major) in a SIMD-aligned buffer. This is MESSI's RawData array and
/// the in-memory image of an on-disk dataset file.
class Dataset {
 public:
  Dataset() = default;

  /// Allocates storage for `count` series of `length` points each,
  /// zero-initialized.
  Dataset(size_t count, size_t length)
      : count_(count), length_(length), storage_(count * length) {}

  size_t count() const { return count_; }
  size_t length() const { return length_; }

  /// Total number of float values (count * length).
  size_t TotalValues() const { return count_ * length_; }

  /// Read-only view of series `i`.
  SeriesView series(SeriesId i) const {
    assert(i < count_);
    return SeriesView(storage_.data() + i * length_, length_);
  }

  /// Mutable view of series `i`.
  MutableSeriesView mutable_series(SeriesId i) {
    assert(i < count_);
    return MutableSeriesView(storage_.data() + i * length_, length_);
  }

  const Value* raw() const { return storage_.data(); }
  Value* mutable_raw() { return storage_.data(); }

 private:
  size_t count_ = 0;
  size_t length_ = 0;
  AlignedBuffer<Value> storage_;
};

}  // namespace parisax

#endif  // PARISAX_IO_DATASET_H_
