// In-memory data series collection.
#ifndef PARISAX_IO_DATASET_H_
#define PARISAX_IO_DATASET_H_

#include <cassert>
#include <cstddef>
#include <cstring>

#include "core/types.h"
#include "util/aligned.h"

namespace parisax {

/// A collection of `count` fixed-length series stored contiguously
/// (row-major) in a SIMD-aligned buffer. This is MESSI's RawData array and
/// the in-memory image of an on-disk dataset file.
class Dataset {
 public:
  Dataset() = default;

  /// Allocates storage for `count` series of `length` points each,
  /// zero-initialized.
  Dataset(size_t count, size_t length)
      : count_(count), length_(length), storage_(count * length) {}

  size_t count() const { return count_; }
  size_t length() const { return length_; }

  /// Total number of float values (count * length).
  size_t TotalValues() const { return count_ * length_; }

  /// Read-only view of series `i`.
  SeriesView series(SeriesId i) const {
    assert(i < count_);
    return SeriesView(storage_.data() + i * length_, length_);
  }

  /// Mutable view of series `i`.
  MutableSeriesView mutable_series(SeriesId i) {
    assert(i < count_);
    return MutableSeriesView(storage_.data() + i * length_, length_);
  }

  const Value* raw() const { return storage_.data(); }
  Value* mutable_raw() { return storage_.data(); }

  /// Appends `count` series (count * length() values, row-major). May
  /// reallocate the backing buffer: raw()/series() pointers obtained
  /// before the call are invalidated. Capacity grows geometrically
  /// (AlignedBuffer::GrowTo), so a long sequence of small appends
  /// costs amortized O(1) copying per appended series.
  void Append(const Value* values, size_t count) {
    assert(length_ > 0);
    storage_.GrowTo((count_ + count) * length_, count_ * length_);
    std::memcpy(storage_.data() + count_ * length_, values,
                count * length_ * sizeof(Value));
    count_ += count;
  }

 private:
  size_t count_ = 0;
  size_t length_ = 0;
  AlignedBuffer<Value> storage_;
};

}  // namespace parisax

#endif  // PARISAX_IO_DATASET_H_
