#include "io/reader.h"

#include <algorithm>

namespace parisax {

BufferedSeriesReader::BufferedSeriesReader(
    std::unique_ptr<SimulatedDisk> disk, DatasetFileInfo info,
    size_t batch_series)
    : disk_(std::move(disk)),
      info_(info),
      batch_series_(batch_series),
      buffer_(batch_series * info.length) {}

Result<std::unique_ptr<BufferedSeriesReader>> BufferedSeriesReader::Open(
    const std::string& path, DiskProfile profile, size_t batch_series) {
  if (batch_series == 0) {
    return Status::InvalidArgument("batch_series must be positive");
  }
  DatasetFileInfo info;
  PARISAX_ASSIGN_OR_RETURN(info, ReadDatasetInfo(path));
  std::unique_ptr<SimulatedDisk> disk;
  PARISAX_ASSIGN_OR_RETURN(disk, SimulatedDisk::Open(path, profile));
  return std::unique_ptr<BufferedSeriesReader>(new BufferedSeriesReader(
      std::move(disk), info, batch_series));
}

Status BufferedSeriesReader::NextBatch(SeriesBatch* batch) {
  batch->first_id = next_series_;
  batch->length = info_.length;
  batch->values = buffer_.data();
  batch->count = 0;
  if (next_series_ >= info_.count) return Status::OK();

  const uint64_t take = std::min<uint64_t>(batch_series_,
                                           info_.count - next_series_);
  const uint64_t offset = info_.SeriesOffset(next_series_);
  const size_t bytes = static_cast<size_t>(take * info_.SeriesBytes());
  PARISAX_RETURN_IF_ERROR(disk_->ReadAt(offset, buffer_.data(), bytes));
  batch->count = static_cast<size_t>(take);
  next_series_ += take;
  return Status::OK();
}

}  // namespace parisax
