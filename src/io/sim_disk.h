// Simulated storage devices.
//
// The paper's on-disk experiments (Figs. 4, 6, 8, 10, 11) compare HDD and
// SSD behaviour. This container has neither a spinning disk nor a
// dedicated SSD, so SimulatedDisk wraps a regular file and *meters* reads:
// each read occupies one of the device's `channels` for
//   seek_latency (if non-contiguous) + bytes / throughput
// of simulated time, implemented by sleeping until the claimed slot ends.
// Sleeping releases the CPU exactly like a blocked read(2), so the overlap
// behaviour the ParIS+ design exploits (masking CPU under I/O stalls) is
// exercised for real. An HDD has a single head => channels = 1 and all
// readers serialize on the device timeline; an SSD serves multiple
// commands concurrently => channels > 1 and cheap seeks.
#ifndef PARISAX_IO_SIM_DISK_H_
#define PARISAX_IO_SIM_DISK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace parisax {

/// Performance model of a storage device.
struct DiskProfile {
  std::string name = "instant";
  /// Sustained sequential read throughput, MB/s. <= 0 disables metering.
  double seq_read_mbps = 0.0;
  /// Latency charged for a non-contiguous access, microseconds.
  double seek_latency_us = 0.0;
  /// Number of device commands served concurrently.
  int channels = 1;
  /// A forward gap smaller than this (bytes) is charged as a read-through
  /// of the gap instead of a seek (models skip-sequential HDD access).
  uint64_t contiguity_window_bytes = 0;

  bool metered() const { return seq_read_mbps > 0.0; }

  /// ~2013-era server HDD: 150 MB/s sequential, 8 ms seeks, single head.
  static DiskProfile Hdd();
  /// SATA/NVMe SSD: 2 GB/s, 60 us access latency, 8 concurrent commands.
  static DiskProfile Ssd();
  /// No metering: reads cost only the real (page-cache) time.
  static DiskProfile Instant();
};

/// Cumulative counters for one SimulatedDisk.
struct DiskStats {
  uint64_t read_calls = 0;
  uint64_t bytes_read = 0;
  uint64_t seeks = 0;
  /// Total simulated device-busy time charged, seconds.
  double simulated_busy_seconds = 0.0;
};

/// A read-only file behind a simulated device. Thread-safe: concurrent
/// ReadAt calls contend for device channels like real I/O requests.
class SimulatedDisk {
 public:
  ~SimulatedDisk();

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  /// Opens `path` for reading behind the given device model.
  static Result<std::unique_ptr<SimulatedDisk>> Open(const std::string& path,
                                                     DiskProfile profile);

  /// Reads `size` bytes at `offset` into `buffer`, charging simulated
  /// device time. Fails if the range is outside the file.
  Status ReadAt(uint64_t offset, void* buffer, size_t size);

  uint64_t file_size() const { return file_size_; }
  const DiskProfile& profile() const { return profile_; }

  DiskStats stats() const;
  void ResetStats();

 private:
  SimulatedDisk(int fd, uint64_t file_size, DiskProfile profile);

  /// Claims device time for a read of `size` bytes at `offset` and sleeps
  /// until the claimed slot has elapsed. Returns charged nanoseconds.
  int64_t ChargeAndWait(uint64_t offset, size_t size);

  const int fd_;
  const uint64_t file_size_;
  const DiskProfile profile_;

  double ns_per_byte_ = 0.0;
  int64_t seek_ns_ = 0;

  /// Simulated-busy-until timestamps (steady-clock ns), one per channel.
  std::unique_ptr<std::atomic<int64_t>[]> channel_busy_until_;
  /// Last byte past the previous read, per channel. Channels are chosen
  /// by thread affinity, so each reader thread keeps its own sequential
  /// stream (like independent NVMe command streams); an HDD has a single
  /// channel and therefore one global head.
  std::unique_ptr<std::atomic<uint64_t>[]> channel_head_;

  mutable std::atomic<uint64_t> read_calls_{0};
  mutable std::atomic<uint64_t> bytes_read_{0};
  mutable std::atomic<uint64_t> seeks_{0};
  mutable std::atomic<int64_t> busy_ns_{0};
};

}  // namespace parisax

#endif  // PARISAX_IO_SIM_DISK_H_
