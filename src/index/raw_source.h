// The data plane: uniform access to raw series values, whether the
// collection lives in memory (MESSI, in-memory ParIS), is memory-mapped
// from a dataset file (restored snapshots, zero-copy builds), or streams
// through a (simulated) storage device (ParIS/ParIS+, ADS+ on disk).
//
// Every build path in the repository consumes a RawSeriesSource instead
// of a concrete container: random fetches go through GetSeries/TryView,
// hot paths address a contiguous block directly (ContiguousData /
// RawDataView), and the on-disk pipelines stream batches sequentially
// through OpenStream. Sources are *owned*: an index (and the Engine
// facade above it) takes its source by unique_ptr, so there is no
// "dataset must outlive the engine" footgun unless the caller explicitly
// opts into borrowing.
#ifndef PARISAX_INDEX_RAW_SOURCE_H_
#define PARISAX_INDEX_RAW_SOURCE_H_

#include <memory>
#include <string>

#include "core/types.h"
#include "io/dataset.h"
#include "io/format.h"
#include "io/reader.h"
#include "io/sim_disk.h"
#include "util/status.h"

namespace parisax {

/// One batched sequential pass over a source's series, in id order (the
/// build pipelines' Stage-1 feed). Not thread-safe; one reader at a time.
class SeriesStream {
 public:
  virtual ~SeriesStream() = default;

  /// Reads the next batch; `batch->count == 0` signals the end. Views
  /// stay valid until the next call.
  virtual Status NextBatch(SeriesBatch* batch) = 0;
};

class RawSeriesSource {
 public:
  virtual ~RawSeriesSource() = default;

  virtual size_t count() const = 0;
  virtual size_t length() const = 0;

  /// Copies series `id` into `out` (length() values). Thread-safe.
  virtual Status GetSeries(SeriesId id, Value* out) const = 0;

  /// Zero-copy view when the data is in memory, else empty. Lets hot
  /// paths skip the copy.
  virtual SeriesView TryView(SeriesId id) const {
    (void)id;
    return SeriesView();
  }

  /// Base pointer of the contiguous row-major value block backing this
  /// source (series `i` at `base + i * length()`), or nullptr when series
  /// are not directly addressable (e.g. a simulated seek-per-read
  /// device). In-memory engines build a RawDataView from this and bypass
  /// the virtual per-series calls entirely.
  virtual const Value* ContiguousData() const { return nullptr; }

  /// A source is addressable when builds and queries can run straight
  /// over its contiguous block with no copy. Empty sources are trivially
  /// addressable (there is nothing to address).
  bool addressable() const {
    return count() == 0 || ContiguousData() != nullptr;
  }

  /// Opens a batched sequential pass over all series (`batch_series` per
  /// NextBatch). The default serves zero-copy batches over
  /// ContiguousData when the source is addressable and falls back to
  /// per-series GetSeries copies otherwise; metered file sources override
  /// it to stream through their device model instead.
  virtual Result<std::unique_ptr<SeriesStream>> OpenStream(
      size_t batch_series) const;

  /// True when the backing device serves one request at a time and
  /// rewards position-ordered access (a spinning disk). Parallel readers
  /// should then funnel their reads through one ordered stream instead of
  /// racing the head around the platter.
  virtual bool PrefersSequentialAccess() const { return false; }

  /// True when AppendSeries can extend this source in place (the engine
  /// append path; see docs/architecture.md). False for borrowed and
  /// read-only sources.
  virtual bool appendable() const { return false; }

  /// Appends `count` series (count * length() values, row-major) to the
  /// backing collection. ContiguousData()/TryView pointers obtained
  /// before the call are invalidated; callers must exclude concurrent
  /// readers for the duration (Engine's append gate does). Returns
  /// kNotSupported when !appendable().
  virtual Status AppendSeries(const Value* values, size_t count);
};

/// The in-RAM source. Either *adopts* a Dataset (the source owns the
/// values — the default for the Engine facade) or *borrows* one the
/// caller keeps alive (zero-cost wrapping for tests and benches).
class InMemorySource : public RawSeriesSource {
 public:
  /// Borrows: `dataset` must outlive the source.
  explicit InMemorySource(const Dataset* dataset) : dataset_(dataset) {}

  /// Adopts: the source owns the moved-in collection.
  explicit InMemorySource(Dataset dataset)
      : owned_(std::make_unique<Dataset>(std::move(dataset))),
        dataset_(owned_.get()) {}

  size_t count() const override { return dataset_->count(); }
  size_t length() const override { return dataset_->length(); }

  Status GetSeries(SeriesId id, Value* out) const override;
  SeriesView TryView(SeriesId id) const override {
    return dataset_->series(id);
  }
  const Value* ContiguousData() const override { return dataset_->raw(); }

  /// Only the adopting form can grow: a borrowed collection belongs to
  /// the caller.
  bool appendable() const override { return owned_ != nullptr; }
  Status AppendSeries(const Value* values, size_t count) override;

  const Dataset& dataset() const { return *dataset_; }

 private:
  std::unique_ptr<Dataset> owned_;  // null when borrowing
  const Dataset* dataset_;
};

/// Non-owning view of a contiguous row-major raw-series block. The hot
/// paths (index construction Stage 1, MESSI's real-distance phase, the
/// in-memory scans) address series through this instead of a virtual
/// RawSeriesSource call; it works identically over an in-RAM Dataset and
/// an mmap-ed file.
struct RawDataView {
  const Value* base = nullptr;
  size_t length = 0;

  SeriesView series(SeriesId id) const {
    return SeriesView(base + static_cast<size_t>(id) * length, length);
  }
};

/// The streaming file source for the on-disk pipelines: a dataset file
/// behind a SimulatedDisk. Query-time random fetches (GetSeries) are
/// metered with `random_profile`; sequential passes (OpenStream — the
/// coordinator's Stage-1 reads, the on-disk UCR scan) are metered with
/// `stream_profile`.
class FileSource : public RawSeriesSource {
 public:
  static Result<std::unique_ptr<FileSource>> Open(const std::string& path,
                                                  DiskProfile random_profile,
                                                  DiskProfile stream_profile);

  /// One profile for both access patterns.
  static Result<std::unique_ptr<FileSource>> Open(const std::string& path,
                                                  DiskProfile profile) {
    return Open(path, profile, profile);
  }

  size_t count() const override { return info_.count; }
  size_t length() const override { return info_.length; }

  Status GetSeries(SeriesId id, Value* out) const override;

  Result<std::unique_ptr<SeriesStream>> OpenStream(
      size_t batch_series) const override;

  bool PrefersSequentialAccess() const override {
    return disk_->profile().metered() && disk_->profile().channels <= 1;
  }

  /// Appends to the dataset file, then reopens the device model over the
  /// longer file (append-reopen).
  bool appendable() const override { return true; }
  Status AppendSeries(const Value* values, size_t count) override;

  SimulatedDisk* disk() { return disk_.get(); }
  const DatasetFileInfo& info() const { return info_; }
  const std::string& path() const { return path_; }

 private:
  FileSource(std::string path, std::unique_ptr<SimulatedDisk> disk,
             DiskProfile stream_profile, DatasetFileInfo info)
      : path_(std::move(path)),
        disk_(std::move(disk)),
        stream_profile_(stream_profile),
        info_(info) {}

  const std::string path_;
  std::unique_ptr<SimulatedDisk> disk_;  // random (query-time) accesses
  const DiskProfile stream_profile_;     // sequential (build-time) passes
  DatasetFileInfo info_;
};

}  // namespace parisax

#endif  // PARISAX_INDEX_RAW_SOURCE_H_
