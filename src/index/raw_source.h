// Uniform access to raw series values, whether the collection lives in
// memory (MESSI, in-memory ParIS) or on (simulated) disk (ParIS/ParIS+,
// ADS+). Real-distance phases fetch raw series through this interface.
#ifndef PARISAX_INDEX_RAW_SOURCE_H_
#define PARISAX_INDEX_RAW_SOURCE_H_

#include <memory>
#include <string>

#include "core/types.h"
#include "io/dataset.h"
#include "io/format.h"
#include "io/sim_disk.h"
#include "util/status.h"

namespace parisax {

class RawSeriesSource {
 public:
  virtual ~RawSeriesSource() = default;

  virtual size_t count() const = 0;
  virtual size_t length() const = 0;

  /// Copies series `id` into `out` (length() values). Thread-safe.
  virtual Status GetSeries(SeriesId id, Value* out) const = 0;

  /// Zero-copy view when the data is in memory, else empty. Lets hot
  /// paths skip the copy.
  virtual SeriesView TryView(SeriesId id) const {
    (void)id;
    return SeriesView();
  }

  /// Base pointer of the contiguous row-major value block backing this
  /// source (series `i` at `base + i * length()`), or nullptr when series
  /// are not directly addressable (e.g. a simulated seek-per-read
  /// device). In-memory engines build a RawDataView from this and bypass
  /// the virtual per-series calls entirely.
  virtual const Value* ContiguousData() const { return nullptr; }

  /// True when the backing device serves one request at a time and
  /// rewards position-ordered access (a spinning disk). Parallel readers
  /// should then funnel their reads through one ordered stream instead of
  /// racing the head around the platter.
  virtual bool PrefersSequentialAccess() const { return false; }
};

/// Wraps a Dataset the caller keeps alive.
class InMemorySource : public RawSeriesSource {
 public:
  explicit InMemorySource(const Dataset* dataset) : dataset_(dataset) {}

  size_t count() const override { return dataset_->count(); }
  size_t length() const override { return dataset_->length(); }

  Status GetSeries(SeriesId id, Value* out) const override;
  SeriesView TryView(SeriesId id) const override {
    return dataset_->series(id);
  }
  const Value* ContiguousData() const override { return dataset_->raw(); }

 private:
  const Dataset* dataset_;
};

/// Non-owning view of a contiguous row-major raw-series block. The hot
/// query paths (MESSI's real-distance phase) address series through this
/// instead of a virtual RawSeriesSource call; it works identically over
/// an in-RAM Dataset and an mmap-ed file.
struct RawDataView {
  const Value* base = nullptr;
  size_t length = 0;

  SeriesView series(SeriesId id) const {
    return SeriesView(base + static_cast<size_t>(id) * length, length);
  }
};

/// Reads series from a dataset file through a SimulatedDisk (each fetch
/// pays the device model's random-access cost).
class DiskSource : public RawSeriesSource {
 public:
  static Result<std::unique_ptr<DiskSource>> Open(const std::string& path,
                                                  DiskProfile profile);

  size_t count() const override { return info_.count; }
  size_t length() const override { return info_.length; }

  Status GetSeries(SeriesId id, Value* out) const override;

  bool PrefersSequentialAccess() const override {
    return disk_->profile().metered() && disk_->profile().channels <= 1;
  }

  SimulatedDisk* disk() { return disk_.get(); }
  const DatasetFileInfo& info() const { return info_; }

 private:
  DiskSource(std::unique_ptr<SimulatedDisk> disk, DatasetFileInfo info)
      : disk_(std::move(disk)), info_(info) {}

  std::unique_ptr<SimulatedDisk> disk_;
  DatasetFileInfo info_;
};

}  // namespace parisax

#endif  // PARISAX_INDEX_RAW_SOURCE_H_
