// The iSAX index tree shared by ADS+, ParIS/ParIS+ and MESSI.
//
// Thread-safety contract (matches how the reproduced systems use it): the
// tree itself takes no locks. Parallel builders must ensure that each root
// subtree is mutated by at most one thread at a time (both ParIS and MESSI
// assign root subtrees to workers via Fetch&Inc, which guarantees this;
// the paper notes that parallelizing *within* a root subtree would need
// synchronization and is deliberately avoided). Reads (queries) only start
// after the build completes.
#ifndef PARISAX_INDEX_TREE_H_
#define PARISAX_INDEX_TREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "index/leaf_storage.h"
#include "index/node.h"
#include "util/status.h"

namespace parisax {

/// Structural parameters of an iSAX index.
struct SaxTreeOptions {
  /// Number of PAA segments w (<= kMaxSegments). The paper fixes 16.
  int segments = 16;
  /// Maximum entries per leaf before it splits.
  size_t leaf_capacity = 128;
  /// Length n of the indexed series (needed for mindist scaling).
  size_t series_length = 256;
};

/// Aggregate shape statistics of a tree.
struct TreeStats {
  size_t root_children = 0;
  size_t inner_nodes = 0;
  size_t leaves = 0;
  size_t total_entries = 0;  ///< includes flushed chunks
  size_t max_depth = 0;      ///< root children have depth 1
  size_t oversized_leaves = 0;
};

class SaxTree {
 public:
  explicit SaxTree(const SaxTreeOptions& options);

  const SaxTreeOptions& options() const { return options_; }

  /// Number of root slots (2^w).
  size_t root_slots() const { return roots_.size(); }

  /// Root child for `key`, or nullptr.
  Node* RootAt(uint32_t key) const { return roots_[key].get(); }

  /// Root child for `key`, created (empty leaf) if absent. Safe to call
  /// concurrently only for *distinct* keys.
  Node* GetOrCreateRoot(uint32_t key);

  /// Replaces the root child for `key` with a fresh empty leaf and
  /// returns it (delta-snapshot replay: a touched subtree is restored
  /// wholesale). Safe to call concurrently only for *distinct* keys;
  /// call SealRoots afterwards.
  Node* RecreateRoot(uint32_t key);

  /// Inserts an entry into the subtree rooted at `subtree` (which must
  /// contain it), splitting overflowing leaves. `storage` is required to
  /// split leaves that have flushed chunks. Single-threaded per subtree.
  Status InsertIntoSubtree(Node* subtree, const LeafEntry& entry,
                           LeafStorage* storage = nullptr);

  /// Serial convenience: routes through the root. Used by the ADS+
  /// (serial) builder and by tests.
  Status Insert(const LeafEntry& entry, LeafStorage* storage = nullptr);

  /// Finalizes the set of present root keys after building; must be
  /// called once, single-threaded, before PresentRoots / ApproximateLeaf.
  void SealRoots();

  /// Keys of existing root children, ascending. Valid after SealRoots.
  const std::vector<uint32_t>& PresentRoots() const { return present_roots_; }

  /// The leaf an exact-match descent reaches for `query_sax`; if the root
  /// child is absent, falls back to the present root whose region is
  /// closest to `query_paa`. Returns nullptr only for an empty tree.
  /// This is the iSAX "approximate search" used to seed the BSF.
  Node* ApproximateLeaf(const SaxSymbols& query_sax,
                        const float* query_paa) const;

  /// Depth-first visit of every leaf under `node` (or the whole tree if
  /// node == nullptr).
  void VisitLeaves(Node* node, const std::function<void(Node*)>& fn) const;

  /// Structural validation for tests: word nesting, routing consistency,
  /// leaf capacity (modulo unsplittable leaves), entry containment.
  Status CheckInvariants(LeafStorage* storage = nullptr) const;

  TreeStats Collect() const;

 private:
  /// Splits an overflowing leaf (cascading if one child receives
  /// everything). Requires the leaf's chunks to be readable via `storage`
  /// when present.
  Status SplitLeaf(Node* leaf, LeafStorage* storage);

  /// Most-balanced-split segment, or -1 if every segment is at max
  /// cardinality.
  int ChooseSplitSegment(const Node& leaf,
                         const std::vector<LeafEntry>& all_entries) const;

  SaxTreeOptions options_;
  std::vector<std::unique_ptr<Node>> roots_;
  std::vector<uint32_t> present_roots_;
};

}  // namespace parisax

#endif  // PARISAX_INDEX_TREE_H_
