#include "index/ads_index.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "sax/mindist.h"
#include "sax/paa.h"
#include "util/timer.h"

namespace parisax {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

}  // namespace

Result<std::unique_ptr<AdsIndex>> AdsIndex::Build(
    std::unique_ptr<RawSeriesSource> source,
    const AdsBuildOptions& options) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must not be null");
  }
  if (source->length() != options.tree.series_length) {
    return Status::InvalidArgument(
        "tree.series_length does not match the source");
  }
  if (!source->addressable() && options.leaf_storage_path.empty()) {
    return Status::InvalidArgument(
        "streamed (on-disk) ADS+ build requires leaf_storage_path");
  }
  WallTimer wall;
  auto index = std::unique_ptr<AdsIndex>(new AdsIndex(options.tree));
  if (!options.leaf_storage_path.empty()) {
    PARISAX_ASSIGN_OR_RETURN(
        index->leaf_storage_,
        LeafStorage::Create(options.leaf_storage_path,
                            options.leaf_write_mbps));
  }
  index->cache_ = FlatSaxCache(source->count());
  LeafStorage* storage = index->leaf_storage_.get();

  const int w = options.tree.segments;
  float paa[kMaxSegments];
  if (source->addressable()) {
    // Summarize in place: works identically over an in-RAM Dataset and
    // an mmap-ed file (no copy either way).
    const RawDataView raw{source->ContiguousData(), source->length()};
    WallTimer cpu;
    for (SeriesId i = 0; i < source->count(); ++i) {
      ComputePaa(raw.series(i), w, paa);
      LeafEntry entry;
      entry.id = i;
      SymbolsFromPaa(paa, w, &entry.sax);
      *index->cache_.MutableAt(i) = entry.sax;
      PARISAX_RETURN_IF_ERROR(index->tree_.Insert(entry, storage));
    }
    index->build_stats_.cpu_seconds = cpu.ElapsedSeconds();
  } else {
    std::unique_ptr<SeriesStream> stream;
    PARISAX_ASSIGN_OR_RETURN(stream,
                             source->OpenStream(options.batch_series));
    for (;;) {
      SeriesBatch batch;
      {
        WallTimer read;
        PARISAX_RETURN_IF_ERROR(stream->NextBatch(&batch));
        index->build_stats_.read_seconds += read.ElapsedSeconds();
      }
      if (batch.empty()) break;
      WallTimer cpu;
      for (size_t i = 0; i < batch.count; ++i) {
        ComputePaa(batch.series(i), w, paa);
        LeafEntry entry;
        entry.id = batch.first_id + i;
        SymbolsFromPaa(paa, w, &entry.sax);
        *index->cache_.MutableAt(entry.id) = entry.sax;
        PARISAX_RETURN_IF_ERROR(index->tree_.Insert(entry, storage));
      }
      index->build_stats_.cpu_seconds += cpu.ElapsedSeconds();
    }
  }

  // Materialize every leaf when a leaf store is configured (ADS+ is an
  // on-disk index in the paper's pipeline).
  if (storage != nullptr) {
    WallTimer write;
    Status flush_status = Status::OK();
    index->tree_.VisitLeaves(nullptr, [&](Node* leaf) {
      if (!flush_status.ok() || leaf->entries().empty()) return;
      auto ref = storage->AppendChunk(leaf->entries());
      if (!ref.ok()) {
        flush_status = ref.status();
        return;
      }
      leaf->flushed_chunks().push_back(*ref);
      leaf->entries().clear();
      leaf->entries().shrink_to_fit();
    });
    PARISAX_RETURN_IF_ERROR(flush_status);
    index->build_stats_.write_seconds = write.ElapsedSeconds();
  }

  index->source_ = std::move(source);
  index->tree_.SealRoots();
  index->build_stats_.tree = index->tree_.Collect();
  index->build_stats_.wall_seconds = wall.ElapsedSeconds();
  return index;
}

Result<Neighbor> AdsIndex::ApproximateInternal(SeriesView query,
                                               const float* paa,
                                               const SaxSymbols& sax,
                                               KernelPolicy kernel,
                                               QueryStats* stats) const {
  Neighbor best{0, kInf};
  Node* leaf = tree_.ApproximateLeaf(sax, paa);
  if (leaf == nullptr) return best;  // empty index

  std::vector<LeafEntry> entries;
  PARISAX_RETURN_IF_ERROR(
      CollectLeafEntries(*leaf, leaf_storage_.get(), &entries));
  std::vector<Value> buffer(source_->length());
  for (const LeafEntry& e : entries) {
    SeriesView view = source_->TryView(e.id);
    if (view.empty()) {
      PARISAX_RETURN_IF_ERROR(source_->GetSeries(e.id, buffer.data()));
      view = SeriesView(buffer.data(), buffer.size());
    }
    const float d = SquaredEuclideanEarlyAbandon(query, view,
                                                 best.distance_sq, kernel);
    if (stats != nullptr) stats->real_dist_calcs++;
    if (d < best.distance_sq) best = Neighbor{e.id, d};
  }
  if (stats != nullptr) stats->leaves_inspected++;
  return best;
}

Result<Neighbor> AdsIndex::SearchApproximate(SeriesView query,
                                             QueryStats* stats) const {
  if (query.size() != tree_.options().series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  WallTimer timer;
  const int w = tree_.options().segments;
  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);
  auto result = ApproximateInternal(query, paa, sax, KernelPolicy::kAuto,
                                    stats);
  if (stats != nullptr) stats->total_seconds = timer.ElapsedSeconds();
  return result;
}

Result<Neighbor> AdsIndex::SearchExact(SeriesView query,
                                       const AdsQueryOptions& options,
                                       QueryStats* stats) const {
  if (query.size() != tree_.options().series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  WallTimer total;
  const int w = tree_.options().segments;
  const size_t n = tree_.options().series_length;
  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);

  // Phase 1: approximate answer seeds the BSF.
  WallTimer approx;
  Neighbor best;
  PARISAX_ASSIGN_OR_RETURN(
      best, ApproximateInternal(query, paa, sax, options.kernel, stats));
  if (stats != nullptr) stats->approx_phase_seconds = approx.ElapsedSeconds();

  // Phase 2: serial mindist filtering over the flat SAX array.
  WallTimer filter;
  std::vector<SeriesId> candidates;
  for (SeriesId i = 0; i < cache_.count(); ++i) {
    const float lb = MinDistPaaToSymbolsSq(paa, cache_.At(i), w, n);
    if (lb < best.distance_sq) candidates.push_back(i);
  }
  if (stats != nullptr) {
    stats->lb_checks += cache_.count();
    stats->candidates += candidates.size();
    stats->filter_phase_seconds = filter.ElapsedSeconds();
  }

  // Phase 3: skip-sequential refinement (candidates are in position
  // order already; keep it explicit for clarity).
  WallTimer refine;
  std::sort(candidates.begin(), candidates.end());
  std::vector<Value> buffer(source_->length());
  for (const SeriesId id : candidates) {
    SeriesView view = source_->TryView(id);
    if (view.empty()) {
      PARISAX_RETURN_IF_ERROR(source_->GetSeries(id, buffer.data()));
      view = SeriesView(buffer.data(), buffer.size());
    }
    const float d = SquaredEuclideanEarlyAbandon(query, view,
                                                 best.distance_sq,
                                                 options.kernel);
    if (stats != nullptr) stats->real_dist_calcs++;
    if (d < best.distance_sq) best = Neighbor{id, d};
  }
  if (stats != nullptr) {
    stats->refine_phase_seconds = refine.ElapsedSeconds();
    stats->total_seconds = total.ElapsedSeconds();
  }
  return best;
}

}  // namespace parisax
