// Index tree nodes (shared by ADS+, ParIS/ParIS+ and MESSI).
//
// The tree has three layers of behaviour (see Fig. 1(d) of the paper):
//  * a root fanning out to up to 2^w children, addressed by the first bit
//    of each segment's symbol;
//  * inner nodes, each with exactly two children produced by a binary
//    split that added one bit of cardinality to one segment;
//  * leaves holding (iSAX symbols, series id) entries, optionally
//    materialized on disk in chunks (ParIS/ParIS+).
#ifndef PARISAX_INDEX_NODE_H_
#define PARISAX_INDEX_NODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.h"
#include "sax/word.h"
#include "util/mutex.h"

namespace parisax {

/// One indexed series inside a leaf: its full-cardinality summary plus the
/// position of the raw series in the collection (the "pointer to the raw
/// data" of the paper).
struct LeafEntry {
  SaxSymbols sax;
  SeriesId id = 0;
};

/// Reference to a chunk of LeafEntry records materialized in LeafStorage.
struct LeafChunkRef {
  uint64_t offset = 0;
  uint32_t count = 0;
};

class Node {
 public:
  explicit Node(const SaxWord& word) : word_(word) {}

  bool IsLeaf() const { return children_[0] == nullptr; }

  const SaxWord& word() const { return word_; }

  // --- Inner-node accessors -------------------------------------------

  /// The segment whose cardinality the split refined.
  int split_segment() const { return split_segment_; }
  Node* child(int bit) const { return children_[bit].get(); }

  /// Child an entry with these symbols descends into: decided by the bit
  /// that the split added.
  Node* Route(const SaxSymbols& sax) const {
    const int seg = split_segment_;
    const int child_bits = children_[0]->word_.bits[seg];
    const int bit = TruncateSymbol(sax.symbols[seg], child_bits) & 1;
    return children_[bit].get();
  }

  // --- Leaf accessors ---------------------------------------------------

  /// In-memory entries (excluding flushed chunks).
  std::vector<LeafEntry>& entries() { return entries_; }
  const std::vector<LeafEntry>& entries() const { return entries_; }

  /// Chunks of this leaf already written to LeafStorage.
  std::vector<LeafChunkRef>& flushed_chunks() { return flushed_chunks_; }
  const std::vector<LeafChunkRef>& flushed_chunks() const {
    return flushed_chunks_;
  }

  /// Total entries in this leaf, in memory and on disk.
  size_t LeafSize() const {
    size_t total = entries_.size();
    for (const auto& c : flushed_chunks_) total += c.count;
    return total;
  }

  /// Lock serializing leaf mutation against concurrent flushing (only
  /// exercised by the ParIS+ build pipeline).
  Mutex& leaf_mutex() PARISAX_RETURN_CAPABILITY(leaf_mutex_) {
    return leaf_mutex_;
  }

  // --- Structure mutation (single-threaded per subtree) ----------------

  /// Turns this leaf into an inner node with two fresh leaf children whose
  /// words extend this node's word by one bit of `segment`'s cardinality.
  /// The caller redistributes the entries.
  void MakeInner(int segment);

 private:
  SaxWord word_;
  int split_segment_ = -1;
  std::unique_ptr<Node> children_[2];
  std::vector<LeafEntry> entries_;
  std::vector<LeafChunkRef> flushed_chunks_;
  Mutex leaf_mutex_{"Node::leaf_mutex_", LockRank::kLeafNode};
};

}  // namespace parisax

#endif  // PARISAX_INDEX_NODE_H_
