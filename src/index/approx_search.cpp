#include "index/approx_search.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "sax/mindist.h"

namespace parisax {

namespace {

/// Shared core: `fetch(id, &view)` resolves a series id to its raw
/// values. `seek_bound` enables the probe-limit + position-order
/// treatment for seek-bound devices.
template <typename Fetch>
Result<Neighbor> LeafSearchImpl(const SaxTree& tree, LeafStorage* storage,
                                bool seek_bound, SeriesView query,
                                const float* paa, const SaxSymbols& sax,
                                KernelPolicy kernel, QueryStats* stats,
                                Fetch&& fetch) {
  Neighbor best{0, std::numeric_limits<float>::infinity()};
  Node* leaf = tree.ApproximateLeaf(sax, paa);
  if (leaf == nullptr) return best;

  std::vector<LeafEntry> entries;
  PARISAX_RETURN_IF_ERROR(CollectLeafEntries(*leaf, storage, &entries));
  // On a seek-bound device, probing every leaf member would cost a seek
  // each; probe only the members whose summaries are closest to the
  // query (the BSF seed just gets slightly looser, exactness is
  // unaffected).
  constexpr size_t kSeekBoundProbeLimit = 32;
  if (seek_bound && entries.size() > kSeekBoundProbeLimit) {
    const size_t w = tree.options().segments;
    const size_t n = tree.options().series_length;
    std::partial_sort(
        entries.begin(), entries.begin() + kSeekBoundProbeLimit,
        entries.end(), [&](const LeafEntry& a, const LeafEntry& b) {
          return MinDistPaaToSymbolsSq(paa, a.sax, w, n) <
                 MinDistPaaToSymbolsSq(paa, b.sax, w, n);
        });
    entries.resize(kSeekBoundProbeLimit);
  }
  // Fetch raw series in position order: on disk this turns the leaf's
  // scattered reads into a forward sweep.
  std::sort(entries.begin(), entries.end(),
            [](const LeafEntry& a, const LeafEntry& b) {
              return a.id < b.id;
            });
  for (const LeafEntry& e : entries) {
    SeriesView view;
    PARISAX_RETURN_IF_ERROR(fetch(e.id, &view));
    const float d =
        SquaredEuclideanEarlyAbandon(query, view, best.distance_sq, kernel);
    if (stats != nullptr) stats->real_dist_calcs++;
    if (d < best.distance_sq ||
        (d == best.distance_sq && e.id < best.id)) {
      best = Neighbor{e.id, d};
    }
  }
  if (stats != nullptr) stats->leaves_inspected++;
  return best;
}

}  // namespace

Result<Neighbor> ApproximateLeafSearch(const SaxTree& tree,
                                       LeafStorage* storage,
                                       const RawSeriesSource& source,
                                       SeriesView query, const float* paa,
                                       const SaxSymbols& sax,
                                       KernelPolicy kernel,
                                       QueryStats* stats) {
  std::vector<Value> buffer(source.length());
  return LeafSearchImpl(
      tree, storage, source.PrefersSequentialAccess(), query, paa, sax,
      kernel, stats, [&](SeriesId id, SeriesView* view) -> Status {
        *view = source.TryView(id);
        if (view->empty()) {
          PARISAX_RETURN_IF_ERROR(source.GetSeries(id, buffer.data()));
          *view = SeriesView(buffer.data(), buffer.size());
        }
        return Status::OK();
      });
}

Result<Neighbor> ApproximateLeafSearch(const SaxTree& tree,
                                       LeafStorage* storage,
                                       const RawDataView& raw,
                                       SeriesView query, const float* paa,
                                       const SaxSymbols& sax,
                                       KernelPolicy kernel,
                                       QueryStats* stats) {
  return LeafSearchImpl(tree, storage, /*seek_bound=*/false, query, paa,
                        sax, kernel, stats,
                        [&](SeriesId id, SeriesView* view) -> Status {
                          *view = raw.series(id);
                          return Status::OK();
                        });
}

}  // namespace parisax
