#include "index/raw_source.h"

#include <algorithm>
#include <cstring>

#include "util/aligned.h"

namespace parisax {

namespace {

/// Zero-copy stream over an addressable source: batches point straight
/// into the contiguous block.
class ViewStream : public SeriesStream {
 public:
  ViewStream(const Value* base, size_t count, size_t length,
             size_t batch_series)
      : base_(base),
        count_(count),
        length_(length),
        batch_series_(batch_series) {}

  Status NextBatch(SeriesBatch* batch) override {
    const size_t remaining = count_ - next_;
    batch->first_id = next_;
    batch->count = std::min(batch_series_, remaining);
    batch->length = length_;
    batch->values = base_ + next_ * length_;
    next_ += batch->count;
    return Status::OK();
  }

 private:
  const Value* base_;
  const size_t count_;
  const size_t length_;
  const size_t batch_series_;
  size_t next_ = 0;
};

/// Fallback stream for non-addressable sources: per-series GetSeries
/// copies into a stream-owned buffer.
class CopyStream : public SeriesStream {
 public:
  CopyStream(const RawSeriesSource* source, size_t batch_series)
      : source_(source),
        batch_series_(batch_series),
        buffer_(batch_series * source->length()) {}

  Status NextBatch(SeriesBatch* batch) override {
    const size_t length = source_->length();
    const size_t take = std::min(batch_series_, source_->count() - next_);
    for (size_t i = 0; i < take; ++i) {
      PARISAX_RETURN_IF_ERROR(
          source_->GetSeries(next_ + i, buffer_.data() + i * length));
    }
    batch->first_id = next_;
    batch->count = take;
    batch->length = length;
    batch->values = buffer_.data();
    next_ += take;
    return Status::OK();
  }

 private:
  const RawSeriesSource* source_;
  const size_t batch_series_;
  AlignedBuffer<Value> buffer_;
  size_t next_ = 0;
};

/// Metered sequential stream: BufferedSeriesReader behind the stream
/// profile's device model.
class MeteredFileStream : public SeriesStream {
 public:
  explicit MeteredFileStream(std::unique_ptr<BufferedSeriesReader> reader)
      : reader_(std::move(reader)) {}

  Status NextBatch(SeriesBatch* batch) override {
    return reader_->NextBatch(batch);
  }

 private:
  std::unique_ptr<BufferedSeriesReader> reader_;
};

}  // namespace

Result<std::unique_ptr<SeriesStream>> RawSeriesSource::OpenStream(
    size_t batch_series) const {
  if (batch_series == 0) {
    return Status::InvalidArgument("batch_series must be positive");
  }
  const Value* base = ContiguousData();
  if (base != nullptr) {
    return std::unique_ptr<SeriesStream>(
        new ViewStream(base, count(), length(), batch_series));
  }
  return std::unique_ptr<SeriesStream>(new CopyStream(this, batch_series));
}

Status RawSeriesSource::AppendSeries(const Value* values, size_t count) {
  (void)values;
  (void)count;
  return Status::NotSupported("this raw-series source is not appendable");
}

Status InMemorySource::GetSeries(SeriesId id, Value* out) const {
  if (id >= dataset_->count()) {
    return Status::InvalidArgument("series id out of range");
  }
  const SeriesView view = dataset_->series(id);
  std::memcpy(out, view.data(), view.size() * sizeof(Value));
  return Status::OK();
}

Status InMemorySource::AppendSeries(const Value* values, size_t count) {
  if (owned_ == nullptr) {
    return Status::NotSupported(
        "cannot append to a borrowed in-memory source (the collection "
        "belongs to the caller); adopt it with SourceSpec::InMemory");
  }
  owned_->Append(values, count);
  return Status::OK();
}

Result<std::unique_ptr<FileSource>> FileSource::Open(
    const std::string& path, DiskProfile random_profile,
    DiskProfile stream_profile) {
  DatasetFileInfo info;
  PARISAX_ASSIGN_OR_RETURN(info, ReadDatasetInfo(path));
  std::unique_ptr<SimulatedDisk> disk;
  PARISAX_ASSIGN_OR_RETURN(disk, SimulatedDisk::Open(path, random_profile));
  return std::unique_ptr<FileSource>(
      new FileSource(path, std::move(disk), stream_profile, info));
}

Status FileSource::GetSeries(SeriesId id, Value* out) const {
  if (id >= info_.count) {
    return Status::InvalidArgument("series id out of range");
  }
  return disk_->ReadAt(info_.SeriesOffset(id), out,
                       static_cast<size_t>(info_.SeriesBytes()));
}

Status FileSource::AppendSeries(const Value* values, size_t count) {
  PARISAX_RETURN_IF_ERROR(
      AppendToDatasetFile(path_, values, count, info_));
  // Append-reopen: the device model caches the file size at open, so a
  // fresh SimulatedDisk is opened over the longer file. Stats restart
  // from zero, like remounting a device.
  std::unique_ptr<SimulatedDisk> disk;
  PARISAX_ASSIGN_OR_RETURN(disk,
                           SimulatedDisk::Open(path_, disk_->profile()));
  disk_ = std::move(disk);
  info_.count += count;
  return Status::OK();
}

Result<std::unique_ptr<SeriesStream>> FileSource::OpenStream(
    size_t batch_series) const {
  std::unique_ptr<BufferedSeriesReader> reader;
  PARISAX_ASSIGN_OR_RETURN(
      reader,
      BufferedSeriesReader::Open(path_, stream_profile_, batch_series));
  return std::unique_ptr<SeriesStream>(
      new MeteredFileStream(std::move(reader)));
}

}  // namespace parisax
