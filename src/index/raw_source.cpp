#include "index/raw_source.h"

#include <cstring>

namespace parisax {

Status InMemorySource::GetSeries(SeriesId id, Value* out) const {
  if (id >= dataset_->count()) {
    return Status::InvalidArgument("series id out of range");
  }
  const SeriesView view = dataset_->series(id);
  std::memcpy(out, view.data(), view.size() * sizeof(Value));
  return Status::OK();
}

Result<std::unique_ptr<DiskSource>> DiskSource::Open(const std::string& path,
                                                     DiskProfile profile) {
  DatasetFileInfo info;
  PARISAX_ASSIGN_OR_RETURN(info, ReadDatasetInfo(path));
  std::unique_ptr<SimulatedDisk> disk;
  PARISAX_ASSIGN_OR_RETURN(disk, SimulatedDisk::Open(path, profile));
  return std::unique_ptr<DiskSource>(
      new DiskSource(std::move(disk), info));
}

Status DiskSource::GetSeries(SeriesId id, Value* out) const {
  if (id >= info_.count) {
    return Status::InvalidArgument("series id out of range");
  }
  return disk_->ReadAt(info_.SeriesOffset(id), out,
                       static_cast<size_t>(info_.SeriesBytes()));
}

}  // namespace parisax
