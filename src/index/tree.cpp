#include "index/tree.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>

#include "sax/mindist.h"

namespace parisax {

SaxTree::SaxTree(const SaxTreeOptions& options) : options_(options) {
  assert(options_.segments >= 1 && options_.segments <= kMaxSegments);
  assert(options_.leaf_capacity >= 1);
  roots_.resize(static_cast<size_t>(1) << options_.segments);
}

Node* SaxTree::GetOrCreateRoot(uint32_t key) {
  auto& slot = roots_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Node>(RootWord(key, options_.segments));
  }
  return slot.get();
}

Node* SaxTree::RecreateRoot(uint32_t key) {
  auto& slot = roots_[key];
  slot = std::make_unique<Node>(RootWord(key, options_.segments));
  return slot.get();
}

Status SaxTree::InsertIntoSubtree(Node* subtree, const LeafEntry& entry,
                                  LeafStorage* storage) {
  Node* node = subtree;
  while (!node->IsLeaf()) node = node->Route(entry.sax);
  node->entries().push_back(entry);
  if (node->LeafSize() > options_.leaf_capacity) {
    return SplitLeaf(node, storage);
  }
  return Status::OK();
}

Status SaxTree::Insert(const LeafEntry& entry, LeafStorage* storage) {
  Node* root = GetOrCreateRoot(RootKey(entry.sax, options_.segments));
  return InsertIntoSubtree(root, entry, storage);
}

void SaxTree::SealRoots() {
  present_roots_.clear();
  for (uint32_t key = 0; key < roots_.size(); ++key) {
    if (roots_[key] != nullptr) present_roots_.push_back(key);
  }
}

Node* SaxTree::ApproximateLeaf(const SaxSymbols& query_sax,
                               const float* query_paa) const {
  const uint32_t key = RootKey(query_sax, options_.segments);
  Node* node = roots_[key].get();
  if (node == nullptr) {
    // The exact root subtree does not exist: fall back to the present
    // root whose region is closest to the query (ADS+ convention).
    float best = std::numeric_limits<float>::infinity();
    for (const uint32_t k : present_roots_) {
      const float d =
          MinDistPaaToWordSq(query_paa, roots_[k]->word(),
                             options_.segments, options_.series_length);
      if (d < best) {
        best = d;
        node = roots_[k].get();
      }
    }
    if (node == nullptr) return nullptr;  // empty tree
  }
  while (!node->IsLeaf()) node = node->Route(query_sax);
  return node;
}

void SaxTree::VisitLeaves(Node* node,
                          const std::function<void(Node*)>& fn) const {
  if (node == nullptr) {
    for (const auto& root : roots_) {
      if (root != nullptr) VisitLeaves(root.get(), fn);
    }
    return;
  }
  if (node->IsLeaf()) {
    fn(node);
    return;
  }
  VisitLeaves(node->child(0), fn);
  VisitLeaves(node->child(1), fn);
}

int SaxTree::ChooseSplitSegment(
    const Node& leaf, const std::vector<LeafEntry>& all_entries) const {
  const SaxWord& word = leaf.word();
  int best_segment = -1;
  // Balance = |#entries going right - #entries going left|; lower is
  // better ("the segment that will result in the most balanced split").
  long best_balance = std::numeric_limits<long>::max();
  for (int s = 0; s < options_.segments; ++s) {
    if (word.bits[s] >= kMaxCardBits) continue;
    const int child_bits = word.bits[s] + 1;
    long ones = 0;
    for (const LeafEntry& e : all_entries) {
      ones += TruncateSymbol(e.sax.symbols[s], child_bits) & 1;
    }
    const long balance =
        std::labs(2 * ones - static_cast<long>(all_entries.size()));
    if (balance < best_balance) {
      best_balance = balance;
      best_segment = s;
    }
  }
  return best_segment;
}

Status SaxTree::SplitLeaf(Node* leaf, LeafStorage* storage) {
  // Iterative cascade: splitting may push everything into one child,
  // which must then split again.
  Node* node = leaf;
  while (node->LeafSize() > options_.leaf_capacity) {
    // Gather the complete contents (memory + flushed chunks).
    std::vector<LeafEntry> all = std::move(node->entries());
    node->entries().clear();
    if (!node->flushed_chunks().empty()) {
      if (storage == nullptr) {
        return Status::Internal(
            "splitting a flushed leaf requires LeafStorage");
      }
      for (const LeafChunkRef& ref : node->flushed_chunks()) {
        PARISAX_RETURN_IF_ERROR(storage->ReadChunk(ref, &all));
      }
      node->flushed_chunks().clear();
    }

    const int segment = ChooseSplitSegment(*node, all);
    if (segment < 0) {
      // Every segment is at maximum cardinality: the leaf is allowed to
      // exceed capacity (it can never be refined further).
      node->entries() = std::move(all);
      return Status::OK();
    }
    node->MakeInner(segment);
    for (const LeafEntry& e : all) {
      node->Route(e.sax)->entries().push_back(e);
    }
    Node* left = node->child(0);
    Node* right = node->child(1);
    if (left->LeafSize() > options_.leaf_capacity) {
      node = left;
    } else if (right->LeafSize() > options_.leaf_capacity) {
      node = right;
    } else {
      break;
    }
  }
  return Status::OK();
}

namespace {

struct InvariantContext {
  const SaxTreeOptions* options;
  LeafStorage* storage;
  TreeStats stats;
};

Status CheckNode(const Node* node, InvariantContext* ctx, size_t depth) {
  if (node->IsLeaf()) {
    ctx->stats.leaves++;
    ctx->stats.max_depth = std::max(ctx->stats.max_depth, depth);

    std::vector<LeafEntry> all = node->entries();
    for (const LeafChunkRef& ref : node->flushed_chunks()) {
      if (ctx->storage == nullptr) {
        return Status::Internal(
            "tree has flushed chunks but no LeafStorage was supplied");
      }
      PARISAX_RETURN_IF_ERROR(ctx->storage->ReadChunk(ref, &all));
    }
    for (const LeafEntry& e : all) {
      if (!WordContains(node->word(), e.sax, ctx->options->segments)) {
        return Status::Corruption(
            "leaf contains entry outside its region: " +
            node->word().ToString(ctx->options->segments));
      }
    }
    ctx->stats.total_entries += all.size();
    if (all.size() > ctx->options->leaf_capacity) {
      // Only legal when no segment can be refined further.
      for (int s = 0; s < ctx->options->segments; ++s) {
        if (node->word().bits[s] < kMaxCardBits) {
          return Status::Corruption("oversized splittable leaf");
        }
      }
      ctx->stats.oversized_leaves++;
    }
    return Status::OK();
  }

  ctx->stats.inner_nodes++;
  const int seg = node->split_segment();
  if (seg < 0 || seg >= ctx->options->segments) {
    return Status::Corruption("inner node with invalid split segment");
  }
  for (int bit = 0; bit < 2; ++bit) {
    const Node* child = node->child(bit);
    if (child == nullptr) {
      return Status::Corruption("inner node with missing child");
    }
    // Child word must extend the parent word by exactly one bit on the
    // split segment.
    const SaxWord& pw = node->word();
    const SaxWord& cw = child->word();
    for (int s = 0; s < ctx->options->segments; ++s) {
      if (s == seg) {
        if (cw.bits[s] != pw.bits[s] + 1 ||
            cw.symbols[s] != ((pw.symbols[s] << 1) | bit)) {
          return Status::Corruption("child word does not refine parent");
        }
      } else if (cw.bits[s] != pw.bits[s] || cw.symbols[s] != pw.symbols[s]) {
        return Status::Corruption("child word modified a non-split segment");
      }
    }
    PARISAX_RETURN_IF_ERROR(CheckNode(child, ctx, depth + 1));
  }
  return Status::OK();
}

}  // namespace

Status SaxTree::CheckInvariants(LeafStorage* storage) const {
  InvariantContext ctx;
  ctx.options = &options_;
  ctx.storage = storage;
  for (uint32_t key = 0; key < roots_.size(); ++key) {
    const Node* root = roots_[key].get();
    if (root == nullptr) continue;
    const SaxWord expected = RootWord(key, options_.segments);
    for (int s = 0; s < options_.segments; ++s) {
      if (root->word().bits[s] != expected.bits[s] ||
          root->word().symbols[s] != expected.symbols[s]) {
        return Status::Corruption("root child word does not match its key");
      }
    }
    PARISAX_RETURN_IF_ERROR(CheckNode(root, &ctx, 1));
  }
  return Status::OK();
}

TreeStats SaxTree::Collect() const {
  TreeStats stats;
  for (const auto& root : roots_) {
    if (root == nullptr) continue;
    stats.root_children++;
    // Reuse the invariant walker's counting without failing on missing
    // storage: count structurally here.
    std::function<void(const Node*, size_t)> walk = [&](const Node* node,
                                                        size_t depth) {
      if (node->IsLeaf()) {
        stats.leaves++;
        stats.total_entries += node->LeafSize();
        stats.max_depth = std::max(stats.max_depth, depth);
        if (node->LeafSize() > options_.leaf_capacity) {
          stats.oversized_leaves++;
        }
        return;
      }
      stats.inner_nodes++;
      walk(node->child(0), depth + 1);
      walk(node->child(1), depth + 1);
    };
    walk(root.get(), 1);
  }
  return stats;
}

}  // namespace parisax
