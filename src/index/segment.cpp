#include "index/segment.h"

#include <algorithm>
#include <utility>

#include "index/ingest.h"
#include "sax/word.h"

namespace parisax {

namespace {

/// Fills `seg->sax_rows` from the segment's own leaves (segments hold
/// every entry in memory, so no storage round-trip is needed).
void FillSaxRows(Segment* seg) {
  seg->sax_rows.resize(seg->count);
  seg->tree.VisitLeaves(nullptr, [seg](Node* leaf) {
    for (const LeafEntry& e : leaf->entries()) {
      seg->sax_rows[e.id - seg->first] = e.sax;
    }
  });
}

}  // namespace

Result<std::shared_ptr<const Segment>> BuildSegment(
    const Value* values, size_t count, SeriesId first,
    const SaxTreeOptions& options, bool with_sax_rows, Executor* exec) {
  auto seg = std::make_shared<Segment>(options);
  seg->first = first;
  seg->count = count;
  PARISAX_RETURN_IF_ERROR(AppendTailToTree(&seg->tree, values, count, first,
                                           exec, /*storage=*/nullptr,
                                           /*cache=*/nullptr,
                                           /*touched_roots=*/nullptr));
  if (with_sax_rows) FillSaxRows(seg.get());
  return std::shared_ptr<const Segment>(std::move(seg));
}

Result<std::shared_ptr<const Segment>> SegmentFromEntries(
    const std::vector<LeafEntry>& entries, SeriesId first, size_t count,
    const SaxTreeOptions& options, bool with_sax_rows, Executor* exec) {
  if (entries.size() != count) {
    return Status::InvalidArgument(
        "segment entries do not cover the id range");
  }
  for (const LeafEntry& e : entries) {
    if (e.id < first || e.id - first >= count) {
      return Status::InvalidArgument("segment entry id out of range");
    }
  }
  auto seg = std::make_shared<Segment>(options);
  seg->first = first;
  seg->count = count;
  PARISAX_RETURN_IF_ERROR(BuildTreeFromEntries(&seg->tree, entries, exec));
  if (with_sax_rows) FillSaxRows(seg.get());
  return std::shared_ptr<const Segment>(std::move(seg));
}

Result<std::shared_ptr<const Segment>> MergeSegments(
    const std::vector<std::shared_ptr<const Segment>>& parts,
    const SaxTreeOptions& options, Executor* exec) {
  if (parts.empty()) {
    return Status::InvalidArgument("nothing to merge");
  }
  const SeriesId first = parts.front()->first;
  size_t count = 0;
  std::vector<LeafEntry> entries;
  for (const auto& part : parts) {
    if (part->first != first + count) {
      return Status::InvalidArgument("segments to merge are not contiguous");
    }
    count += part->count;
    PARISAX_RETURN_IF_ERROR(
        CollectTreeEntries(part->tree, /*storage=*/nullptr, &entries));
  }
  return SegmentFromEntries(entries, first, count, options,
                            !parts.front()->sax_rows.empty(), exec);
}

Status CollectTreeEntries(const SaxTree& tree, LeafStorage* storage,
                          std::vector<LeafEntry>* out) {
  Status status;
  tree.VisitLeaves(nullptr, [&](Node* leaf) {
    if (!status.ok()) return;
    const Status st = CollectLeafEntries(*leaf, storage, out);
    if (!st.ok()) status = st;
  });
  return status;
}

Status BuildTreeFromEntries(SaxTree* tree,
                            const std::vector<LeafEntry>& entries,
                            Executor* exec) {
  const int w = tree->options().segments;

  // Key every entry by its root subtree, in parallel.
  struct KeyedEntry {
    uint32_t key;
    LeafEntry entry;
  };
  std::vector<KeyedEntry> keyed(entries.size());
  {
    WorkCounter chunks(entries.size());
    exec->Run([&](int) {
      size_t begin, end;
      while (chunks.NextBatch(4096, &begin, &end)) {
        for (size_t i = begin; i < end; ++i) {
          keyed[i].entry = entries[i];
          keyed[i].key = RootKey(entries[i].sax, w);
        }
      }
    });
  }

  // (key, id)-ordered insertion keeps the split decisions deterministic
  // for a given entry set, independent of where the entries came from.
  std::sort(keyed.begin(), keyed.end(),
            [](const KeyedEntry& a, const KeyedEntry& b) {
              return a.key < b.key ||
                     (a.key == b.key && a.entry.id < b.entry.id);
            });
  std::vector<std::pair<size_t, size_t>> ranges;  // [begin, end) per key
  for (size_t i = 0; i < keyed.size();) {
    size_t j = i + 1;
    while (j < keyed.size() && keyed[j].key == keyed[i].key) ++j;
    ranges.emplace_back(i, j);
    i = j;
  }

  Mutex error_mu{"error_mu", LockRank::kFirstError};
  Status first_error;
  {
    WorkCounter range_counter(ranges.size());
    exec->Run([&](int) {
      size_t item;
      while (range_counter.NextItem(&item)) {
        const auto [begin, end] = ranges[item];
        Node* root = tree->GetOrCreateRoot(keyed[begin].key);
        for (size_t i = begin; i < end; ++i) {
          const Status st =
              tree->InsertIntoSubtree(root, keyed[i].entry, nullptr);
          if (!st.ok()) {
            MutexLock lock(&error_mu);
            if (first_error.ok()) first_error = st;
            return;
          }
        }
      }
    });
  }
  PARISAX_RETURN_IF_ERROR(first_error);
  tree->SealRoots();
  return Status::OK();
}

}  // namespace parisax
