// Shared tail-ingest stage behind the index append paths
// (MessiIndex::Append, ParisIndex::Append): summarize the appended
// series in parallel, group them by root subtree, grow whole subtrees
// in parallel — the builders' no-synchronization-inside-a-subtree
// discipline, re-run over just the new tail.
#ifndef PARISAX_INDEX_INGEST_H_
#define PARISAX_INDEX_INGEST_H_

#include <vector>

#include "index/flat_sax.h"
#include "index/leaf_storage.h"
#include "index/tree.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

/// Indexes series [first, first + count) whose raw values are
/// `values` (count * tree->options().series_length floats, row-major):
/// SAX-summarizes them in parallel on `exec` — filling `cache` rows
/// for the new ids when non-null — then inserts whole root subtrees in
/// parallel (`storage` backs splits of leaves with flushed chunks).
/// Insertion order within a subtree is by ascending id, so the
/// resulting splits are deterministic for a given batch.
/// `touched_roots` (optional) receives the ascending distinct keys
/// that received entries. Callers must exclude concurrent tree
/// readers. On failure the tree may hold part of the batch — see
/// Engine::Append's failure contract.
Status AppendTailToTree(SaxTree* tree, const Value* values, size_t count,
                        SeriesId first, Executor* exec,
                        LeafStorage* storage, FlatSaxCache* cache,
                        std::vector<uint32_t>* touched_roots);

}  // namespace parisax

#endif  // PARISAX_INDEX_INGEST_H_
